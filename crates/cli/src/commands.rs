//! Command implementations for the `mpr` CLI.

use std::io::Write;
use std::path::Path;

use std::sync::Arc;

use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    ChainLevel, CoreHours, Cores, CostModel, EqlCappingMechanism, EqlMechanism, FallbackChain,
    InteractiveConfig, InteractiveMechanism, MarketInstance, MclrMechanism, Mechanism,
    OptMechanism, OptMethod, ParticipantSpec, ScaledCost, VcgMechanism, Watts,
};
use mpr_power::telemetry::SensorFaultConfig;
use mpr_proto::{Experiment, ExperimentConfig};
use mpr_sim::{
    CheckpointPlan, DurabilityPlan, FaultPlan, FsyncPolicy, LedgerEvent, NetPlan, SimConfig,
    Simulation, TelemetryConfig,
};
use mpr_workload::TraceGenerator;

use crate::args::{
    spec_by_name, ChaosArgs, LedgerAction, LedgerArgs, LintArgs, MarketArgs, SimulateArgs, SwfArgs,
};

/// Runs `mpr lint`: the workspace static-analysis pass (L1–L8), with the
/// incremental cache at `target/mpr-lint.cache` unless `--no-cache`.
///
/// Returns `Ok(true)` when the workspace is clean and within the exemption
/// budget, `Ok(false)` otherwise (the caller maps that to a nonzero exit).
///
/// # Errors
///
/// Propagates I/O failures from scanning the workspace or writing `out`.
pub fn lint(args: &LintArgs, out: &mut dyn Write) -> Result<bool, Box<dyn std::error::Error>> {
    let root = match &args.root {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir()?;
            mpr_lint::find_workspace_root(&cwd)
                .ok_or_else(|| format!("no workspace Cargo.toml found above {}", cwd.display()))?
        }
    };
    let cache_path = (!args.no_cache).then(|| root.join("target/mpr-lint.cache"));
    let (report, stats) = mpr_lint::analyze_workspace_cached(&root, cache_path.as_deref())?;
    if args.sarif {
        write!(out, "{}", mpr_lint::to_sarif(&report))?;
    } else if args.json {
        write!(out, "{}", mpr_lint::to_json(&report))?;
    } else {
        for v in &report.violations {
            writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message)?;
        }
        if !report.violations.is_empty() {
            writeln!(out)?;
        }
        writeln!(
            out,
            "mpr-lint: {} file(s) scanned ({} cached, {} analyzed), {} violation(s), \
             {} exemption(s) used (budget {})",
            report.files_scanned,
            stats.reused,
            stats.analyzed,
            report.violations.len(),
            report.exemptions_used.len(),
            mpr_lint::MAX_EXEMPTIONS
        )?;
        for e in &report.exemptions_used {
            writeln!(
                out,
                "  exempt {}:{} [{}] — {}",
                e.file, e.line, e.rule, e.reason
            )?;
        }
    }
    Ok(report.ok())
}

/// Runs `mpr simulate`, writing the report to `out`.
///
/// # Errors
///
/// Returns [`crate::args::UsageError`] for unknown traces; I/O errors are propagated as
/// boxed errors.
pub fn simulate(
    args: &SimulateArgs,
    out: &mut dyn Write,
) -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name(&args.trace)?.with_span_days(args.days);
    let trace = TraceGenerator::new(spec).with_seed(args.seed).generate();
    let plan = FaultPlan {
        unresponsive_frac: args.fault_unresponsive,
        crash_frac: args.fault_crash,
        stale_frac: args.fault_stale,
        byzantine_frac: args.fault_byzantine,
        ..FaultPlan::default()
    };
    let mut config = SimConfig::new(args.algorithm, args.oversub_pct)
        .with_participation(args.participation)
        .with_seed(args.seed);
    if plan.is_active() {
        config = config.with_faults(plan);
    }
    let mut net = NetPlan {
        drop_prob: args.net_drop,
        duplicate_prob: args.net_duplicate,
        partition_prob: args.net_partition,
        ..NetPlan::default()
    };
    if args.net_delay > 0 {
        net.max_delay_ticks = args.net_delay.max(net.min_delay_ticks);
    }
    if args.net_deadline > 0 {
        net.deadline_ticks = args.net_deadline;
    }
    if args.net_retries > 0 {
        net.max_attempts = args.net_retries;
    }
    if net.is_active() {
        config = config.with_net(net);
    }
    let sensor = SensorFaultConfig {
        noise_sigma_frac: args.sensor_noise,
        dropout_prob: args.sensor_dropout,
        delay_polls: args.sensor_stale,
        ..SensorFaultConfig::default()
    };
    if sensor.is_active() {
        config = config.with_telemetry(TelemetryConfig::with_faults(sensor));
    }
    if let Some(path) = &args.topology {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--topology {path}: {e}"))?;
        let spec =
            mpr_power::TopologySpec::parse(&text).map_err(|e| format!("--topology {path}: {e}"))?;
        config = config.with_topology(spec);
        let mut grid = mpr_power::GridFaultPlan {
            ups_failure_prob: args.tree_fault_ups,
            ats_derate_prob: args.tree_fault_ats,
            pdu_trip_prob: args.tree_fault_pdu,
            derate_prob: args.tree_fault_derate,
            ..mpr_power::GridFaultPlan::default()
        };
        if args.tree_fault_seed != 0 {
            grid.seed = args.tree_fault_seed;
        }
        if args.tree_fault_repair_secs > 0.0 {
            grid.repair_secs = args.tree_fault_repair_secs;
        }
        if grid.is_active() {
            config = config.with_grid_faults(grid);
        }
    }
    let r = if let Some(wal_path) = &args.wal {
        config = config.with_durability(DurabilityPlan {
            fsync: args.wal_fsync.unwrap_or(FsyncPolicy::Always),
            ..DurabilityPlan::default()
        });
        let run = mpr_sim::run_durable(&trace, config)?;
        // The ledger image gets the same crash-durable write discipline as
        // checkpoints: temp file + fsync + rename.
        mpr_durable::fsio::atomic_replace(Path::new(wal_path), &run.wal_image)?;
        run.report
    } else {
        let sim = Simulation::new(&trace, config);
        let ckpt_plan = args
            .checkpoint_path
            .as_ref()
            .map(|p| CheckpointPlan::every(p, args.checkpoint_every));
        match (&args.resume_from, &ckpt_plan) {
            (Some(from), Some(ckpt_plan)) => sim
                .resume_with_checkpoints(Path::new(from), ckpt_plan)?
                .into_report()
                .expect("no kill point configured"),
            (Some(from), None) => sim.resume(Path::new(from))?,
            (None, Some(ckpt_plan)) => sim
                .run_with_checkpoints(ckpt_plan)?
                .into_report()
                .expect("no kill point configured"),
            (None, None) => sim.run(),
        }
    };
    if args.csv {
        // Column unit tokens come from the unit newtypes, not hand-written
        // strings: `_w` from `Watts::SUFFIX`, `_ch` from `CoreHours::SUFFIX`.
        let w = Watts::SUFFIX.trim().to_ascii_lowercase();
        let ch = CoreHours::SUFFIX.trim().to_ascii_lowercase();
        writeln!(
            out,
            "trace,algorithm,oversub_pct,days,jobs,overload_pct,overload_events,\
             reduction_{ch},cost_{ch},reward_{ch},avg_runtime_increase_pct,\
             jobs_affected_pct,rounds_retried,quarantined,chain_level,residual_overload_{w},\
             sensor_samples_missed,sensor_outliers_rejected,sensor_stale_polls,\
             net_rounds,net_retransmits,net_straggler_rounds,net_messages_dropped,\
             fed_markets,fed_rounds,fed_residual_{w},\
             fed_grid_fault_slots,fed_fenced_nodes,fed_derated_nodes,\
             fed_reassigned_jobs,fed_quarantined_jobs,fed_dead_cleared_{w},\
             fed_derate_excess_{w},fed_post_repair_events"
        )?;
        writeln!(
            out,
            "{},{},{},{},{},{:.4},{},{:.3},{:.3},{:.3},{:.4},{:.3},{},{},{},{:.3},{},{},{},{},{},{},{},{},{},{:.3},{},{},{},{},{},{:.3},{:.6},{}",
            r.trace_name,
            r.algorithm,
            r.oversubscription_pct,
            args.days,
            r.jobs_total,
            r.overload_time_pct(),
            r.overload_events,
            r.reduction_core_hours,
            r.cost_core_hours,
            r.reward_core_hours,
            r.avg_runtime_increase_pct,
            r.jobs_affected_pct(),
            r.degradation.rounds_retried,
            r.degradation.participants_quarantined,
            r.degradation
                .deepest_chain_level
                .map_or_else(|| "none".to_owned(), |l| l.to_string()),
            r.degradation.residual_overload_watts,
            r.telemetry.map_or(0, |h| h.samples_missed),
            r.telemetry.map_or(0, |h| h.outliers_rejected),
            r.telemetry.map_or(0, |h| h.stale_polls),
            r.transport.map_or(0, |t| t.rounds),
            r.transport.map_or(0, |t| t.retransmits),
            r.transport.map_or(0, |t| t.straggler_rounds),
            r.transport.map_or(0, |t| t.messages_dropped),
            r.federated.as_ref().map_or(0, |f| f.markets),
            r.federated.as_ref().map_or(0, |f| f.rounds),
            r.federated.as_ref().map_or(0.0, |f| f.residual_watts),
            r.federated.as_ref().map_or(0, |f| f.grid_fault_slots),
            r.federated.as_ref().map_or(0, |f| f.fenced_nodes),
            r.federated.as_ref().map_or(0, |f| f.derated_nodes),
            r.federated.as_ref().map_or(0, |f| f.reassigned_jobs),
            r.federated.as_ref().map_or(0, |f| f.quarantined_jobs),
            r.federated.as_ref().map_or(0.0, |f| f.dead_cleared_watts),
            r.federated.as_ref().map_or(0.0, |f| f.derate_excess_watts),
            r.federated.as_ref().map_or(0, |f| f.post_repair_events),
        )?;
    } else {
        writeln!(
            out,
            "{} | {} | {}% oversubscription | {} days",
            r.trace_name, r.algorithm, r.oversubscription_pct, args.days
        )?;
        writeln!(out, "  jobs:                {}", r.jobs_total)?;
        writeln!(
            out,
            "  overloaded:          {:.2}% of time, {} emergencies",
            r.overload_time_pct(),
            r.overload_events
        )?;
        writeln!(
            out,
            "  resource reduction:  {:.1}",
            CoreHours::new(r.reduction_core_hours)
        )?;
        writeln!(
            out,
            "  performance cost:    {:.1}",
            CoreHours::new(r.cost_core_hours)
        )?;
        writeln!(
            out,
            "  rewards paid:        {:.1}{}",
            CoreHours::new(r.reward_core_hours),
            r.reward_pct_of_cost()
                .map_or_else(String::new, |p| format!(" ({p:.0}% of cost)"))
        )?;
        writeln!(
            out,
            "  runtime increase:    {:.2}% (affected jobs: {:.1}%)",
            r.avg_runtime_increase_pct,
            r.jobs_affected_pct()
        )?;
        if plan.is_active() || r.degradation.any_degradation() {
            let d = &r.degradation;
            writeln!(
                out,
                "  degradation:         {} rounds retried, {} quarantined, \
                 {} static fallbacks, {} EQL cappings, deepest level {}, \
                 residual overload {:.1}",
                d.rounds_retried,
                d.participants_quarantined,
                d.static_fallbacks,
                d.eql_cappings,
                d.deepest_chain_level
                    .map_or_else(|| "none".to_owned(), |l| l.to_string()),
                Watts::new(d.residual_overload_watts),
            )?;
        }
        if let Some(h) = r.telemetry {
            writeln!(
                out,
                "  telemetry:           {} samples delivered, {} missed, \
                 {} outliers rejected, {} stale polls",
                h.samples_delivered, h.samples_missed, h.outliers_rejected, h.stale_polls,
            )?;
        }
        if let Some(t) = r.transport {
            writeln!(
                out,
                "  transport:           {} rounds over {} clearings, \
                 {} retransmits, {} straggler rounds, {} quarantined by deadline, \
                 {} messages dropped, {} duplicated",
                t.rounds,
                t.clearings,
                t.retransmits,
                t.straggler_rounds,
                t.deadline_quarantines,
                t.messages_dropped,
                t.messages_duplicated,
            )?;
        }
        if let Some(d) = r.durability {
            writeln!(
                out,
                "  ledger:              {} records journaled ({} payments), \
                 commit slot {}, ledger rewards {:.1}{}",
                d.records_journaled,
                d.payments_journaled,
                d.recovered_commit_slot
                    .map_or_else(|| "none".to_owned(), |s| s.to_string()),
                CoreHours::new(d.ledger_reward_core_hours),
                if d.ledger_wedged { " [WEDGED]" } else { "" },
            )?;
        }
        if let Some(f) = &r.federated {
            writeln!(
                out,
                "  federated:           {} subtree markets over {} clearings, \
                 {} rounds, residual {:.1}, {} infeasible",
                f.markets,
                f.events,
                f.rounds,
                Watts::new(f.residual_watts),
                f.infeasible_events,
            )?;
            if f.grid_fault_slots > 0 {
                writeln!(
                    out,
                    "  grid faults:         {} faulted slots, {} node-slots fenced, \
                     {} derated, {} jobs reassigned, {} quarantined, \
                     {} post-repair clearings",
                    f.grid_fault_slots,
                    f.fenced_nodes,
                    f.derated_nodes,
                    f.reassigned_jobs,
                    f.quarantined_jobs,
                    f.post_repair_events,
                )?;
            }
            // Levels print root-first: by depth, then by node name.
            let mut levels: Vec<_> = f.levels.iter().collect();
            levels.sort_by_key(|(name, lv)| (lv.depth, (*name).clone()));
            for (name, lv) in levels {
                writeln!(
                    out,
                    "    {:<12} depth {} | {} markets | target {:.1} | \
                     cleared {:.1} | residual {:.1}",
                    name,
                    lv.depth,
                    lv.markets,
                    Watts::new(lv.target_watts),
                    Watts::new(lv.cleared_watts),
                    Watts::new(lv.residual_watts),
                )?;
            }
        }
    }
    Ok(())
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs `mpr ledger`: offline inspection and repair of a WAL image written
/// by `mpr simulate --wal` (or recovered from a crashed manager).
///
/// # Errors
///
/// `verify` returns an error — nonzero exit — when the log has a corrupt
/// tail; all actions propagate I/O errors and `truncate` refuses a log
/// whose segment header is unreadable.
pub fn ledger(args: &LedgerArgs, out: &mut dyn Write) -> Result<(), Box<dyn std::error::Error>> {
    let bytes = std::fs::read(&args.path)?;
    let report = mpr_durable::scan(&bytes, None);
    match args.action {
        LedgerAction::Dump => {
            if args.json {
                writeln!(out, "{{")?;
                writeln!(
                    out,
                    "  \"stream_id\": {},",
                    report
                        .stream_id
                        .map_or_else(|| "null".to_owned(), |s| s.to_string())
                )?;
                writeln!(out, "  \"records\": [")?;
                for (i, rec) in report.records.iter().enumerate() {
                    let event = LedgerEvent::decode(rec.kind, &rec.payload)
                        .map_or_else(|| "undecodable".to_owned(), |e| e.describe());
                    writeln!(
                        out,
                        "    {{\"seq\": {}, \"kind\": {}, \"event\": \"{}\"}}{}",
                        rec.seq,
                        rec.kind,
                        json_escape(&event),
                        if i + 1 < report.records.len() {
                            ","
                        } else {
                            ""
                        }
                    )?;
                }
                writeln!(out, "  ],")?;
                writeln!(out, "  \"valid_len\": {},", report.valid_len)?;
                writeln!(out, "  \"truncated_bytes\": {},", report.truncated_bytes)?;
                writeln!(
                    out,
                    "  \"corruption\": {}",
                    report.corruption.as_ref().map_or_else(
                        || "null".to_owned(),
                        |c| format!("\"{}\"", json_escape(&c.to_string()))
                    )
                )?;
                writeln!(out, "}}")?;
            } else {
                writeln!(
                    out,
                    "{}: {} record(s), stream {}, {} valid byte(s)",
                    args.path,
                    report.records.len(),
                    report
                        .stream_id
                        .map_or_else(|| "?".to_owned(), |s| format!("{s:#x}")),
                    report.valid_len,
                )?;
                for rec in &report.records {
                    let event = LedgerEvent::decode(rec.kind, &rec.payload).map_or_else(
                        || {
                            format!(
                                "kind {} ({} bytes, undecodable)",
                                rec.kind,
                                rec.payload.len()
                            )
                        },
                        |e| e.describe(),
                    );
                    writeln!(out, "  {:>6}  {event}", rec.seq)?;
                }
                if let Some(c) = &report.corruption {
                    writeln!(
                        out,
                        "  CORRUPT TAIL: {c} ({} byte(s) beyond the valid prefix)",
                        report.truncated_bytes
                    )?;
                }
            }
            Ok(())
        }
        LedgerAction::Verify => {
            let ok = report.corruption.is_none();
            if args.json {
                writeln!(
                    out,
                    "{{\"path\": \"{}\", \"ok\": {ok}, \"records\": {}, \
                     \"valid_len\": {}, \"truncated_bytes\": {}, \"corruption\": {}}}",
                    json_escape(&args.path),
                    report.records.len(),
                    report.valid_len,
                    report.truncated_bytes,
                    report.corruption.as_ref().map_or_else(
                        || "null".to_owned(),
                        |c| format!("\"{}\"", json_escape(&c.to_string()))
                    ),
                )?;
            } else {
                writeln!(
                    out,
                    "{}: {} record(s), {} valid byte(s), {}",
                    args.path,
                    report.records.len(),
                    report.valid_len,
                    report.corruption.as_ref().map_or_else(
                        || "tail clean".to_owned(),
                        |c| format!("CORRUPT: {c} ({} byte(s) lost)", report.truncated_bytes)
                    ),
                )?;
            }
            if ok {
                Ok(())
            } else {
                Err(format!("{}: corrupt tail", args.path).into())
            }
        }
        LedgerAction::Truncate => {
            let at = args.at.expect("validated by the parser");
            let Some(stream) = report.stream_id else {
                return Err(
                    format!("{}: segment header unreadable; nothing to keep", args.path).into(),
                );
            };
            let mut image = mpr_durable::wal::encode_segment_header(stream);
            let mut kept = 0u64;
            for rec in report.records.iter().filter(|r| r.seq < at) {
                image.extend_from_slice(&mpr_durable::wal::encode_frame(
                    rec.seq,
                    rec.kind,
                    &rec.payload,
                ));
                kept += 1;
            }
            mpr_durable::fsio::atomic_replace(Path::new(&args.path), &image)?;
            writeln!(
                out,
                "{}: kept {kept} of {} record(s) (seq < {at}), wrote {} byte(s){}",
                args.path,
                report.records.len(),
                image.len(),
                report
                    .corruption
                    .as_ref()
                    .map_or_else(String::new, |c| { format!(", dropped corrupt tail ({c})") }),
            )?;
            Ok(())
        }
    }
}

/// The strict mechanism behind one `--mechanism` choice: infeasible targets
/// are reported as errors, not silently capped. The chain is the exception
/// by design — demonstrating graceful degradation is its whole point.
fn market_mechanism(choice: crate::args::MarketMechanism) -> Box<dyn Mechanism> {
    use crate::args::MarketMechanism as M;
    match choice {
        M::MprStat => Box::new(MclrMechanism::strict()),
        M::MprInt => Box::new(InteractiveMechanism::strict(InteractiveConfig::default())),
        M::Opt => Box::new(OptMechanism::strict(OptMethod::Auto)),
        M::Eql => Box::new(EqlMechanism),
        M::Vcg => Box::new(VcgMechanism::strict(OptMethod::Auto)),
        M::Chain => Box::new(
            FallbackChain::new()
                .stage(
                    ChainLevel::Interactive,
                    InteractiveMechanism::best_effort(InteractiveConfig::default()),
                )
                .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
                .stage(ChainLevel::EqlCapping, EqlCappingMechanism),
        ),
    }
}

/// Runs `mpr market`: clears one synthetic market instance through the
/// selected [`Mechanism`] and prints the outcome.
///
/// # Errors
///
/// Propagates market errors (e.g. infeasible targets).
pub fn market(args: &MarketArgs, out: &mut dyn Write) -> Result<(), Box<dyn std::error::Error>> {
    let profiles = mpr_apps::cpu_profiles();
    let w = 125.0;
    // One shared instance carries everything any mechanism needs: the
    // cooperative standing bid (MPR-STAT), the cost curve (MPR-INT, OPT,
    // VCG) and the core count (EQL).
    let instance: MarketInstance = (0..args.jobs)
        .map(|i| {
            let cost = Arc::new(ScaledCost::new(
                profiles[i % profiles.len()].cost_model(1.0),
                8.0,
            ));
            let supply = StaticStrategy::Cooperative
                .supply_for(cost.as_ref())
                .expect("catalog costs are valid");
            ParticipantSpec::new(i as u64, cost.delta_max(), Watts::new(w))
                .with_bid(supply.bid())
                .with_cores(8.0)
                .with_cost(cost)
        })
        .collect();
    writeln!(
        out,
        "{} jobs, attainable reduction {:.0}, target {:.0}",
        args.jobs,
        instance.attainable_watts(),
        Watts::new(args.target_watts)
    )?;
    let mut mechanism = market_mechanism(args.mechanism);
    let clearing = mechanism.clear(&instance, Watts::new(args.target_watts))?;
    let d = clearing.diagnostics();
    if d.price_trace.is_empty() {
        writeln!(
            out,
            "{} cleared at q' = {:.4}",
            mechanism.name(),
            clearing.price()
        )?;
    } else {
        writeln!(
            out,
            "{} cleared at q' = {:.4} after {} iterations (converged: {})",
            mechanism.name(),
            clearing.price(),
            clearing.iterations(),
            d.converged
        )?;
    }
    if let Some(level) = d.chain_level {
        writeln!(
            out,
            "degradation chain settled at level {level} after {} stage(s)",
            d.levels_tried
        )?;
    }
    writeln!(
        out,
        "total reduction {:.2}, payoff {:.2}{}/h",
        Cores::new(clearing.total_reduction()),
        clearing.total_payment_rate().get(),
        CoreHours::SUFFIX
    )?;
    Ok(())
}

/// Runs `mpr swf`: generates a trace and writes it as SWF text.
///
/// # Errors
///
/// Returns usage errors for unknown traces; I/O errors are propagated.
pub fn swf(args: &SwfArgs, out: &mut dyn Write) -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name(&args.trace)?.with_span_days(args.days);
    let trace = TraceGenerator::new(spec).with_seed(args.seed).generate();
    out.write_all(mpr_workload::swf::write_swf(&trace).as_bytes())?;
    Ok(())
}

/// Runs `mpr calibrate`: parses `allocation,performance` CSV lines from
/// `input`, fits a monotone profile and prints its points plus market
/// parameters.
///
/// # Errors
///
/// Returns calibration/parse errors with line context.
pub fn calibrate(
    input: &mut dyn std::io::BufRead,
    out: &mut dyn Write,
) -> Result<(), Box<dyn std::error::Error>> {
    use mpr_core::bidding::StaticStrategy;
    use mpr_core::CostModel;
    use std::io::BufRead as _;

    let mut samples = Vec::new();
    for (lineno, line) in (&mut *input).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',');
        let (Some(a), Some(p)) = (parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `allocation,performance`", lineno + 1).into());
        };
        samples.push((a.trim().parse::<f64>()?, p.trim().parse::<f64>()?));
    }
    let profile = std::sync::Arc::new(mpr_apps::profile_from_samples(
        "calibrated",
        mpr_apps::DeviceKind::Cpu,
        &samples,
        125.0,
    )?);
    writeln!(
        out,
        "calibrated profile ({} levels):",
        profile.points().len()
    )?;
    for &(alloc, perf) in profile.points() {
        writeln!(
            out,
            "  allocation {alloc:.3} -> performance {:.1}%",
            100.0 * perf
        )?;
    }
    let cost = profile.cost_model(1.0);
    let supply = StaticStrategy::Cooperative.supply_for(&cost)?;
    writeln!(
        out,
        "market parameters: Δ = {:.3} per core, cooperative bid b = {:.4}",
        cost.delta_max(),
        supply.bid()
    )?;
    Ok(())
}

/// Runs `mpr traces`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn traces(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "{:<12} {:>7} {:>10} {:>10} {:>9}",
        "name", "cores", "span days", "mean util", "jobs/day"
    )?;
    for name in ["gaia", "pik", "ricc", "metacentrum"] {
        let spec = spec_by_name(name).expect("builtin");
        // Jobs/day estimate from the spec's calibration targets.
        let per_day = spec.total_cores as f64 * spec.mean_util * 24.0
            / (spec.mean_job_cores * spec.mean_job_runtime_hours);
        writeln!(
            out,
            "{:<12} {:>7} {:>10} {:>10.2} {:>9.0}",
            spec.name, spec.total_cores, spec.span_days, spec.mean_util, per_day
        )?;
    }
    Ok(())
}

/// Runs `mpr apps`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn apps(out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(
        out,
        "{:<14} {:>4} {:>6} {:>10} {:>12}",
        "name", "kind", "Δ", "W/unit", "sensitivity"
    )?;
    for p in mpr_apps::cpu_profiles()
        .into_iter()
        .chain(mpr_apps::gpu_profiles())
    {
        writeln!(
            out,
            "{:<14} {:>4} {:>6.2} {:>10.0} {:>12.3}",
            p.name(),
            p.kind().to_string(),
            p.delta_max(),
            p.unit_dynamic_power_w(),
            p.sensitivity()
        )?;
    }
    Ok(())
}

/// Runs `mpr prototype`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn prototype(with_mpr: bool, out: &mut dyn Write) -> std::io::Result<()> {
    let r = Experiment::new(ExperimentConfig {
        with_mpr,
        ..ExperimentConfig::default()
    })
    .run();
    writeln!(
        out,
        "prototype 30-minute run ({}): mean power {:.1} W, {:.1}% above cap, {} emergencies",
        if with_mpr { "with MPR" } else { "without MPR" },
        r.mean_power_watts(),
        100.0 * r.overload_fraction,
        r.emergencies
    )?;
    for a in &r.apps {
        writeln!(
            out,
            "  {:<8} avg reduction {:.2} cores, avg freq {:.2} GHz",
            a.name, a.avg_reduction_cores, a.avg_freq_ghz
        )?;
    }
    Ok(())
}

/// Runs `mpr chaos`: a fuzzing campaign, or an artifact replay with
/// `--replay`.
///
/// # Errors
///
/// Returns an error — and `main` exits nonzero, which is what CI keys on —
/// when any safety invariant was violated (campaign mode), when the replay
/// does not reproduce, or on I/O and artifact-parse failures.
pub fn chaos(args: &ChaosArgs, out: &mut dyn Write) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = &args.replay {
        let text = std::fs::read_to_string(path)?;
        let plan = mpr_chaos::campaign::parse_artifact(&text)?;
        writeln!(
            out,
            "replaying {path}: oracle [{}] over {} day(s)\n  scenario: {}",
            plan.oracle,
            plan.days,
            plan.scenario.describe()
        )?;
        let outcome = mpr_chaos::campaign::replay(&plan);
        for v in &outcome.violations {
            writeln!(out, "  violation [{}] {}", v.oracle, v.message)?;
        }
        if outcome.reproduced {
            writeln!(out, "REPRODUCED: oracle [{}] fired again", plan.oracle)?;
            return Ok(());
        }
        return Err(format!(
            "replay did not reproduce oracle [{}] (found {} other violation(s))",
            plan.oracle,
            outcome.violations.len()
        )
        .into());
    }

    let cc = mpr_chaos::CampaignConfig {
        runs: args.runs,
        seed: args.seed,
        days: args.days,
        emergency_disabled: args.disable_emergency,
        wal_fsync_never: args.wal_fsync_never,
        tree_fault_ups: args.tree_fault_ups,
        shrink: !args.no_shrink,
        artifact_dir: args.artifact_dir.as_ref().map(Into::into),
    };
    let report = mpr_chaos::run(&cc)?;
    if args.csv {
        write!(out, "{}", report.to_csv())?;
    } else if args.json {
        writeln!(out, "{}", report.to_json())?;
    } else {
        write!(out, "{}", report.summary())?;
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} safety-invariant violation(s) in {} run(s)",
            report.violation_count(),
            report.failures.len()
        )
        .into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{parse, Command};

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn simulate_csv_has_header_and_row() {
        let Command::Simulate(a) = parse(&argv("simulate --days 1 --oversub 10 --csv")).unwrap()
        else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("trace,algorithm"));
        assert!(lines[1].starts_with("Gaia,MPR-STAT,10,1"));
    }

    #[test]
    fn simulate_human_readable() {
        let Command::Simulate(a) = parse(&argv("simulate --days 1")).unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("performance cost"));
        assert!(text.contains("Gaia"));
    }

    #[test]
    fn simulate_with_faults_reports_degradation() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --days 1 --oversub 15 --alg mpr-int \
             --fault-unresponsive 0.3 --fault-crash 0.1",
        ))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("degradation:"));
    }

    #[test]
    fn simulate_with_lossy_net_reports_transport() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --days 1 --oversub 15 --alg mpr-int --net-drop 0.3",
        ))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("transport:"),
            "missing transport line: {text}"
        );

        // The CSV carries the transport columns too.
        let Command::Simulate(csv) = parse(&argv(
            "simulate --days 1 --oversub 15 --alg mpr-int --net-drop 0.3 --csv",
        ))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&csv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.first().is_some_and(|h| h
            .contains("net_rounds,net_retransmits,net_straggler_rounds,net_messages_dropped")
            && h.contains("fed_markets,fed_rounds,fed_residual_w")));
    }

    #[test]
    fn simulate_with_sensor_faults_reports_telemetry() {
        let Command::Simulate(a) = parse(&argv(
            "simulate --days 1 --oversub 15 --sensor-noise 0.02 --sensor-dropout 0.3",
        ))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("telemetry:"),
            "missing telemetry line: {text}"
        );
    }

    #[test]
    fn simulate_checkpoint_then_resume_matches_plain_run() {
        let path = std::env::temp_dir().join(format!("mpr_cli_{}.ckpt", std::process::id()));
        let ckpt = path.to_str().unwrap();

        let Command::Simulate(plain) = parse(&argv("simulate --days 1 --oversub 15")).unwrap()
        else {
            panic!()
        };
        let mut plain_buf = Vec::new();
        simulate(&plain, &mut plain_buf).unwrap();

        // A checkpointed run leaves a resumable file behind...
        let Command::Simulate(a) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --checkpoint-every 300 --checkpoint-path {ckpt}"
        )))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        assert_eq!(buf, plain_buf, "checkpointing must not perturb the run");
        assert!(path.exists(), "checkpoint file must be written");

        // ...and resuming from it reproduces the uninterrupted output.
        let Command::Simulate(res) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --resume-from {ckpt}"
        )))
        .unwrap() else {
            panic!()
        };
        let mut resumed = Vec::new();
        simulate(&res, &mut resumed).unwrap();
        assert_eq!(resumed, plain_buf, "resume must reproduce the full run");

        // Resuming under a different config is refused, not silently wrong.
        let Command::Simulate(bad) = parse(&argv(&format!(
            "simulate --days 1 --oversub 20 --resume-from {ckpt}"
        )))
        .unwrap() else {
            panic!()
        };
        assert!(simulate(&bad, &mut Vec::new()).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_federated_reports_per_level_markets() {
        let tree = std::env::temp_dir().join(format!("mpr_cli_{}_tree.json", std::process::id()));
        std::fs::write(&tree, include_str!("../../../examples/tree.json")).unwrap();
        let spec = tree.to_str().unwrap();

        let Command::Simulate(a) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --topology {spec} --federated"
        )))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("federated:"),
            "missing federated line: {text}"
        );
        assert!(text.contains("depth"), "missing per-level rows: {text}");
        assert!(text.contains("residual"), "{text}");

        // The CSV carries the federated columns.
        let Command::Simulate(csv) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --topology {spec} --federated --csv"
        )))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&csv, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].ends_with("fed_derate_excess_w,fed_post_repair_events"));
        assert!(lines[0].contains("fed_markets,fed_rounds,fed_residual_w"));
        assert!(lines[0].contains("fed_grid_fault_slots,fed_fenced_nodes"));
        let markets: usize = lines[1]
            .split(',')
            .nth_back(10)
            .and_then(|v| v.parse().ok())
            .expect("fed_markets column");
        assert!(markets > 0, "federated run must clear subtree markets");

        // A federated checkpoint only resumes under the same topology.
        let ckpt = std::env::temp_dir().join(format!("mpr_cli_{}_fed.ckpt", std::process::id()));
        let ckpt_s = ckpt.to_str().unwrap();
        let Command::Simulate(w) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --topology {spec} --federated \
             --checkpoint-every 300 --checkpoint-path {ckpt_s}"
        )))
        .unwrap() else {
            panic!()
        };
        simulate(&w, &mut Vec::new()).unwrap();
        let Command::Simulate(ok) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --topology {spec} --federated --resume-from {ckpt_s}"
        )))
        .unwrap() else {
            panic!()
        };
        let mut resumed = Vec::new();
        simulate(&ok, &mut resumed).unwrap();
        assert!(String::from_utf8(resumed).unwrap().contains("federated:"));
        let Command::Simulate(bad) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --resume-from {ckpt_s}"
        )))
        .unwrap() else {
            panic!()
        };
        assert!(
            simulate(&bad, &mut Vec::new()).is_err(),
            "a flat resume must be fenced off a federated checkpoint"
        );
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(&tree);
    }

    #[test]
    fn simulate_tree_faults_fence_and_report() {
        let tree = std::env::temp_dir().join(format!("mpr_cli_{}_gtree.json", std::process::id()));
        std::fs::write(&tree, include_str!("../../../examples/tree.json")).unwrap();
        let spec = tree.to_str().unwrap();

        let Command::Simulate(a) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --topology {spec} --federated \
             --tree-fault-ups 1.0 --tree-fault-seed 7 --tree-fault-repair-secs 1800"
        )))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.contains("grid faults:"),
            "missing grid-fault line: {text}"
        );

        // The CSV carries the fault counters, and the run is deterministic:
        // two invocations of the same command are byte-identical.
        let Command::Simulate(csv) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --topology {spec} --federated \
             --tree-fault-ups 1.0 --tree-fault-seed 7 --tree-fault-repair-secs 1800 --csv"
        )))
        .unwrap() else {
            panic!()
        };
        let mut first = Vec::new();
        simulate(&csv, &mut first).unwrap();
        let mut second = Vec::new();
        simulate(&csv, &mut second).unwrap();
        assert_eq!(
            first, second,
            "faulted federated runs must be deterministic"
        );
        let text = String::from_utf8(first).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let slots: usize = lines[1]
            .split(',')
            .nth_back(7)
            .and_then(|v| v.parse().ok())
            .expect("fed_grid_fault_slots column");
        assert!(slots > 0, "an always-on UPS plan must fault some slots");
        let _ = std::fs::remove_file(&tree);
    }

    #[test]
    fn simulate_wal_then_ledger_dump_verify_truncate() {
        let path = std::env::temp_dir().join(format!("mpr_cli_{}.wal", std::process::id()));
        let wal = path.to_str().unwrap();

        // A durable run writes an inspectable ledger and reports on it.
        let Command::Simulate(a) = parse(&argv(&format!(
            "simulate --days 1 --oversub 15 --alg mpr-int --wal {wal}"
        )))
        .unwrap() else {
            panic!()
        };
        let mut buf = Vec::new();
        simulate(&a, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ledger:"), "missing ledger line: {text}");
        assert!(path.exists(), "WAL image must be written");

        // The journaled ledger must not perturb the market outcome.
        let Command::Simulate(plain) =
            parse(&argv("simulate --days 1 --oversub 15 --alg mpr-int")).unwrap()
        else {
            panic!()
        };
        let mut plain_buf = Vec::new();
        simulate(&plain, &mut plain_buf).unwrap();
        let plain_text = String::from_utf8(plain_buf).unwrap();
        let stripped: Vec<&str> = text.lines().filter(|l| !l.contains("ledger:")).collect();
        assert_eq!(
            stripped,
            plain_text.lines().collect::<Vec<_>>(),
            "journaling must not perturb the run"
        );

        // dump decodes typed market events from the image...
        let ledger_args = |s: &str| {
            let Command::Ledger(a) = parse(&argv(s)).unwrap() else {
                panic!("expected ledger");
            };
            a
        };
        let mut buf = Vec::new();
        ledger(&ledger_args(&format!("ledger dump {wal}")), &mut buf).unwrap();
        let dump = String::from_utf8(buf).unwrap();
        assert!(dump.contains("record(s)"), "{dump}");
        assert!(
            dump.contains("slot-commit") || dump.contains("price-announce"),
            "{dump}"
        );
        assert!(!dump.contains("CORRUPT"), "{dump}");

        // ...dump --json emits the machine-readable form...
        let mut buf = Vec::new();
        ledger(&ledger_args(&format!("ledger dump {wal} --json")), &mut buf).unwrap();
        let dump_json = String::from_utf8(buf).unwrap();
        assert!(dump_json.contains("\"records\": ["), "{dump_json}");
        assert!(dump_json.contains("\"corruption\": null"), "{dump_json}");

        // ...verify passes on the intact log...
        let mut buf = Vec::new();
        ledger(&ledger_args(&format!("ledger verify {wal}")), &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("tail clean"));

        // ...truncate keeps a prefix, which still verifies...
        let mut buf = Vec::new();
        ledger(
            &ledger_args(&format!("ledger truncate {wal} --at 5")),
            &mut buf,
        )
        .unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("kept 5 of"));
        let mut buf = Vec::new();
        ledger(&ledger_args(&format!("ledger verify {wal}")), &mut buf).unwrap();

        // ...and a torn tail fails verify with a nonzero exit.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad]);
        std::fs::write(&path, &bytes).unwrap();
        let err = ledger(
            &ledger_args(&format!("ledger verify {wal}")),
            &mut Vec::new(),
        )
        .expect_err("torn tail must fail verify");
        assert!(err.to_string().contains("corrupt tail"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ledger_missing_file_errors() {
        let Command::Ledger(a) = parse(&argv("ledger dump /nonexistent/no.wal")).unwrap() else {
            panic!()
        };
        assert!(ledger(&a, &mut Vec::new()).is_err());
    }

    fn chaos_args(s: &str) -> ChaosArgs {
        let Command::Chaos(a) = parse(&argv(s)).unwrap() else {
            panic!("expected chaos");
        };
        a
    }

    #[test]
    fn chaos_healthy_campaign_passes() {
        let mut buf = Vec::new();
        chaos(
            &chaos_args("chaos --runs 4 --seed 42 --days 0.25"),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("chaos campaign: 4 runs"), "{text}");
    }

    #[test]
    fn chaos_seeded_violation_fails_shrinks_and_replays() {
        let dir = std::env::temp_dir().join("mpr-cli-chaos-test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut buf = Vec::new();
        let err = chaos(
            &chaos_args(&format!(
                "chaos --runs 2 --seed 7 --days 0.25 --disable-emergency \
                 --artifact-dir {}",
                dir.display()
            )),
            &mut buf,
        )
        .expect_err("disabled FSM must fail the campaign");
        assert!(err.to_string().contains("violation"));
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("FAIL"), "{text}");
        assert!(text.contains("reproduce: cargo run -p mpr-cli"), "{text}");

        // The printed artifact replays and reproduces.
        let artifact = dir.join("chaos-repro-0.json");
        let mut buf = Vec::new();
        chaos(
            &chaos_args(&format!("chaos --replay {}", artifact.display())),
            &mut buf,
        )
        .expect("replay reproduces");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("REPRODUCED"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_planted_fsync_bug_fails_the_campaign() {
        let mut buf = Vec::new();
        let err = chaos(
            &chaos_args("chaos --runs 4 --seed 21 --days 0.25 --wal-fsync-never --no-shrink"),
            &mut buf,
        )
        .expect_err("fsync=never must lose acknowledged commits");
        assert!(err.to_string().contains("violation"), "{err}");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("durability-commit"), "{text}");
    }

    #[test]
    fn chaos_csv_and_json_modes() {
        let mut buf = Vec::new();
        chaos(
            &chaos_args("chaos --runs 3 --seed 1 --days 0.25 --csv"),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 4, "{text}");
        assert!(text.starts_with("index,algorithm,"), "{text}");

        let mut buf = Vec::new();
        chaos(
            &chaos_args("chaos --runs 3 --seed 1 --days 0.25 --json"),
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"passed\": true"), "{text}");
    }

    fn market_args(mechanism: crate::args::MarketMechanism) -> crate::args::MarketArgs {
        crate::args::MarketArgs {
            jobs: 20,
            target_watts: 2000.0,
            mechanism,
        }
    }

    #[test]
    fn market_static_and_interactive() {
        use crate::args::MarketMechanism;
        let mut buf = Vec::new();
        market(&market_args(MarketMechanism::MprStat), &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("MPR-STAT cleared"));

        let mut buf = Vec::new();
        market(&market_args(MarketMechanism::MprInt), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("MPR-INT cleared"));
        assert!(text.contains("iterations"));
    }

    #[test]
    fn market_every_mechanism_clears() {
        use crate::args::MarketMechanism;
        for m in [
            MarketMechanism::MprStat,
            MarketMechanism::MprInt,
            MarketMechanism::Opt,
            MarketMechanism::Eql,
            MarketMechanism::Vcg,
            MarketMechanism::Chain,
        ] {
            let mut buf = Vec::new();
            market(&market_args(m), &mut buf).unwrap_or_else(|e| panic!("{m:?}: {e}"));
            let text = String::from_utf8(buf).unwrap();
            assert!(text.contains("cleared at q'"), "{m:?}: {text}");
            assert!(text.contains("total reduction"), "{m:?}: {text}");
        }
        // The chain reports which degradation level produced the clearing.
        let mut buf = Vec::new();
        market(&market_args(MarketMechanism::Chain), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("degradation chain settled"), "{text}");
    }

    #[test]
    fn market_infeasible_target_errors() {
        use crate::args::MarketMechanism;
        // Every strict mechanism refuses an unreachable target...
        for m in [
            MarketMechanism::MprStat,
            MarketMechanism::MprInt,
            MarketMechanism::Opt,
            MarketMechanism::Vcg,
        ] {
            let mut args = market_args(m);
            args.jobs = 2;
            args.target_watts = 1e9;
            assert!(market(&args, &mut Vec::new()).is_err(), "{m:?}");
        }
        // ...while the degradation chain degrades to capping instead.
        let mut args = market_args(MarketMechanism::Chain);
        args.jobs = 2;
        args.target_watts = 1e9;
        let mut buf = Vec::new();
        market(&args, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("EQL"));
    }

    #[test]
    fn swf_emits_parseable_output() {
        let mut buf = Vec::new();
        swf(
            &SwfArgs {
                trace: "metacentrum".into(),
                days: 0.5,
                seed: 2,
            },
            &mut buf,
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = mpr_workload::swf::parse_swf(&text, "rt", None).unwrap();
        assert!(!parsed.is_empty());
        assert_eq!(parsed.total_cores(), 528);
    }

    #[test]
    fn calibrate_reads_csv_and_reports_bid() {
        let csv = "# alloc,perf\n0.3,35\n0.5,55\n0.7,75\n1.0,100\n";
        let mut input = std::io::BufReader::new(csv.as_bytes());
        let mut buf = Vec::new();
        calibrate(&mut input, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("4 levels"));
        assert!(text.contains("cooperative bid"));
        // Garbage input errors out with context.
        let mut bad = std::io::BufReader::new("not-a-number,1\n".as_bytes());
        assert!(calibrate(&mut bad, &mut Vec::new()).is_err());
    }

    #[test]
    fn listing_commands() {
        let mut buf = Vec::new();
        traces(&mut buf).unwrap();
        let t = String::from_utf8(buf).unwrap();
        assert!(t.contains("Gaia") && t.contains("PIK"));

        let mut buf = Vec::new();
        apps(&mut buf).unwrap();
        let t = String::from_utf8(buf).unwrap();
        assert!(t.contains("XSBench") && t.contains("Jacobi"));
    }

    #[test]
    fn prototype_both_modes() {
        let mut buf = Vec::new();
        prototype(true, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("with MPR"));
        let mut buf = Vec::new();
        prototype(false, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("without MPR"));
    }
}
