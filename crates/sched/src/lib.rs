//! # mpr-sched — job-scheduling substrate
//!
//! The paper treats scheduling as an orthogonal concern: its simulator
//! starts jobs at their trace-recorded times, and MPR explicitly frees the
//! scheduler from power bookkeeping. This crate completes the workload
//! substrate for users who start from *submission* streams instead of
//! *start* streams: it schedules jobs onto a finite-core machine with the
//! two canonical HPC policies,
//!
//! * [`Policy::Fcfs`] — strict first-come-first-served, and
//! * [`Policy::EasyBackfill`] — FCFS with EASY backfilling: the queue head
//!   gets a reservation, and later jobs may jump ahead iff (by their
//!   runtime estimates) they cannot delay that reservation,
//!
//! producing a start-time [`Trace`](mpr_workload::Trace) that `mpr-sim` consumes plus
//! [`QueueStats`] (waits, makespan, utilization). This also mirrors how the
//! Parallel Workloads Archive logs were produced: their `wait` field is the
//! output of exactly such a scheduler.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scheduler;

pub use scheduler::{schedule, Policy, QueueStats, ScheduleOutcome, SubmittedJob};
