//! Event-driven FCFS / EASY-backfill scheduling.

use std::collections::VecDeque;

use mpr_workload::{Job, Trace};

/// A job as submitted by a user: actual runtime plus the user-supplied
/// runtime estimate the scheduler plans with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubmittedJob {
    /// Job identifier.
    pub id: u64,
    /// Submission time, seconds from origin.
    pub submit_secs: f64,
    /// Actual runtime, seconds.
    pub runtime_secs: f64,
    /// User runtime estimate, seconds. Clamped up to the actual runtime
    /// (schedulers kill jobs exceeding their estimate; we assume honest
    /// upper bounds).
    pub estimate_secs: f64,
    /// Cores requested.
    pub cores: u32,
}

impl SubmittedJob {
    /// Creates a submitted job; the estimate is clamped to at least the
    /// actual runtime.
    ///
    /// # Panics
    ///
    /// Panics if the runtime is not positive or `cores` is zero.
    #[must_use]
    pub fn new(
        id: u64,
        submit_secs: f64,
        runtime_secs: f64,
        estimate_secs: f64,
        cores: u32,
    ) -> Self {
        assert!(runtime_secs > 0.0, "runtime must be positive");
        assert!(cores > 0, "cores must be positive");
        Self {
            id,
            submit_secs,
            runtime_secs,
            estimate_secs: estimate_secs.max(runtime_secs),
            cores,
        }
    }
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Strict first-come-first-served: the queue head blocks everyone.
    Fcfs,
    /// EASY backfilling: later jobs may start early iff they cannot delay
    /// the queue head's reservation (per runtime estimates).
    EasyBackfill,
}

/// Aggregate queueing statistics of a schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueStats {
    /// Mean wait (start − submit), seconds.
    pub mean_wait_secs: f64,
    /// Maximum wait, seconds.
    pub max_wait_secs: f64,
    /// Time from origin to the last completion, seconds.
    pub makespan_secs: f64,
    /// Core utilization over the makespan, in `[0, 1]`.
    pub utilization: f64,
    /// Jobs that started ahead of an earlier-submitted job.
    pub backfilled_jobs: usize,
}

/// Result of scheduling a submission stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// The start-time trace (consumable by `mpr-sim`).
    pub trace: Trace,
    /// Queueing statistics.
    pub stats: QueueStats,
}

#[derive(Debug, Clone, Copy)]
struct Running {
    end_actual: f64,
    end_estimate: f64,
    cores: u32,
}

/// Schedules `jobs` onto a `total_cores` machine under `policy`.
///
/// ```
/// use mpr_sched::{schedule, Policy, SubmittedJob};
///
/// // A wide job blocks the 10-core machine; the narrow short job behind it
/// // backfills under EASY instead of waiting.
/// let jobs = [
///     SubmittedJob::new(1, 0.0, 100.0, 100.0, 8),
///     SubmittedJob::new(2, 1.0, 100.0, 100.0, 10),
///     SubmittedJob::new(3, 2.0, 50.0, 50.0, 2),
/// ];
/// let out = schedule(&jobs, 10, Policy::EasyBackfill);
/// assert_eq!(out.stats.backfilled_jobs, 1);
/// ```
///
/// # Panics
///
/// Panics if `total_cores` is zero or any job requests more cores than the
/// machine has.
#[must_use]
pub fn schedule(jobs: &[SubmittedJob], total_cores: u32, policy: Policy) -> ScheduleOutcome {
    assert!(total_cores > 0, "total_cores must be positive");
    for j in jobs {
        assert!(
            j.cores <= total_cores,
            "job {} requests {} cores on a {}-core machine",
            j.id,
            j.cores,
            total_cores
        );
    }
    let mut order: Vec<(f64, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.submit_secs, i))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    // Pending items carry their submit time so the event loop never has to
    // re-index `jobs` to learn it.
    let mut pending = order.into_iter().peekable();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut free = total_cores;
    let mut now = 0.0f64;
    let mut starts: Vec<f64> = vec![0.0; jobs.len()];
    let mut started: Vec<bool> = vec![false; jobs.len()];
    let mut backfilled = 0usize;
    let mut makespan = 0.0f64;

    loop {
        // Retire completions at `now`.
        running.retain(|r| {
            if r.end_actual <= now + 1e-9 {
                free += r.cores;
                false
            } else {
                true
            }
        });
        // Admit submissions at `now`.
        while let Some(&(submit, idx)) = pending.peek() {
            if submit <= now + 1e-9 {
                queue.push_back(idx);
                pending.next();
            } else {
                break;
            }
        }

        // Start jobs per policy.
        let mut start_job =
            |idx: usize, free: &mut u32, running: &mut Vec<Running>, is_backfill: bool| {
                let Some(j) = jobs.get(idx) else { return };
                *free -= j.cores;
                running.push(Running {
                    end_actual: now + j.runtime_secs,
                    end_estimate: now + j.estimate_secs,
                    cores: j.cores,
                });
                if let Some(s) = starts.get_mut(idx) {
                    *s = now;
                }
                if let Some(s) = started.get_mut(idx) {
                    *s = true;
                }
                makespan = makespan.max(now + j.runtime_secs);
                if is_backfill {
                    backfilled += 1;
                }
            };

        // FCFS phase: start from the head while it fits.
        while let Some(j) = queue.front().and_then(|&h| jobs.get(h)) {
            if j.cores <= free {
                if let Some(head) = queue.pop_front() {
                    start_job(head, &mut free, &mut running, false);
                }
            } else {
                break;
            }
        }

        // EASY backfill phase.
        if policy == Policy::EasyBackfill {
            if let Some(head_cores) = queue.front().and_then(|&h| jobs.get(h)).map(|j| j.cores) {
                // Recompute the head's reservation after each backfill.
                'backfill: loop {
                    let (shadow, spare) = reservation(&running, free, head_cores);
                    let mut chosen = None;
                    for (qpos, &cand) in queue.iter().enumerate().skip(1) {
                        let Some(c) = jobs.get(cand) else { continue };
                        let fits_now = c.cores <= free;
                        let ends_by_shadow = now + c.estimate_secs <= shadow + 1e-9;
                        let within_spare = c.cores <= spare;
                        if fits_now && (ends_by_shadow || within_spare) {
                            chosen = Some(qpos);
                            break;
                        }
                    }
                    match chosen.and_then(|qpos| queue.remove(qpos)) {
                        Some(idx) => start_job(idx, &mut free, &mut running, true),
                        None => break 'backfill,
                    }
                }
            }
        }

        // Advance time to the next event.
        let next_submit = pending.peek().map(|&(s, _)| s);
        let next_completion = running
            .iter()
            .map(|r| r.end_actual)
            .fold(f64::INFINITY, f64::min);
        let next = match (next_submit, next_completion.is_finite()) {
            (Some(s), true) => s.min(next_completion),
            (Some(s), false) => s,
            (None, true) => next_completion,
            (None, false) => break, // nothing left anywhere
        };
        debug_assert!(next >= now - 1e-9, "time must advance");
        now = next;
        debug_assert!(
            queue.is_empty() || next_completion.is_finite() || next_submit.is_some(),
            "queued jobs with nothing running and nothing arriving"
        );
    }
    debug_assert!(started.iter().all(|&s| s), "every job must be scheduled");

    // Build outputs.
    let traced: Vec<Job> = jobs
        .iter()
        .zip(&starts)
        .map(|(j, &st)| Job::new(j.id, st, j.runtime_secs, j.cores))
        .collect();
    let waits: Vec<f64> = jobs
        .iter()
        .zip(&starts)
        .map(|(j, &st)| (st - j.submit_secs).max(0.0))
        .collect();
    let mean_wait_secs = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let max_wait_secs = waits.iter().copied().fold(0.0, f64::max);
    let used: f64 = jobs
        .iter()
        .map(|j| f64::from(j.cores) * j.runtime_secs)
        .sum();
    let utilization = if makespan > 0.0 {
        used / (f64::from(total_cores) * makespan)
    } else {
        0.0
    };
    ScheduleOutcome {
        trace: Trace::new("scheduled", total_cores, traced),
        stats: QueueStats {
            mean_wait_secs,
            max_wait_secs,
            makespan_secs: makespan,
            utilization,
            backfilled_jobs: backfilled,
        },
    }
}

/// Computes the queue head's reservation: the earliest (estimated) time
/// `shadow` at which `head_cores` become free, and the `spare` cores left
/// over at that moment that backfill jobs may hold past the shadow time.
fn reservation(running: &[Running], free: u32, head_cores: u32) -> (f64, u32) {
    if head_cores <= free {
        return (0.0, free - head_cores);
    }
    let mut ends: Vec<(f64, u32)> = running.iter().map(|r| (r.end_estimate, r.cores)).collect();
    ends.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut avail = free;
    for (end, cores) in ends {
        avail += cores;
        if avail >= head_cores {
            return (end, avail - head_cores);
        }
    }
    // Unreachable for validated inputs (head fits on an empty machine).
    (f64::INFINITY, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(id: u64, submit: f64, runtime: f64, cores: u32) -> SubmittedJob {
        SubmittedJob::new(id, submit, runtime, runtime, cores)
    }

    fn start_of(outcome: &ScheduleOutcome, id: u64) -> f64 {
        outcome
            .trace
            .jobs()
            .iter()
            .find(|j| j.id == id)
            .expect("job scheduled")
            .start_secs
    }

    #[test]
    fn fcfs_runs_in_submit_order() {
        // Machine of 10 cores; three 6-core jobs must serialize.
        let jobs = vec![
            job(1, 0.0, 100.0, 6),
            job(2, 1.0, 100.0, 6),
            job(3, 2.0, 100.0, 6),
        ];
        let out = schedule(&jobs, 10, Policy::Fcfs);
        assert_eq!(start_of(&out, 1), 0.0);
        assert_eq!(start_of(&out, 2), 100.0);
        assert_eq!(start_of(&out, 3), 200.0);
        assert_eq!(out.stats.backfilled_jobs, 0);
        assert!((out.stats.makespan_secs - 300.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_execution_when_cores_allow() {
        let jobs = vec![job(1, 0.0, 100.0, 4), job(2, 0.0, 100.0, 4)];
        let out = schedule(&jobs, 10, Policy::Fcfs);
        assert_eq!(start_of(&out, 1), 0.0);
        assert_eq!(start_of(&out, 2), 0.0);
    }

    #[test]
    fn easy_backfills_short_narrow_jobs() {
        // 10 cores. Job 1 takes 8 cores for 100 s. Job 2 (wide, 10 cores)
        // must wait until t=100. Job 3 (2 cores, 50 s) fits in the hole and
        // finishes before job 2's reservation — it backfills at t=0.
        let jobs = vec![
            job(1, 0.0, 100.0, 8),
            job(2, 1.0, 100.0, 10),
            job(3, 2.0, 50.0, 2),
        ];
        let fcfs = schedule(&jobs, 10, Policy::Fcfs);
        let easy = schedule(&jobs, 10, Policy::EasyBackfill);
        // FCFS: job 3 blocked behind job 2 until t=200.
        assert_eq!(start_of(&fcfs, 3), 200.0);
        // EASY: job 3 backfills immediately (at its submit time).
        assert_eq!(start_of(&easy, 3), 2.0);
        assert_eq!(easy.stats.backfilled_jobs, 1);
        // The head's start is not delayed by the backfill.
        assert_eq!(start_of(&easy, 2), start_of(&fcfs, 2));
    }

    #[test]
    fn backfill_never_delays_the_head() {
        // A long narrow job may NOT backfill: it would hold cores past the
        // head's reservation beyond the spare capacity.
        let jobs = vec![
            job(1, 0.0, 100.0, 8),
            job(2, 1.0, 100.0, 10),
            job(3, 2.0, 500.0, 2), // long: would end after shadow
        ];
        let easy = schedule(&jobs, 10, Policy::EasyBackfill);
        // spare at shadow = 0 (head takes all 10 cores) and job 3 runs past
        // the shadow → cannot backfill.
        assert_eq!(start_of(&easy, 2), 100.0);
        assert_eq!(start_of(&easy, 3), 200.0);
        assert_eq!(easy.stats.backfilled_jobs, 0);
    }

    #[test]
    fn spare_cores_allow_long_backfill() {
        // Head needs 8 cores; at its shadow time 10 become free → spare 2.
        // A 2-core long job can therefore backfill (it never blocks head).
        let jobs = vec![
            job(1, 0.0, 100.0, 10),
            job(2, 1.0, 100.0, 8),
            job(3, 2.0, 500.0, 2),
        ];
        let easy = schedule(&jobs, 10, Policy::EasyBackfill);
        assert_eq!(start_of(&easy, 2), 100.0, "head on time");
        assert_eq!(
            start_of(&easy, 3),
            100.0,
            "spare-core backfill at shadow release"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let jobs = vec![job(1, 0.0, 100.0, 5), job(2, 0.0, 100.0, 5)];
        let out = schedule(&jobs, 10, Policy::Fcfs);
        assert_eq!(out.stats.mean_wait_secs, 0.0);
        assert_eq!(out.stats.max_wait_secs, 0.0);
        assert!((out.stats.utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_clamped_to_runtime() {
        let j = SubmittedJob::new(1, 0.0, 100.0, 10.0, 4);
        assert_eq!(j.estimate_secs, 100.0);
    }

    #[test]
    #[should_panic(expected = "requests")]
    fn oversized_job_panics() {
        let jobs = vec![job(1, 0.0, 10.0, 20)];
        let _ = schedule(&jobs, 10, Policy::Fcfs);
    }

    fn random_jobs(n: usize, seed: u64) -> Vec<SubmittedJob> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let runtime = rng.gen_range(60.0..7200.0);
                SubmittedJob::new(
                    i as u64,
                    rng.gen_range(0.0..36_000.0),
                    runtime,
                    runtime * rng.gen_range(1.0..3.0),
                    rng.gen_range(1..=32),
                )
            })
            .collect()
    }

    #[test]
    fn backfill_improves_waits_on_random_workloads() {
        let jobs = random_jobs(300, 7);
        let fcfs = schedule(&jobs, 64, Policy::Fcfs);
        let easy = schedule(&jobs, 64, Policy::EasyBackfill);
        assert!(
            easy.stats.mean_wait_secs <= fcfs.stats.mean_wait_secs,
            "EASY {:.0}s must not exceed FCFS {:.0}s",
            easy.stats.mean_wait_secs,
            fcfs.stats.mean_wait_secs
        );
        assert!(easy.stats.backfilled_jobs > 0);
        assert!(easy.stats.utilization >= fcfs.stats.utilization - 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Core capacity is never exceeded and every start is at or after
        /// its submission, under both policies.
        #[test]
        fn capacity_and_causality(seed in 0u64..500, easy in proptest::bool::ANY) {
            let jobs = random_jobs(60, seed);
            let policy = if easy { Policy::EasyBackfill } else { Policy::Fcfs };
            let out = schedule(&jobs, 48, policy);
            // Causality.
            for (s, j) in out.trace.jobs().iter().zip(0..) {
                let _ = j;
                let submitted = jobs.iter().find(|x| x.id == s.id).unwrap();
                prop_assert!(s.start_secs >= submitted.submit_secs - 1e-6);
            }
            // Capacity: exact event sweep (ends processed before starts at
            // equal timestamps).
            let mut events: Vec<(f64, i64)> = Vec::new();
            for s in out.trace.jobs() {
                events.push((s.start_secs, i64::from(s.cores)));
                events.push((s.end_secs(), -i64::from(s.cores)));
            }
            events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let mut alloc = 0i64;
            for (_, d) in events {
                alloc += d;
                prop_assert!(alloc <= 48, "allocation {alloc} exceeds machine");
            }
        }
    }
}
