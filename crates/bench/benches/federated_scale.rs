//! Federated vs flat clearing at scale: the same structure-of-arrays
//! [`MarketInstance`] cleared once by a flat MPR-STAT market and once
//! through [`HierarchicalMarket`] over a 4 UPS × 4 PDU × 4 rack tree
//! (64 racks).
//!
//! Two tree shapes bracket the federated overhead:
//! * `federated-root` — only the root ATS binds, so the sweep runs one
//!   pristine identity-view market and `Clearing::merge` returns it
//!   verbatim: the measurable cost of the tree walk itself.
//! * `federated-racks` — every rack binds, so the sweep partitions the
//!   instance into 64 subtree markets of N/64 rows each. On a
//!   multi-core host the depth wave clears them on rayon workers; the
//!   recorded numbers in `BENCHMARKS.md` note the worker count.
//!
//! Recorded results live in `BENCHMARKS.md` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs};
use mpr_core::{MarketInstance, MclrMechanism, Mechanism, Watts};
use mpr_power::{HierarchicalMarket, LevelKind, PowerHierarchy};

const SIZES: &[usize] = &[100_000, 1_000_000];
/// 4 UPS × 4 PDU × 4 racks.
const FANOUT: usize = 4;
const RACKS: usize = FANOUT * FANOUT * FANOUT;
/// Fraction of the (estimated) attainable reduction each binding node
/// asks for — the Fig. 10 benchmarks' 30% working point.
const TARGET_FRAC: f64 = 0.3;

fn mech() -> Box<dyn Mechanism> {
    Box::new(MclrMechanism::best_effort())
}

/// Builds the 4×4×4 tree with per-rack loads `total_load / 64`. A
/// binding node's capacity sits `deficit` below its subtree load; every
/// other level gets effectively unbounded capacity.
fn tree(total_load: f64, deficit: f64, at_racks: bool) -> (PowerHierarchy, Vec<usize>) {
    let mut h = PowerHierarchy::new();
    let rack_load = total_load / RACKS as f64;
    let root_cap = if at_racks {
        total_load * 10.0
    } else {
        total_load - deficit
    };
    let ats = h.add_root("ats", LevelKind::Ats, Watts::new(root_cap));
    let mut racks = Vec::with_capacity(RACKS);
    for u in 0..FANOUT {
        let ups = h
            .add_child(format!("ups-{u}"), LevelKind::Ups, Watts::new(1e15), ats)
            .expect("ups under ats");
        for p in 0..FANOUT {
            let pdu = h
                .add_child(
                    format!("pdu-{u}-{p}"),
                    LevelKind::Pdu,
                    Watts::new(1e15),
                    ups,
                )
                .expect("pdu under ups");
            for r in 0..FANOUT {
                let rack_cap = if at_racks {
                    rack_load - deficit / RACKS as f64
                } else {
                    rack_load * 10.0
                };
                let rack = h
                    .add_child(
                        format!("rack-{u}-{p}-{r}"),
                        LevelKind::Rack,
                        Watts::new(rack_cap),
                        pdu,
                    )
                    .expect("rack under pdu");
                h.set_load(rack, Watts::new(rack_load)).expect("rack load");
                racks.push(rack);
            }
        }
    }
    (h, racks)
}

fn bench_federated_scale(c: &mut Criterion) {
    for &n in SIZES {
        let jobs = make_jobs(n);
        let instance: MarketInstance = make_instance(&jobs);
        let deficit = TARGET_FRAC * attainable_watts(&jobs);
        // Loads are a benchmark proxy: what matters is the deficit each
        // binding node presents, which mirrors the flat target.
        let total_load = 2.0 * deficit / TARGET_FRAC;
        let assignment =
            |racks: &[usize]| -> Vec<usize> { (0..n).map(|i| racks[i % RACKS]).collect() };

        let mut group = c.benchmark_group("federated_clear");
        group.sample_size(10);

        group.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            let mut flat = mech();
            b.iter(|| {
                flat.clear(std::hint::black_box(&instance), Watts::new(deficit))
                    .expect("best-effort always clears")
            });
        });

        let (root_tree, root_racks) = tree(total_load, deficit, false);
        let root_market =
            HierarchicalMarket::new(&root_tree, assignment(&root_racks)).expect("market");
        group.bench_with_input(BenchmarkId::new("federated-root", n), &n, |b, _| {
            b.iter(|| {
                let out = root_market
                    .clear(std::hint::black_box(&instance), mech)
                    .expect("root sweep clears");
                assert_eq!(out.markets, 1);
                out
            });
        });

        let (rack_tree, rack_racks) = tree(total_load, deficit, true);
        let rack_market =
            HierarchicalMarket::new(&rack_tree, assignment(&rack_racks)).expect("market");
        group.bench_with_input(BenchmarkId::new("federated-racks", n), &n, |b, _| {
            b.iter(|| {
                let out = rack_market
                    .clear(std::hint::black_box(&instance), mech)
                    .expect("rack sweep clears");
                assert!(out.markets >= RACKS);
                out
            });
        });

        group.finish();
    }
}

criterion_group!(benches, bench_federated_scale);
criterion_main!(benches);
