//! Simulator throughput: one simulated week of the Gaia cluster under each
//! overload-handling algorithm (the substrate behind Figs. 8, 9, 11–15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_sim::{Algorithm, SimConfig, Simulation};
use mpr_workload::{ClusterSpec, TraceGenerator};

fn bench_simulation(c: &mut Criterion) {
    let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(7.0)).generate();
    let mut group = c.benchmark_group("simulate_gaia_week");
    group.sample_size(10);
    for alg in Algorithm::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(alg.to_string()),
            &alg,
            |b, &alg| {
                b.iter(|| {
                    Simulation::new(&trace, SimConfig::new(alg, 15.0))
                        .run()
                        .cost_core_hours
                });
            },
        );
    }
    group.finish();
}

fn bench_prototype(c: &mut Criterion) {
    c.bench_function("prototype_experiment_30min", |b| {
        b.iter(|| {
            mpr_proto::Experiment::new(mpr_proto::ExperimentConfig::default())
                .run()
                .mean_power_watts()
        });
    });
}

criterion_group!(benches, bench_simulation, bench_prototype);
criterion_main!(benches);
