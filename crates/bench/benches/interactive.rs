//! Fig. 10(b) as a criterion bench: MPR-INT clearing (computation only;
//! the paper adds 500 ms of communication per round on top). The game runs
//! through the [`Mechanism`] trait — agents are built from the shared
//! instance's cost models on every clearing, matching production dispatch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs};
use mpr_core::{InteractiveConfig, InteractiveMechanism, Mechanism, Watts};

fn bench_interactive(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpr_int_clear");
    group.sample_size(10);
    for &n in &[10usize, 100, 1_000, 10_000] {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut mech = InteractiveMechanism::strict(InteractiveConfig::default());
                mech.clear(std::hint::black_box(&instance), target).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interactive);
criterion_main!(benches);
