//! Fig. 10(b) as a criterion bench: MPR-INT clearing (computation only;
//! the paper adds 500 ms of communication per round on top).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_jobs};
use mpr_core::{BiddingAgent, InteractiveConfig, InteractiveMarket, NetGainAgent, Watts};

fn bench_interactive(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpr_int_clear");
    group.sample_size(10);
    for &n in &[10usize, 100, 1_000, 10_000] {
        let jobs = make_jobs(n);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let agents: Vec<Box<dyn BiddingAgent>> = jobs
                    .iter()
                    .enumerate()
                    .map(|(i, j)| {
                        Box::new(NetGainAgent::new(
                            i as u64,
                            j.cost.clone(),
                            Watts::new(j.profile.unit_dynamic_power_w()),
                        )) as Box<dyn BiddingAgent>
                    })
                    .collect();
                let mut market = InteractiveMarket::new(agents, InteractiveConfig::default());
                market.clear(std::hint::black_box(target)).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interactive);
criterion_main!(benches);
