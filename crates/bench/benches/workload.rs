//! Workload substrate benches: trace generation and allocation statistics
//! (the inputs to Table I, Figs. 1(b), 6 and 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_workload::{utilization_cdf, ClusterSpec, TraceGenerator};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_trace");
    group.sample_size(10);
    for days in [7.0, 30.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("gaia_{days}d")),
            &days,
            |b, &days| {
                b.iter(|| {
                    TraceGenerator::new(ClusterSpec::gaia().with_span_days(days))
                        .generate()
                        .len()
                });
            },
        );
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(30.0)).generate();
    c.bench_function("allocation_series_30d", |b| {
        b.iter(|| trace.allocation_series(60.0).peak());
    });
    let series = trace.allocation_series(60.0);
    c.bench_function("utilization_cdf_30d", |b| {
        b.iter(|| utilization_cdf(&series, f64::from(trace.total_cores()), 100));
    });
}

criterion_group!(benches, bench_generation, bench_stats);
criterion_main!(benches);
