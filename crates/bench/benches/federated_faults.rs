//! Infrastructure-fault overhead over federated clearing: what the engine
//! pays per overload slot to reconstruct the faulted [`TopologyState`],
//! prune dead subtrees out of the hierarchy, reassign the fenced racks'
//! jobs, and re-clear the survivors — against the same machinery run over
//! a healthy tree.
//!
//! Three measurements over a 4 UPS × 4 PDU × 4 rack tree (85 nodes):
//! * `state_at` — reconstructing the per-slot topology state from the
//!   seeded plan (pure function of `(plan, spec, t)`; the engine pays this
//!   every slot a plan is armed).
//! * `prune_build` — building the surviving scaled hierarchy plus the
//!   spec→hierarchy map from a faulted state.
//! * `reclear` — the full emergency path: state, prune, reassign 100 k
//!   jobs, place loads, build the market and clear it, healthy vs faulted.
//!
//! Recorded results live in `BENCHMARKS.md` at the repo root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs};
use mpr_core::{MarketInstance, MclrMechanism, Mechanism, Watts};
use mpr_power::{GridFaultPlan, HierarchicalMarket, TopologySpec, TopologyState};

/// 4 UPS × 4 PDU × 4 racks.
const FANOUT: usize = 4;
const RACKS: usize = FANOUT * FANOUT * FANOUT;
/// Fraction of the attainable reduction the root asks for (the Fig. 10
/// benchmarks' 30% working point).
const TARGET_FRAC: f64 = 0.3;
const N: usize = 100_000;
/// Mid-fault instant: inside the default onset window, before repairs.
const T_MID: f64 = 1200.0;

fn mech() -> Box<dyn Mechanism> {
    Box::new(MclrMechanism::best_effort())
}

/// The 4×4×4 spec: a binding root, effectively unbounded inner levels.
fn spec(root_cap: f64) -> TopologySpec {
    let big = 1e15;
    let mut nodes = vec![format!(
        r#"{{"name":"ats","kind":"ats","capacity_w":{root_cap},"parent":null}}"#
    )];
    for u in 0..FANOUT {
        let ups = nodes.len();
        nodes.push(format!(
            r#"{{"name":"ups-{u}","kind":"ups","capacity_w":{big},"parent":0}}"#
        ));
        for p in 0..FANOUT {
            let pdu = nodes.len();
            nodes.push(format!(
                r#"{{"name":"pdu-{u}-{p}","kind":"pdu","capacity_w":{big},"parent":{ups}}}"#
            ));
            for r in 0..FANOUT {
                nodes.push(format!(
                    r#"{{"name":"rack-{u}{p}{r}","kind":"rack","capacity_w":{big},"parent":{pdu}}}"#
                ));
            }
        }
    }
    let json = format!(r#"{{"name":"bench","nodes":[{}]}}"#, nodes.join(","));
    TopologySpec::parse(&json).expect("valid bench spec")
}

/// One pass of the engine's per-slot emergency path over `grid`.
fn reclear(
    s: &TopologySpec,
    grid: &TopologyState<'_>,
    instance: &MarketInstance,
    total_load: f64,
) -> usize {
    let (mut h, map) = grid.to_hierarchy_scaled(1.0).expect("prune");
    let rack_ids = s.rack_ids();
    let mut assignment = Vec::with_capacity(N);
    for i in 0..N {
        let home = rack_ids[i % rack_ids.len()];
        let rack = if grid.alive(home) {
            home
        } else {
            grid.reassign_rack(home).expect("a sibling rack survives")
        };
        assignment.push(map[rack].expect("alive rack is mapped"));
    }
    for &r in &grid.alive_racks() {
        h.set_load(
            map[r].expect("mapped"),
            Watts::new(total_load / RACKS as f64),
        )
        .expect("rack load");
    }
    let market = HierarchicalMarket::new(&h, assignment).expect("market");
    market
        .clear(instance, mech)
        .expect("survivors clear")
        .markets
}

fn bench_federated_faults(c: &mut Criterion) {
    let jobs = make_jobs(N);
    let instance: MarketInstance = make_instance(&jobs);
    let deficit = TARGET_FRAC * attainable_watts(&jobs);
    let total_load = 2.0 * deficit / TARGET_FRAC;
    let s = spec(total_load - deficit);
    // The seeded plan must actually fence part of the tree mid-window
    // while leaving survivors to reassign onto; scan seeds until one does
    // (deterministic: the scan always lands on the same seed).
    let plan = (0..256u64)
        .map(|i| GridFaultPlan {
            seed: GridFaultPlan::default().seed + i,
            ..GridFaultPlan::ups_outage(0.5)
        })
        .find(|p| {
            let g = p.state_at(&s, T_MID);
            g.dead_count() > 0 && !g.alive_racks().is_empty()
        })
        .expect("some seed fences part of the tree at T_MID");
    let faulted = plan.state_at(&s, T_MID);

    let mut group = c.benchmark_group("federated_faults");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("state_at", "ups-0.5"), &plan, |b, p| {
        b.iter(|| p.state_at(std::hint::black_box(&s), std::hint::black_box(T_MID)));
    });

    group.bench_with_input(
        BenchmarkId::new("prune_build", "faulted"),
        &faulted,
        |b, g| {
            b.iter(|| {
                g.to_hierarchy_scaled(std::hint::black_box(1.0))
                    .expect("prune")
            });
        },
    );

    let healthy = TopologyState::healthy(&s);
    group.bench_with_input(BenchmarkId::new("reclear", "healthy"), &N, |b, _| {
        b.iter(|| reclear(&s, &healthy, std::hint::black_box(&instance), total_load));
    });
    group.bench_with_input(BenchmarkId::new("reclear", "faulted"), &N, |b, _| {
        b.iter(|| reclear(&s, &faulted, std::hint::black_box(&instance), total_load));
    });

    group.finish();
}

criterion_group!(benches, bench_federated_faults);
criterion_main!(benches);
