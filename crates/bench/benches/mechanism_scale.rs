//! Fig. 10 at full scale, through the unified [`Mechanism`] trait: one
//! shared structure-of-arrays [`MarketInstance`] per job count, cleared by
//! every mechanism at N = 1k / 10k / 100k.
//!
//! Recorded results live in `BENCHMARKS.md` at the repo root.
//!
//! Per-mechanism caps (logged when they bite):
//! * MPR-INT runs with `max_iterations = 8` — Fig. 10(b) measures per-round
//!   computation; unbounded Jacobi rounds would benchmark convergence luck,
//!   not clearing work.
//! * VCG runs only at N = 1k: the auction is M+1 full OPT solves, so 100k
//!   participants means 100 001 solves per clearing — quadratic work the
//!   paper's scalability claim explicitly does not extend to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs};
use mpr_core::{
    ChainLevel, EqlCappingMechanism, EqlMechanism, FallbackChain, InteractiveConfig,
    InteractiveMechanism, MarketInstance, MclrMechanism, Mechanism, OptMechanism, OptMethod,
    VcgMechanism, Watts,
};

const SIZES: &[usize] = &[1_000, 10_000, 100_000];
const VCG_MAX_N: usize = 1_000;

fn int_config() -> InteractiveConfig {
    InteractiveConfig {
        max_iterations: 8,
        ..InteractiveConfig::default()
    }
}

/// Every mechanism benchmarked at size `n`, each behind the trait.
fn mechanisms(n: usize) -> Vec<(&'static str, Box<dyn Mechanism>)> {
    let mut out: Vec<(&'static str, Box<dyn Mechanism>)> = vec![
        ("mpr-stat", Box::new(MclrMechanism::best_effort())),
        (
            "mpr-int",
            Box::new(InteractiveMechanism::best_effort(int_config())),
        ),
        ("opt", Box::new(OptMechanism::best_effort(OptMethod::Auto))),
        ("eql", Box::new(EqlMechanism)),
        (
            "chain",
            Box::new(
                FallbackChain::new()
                    .stage(
                        ChainLevel::Interactive,
                        InteractiveMechanism::best_effort(int_config()),
                    )
                    .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
                    .stage(ChainLevel::EqlCapping, EqlCappingMechanism),
            ),
        ),
    ];
    if n <= VCG_MAX_N {
        out.push(("vcg", Box::new(VcgMechanism::best_effort(OptMethod::Auto))));
    } else {
        eprintln!(
            "mechanism_scale: skipping vcg at N={n} (quadratic: M+1 OPT solves per clearing)"
        );
    }
    out
}

fn bench_mechanism_scale(c: &mut Criterion) {
    for &n in SIZES {
        let jobs = make_jobs(n);
        let instance: MarketInstance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));

        let mut group = c.benchmark_group("mechanism_clear");
        group.sample_size(10);
        for (name, mut mech) in mechanisms(n) {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    mech.clear(std::hint::black_box(&instance), target)
                        .expect("best-effort mechanisms always clear")
                });
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_mechanism_scale);
criterion_main!(benches);
