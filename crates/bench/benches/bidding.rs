//! User-side bidding benches: the "lightweight computation" the paper
//! expects of bidding agents (Section III-D) — cooperative bid derivation
//! and per-round best responses.

use criterion::{criterion_group, criterion_main, Criterion};
use mpr_core::bidding::{best_response, cooperative_bid};
use mpr_core::{Price, ScaledCost};

fn bench_bidding(c: &mut Criterion) {
    let profile = mpr_apps::profile_by_name("XSBench").expect("catalog app");
    let cost = ScaledCost::new(profile.cost_model(1.0), 16.0);

    c.bench_function("cooperative_bid", |b| {
        b.iter(|| cooperative_bid(std::hint::black_box(&cost)).unwrap());
    });
    c.bench_function("best_response", |b| {
        b.iter(|| best_response(std::hint::black_box(&cost), Price::new(0.7)).unwrap());
    });
}

criterion_group!(benches, bench_bidding);
criterion_main!(benches);
