//! Mechanism-level benches beyond MClr: the VCG auction (M+1 OPT solves),
//! welfare evaluation, and the EASY-backfill scheduler. The auction and the
//! welfare fixture both run through the unified [`Mechanism`] trait.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs};
use mpr_core::{analysis, MclrMechanism, Mechanism, OptMethod, VcgMechanism, Watts};
use mpr_sched::{schedule, Policy, SubmittedJob};
use rand::{Rng, SeedableRng};

fn bench_vcg(c: &mut Criterion) {
    let mut group = c.benchmark_group("vcg_auction");
    group.sample_size(10);
    for &n in &[16usize, 64, 128] {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        let mut mech = VcgMechanism::strict(OptMethod::Auto);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.clear(std::hint::black_box(&instance), target).unwrap());
        });
    }
    group.finish();
}

fn bench_welfare(c: &mut Criterion) {
    let jobs = make_jobs(1000);
    let instance = make_instance(&jobs);
    let target = Watts::new(0.3 * attainable_watts(&jobs));
    let clearing = MclrMechanism::strict()
        .clear(&instance, target)
        .unwrap()
        .to_market_clearing();
    let costs: Vec<_> = jobs.iter().map(|j| j.cost.clone()).collect();
    let w: Vec<f64> = jobs
        .iter()
        .map(|j| j.profile.unit_dynamic_power_w())
        .collect();
    c.bench_function("welfare_evaluate_1000", |b| {
        b.iter(|| analysis::evaluate(std::hint::black_box(&clearing), &costs, &w).unwrap());
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let submissions: Vec<SubmittedJob> = (0..2000)
        .map(|i| {
            let runtime = rng.gen_range(300.0..14_400.0);
            SubmittedJob::new(
                i,
                rng.gen_range(0.0..86_400.0),
                runtime,
                runtime * 1.5,
                rng.gen_range(1..=64),
            )
        })
        .collect();
    let mut group = c.benchmark_group("schedule_2000_jobs");
    group.sample_size(10);
    for (name, policy) in [("fcfs", Policy::Fcfs), ("easy", Policy::EasyBackfill)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &p| {
            b.iter(|| schedule(std::hint::black_box(&submissions), 512, p).stats);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vcg, bench_welfare, bench_scheduler);
criterion_main!(benches);
