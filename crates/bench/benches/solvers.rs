//! Fig. 10(a) as a criterion bench: solution time of MPR-STAT clearing,
//! OPT and EQL as the number of active jobs grows. Every solver runs
//! through the unified [`Mechanism`] trait over one shared
//! [`MarketInstance`]; `mechanism_scale` extends the same sweep to 100k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs};
use mpr_core::{EqlMechanism, MclrMechanism, Mechanism, OptMechanism, OptMethod, Watts};

fn bench_static_market(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpr_stat_clear");
    for &n in &[100usize, 1_000, 10_000, 30_000] {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        let mut mech = MclrMechanism::strict();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.clear(std::hint::black_box(&instance), target).unwrap());
        });
    }
    group.finish();
}

fn bench_clearing_index(c: &mut Criterion) {
    // The O(log M) closed-form clearing vs the bisection path. This is a
    // data-structure micro-bench (the index backs MclrMechanism), so it
    // stays on the raw ClearingIndex API.
    let mut group = c.benchmark_group("clearing_index");
    for &n in &[1_000usize, 30_000] {
        let jobs = make_jobs(n);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        let participants: Vec<_> = jobs
            .iter()
            .enumerate()
            .map(|(i, j)| j.participant(i as u64))
            .collect();
        let index = mpr_core::ClearingIndex::new(&participants);
        group.bench_with_input(BenchmarkId::new("clear", n), &n, |b, _| {
            b.iter(|| index.clear(std::hint::black_box(target)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("build_and_clear", n), &n, |b, _| {
            b.iter(|| {
                mpr_core::ClearingIndex::new(std::hint::black_box(&participants))
                    .clear(target)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_solve");
    group.sample_size(10);
    for &n in &[100usize, 1_000, 10_000] {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        let mut mech = OptMechanism::strict(OptMethod::Auto);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| mech.clear(std::hint::black_box(&instance), target).unwrap());
        });
    }
    group.finish();
}

fn bench_eql(c: &mut Criterion) {
    let mut group = c.benchmark_group("eql_reduce");
    for &n in &[100usize, 1_000, 10_000, 30_000] {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                EqlMechanism
                    .clear(std::hint::black_box(&instance), target)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_static_market,
    bench_clearing_index,
    bench_opt,
    bench_eql
);
criterion_main!(benches);
