//! Transport-layer overhead: the same MPR-INT clearing run directly
//! (synchronous in-process exchange) and through the message-passing
//! runtime over the in-process [`PerfectTransport`].
//!
//! The acceptance bar (ISSUE 5): the perfect-transport round trip costs at
//! most 5% over the direct clearing at N = 10k. Recorded results live in
//! `BENCHMARKS.md` at the repo root.
//!
//! MPR-INT runs with `max_iterations = 8` for the same reason as
//! `mechanism_scale`: a fixed round budget benchmarks per-round work, not
//! convergence luck.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpr_bench::{attainable_watts, make_instance, make_jobs, BenchJob};
use mpr_core::{
    InteractiveConfig, InteractiveMechanism, Mechanism, NetGainAgent, PerfectTransport,
    ResilientConfig, TransportConfig, TransportedInteractiveMechanism, Watts,
};

const SIZES: &[usize] = &[1_000, 10_000];

fn int_config() -> InteractiveConfig {
    InteractiveConfig {
        max_iterations: 8,
        ..InteractiveConfig::default()
    }
}

/// The transported exchange over a perfect channel, one agent per job.
fn transported(jobs: &[BenchJob]) -> TransportedInteractiveMechanism<PerfectTransport> {
    let mut mech = TransportedInteractiveMechanism::new(
        ResilientConfig {
            interactive: int_config(),
            ..ResilientConfig::default()
        },
        TransportConfig::default(),
        PerfectTransport::new(),
    );
    for (i, j) in jobs.iter().enumerate() {
        mech.register(
            Box::new(NetGainAgent::new(
                i as u64,
                j.cost.clone(),
                Watts::new(j.profile.unit_dynamic_power_w()),
            )),
            Some(j.supply.bid()),
        );
    }
    mech
}

fn bench_transport_overhead(c: &mut Criterion) {
    for &n in SIZES {
        let jobs = make_jobs(n);
        let instance = make_instance(&jobs);
        let target = Watts::new(0.3 * attainable_watts(&jobs));

        let mut group = c.benchmark_group("transport_overhead");
        group.sample_size(10);

        let mut direct = InteractiveMechanism::best_effort(int_config());
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| {
                direct
                    .clear(std::hint::black_box(&instance), target)
                    .expect("best-effort clearing")
            });
        });

        let mut net = transported(&jobs);
        let net_instance = net.instance();
        group.bench_with_input(BenchmarkId::new("perfect-transport", n), &n, |b, _| {
            b.iter(|| {
                net.clear(std::hint::black_box(&net_instance), target)
                    .expect("best-effort clearing")
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_transport_overhead);
criterion_main!(benches);
