//! Shared fixtures for the MPR criterion benches.

use std::sync::Arc;

use mpr_apps::{cpu_profiles, AppProfile, ProfileCost};
use mpr_core::bidding::StaticStrategy;
use mpr_core::{
    CostModel, MarketInstance, Participant, ParticipantSpec, ScaledCost, SupplyFunction,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One synthetic active job used across the solver benches.
pub struct BenchJob {
    /// Core count.
    pub cores: f64,
    /// Application profile.
    pub profile: Arc<AppProfile>,
    /// True, job-scaled cost model.
    pub cost: ScaledCost<ProfileCost>,
    /// Cooperative MPR-STAT supply.
    pub supply: SupplyFunction,
}

impl BenchJob {
    /// The market participant for this job.
    #[must_use]
    pub fn participant(&self, id: u64) -> Participant {
        Participant::new(
            id,
            self.supply,
            mpr_core::Watts::new(self.profile.unit_dynamic_power_w()),
        )
    }
}

/// Deterministic set of `n` jobs with random profiles and power-of-two
/// widths — the same fixture the Fig. 10 scalability study uses.
#[must_use]
pub fn make_jobs(n: usize) -> Vec<BenchJob> {
    let profiles = cpu_profiles();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    (0..n)
        .map(|_| {
            let p = Arc::clone(&profiles[rng.gen_range(0..profiles.len())]);
            let cores = f64::from(2u32.pow(rng.gen_range(0..6)));
            let cost = ScaledCost::new(p.cost_model(1.0), cores);
            let supply = StaticStrategy::Cooperative
                .supply_for(&cost)
                .expect("valid cooperative bid");
            BenchJob {
                cores,
                profile: p,
                cost,
                supply,
            }
        })
        .collect()
}

/// The shared structure-of-arrays instance for a job set: one build, every
/// mechanism clears it through the [`Mechanism`](mpr_core::Mechanism) trait.
#[must_use]
pub fn make_instance(jobs: &[BenchJob]) -> MarketInstance {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            ParticipantSpec::new(
                i as u64,
                j.cost.delta_max(),
                mpr_core::Watts::new(j.profile.unit_dynamic_power_w()),
            )
            .with_bid(j.supply.bid())
            .with_cores(j.cores)
            .with_cost(Arc::new(j.cost.clone()))
        })
        .collect()
}

/// Aggregate attainable power reduction of a job set, watts.
#[must_use]
pub fn attainable_watts(jobs: &[BenchJob]) -> f64 {
    jobs.iter()
        .map(|j| j.cost.delta_max() * j.profile.unit_dynamic_power_w())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_core::CostModel;

    #[test]
    fn fixture_is_deterministic() {
        let a = make_jobs(10);
        let b = make_jobs(10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cores, y.cores);
            assert_eq!(x.profile.name(), y.profile.name());
        }
    }

    #[test]
    fn attainable_is_positive_and_scales() {
        let a = attainable_watts(&make_jobs(10));
        let b = attainable_watts(&make_jobs(100));
        assert!(a > 0.0);
        assert!(b > 5.0 * a);
    }

    #[test]
    fn participant_uses_profile_power() {
        let jobs = make_jobs(3);
        let p = jobs[0].participant(7);
        assert_eq!(p.id, 7);
        assert_eq!(p.watts_per_unit, jobs[0].profile.unit_dynamic_power_w());
        assert!(jobs[0].cost.delta_max() > 0.0);
    }
}
