//! UPS battery model (Section II).
//!
//! "The ATS feeds the UPS … which is responsible for supplying power while
//! the generator warms up to takeover followed by a utility failure. The
//! UPS typically needs to supply power for two to three minutes." Sustained
//! overloaded operation also "will affect UPS's longevity" — one of the two
//! physical reasons the manager mitigates overloads promptly.

use mpr_core::Watts;

/// A UPS battery: stored energy, a rated discharge power, and a state of
/// charge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpsBattery {
    capacity_j: f64,
    rated: Watts,
    charge_j: f64,
    /// Cumulative joules discharged while above rated power — the
    /// longevity-wear proxy.
    overload_wear_j: f64,
}

impl UpsBattery {
    /// Sizes a battery to bridge `bridge_secs` of generator warm-up at its
    /// rated load — the paper's "two to three minutes" sizing rule.
    ///
    /// # Panics
    ///
    /// Panics unless the rated power and bridge time are positive.
    #[must_use]
    pub fn sized_for_bridge(rated: Watts, bridge_secs: f64) -> Self {
        assert!(rated.get() > 0.0, "rated power must be positive");
        assert!(bridge_secs > 0.0, "bridge time must be positive");
        let capacity = rated.get() * bridge_secs;
        Self {
            capacity_j: capacity,
            rated,
            charge_j: capacity,
            overload_wear_j: 0.0,
        }
    }

    /// Rated (continuous) discharge power.
    #[must_use]
    pub fn rated(&self) -> Watts {
        self.rated
    }

    /// State of charge in `[0, 1]`.
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        self.charge_j / self.capacity_j
    }

    /// Seconds of autonomy remaining at `load` (infinite at zero load).
    #[must_use]
    pub fn autonomy_secs(&self, load: Watts) -> f64 {
        if load.get() <= 0.0 {
            f64::INFINITY
        } else {
            self.charge_j / load.get()
        }
    }

    /// Discharges into `load` for `dt_seconds` (a utility outage). Returns
    /// `false` if the battery ran out before the interval ended.
    pub fn discharge(&mut self, load: Watts, dt_seconds: f64) -> bool {
        let need = load.get().max(0.0) * dt_seconds;
        if load > self.rated {
            self.overload_wear_j += (load - self.rated).get() * dt_seconds;
        }
        if need > self.charge_j {
            self.charge_j = 0.0;
            return false;
        }
        self.charge_j -= need;
        true
    }

    /// Recharges from the utility at `power` for `dt_seconds`.
    pub fn recharge(&mut self, power: Watts, dt_seconds: f64) {
        self.charge_j = (self.charge_j + power.get().max(0.0) * dt_seconds).min(self.capacity_j);
    }

    /// Joules discharged above rated power — sustained overloads grow this
    /// and shorten battery life (Section II).
    #[must_use]
    pub fn overload_wear_j(&self) -> f64 {
        self.overload_wear_j
    }

    /// Whether the battery, from its current charge, can bridge a
    /// generator warm-up of `warmup_secs` at `load`.
    #[must_use]
    pub fn can_bridge(&self, load: Watts, warmup_secs: f64) -> bool {
        self.autonomy_secs(load) >= warmup_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn battery() -> UpsBattery {
        // 100 kW rated, sized for a 3-minute bridge.
        UpsBattery::sized_for_bridge(Watts::new(100_000.0), 180.0)
    }

    #[test]
    fn sizing_gives_the_bridge_at_rated_load() {
        let b = battery();
        assert_eq!(b.state_of_charge(), 1.0);
        assert!((b.autonomy_secs(b.rated()) - 180.0).abs() < 1e-9);
        assert!(b.can_bridge(b.rated(), 180.0));
        assert!(!b.can_bridge(b.rated(), 181.0));
    }

    #[test]
    fn oversubscribed_load_shortens_the_bridge() {
        let b = battery();
        // 20 % oversubscribed load: autonomy drops to 150 s < 180 s warm-up.
        let load = Watts::new(120_000.0);
        assert!((b.autonomy_secs(load) - 150.0).abs() < 1e-9);
        assert!(
            !b.can_bridge(load, 180.0),
            "an overloaded UPS cannot bridge the generator warm-up — \
             another reason MPR must shed load promptly"
        );
    }

    #[test]
    fn discharge_and_recharge_cycle() {
        let mut b = battery();
        assert!(b.discharge(Watts::new(100_000.0), 60.0));
        assert!((b.state_of_charge() - 2.0 / 3.0).abs() < 1e-9);
        b.recharge(Watts::new(50_000.0), 60.0);
        assert!((b.state_of_charge() - (2.0 / 3.0 + 1.0 / 6.0)).abs() < 1e-9);
        // Recharge clamps at full.
        b.recharge(Watts::new(1e9), 60.0);
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn running_flat_returns_false() {
        let mut b = battery();
        assert!(!b.discharge(Watts::new(100_000.0), 1000.0));
        assert_eq!(b.state_of_charge(), 0.0);
        assert_eq!(b.autonomy_secs(Watts::new(1.0)), 0.0);
    }

    #[test]
    fn overload_wear_accumulates_only_above_rated() {
        let mut b = battery();
        b.discharge(Watts::new(90_000.0), 10.0);
        assert_eq!(b.overload_wear_j(), 0.0);
        b.discharge(Watts::new(120_000.0), 10.0);
        assert!((b.overload_wear_j() - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn zero_load_is_infinite_autonomy() {
        let b = battery();
        assert_eq!(b.autonomy_secs(Watts::ZERO), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "rated power")]
    fn zero_rated_panics() {
        let _ = UpsBattery::sized_for_bridge(Watts::ZERO, 180.0);
    }
}
