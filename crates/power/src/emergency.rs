//! The power-emergency state machine (Section III-E).
//!
//! Detect → reduce → cool down → resume:
//!
//! 1. **Detecting**: real-time power monitoring flags `P(t) > C`; a minimum
//!    overload duration filters transient spikes.
//! 2. **Declaring**: the reduction target carries a 1 % buffer,
//!    `ΔP = P(t) − 0.99·C`, to avoid immediate relapse (Section IV-A).
//! 3. **Resuming**: after a cool-down (10 minutes in the paper's
//!    simulations) the emergency lifts only when giving the capped
//!    resources back cannot re-violate capacity:
//!    `0.99·C − P(t) ≥ ΔP`.

use mpr_core::Watts;

/// Configuration of the emergency controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyConfig {
    /// Infrastructure power capacity `C`.
    pub capacity: Watts,
    /// Reduction-target buffer fraction (paper: `0.01`, i.e. reduce to
    /// 99 % of capacity).
    pub buffer_frac: f64,
    /// Minimum sustained overload before declaring an emergency, seconds
    /// (paper suggests e.g. 10 s; the minute-resolution simulations use 0).
    pub min_overload_secs: f64,
    /// Cool-down before an emergency may lift, seconds (paper: 600).
    pub cooldown_secs: f64,
}

impl EmergencyConfig {
    /// The paper's settings for a given capacity: 1 % buffer, no spike
    /// filter, 10-minute cool-down.
    #[must_use]
    pub fn paper(capacity: Watts) -> Self {
        Self {
            capacity,
            buffer_frac: 0.01,
            min_overload_secs: 0.0,
            cooldown_secs: 600.0,
        }
    }

    /// The power level reductions aim for: `(1 − buffer) · C`.
    #[must_use]
    pub fn buffered_capacity(&self) -> Watts {
        self.capacity * (1.0 - self.buffer_frac)
    }
}

/// Which phase the controller is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmergencyPhase {
    /// Power within capacity (possibly with a pending spike filter).
    Normal,
    /// An emergency is active: reductions are in force, new job starts are
    /// held (Section III-E, "Executing resource/power reduction").
    Emergency,
    /// An emergency is active but the clean interactive market could not
    /// clear it: reductions in force came from a fallback level of the
    /// degradation chain (MPR-STAT over last-known bids, or uniform EQL
    /// capping). Operationally identical to [`Emergency`](Self::Emergency)
    /// — the distinction lets reports separate clean clearings from
    /// degraded ones.
    Degraded,
}

impl EmergencyPhase {
    /// `true` while reductions are in force (either emergency flavour).
    #[must_use]
    pub fn is_active(&self) -> bool {
        matches!(self, EmergencyPhase::Emergency | EmergencyPhase::Degraded)
    }
}

/// What the HPC manager must do after a monitoring step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmergencyAction {
    /// Nothing to do.
    None,
    /// Declare an emergency and invoke the market for `target` watts of
    /// reduction.
    Declare {
        /// Power reduction required, `P(t) − (1−buffer)·C`.
        target: Watts,
    },
    /// Already in an emergency but power exceeded capacity again (market
    /// under-delivered or a new spike): reduce by an additional `target`.
    Escalate {
        /// Additional power reduction required.
        target: Watts,
    },
    /// The emergency is over: restore resources and pay out rewards.
    Lift,
}

/// The detect/reduce/resume controller.
///
/// Drive it with [`step`](Self::step) at every monitoring interval; it
/// returns the [`EmergencyAction`] the manager must take.
///
/// ```
/// use mpr_core::Watts;
/// use mpr_power::{EmergencyAction, EmergencyConfig, EmergencyController};
///
/// let mut c = EmergencyController::new(EmergencyConfig::paper(Watts::new(1000.0)));
/// assert_eq!(c.step(0.0, Watts::new(900.0)), EmergencyAction::None);
/// // Power crosses capacity: declare, targeting 99 % of capacity.
/// match c.step(60.0, Watts::new(1100.0)) {
///     EmergencyAction::Declare { target } => {
///         assert!((target.get() - (1100.0 - 990.0)).abs() < 1e-9);
///     }
///     other => panic!("expected Declare, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmergencyController {
    config: EmergencyConfig,
    phase: EmergencyPhase,
    overload_since: Option<f64>,
    emergency_started: Option<f64>,
    /// Cumulative reduction currently imposed on the system.
    active_target: Watts,
}

/// A full snapshot of an [`EmergencyController`]: everything needed to
/// recreate the controller mid-emergency, bit-for-bit, after a crash
/// (see `mpr-sim`'s checkpoint subsystem).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerState {
    /// Controller configuration (including any mid-run capacity updates).
    pub config: EmergencyConfig,
    /// Current phase.
    pub phase: EmergencyPhase,
    /// When the pending (pre-declaration) overload began, if any.
    pub overload_since: Option<f64>,
    /// When the in-force emergency was declared or last escalated.
    pub emergency_started: Option<f64>,
    /// Cumulative reduction currently imposed, watts.
    pub active_target: Watts,
}

impl EmergencyController {
    /// Creates a controller in the normal phase.
    #[must_use]
    pub fn new(config: EmergencyConfig) -> Self {
        Self {
            config,
            phase: EmergencyPhase::Normal,
            overload_since: None,
            emergency_started: None,
            active_target: Watts::ZERO,
        }
    }

    /// Current phase.
    #[must_use]
    pub fn phase(&self) -> EmergencyPhase {
        self.phase
    }

    /// Reduction currently imposed (zero when normal).
    #[must_use]
    pub fn active_target(&self) -> Watts {
        self.active_target
    }

    /// The controller's configuration.
    #[must_use]
    pub fn config(&self) -> &EmergencyConfig {
        &self.config
    }

    /// Snapshots the controller's full state for checkpointing.
    #[must_use]
    pub fn state(&self) -> ControllerState {
        ControllerState {
            config: self.config,
            phase: self.phase,
            overload_since: self.overload_since,
            emergency_started: self.emergency_started,
            active_target: self.active_target,
        }
    }

    /// Recreates a controller from a snapshot taken with
    /// [`state`](Self::state).
    #[must_use]
    pub fn from_state(state: ControllerState) -> Self {
        Self {
            config: state.config,
            phase: state.phase,
            overload_since: state.overload_since,
            emergency_started: state.emergency_started,
            active_target: state.active_target,
        }
    }

    /// Updates the controller's capacity mid-run (demand-response events,
    /// carbon caps — see [`crate::policy`]). The buffer fraction and timers
    /// are unchanged; an in-force emergency keeps its declared target.
    pub fn set_capacity(&mut self, capacity: Watts) {
        self.config.capacity = capacity;
    }

    /// Records the reduction actually delivered by the market/capping
    /// mechanism. The lift condition compares headroom against the
    /// reduction *in force* — when a best-effort clearing under-delivers,
    /// calling this keeps the controller from demanding headroom for watts
    /// that were never shed.
    pub fn record_delivered(&mut self, delivered: Watts) {
        if self.phase.is_active() {
            self.active_target = delivered;
        }
    }

    /// Marks the in-force emergency as degraded: the reduction in force
    /// came from a fallback level of the market's degradation chain rather
    /// than a clean interactive clearing. No-op when the controller is
    /// normal. The mark clears when the emergency lifts.
    pub fn mark_degraded(&mut self) {
        if self.phase == EmergencyPhase::Emergency {
            self.phase = EmergencyPhase::Degraded;
        }
    }

    /// Advances the controller to time `now_secs` with measured power
    /// `power` (the *post-reduction* system power). Returns the action the
    /// manager must take.
    pub fn step(&mut self, now_secs: f64, power: Watts) -> EmergencyAction {
        let cap = self.config.capacity;
        let buffered = self.config.buffered_capacity();
        match self.phase {
            EmergencyPhase::Normal => {
                if power > cap {
                    let since = *self.overload_since.get_or_insert(now_secs);
                    if now_secs - since >= self.config.min_overload_secs {
                        let target = power - buffered;
                        self.phase = EmergencyPhase::Emergency;
                        self.emergency_started = Some(now_secs);
                        self.active_target = target;
                        self.overload_since = None;
                        return EmergencyAction::Declare { target };
                    }
                } else {
                    self.overload_since = None;
                }
                EmergencyAction::None
            }
            EmergencyPhase::Emergency | EmergencyPhase::Degraded => {
                if power > cap {
                    // Under-delivery or a fresh spike: escalate.
                    let extra = power - buffered;
                    self.active_target += extra;
                    self.emergency_started = Some(now_secs);
                    return EmergencyAction::Escalate { target: extra };
                }
                let started = self.emergency_started.unwrap_or(now_secs);
                let cooled = now_secs - started >= self.config.cooldown_secs;
                if cooled && buffered - power >= self.active_target {
                    self.phase = EmergencyPhase::Normal;
                    self.emergency_started = None;
                    self.active_target = Watts::ZERO;
                    return EmergencyAction::Lift;
                }
                EmergencyAction::None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> EmergencyController {
        // Capacity 1000 W, buffer 1 % → buffered 990 W, cool-down 600 s.
        EmergencyController::new(EmergencyConfig::paper(Watts::new(1000.0)))
    }

    #[test]
    fn declares_on_overload_with_buffered_target() {
        let mut c = controller();
        assert_eq!(c.step(0.0, Watts::new(900.0)), EmergencyAction::None);
        let action = c.step(60.0, Watts::new(1100.0));
        match action {
            EmergencyAction::Declare { target } => {
                assert!((target.get() - (1100.0 - 990.0)).abs() < 1e-9);
            }
            other => panic!("expected Declare, got {other:?}"),
        }
        assert_eq!(c.phase(), EmergencyPhase::Emergency);
        assert!((c.active_target().get() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn spike_filter_delays_declaration() {
        let mut c = EmergencyController::new(EmergencyConfig {
            min_overload_secs: 10.0,
            ..EmergencyConfig::paper(Watts::new(1000.0))
        });
        assert_eq!(c.step(0.0, Watts::new(1100.0)), EmergencyAction::None);
        assert_eq!(c.step(5.0, Watts::new(1100.0)), EmergencyAction::None);
        assert!(matches!(
            c.step(10.0, Watts::new(1100.0)),
            EmergencyAction::Declare { .. }
        ));
    }

    #[test]
    fn transient_spike_resets_filter() {
        let mut c = EmergencyController::new(EmergencyConfig {
            min_overload_secs: 10.0,
            ..EmergencyConfig::paper(Watts::new(1000.0))
        });
        assert_eq!(c.step(0.0, Watts::new(1100.0)), EmergencyAction::None);
        assert_eq!(c.step(5.0, Watts::new(900.0)), EmergencyAction::None);
        // Overload again: the 10 s clock restarts.
        assert_eq!(c.step(6.0, Watts::new(1100.0)), EmergencyAction::None);
        assert_eq!(c.step(14.0, Watts::new(1100.0)), EmergencyAction::None);
        assert!(matches!(
            c.step(16.0, Watts::new(1100.0)),
            EmergencyAction::Declare { .. }
        ));
    }

    #[test]
    fn lift_requires_cooldown_and_headroom() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0)); // declare, target 110 W
                                         // Power drops after reduction; before cool-down nothing happens.
        assert_eq!(c.step(60.0, Watts::new(850.0)), EmergencyAction::None);
        // After cool-down: headroom 990 − 850 = 140 ≥ 110 → lift.
        assert_eq!(c.step(601.0, Watts::new(850.0)), EmergencyAction::Lift);
        assert_eq!(c.phase(), EmergencyPhase::Normal);
        assert_eq!(c.active_target(), Watts::ZERO);
    }

    #[test]
    fn no_lift_without_headroom() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0));
        // Headroom 990 − 950 = 40 < 110: giving back the reduction would
        // re-violate capacity, so the emergency persists.
        assert_eq!(c.step(700.0, Watts::new(950.0)), EmergencyAction::None);
        assert_eq!(c.phase(), EmergencyPhase::Emergency);
    }

    #[test]
    fn escalates_when_power_exceeds_capacity_during_emergency() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0));
        let action = c.step(120.0, Watts::new(1050.0));
        match action {
            EmergencyAction::Escalate { target } => {
                assert!((target.get() - (1050.0 - 990.0)).abs() < 1e-9);
            }
            other => panic!("expected Escalate, got {other:?}"),
        }
        // Cumulative target grew.
        assert!((c.active_target().get() - (110.0 + 60.0)).abs() < 1e-9);
        // Escalation resets the cool-down clock.
        assert_eq!(c.step(400.0, Watts::new(800.0)), EmergencyAction::None);
        assert_eq!(c.step(721.0, Watts::new(800.0)), EmergencyAction::Lift);
    }

    #[test]
    fn recorded_delivery_governs_lift() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0)); // requested target 110 W
                                         // The market could only shed 40 W.
        c.record_delivered(Watts::new(40.0));
        assert!((c.active_target().get() - 40.0).abs() < 1e-9);
        // Headroom 990 − 940 = 50 ≥ 40 → lift after cool-down.
        assert_eq!(c.step(601.0, Watts::new(940.0)), EmergencyAction::Lift);
    }

    #[test]
    fn transient_spike_shorter_than_filter_never_declares() {
        let mut c = EmergencyController::new(EmergencyConfig {
            min_overload_secs: 10.0,
            ..EmergencyConfig::paper(Watts::new(1000.0))
        });
        // A 5 s spike, shorter than the 10 s filter, then power recovers.
        assert_eq!(c.step(0.0, Watts::new(1100.0)), EmergencyAction::None);
        assert_eq!(c.step(5.0, Watts::new(1100.0)), EmergencyAction::None);
        assert_eq!(c.step(8.0, Watts::new(900.0)), EmergencyAction::None);
        assert_eq!(c.phase(), EmergencyPhase::Normal);
        // Long after the spike, normal power must not retroactively declare.
        assert_eq!(c.step(100.0, Watts::new(950.0)), EmergencyAction::None);
        assert_eq!(c.phase(), EmergencyPhase::Normal);
        assert_eq!(c.active_target(), Watts::ZERO);
    }

    #[test]
    fn overload_right_after_lift_redeclares() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0)); // declare, target 110 W
        assert_eq!(c.step(601.0, Watts::new(850.0)), EmergencyAction::Lift);
        // The very next sample overloads again: the controller must
        // re-declare a fresh emergency, not sit on the lifted state.
        match c.step(661.0, Watts::new(1200.0)) {
            EmergencyAction::Declare { target } => {
                assert!((target.get() - (1200.0 - 990.0)).abs() < 1e-9);
            }
            other => panic!("expected re-declare, got {other:?}"),
        }
        assert!(c.phase().is_active());
    }

    #[test]
    fn overload_persisting_through_cooldown_escalates_not_lifts() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0)); // declare
                                         // Past the cool-down but power is above capacity again: must
                                         // escalate, never lift.
        match c.step(700.0, Watts::new(1050.0)) {
            EmergencyAction::Escalate { target } => {
                assert!((target.get() - (1050.0 - 990.0)).abs() < 1e-9);
            }
            other => panic!("expected Escalate, got {other:?}"),
        }
        assert!(c.phase().is_active());
        // Escalation restarted the cool-down: an in-capacity sample right
        // after must not lift yet even with plenty of headroom.
        assert_eq!(c.step(701.0, Watts::new(500.0)), EmergencyAction::None);
    }

    #[test]
    fn degraded_phase_lifecycle() {
        let mut c = controller();
        // mark_degraded before any emergency is a no-op.
        c.mark_degraded();
        assert_eq!(c.phase(), EmergencyPhase::Normal);
        assert!(!c.phase().is_active());

        c.step(0.0, Watts::new(1100.0));
        c.mark_degraded();
        assert_eq!(c.phase(), EmergencyPhase::Degraded);
        assert!(c.phase().is_active());

        // Degraded behaves like an emergency: escalates on a fresh
        // overload and stays degraded.
        assert!(matches!(
            c.step(60.0, Watts::new(1020.0)),
            EmergencyAction::Escalate { .. }
        ));
        assert_eq!(c.phase(), EmergencyPhase::Degraded);

        // record_delivered still applies while degraded.
        c.record_delivered(Watts::new(30.0));
        assert!((c.active_target().get() - 30.0).abs() < 1e-9);

        // Lift clears the degraded mark.
        assert_eq!(c.step(661.0, Watts::new(850.0)), EmergencyAction::Lift);
        assert_eq!(c.phase(), EmergencyPhase::Normal);
    }

    #[test]
    fn record_delivered_ignored_when_normal() {
        let mut c = controller();
        c.record_delivered(Watts::new(40.0));
        assert_eq!(c.active_target(), Watts::ZERO);
    }

    #[test]
    fn state_round_trips_mid_emergency() {
        let mut c = controller();
        c.step(0.0, Watts::new(1100.0)); // declare
        c.step(120.0, Watts::new(1050.0)); // escalate
        c.mark_degraded();
        let snapshot = c.state();
        let mut restored = EmergencyController::from_state(snapshot);
        assert_eq!(restored, c);
        // Both controllers must evolve identically from here on.
        for (i, p) in [800.0, 850.0, 800.0, 700.0, 650.0].iter().enumerate() {
            let t = 180.0 + i as f64 * 300.0;
            assert_eq!(
                c.step(t, Watts::new(*p)),
                restored.step(t, Watts::new(*p)),
                "divergence at t={t}"
            );
        }
        assert_eq!(restored.phase(), c.phase());
        assert_eq!(restored.active_target(), c.active_target());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Under arbitrary power sequences the controller's actions are
            /// consistent with its phase: Declare only fires from Normal,
            /// Lift and Escalate only from Emergency, and the active target
            /// is zero exactly when the controller is Normal.
            #[test]
            fn action_phase_consistency(
                powers in proptest::collection::vec(0.0f64..2000.0, 1..200),
            ) {
                let mut c = controller();
                let mut prev_phase = EmergencyPhase::Normal;
                for (i, &p) in powers.iter().enumerate() {
                    let action = c.step(i as f64 * 60.0, Watts::new(p));
                    match action {
                        EmergencyAction::Declare { target } => {
                            prop_assert_eq!(prev_phase, EmergencyPhase::Normal);
                            prop_assert_eq!(c.phase(), EmergencyPhase::Emergency);
                            prop_assert!(target.get() > 0.0);
                        }
                        EmergencyAction::Escalate { target } => {
                            prop_assert!(prev_phase.is_active());
                            prop_assert!(target.get() > 0.0);
                        }
                        EmergencyAction::Lift => {
                            prop_assert!(prev_phase.is_active());
                            prop_assert_eq!(c.phase(), EmergencyPhase::Normal);
                        }
                        EmergencyAction::None => {}
                    }
                    match c.phase() {
                        EmergencyPhase::Normal => {
                            prop_assert_eq!(c.active_target(), Watts::ZERO);
                        }
                        EmergencyPhase::Emergency | EmergencyPhase::Degraded => {
                            prop_assert!(c.active_target().get() > 0.0);
                        }
                    }
                    prev_phase = c.phase();
                }
            }

            /// Power at or below capacity never declares an emergency.
            #[test]
            fn no_false_declarations(
                powers in proptest::collection::vec(0.0f64..1000.0, 1..100),
            ) {
                let mut c = controller();
                for (i, &p) in powers.iter().enumerate() {
                    let action = c.step(i as f64 * 60.0, Watts::new(p));
                    prop_assert_eq!(action, EmergencyAction::None);
                    prop_assert_eq!(c.phase(), EmergencyPhase::Normal);
                }
            }
        }
    }

    #[test]
    fn config_accessors() {
        let c = controller();
        assert_eq!(c.config().capacity, Watts::new(1000.0));
        assert!((c.config().buffered_capacity().get() - 990.0).abs() < 1e-9);
    }
}
