//! On-disk power-tree specifications for federated clearing.
//!
//! A [`TopologySpec`] is the JSON description of a [`PowerHierarchy`]
//! (`examples/tree.json` in the repo root is the canonical sample): a flat
//! node list in id order, each naming its kind, capacity and parent index.
//! The container is offline, so (like the chaos repro artifacts) the codec
//! is hand-rolled against this fixed schema: a small recursive-descent
//! parser for the JSON subset the schema uses, and a writer whose output
//! re-parses to an identical spec. Capacities use Rust's shortest
//! round-trip float formatting, so [`TopologySpec::fingerprint`] — the
//! value the checkpoint fingerprint folds in, fencing resume under a
//! different tree — is stable across encode/decode cycles.

use std::fmt::Write as _;

use mpr_core::Watts;

use crate::hierarchy::{HierarchyError, LevelKind, PowerHierarchy};

/// One node of a topology spec, in id order.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Display name (also used in per-level reports).
    pub name: String,
    /// The node's level kind.
    pub kind: LevelKind,
    /// Capacity in watts.
    pub capacity: Watts,
    /// Parent index within the spec's node list; `None` for the root.
    pub parent: Option<usize>,
}

/// A parsed power-tree specification.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Topology name (free-form, shows up in reports).
    pub name: String,
    /// Nodes in id order; index 0 must be the root.
    pub nodes: Vec<NodeSpec>,
}

/// Why a topology document was rejected.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// The document is not valid JSON (byte offset + description).
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What was expected or found.
        message: String,
    },
    /// A required field is missing or has the wrong type.
    Schema {
        /// Description of the schema violation.
        message: String,
    },
    /// The node list violates tree structure (bad root/parent ordering).
    Structure {
        /// Description of the structural violation.
        message: String,
    },
    /// The nesting rules of [`PowerHierarchy`] rejected an edge.
    Hierarchy(HierarchyError),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Parse { at, message } => {
                write!(f, "topology JSON error at byte {at}: {message}")
            }
            TopologyError::Schema { message } => write!(f, "topology schema error: {message}"),
            TopologyError::Structure { message } => {
                write!(f, "topology structure error: {message}")
            }
            TopologyError::Hierarchy(e) => write!(f, "topology hierarchy error: {e}"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl From<HierarchyError> for TopologyError {
    fn from(e: HierarchyError) -> Self {
        TopologyError::Hierarchy(e)
    }
}

fn schema_err(message: impl Into<String>) -> TopologyError {
    TopologyError::Schema {
        message: message.into(),
    }
}

fn structure_err(message: impl Into<String>) -> TopologyError {
    TopologyError::Structure {
        message: message.into(),
    }
}

impl TopologySpec {
    /// Parses and validates a topology document.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on malformed JSON, schema violations, or a node
    /// list that is not a single well-ordered tree with at least one rack.
    pub fn parse(text: &str) -> Result<Self, TopologyError> {
        let doc = json_parse(text)?;
        let JsonValue::Obj(top) = doc else {
            return Err(schema_err("top level must be an object"));
        };
        let name = match top.iter().find(|(k, _)| k == "name") {
            Some((_, JsonValue::Str(s))) => s.clone(),
            Some(_) => return Err(schema_err("`name` must be a string")),
            None => return Err(schema_err("missing field `name`")),
        };
        let Some((_, JsonValue::Arr(raw_nodes))) = top.iter().find(|(k, _)| k == "nodes") else {
            return Err(schema_err("missing array field `nodes`"));
        };
        let mut nodes = Vec::with_capacity(raw_nodes.len());
        for (i, raw) in raw_nodes.iter().enumerate() {
            let JsonValue::Obj(fields) = raw else {
                return Err(schema_err(format!("node {i} must be an object")));
            };
            let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let node_name = match get("name") {
                Some(JsonValue::Str(s)) => s.clone(),
                _ => return Err(schema_err(format!("node {i}: `name` must be a string"))),
            };
            let kind = match get("kind") {
                Some(JsonValue::Str(s)) => parse_kind(s)
                    .ok_or_else(|| schema_err(format!("node {i}: unknown kind `{s}`")))?,
                _ => return Err(schema_err(format!("node {i}: `kind` must be a string"))),
            };
            let capacity = match get("capacity_w") {
                Some(JsonValue::Num(w)) if w.is_finite() && *w > 0.0 => Watts::new(*w),
                _ => {
                    return Err(schema_err(format!(
                        "node {i}: `capacity_w` must be a positive finite number"
                    )))
                }
            };
            let parent = match get("parent") {
                None | Some(JsonValue::Null) => None,
                Some(JsonValue::Num(p)) if *p >= 0.0 && p.is_finite() && *p == p.trunc() => {
                    Some(*p as usize)
                }
                _ => {
                    return Err(schema_err(format!(
                        "node {i}: `parent` must be a non-negative integer or null"
                    )))
                }
            };
            nodes.push(NodeSpec {
                name: node_name,
                kind,
                capacity,
                parent,
            });
        }
        let spec = Self { name, nodes };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural validation: one root at index 0, parents precede
    /// children, at least one rack, and every edge passes the
    /// ATS → UPS → PDU → rack nesting rules.
    fn validate(&self) -> Result<(), TopologyError> {
        if self.nodes.is_empty() {
            return Err(structure_err("topology has no nodes"));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            match node.parent {
                None if i != 0 => {
                    return Err(structure_err(format!(
                        "node {i} is a second root (only index 0 may omit `parent`)"
                    )))
                }
                Some(_) if i == 0 => {
                    return Err(structure_err("node 0 must be the root (no `parent`)"))
                }
                Some(p) if p >= i => {
                    return Err(structure_err(format!(
                        "node {i}: parent {p} does not precede it"
                    )))
                }
                _ => {}
            }
        }
        if !self.nodes.iter().any(|n| n.kind == LevelKind::Rack) {
            return Err(structure_err("topology has no racks to attach load to"));
        }
        // Dry-build to surface nesting violations at parse time.
        self.to_hierarchy()?;
        Ok(())
    }

    /// Builds the [`PowerHierarchy`] this spec describes. Node ids in the
    /// hierarchy equal spec indices.
    ///
    /// # Errors
    ///
    /// [`TopologyError::Hierarchy`] when an edge violates the nesting
    /// rules.
    pub fn to_hierarchy(&self) -> Result<PowerHierarchy, TopologyError> {
        self.to_hierarchy_scaled(1.0)
    }

    /// Builds the hierarchy with every capacity multiplied by `scale` —
    /// how the simulator fits a relative topology onto its configured
    /// power budget (`scale = budget / root_capacity`).
    ///
    /// # Errors
    ///
    /// [`TopologyError::Hierarchy`] when an edge violates the nesting
    /// rules.
    pub fn to_hierarchy_scaled(&self, scale: f64) -> Result<PowerHierarchy, TopologyError> {
        let mut h = PowerHierarchy::new();
        for node in &self.nodes {
            let capacity = node.capacity * scale;
            match node.parent {
                None => {
                    h.add_root(node.name.clone(), node.kind, capacity);
                }
                Some(p) => {
                    h.add_child(node.name.clone(), node.kind, capacity, p)?;
                }
            }
        }
        Ok(h)
    }

    /// The root's capacity (the whole tree's power budget).
    #[must_use]
    pub fn root_capacity(&self) -> Watts {
        self.nodes.first().map_or(Watts::ZERO, |n| n.capacity)
    }

    /// Indices of the rack nodes, ascending — the leaf markets jobs are
    /// assigned to.
    #[must_use]
    pub fn rack_ids(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == LevelKind::Rack)
            .map(|(i, _)| i)
            .collect()
    }

    /// FNV-1a digest of the canonical encoding — what the checkpoint
    /// fingerprint folds in, so resume under a different tree is fenced.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.nodes.len() as u64).to_le_bytes());
        for node in &self.nodes {
            eat(node.name.as_bytes());
            eat(&[kind_tag(node.kind)]);
            eat(&node.capacity.get().to_bits().to_le_bytes());
            match node.parent {
                None => eat(&u64::MAX.to_le_bytes()),
                Some(p) => eat(&(p as u64).to_le_bytes()),
            }
        }
        h
    }

    /// Renders the spec as a JSON document that parses back to an
    /// identical spec (capacities use shortest round-trip formatting).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"name\": \"{}\",", json_escape(&self.name));
        let _ = writeln!(out, "  \"nodes\": [");
        for (i, node) in self.nodes.iter().enumerate() {
            let parent = node
                .parent
                .map_or_else(|| "null".to_owned(), |p| p.to_string());
            let comma = if i + 1 == self.nodes.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"capacity_w\": {:?}, \"parent\": {parent}}}{comma}",
                json_escape(&node.name),
                kind_str(node.kind),
                node.capacity.get(),
            );
        }
        let _ = writeln!(out, "  ]");
        out.push('}');
        out
    }
}

fn parse_kind(s: &str) -> Option<LevelKind> {
    match s {
        "ats" => Some(LevelKind::Ats),
        "ups" => Some(LevelKind::Ups),
        "pdu" => Some(LevelKind::Pdu),
        "rack" => Some(LevelKind::Rack),
        _ => None,
    }
}

fn kind_str(kind: LevelKind) -> &'static str {
    match kind {
        LevelKind::Ats => "ats",
        LevelKind::Ups => "ups",
        LevelKind::Pdu => "pdu",
        LevelKind::Rack => "rack",
    }
}

fn kind_tag(kind: LevelKind) -> u8 {
    match kind {
        LevelKind::Ats => 0,
        LevelKind::Ups => 1,
        LevelKind::Pdu => 2,
        LevelKind::Rack => 3,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// A minimal JSON subset parser (objects, arrays, strings, numbers, null).
// Object fields keep document order; duplicate keys keep the first.

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

fn parse_err(at: usize, message: &str) -> TopologyError {
    TopologyError::Parse {
        at,
        message: message.to_owned(),
    }
}

fn json_parse(text: &str) -> Result<JsonValue, TopologyError> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    let v = json_value(b, &mut pos)?;
    json_ws(b, &mut pos);
    if pos != b.len() {
        return Err(parse_err(pos, "trailing characters"));
    }
    Ok(v)
}

fn json_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn json_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, TopologyError> {
    json_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => json_object(b, pos),
        Some(b'[') => json_array(b, pos),
        Some(b'"') => Ok(JsonValue::Str(json_string(b, pos)?)),
        Some(b'n') => {
            if b.get(*pos..*pos + 4) == Some(b"null") {
                *pos += 4;
                Ok(JsonValue::Null)
            } else {
                Err(parse_err(*pos, "invalid literal"))
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => json_number(b, pos),
        Some(_) => Err(parse_err(*pos, "unexpected character")),
        None => Err(parse_err(*pos, "unexpected end of input")),
    }
}

fn json_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, TopologyError> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    b.get(start..*pos)
        .and_then(|digits| std::str::from_utf8(digits).ok())
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| parse_err(start, "invalid number"))
}

fn json_string(b: &[u8], pos: &mut usize) -> Result<String, TopologyError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| parse_err(*pos, "invalid \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(parse_err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                let ch_len = match c {
                    0xf0..=0xf7 => 4,
                    0xe0..=0xef => 3,
                    0xc0..=0xdf => 2,
                    _ => 1,
                };
                let slice = b
                    .get(*pos..*pos + ch_len)
                    .ok_or_else(|| parse_err(*pos, "truncated UTF-8"))?;
                let s = std::str::from_utf8(slice)
                    .map_err(|_| parse_err(*pos, "invalid UTF-8 in string"))?;
                out.push_str(s);
                *pos += ch_len;
            }
            None => return Err(parse_err(*pos, "unterminated string")),
        }
    }
}

fn json_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, TopologyError> {
    *pos += 1; // opening bracket
    let mut items = Vec::new();
    json_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(json_value(b, pos)?);
        json_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(parse_err(*pos, "expected ',' or ']'")),
        }
    }
}

fn json_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, TopologyError> {
    *pos += 1; // opening brace
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    json_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        json_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(parse_err(*pos, "expected object key"));
        }
        let key = json_string(b, pos)?;
        json_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(parse_err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = json_value(b, pos)?;
        if !fields.iter().any(|(k, _)| *k == key) {
            fields.push((key, value));
        }
        json_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(parse_err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> &'static str {
        r#"{
          "name": "two-ups",
          "nodes": [
            {"name": "ats", "kind": "ats", "capacity_w": 12000.0, "parent": null},
            {"name": "ups-a", "kind": "ups", "capacity_w": 3000.0, "parent": 0},
            {"name": "ups-b", "kind": "ups", "capacity_w": 3000.5, "parent": 0},
            {"name": "pdu-a", "kind": "pdu", "capacity_w": 4000.0, "parent": 1},
            {"name": "pdu-b", "kind": "pdu", "capacity_w": 4000.0, "parent": 2},
            {"name": "rack-a", "kind": "rack", "capacity_w": 2500.0, "parent": 3},
            {"name": "rack-b", "kind": "rack", "capacity_w": 2500.0, "parent": 4}
          ]
        }"#
    }

    #[test]
    fn parses_and_builds_the_hierarchy() {
        let spec = TopologySpec::parse(sample()).unwrap();
        assert_eq!(spec.name, "two-ups");
        assert_eq!(spec.nodes.len(), 7);
        assert_eq!(spec.root_capacity(), Watts::new(12000.0));
        assert_eq!(spec.rack_ids(), vec![5, 6]);
        let h = spec.to_hierarchy().unwrap();
        assert_eq!(h.len(), 7);
        assert_eq!(h.kind_of(0), Some(LevelKind::Ats));
        assert_eq!(h.parent(5), Some(3));
        assert_eq!(h.capacity_of(2), Watts::new(3000.5));
    }

    #[test]
    fn json_round_trip_is_identical_and_fingerprint_stable() {
        let spec = TopologySpec::parse(sample()).unwrap();
        let round = TopologySpec::parse(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
        assert_eq!(round.fingerprint(), spec.fingerprint());
        let double = TopologySpec::parse(&round.to_json()).unwrap();
        assert_eq!(double.to_json(), spec.to_json());
    }

    #[test]
    fn fingerprint_is_sensitive_to_every_field() {
        let base = TopologySpec::parse(sample()).unwrap();
        let mut renamed = base.clone();
        renamed.name = "other".to_owned();
        assert_ne!(renamed.fingerprint(), base.fingerprint());
        let mut capacity = base.clone();
        capacity.nodes[1].capacity = Watts::new(3001.0);
        assert_ne!(capacity.fingerprint(), base.fingerprint());
        let mut reparented = base.clone();
        reparented.nodes[4].parent = Some(1);
        assert_ne!(reparented.fingerprint(), base.fingerprint());
        let mut rekinded = base.clone();
        rekinded.nodes[6].name = "rack-c".to_owned();
        assert_ne!(rekinded.fingerprint(), base.fingerprint());
    }

    #[test]
    fn scaling_multiplies_every_capacity() {
        let spec = TopologySpec::parse(sample()).unwrap();
        let h = spec.to_hierarchy_scaled(0.5).unwrap();
        assert_eq!(h.capacity_of(0), Watts::new(6000.0));
        assert_eq!(h.capacity_of(5), Watts::new(1250.0));
    }

    #[test]
    fn structural_violations_are_rejected() {
        // Two roots.
        let two_roots = r#"{"name": "bad", "nodes": [
          {"name": "a", "kind": "ats", "capacity_w": 1.0, "parent": null},
          {"name": "b", "kind": "ats", "capacity_w": 1.0, "parent": null}
        ]}"#;
        assert!(matches!(
            TopologySpec::parse(two_roots),
            Err(TopologyError::Structure { .. })
        ));
        // Parent after child.
        let bad_order = r#"{"name": "bad", "nodes": [
          {"name": "a", "kind": "ats", "capacity_w": 1.0, "parent": null},
          {"name": "b", "kind": "ups", "capacity_w": 1.0, "parent": 2},
          {"name": "c", "kind": "ups", "capacity_w": 1.0, "parent": 0}
        ]}"#;
        assert!(matches!(
            TopologySpec::parse(bad_order),
            Err(TopologyError::Structure { .. })
        ));
        // No racks.
        let no_racks = r#"{"name": "bad", "nodes": [
          {"name": "a", "kind": "ats", "capacity_w": 1.0, "parent": null},
          {"name": "b", "kind": "ups", "capacity_w": 1.0, "parent": 0}
        ]}"#;
        assert!(matches!(
            TopologySpec::parse(no_racks),
            Err(TopologyError::Structure { .. })
        ));
        // Nesting violation: rack under ATS.
        let bad_nest = r#"{"name": "bad", "nodes": [
          {"name": "a", "kind": "ats", "capacity_w": 1.0, "parent": null},
          {"name": "b", "kind": "rack", "capacity_w": 1.0, "parent": 0}
        ]}"#;
        assert!(matches!(
            TopologySpec::parse(bad_nest),
            Err(TopologyError::Hierarchy(_))
        ));
        // Empty node list.
        assert!(matches!(
            TopologySpec::parse(r#"{"name": "bad", "nodes": []}"#),
            Err(TopologyError::Structure { .. })
        ));
    }

    #[test]
    fn schema_violations_are_rejected() {
        for bad in [
            r#"[1, 2]"#,
            r#"{"nodes": []}"#,
            r#"{"name": "x"}"#,
            r#"{"name": "x", "nodes": [{"kind": "ats", "capacity_w": 1.0}]}"#,
            r#"{"name": "x", "nodes": [{"name": "a", "kind": "nope", "capacity_w": 1.0}]}"#,
            r#"{"name": "x", "nodes": [{"name": "a", "kind": "ats", "capacity_w": -2.0}]}"#,
            r#"{"name": "x", "nodes": [{"name": "a", "kind": "ats", "capacity_w": 1.0, "parent": 1.5}]}"#,
        ] {
            assert!(
                matches!(TopologySpec::parse(bad), Err(TopologyError::Schema { .. })),
                "{bad}"
            );
        }
        for malformed in ["{", "{\"name\": }", "", "{} extra", "{\"name\" \"x\"}"] {
            assert!(
                matches!(
                    TopologySpec::parse(malformed),
                    Err(TopologyError::Parse { .. })
                ),
                "{malformed}"
            );
        }
    }
}
