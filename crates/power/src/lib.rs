//! # mpr-power — the HPC power substrate
//!
//! Everything MPR needs to know about the physical power side of an
//! oversubscribed HPC data center (Sections II and III-E of the paper):
//!
//! * [`PowerModel`] — the job-attributed power model
//!   `Power = Power_static + Utilization · Power_dynamic` with the paper's
//!   25 W / 125 W per-core split (Section IV-A);
//! * [`Oversubscription`] — capacity arithmetic: at `x %` oversubscription
//!   the infrastructure capacity is `100/(100+x)` of the system's peak
//!   demand;
//! * [`hierarchy`] — the ATS → UPS → PDU → rack tree of Fig. 1(a) with
//!   per-level capacity checks;
//! * [`breaker`] — the long-delay inverse-time trip characteristic that
//!   makes *reactive* overload handling safe: moderate overloads take tens
//!   of minutes to trip a breaker (Section I);
//! * [`EmergencyController`] — the detect / reduce / cool-down / resume
//!   state machine of Section III-E, with the paper's 1 % reduction buffer
//!   and 10-minute cool-down;
//! * [`telemetry`] — sensor-fault-tolerant power measurement: seeded
//!   fault adapters (noise, dropout, stuck, delay, spikes) over true
//!   power, and the [`RobustEstimator`] whose conservative upper bound —
//!   not raw power — should drive the emergency controller;
//! * [`gridfault`] — seeded infrastructure fault injection over the power
//!   tree: UPS failures, ATS transfers at derated capacity, PDU breaker
//!   trips and gradual deratings with scheduled repairs, evaluated as a
//!   pure [`TopologyState`] over the immutable [`TopologySpec`] so
//!   federated clearing can fence dead subtrees deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod emergency;
pub mod error;
pub mod federated;
pub mod gridfault;
pub mod hierarchy;
pub mod model;
pub mod oversubscription;
pub mod policy;
pub mod telemetry;
pub mod thermal;
pub mod topology;
pub mod ups;

pub use breaker::{BreakerState, TripCurve};
pub use emergency::{
    ControllerState, EmergencyAction, EmergencyConfig, EmergencyController, EmergencyPhase,
};
pub use error::PowerError;
pub use federated::{FederatedError, FederatedOutcome, HierarchicalMarket, LevelReport};
pub use gridfault::{GridFault, GridFaultKind, GridFaultPlan, TopologyState};
pub use hierarchy::{HierarchyError, LevelKind, PowerHierarchy};
pub use model::PowerModel;
pub use oversubscription::Oversubscription;
pub use policy::{CapacityPolicy, FixedCapacity};
pub use telemetry::{
    EstimatorConfig, FaultySensor, PowerEstimate, PowerSensor, RobustEstimator, SensorFaultConfig,
    SensorReading, TelemetryHealth, TrueSensor,
};
pub use thermal::{RoomState, ThermalModel};
pub use topology::{NodeSpec, TopologyError, TopologySpec};
pub use ups::UpsBattery;
