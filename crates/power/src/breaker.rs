//! Circuit-breaker trip characteristics (Section I / Section II).
//!
//! The safety argument for *reactive* overload handling rests on protective
//! breakers operating in their "long-delay" zone for moderate overloads:
//! at the 10–25 % overloads an oversubscribed HPC system produces, breakers
//! take tens of minutes to trip — plenty of time for MPR to clear a market
//! and shed load. We model the standard inverse-time (I²t) characteristic.

use mpr_core::Watts;

/// An inverse-time trip curve: time-to-trip `t = k / ((L/L_r)² − 1)` for
/// load `L` above the rated load `L_r`, infinite otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripCurve {
    rated: Watts,
    /// Scale constant `k` in seconds: the trip time at √2× rated load.
    k_seconds: f64,
}

impl TripCurve {
    /// Creates a trip curve for a breaker rated at `rated` watts with scale
    /// constant `k_seconds`.
    ///
    /// A `k` of 600 s gives ~50 minutes at 110 % load and ~27 minutes at
    /// 120 % — consistent with the "several tens of minutes" the paper
    /// cites for long-delay zones.
    ///
    /// # Panics
    ///
    /// Panics if `rated` or `k_seconds` are not positive and finite.
    #[must_use]
    pub fn new(rated: Watts, k_seconds: f64) -> Self {
        assert!(
            rated.get().is_finite() && rated.get() > 0.0,
            "rated load must be positive"
        );
        assert!(
            k_seconds.is_finite() && k_seconds > 0.0,
            "trip constant must be positive"
        );
        Self { rated, k_seconds }
    }

    /// The rated (continuous) load.
    #[must_use]
    pub fn rated(&self) -> Watts {
        self.rated
    }

    /// Time in seconds a *constant* load would take to trip the breaker;
    /// `None` if the load never trips it (at or below rated).
    #[must_use]
    pub fn time_to_trip(&self, load: Watts) -> Option<f64> {
        let ratio = load / self.rated;
        if ratio <= 1.0 {
            return None;
        }
        Some(self.k_seconds / (ratio * ratio - 1.0))
    }
}

/// Stateful thermal accumulator for time-varying loads.
///
/// Integrates `(L/L_r)² − 1` over time; the breaker trips when the
/// accumulator reaches the curve's `k`. Under-rated operation discharges
/// the accumulator at the same rate, modeling breaker cool-down.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerState {
    curve: TripCurve,
    accumulated: f64,
    tripped: bool,
}

impl BreakerState {
    /// Creates a cold breaker with the given trip curve.
    #[must_use]
    pub fn new(curve: TripCurve) -> Self {
        Self {
            curve,
            accumulated: 0.0,
            tripped: false,
        }
    }

    /// Advances the breaker by `dt_seconds` under `load`. Returns `true`
    /// if the breaker is tripped after the step.
    pub fn step(&mut self, load: Watts, dt_seconds: f64) -> bool {
        if self.tripped {
            return true;
        }
        let ratio = load / self.curve.rated;
        let rate = ratio * ratio - 1.0;
        self.accumulated = (self.accumulated + rate * dt_seconds).max(0.0);
        if self.accumulated >= self.curve.k_seconds {
            self.tripped = true;
        }
        self.tripped
    }

    /// Whether the breaker has tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Fraction of the thermal budget consumed, in `[0, 1]`.
    #[must_use]
    pub fn headroom_used(&self) -> f64 {
        (self.accumulated / self.curve.k_seconds).min(1.0)
    }

    /// Manually resets a tripped breaker (an operator action).
    pub fn reset(&mut self) {
        self.accumulated = 0.0;
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> TripCurve {
        TripCurve::new(Watts::new(1000.0), 600.0)
    }

    #[test]
    fn no_trip_at_or_below_rated() {
        let c = curve();
        assert_eq!(c.time_to_trip(Watts::new(1000.0)), None);
        assert_eq!(c.time_to_trip(Watts::new(500.0)), None);
        assert_eq!(c.rated(), Watts::new(1000.0));
    }

    #[test]
    fn moderate_overloads_take_tens_of_minutes() {
        let c = curve();
        // 110 % load: 600 / (1.21 − 1) ≈ 2857 s ≈ 48 min.
        let t110 = c.time_to_trip(Watts::new(1100.0)).unwrap();
        assert!((t110 - 600.0 / 0.21).abs() < 1e-9);
        assert!(t110 > 30.0 * 60.0);
        // 120 % load ≈ 23 min — still in the long-delay zone.
        let t120 = c.time_to_trip(Watts::new(1200.0)).unwrap();
        assert!(t120 > 10.0 * 60.0 && t120 < 30.0 * 60.0);
        // Heavy faults trip fast.
        let t300 = c.time_to_trip(Watts::new(3000.0)).unwrap();
        assert!(t300 < 100.0);
    }

    #[test]
    fn accumulator_matches_constant_load_trip_time() {
        let c = curve();
        let load = Watts::new(1200.0);
        let expected = c.time_to_trip(load).unwrap();
        let mut b = BreakerState::new(c);
        let dt = 1.0;
        let mut t = 0.0;
        while !b.step(load, dt) {
            t += dt;
            assert!(t < expected * 2.0, "breaker never tripped");
        }
        assert!(
            (t - expected).abs() <= 2.0 * dt,
            "t={t} expected={expected}"
        );
        assert!(b.is_tripped());
    }

    #[test]
    fn under_rated_operation_discharges() {
        let mut b = BreakerState::new(curve());
        b.step(Watts::new(1500.0), 100.0);
        let used = b.headroom_used();
        assert!(used > 0.0 && !b.is_tripped());
        // Cool down at half load.
        b.step(Watts::new(500.0), 1000.0);
        assert!(b.headroom_used() < used);
        assert_eq!(b.headroom_used(), 0.0);
    }

    #[test]
    fn tripped_stays_tripped_until_reset() {
        let mut b = BreakerState::new(curve());
        assert!(b.step(Watts::new(10_000.0), 100.0));
        assert!(b.step(Watts::new(0.0), 1e9), "stays tripped");
        b.reset();
        assert!(!b.is_tripped());
        assert_eq!(b.headroom_used(), 0.0);
    }

    #[test]
    #[should_panic(expected = "rated load")]
    fn zero_rated_panics() {
        let _ = TripCurve::new(Watts::new(0.0), 600.0);
    }
}
