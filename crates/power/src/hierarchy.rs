//! The hierarchical power infrastructure of Fig. 1(a):
//! ATS → UPS → cluster PDU → rack.
//!
//! Every level is subject to a capacity limit and can be oversubscribed;
//! the paper focuses on UPS-level oversubscription (the UPS dominates the
//! per-kilowatt capital cost) while assuming PDUs and racks have adequate
//! capacity. This module models the tree generically: leaf loads are
//! attached to racks, sums propagate upward, and any level can be queried
//! for overload.

use std::fmt;

use mpr_core::Watts;

/// The role of a node in the power tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelKind {
    /// Automatic transfer switch (utility/generator source selection).
    Ats,
    /// Uninterruptible power supply — the paper's oversubscription point.
    Ups,
    /// Cluster power distribution unit.
    Pdu,
    /// Server rack (leaf loads attach here).
    Rack,
}

impl fmt::Display for LevelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LevelKind::Ats => write!(f, "ATS"),
            LevelKind::Ups => write!(f, "UPS"),
            LevelKind::Pdu => write!(f, "PDU"),
            LevelKind::Rack => write!(f, "rack"),
        }
    }
}

/// Errors from hierarchy construction and load attachment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HierarchyError {
    /// Referenced a node id that does not exist.
    UnknownNode(usize),
    /// Attached a load to a non-rack node.
    NotARack(usize),
    /// Child/parent kinds violate the ATS → UPS → PDU → rack ordering.
    InvalidNesting {
        /// Parent node kind.
        parent: LevelKind,
        /// Child node kind.
        child: LevelKind,
    },
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::UnknownNode(id) => write!(f, "unknown node id {id}"),
            HierarchyError::NotARack(id) => write!(f, "node {id} is not a rack"),
            HierarchyError::InvalidNesting { parent, child } => {
                write!(f, "a {child} cannot feed from a {parent}")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    kind: LevelKind,
    capacity: Watts,
    parent: Option<usize>,
    /// Leaf load attached directly to this node (racks only).
    load: Watts,
    /// Cached aggregate: this node's leaf load plus everything below it.
    /// Maintained eagerly by [`PowerHierarchy::set_load`], which walks the
    /// ancestor chain — so queries at *every* level are O(1) and a single
    /// rack update is O(depth) instead of recomputing the whole tree.
    aggregate: Watts,
}

/// A report of one overloaded level.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadedNode {
    /// Node id within the hierarchy.
    pub id: usize,
    /// Node name.
    pub name: String,
    /// Node kind.
    pub kind: LevelKind,
    /// Aggregate load seen by the node.
    pub load: Watts,
    /// The node's capacity.
    pub capacity: Watts,
    /// Distance from the node's root (root = 0).
    pub depth: usize,
}

/// A power-infrastructure tree with per-level capacities.
///
/// ```
/// use mpr_core::Watts;
/// use mpr_power::{LevelKind, PowerHierarchy};
///
/// # fn main() -> Result<(), mpr_power::HierarchyError> {
/// let mut h = PowerHierarchy::new();
/// let ats = h.add_root("ats", LevelKind::Ats, Watts::new(1_000_000.0));
/// let ups = h.add_child("ups-1", LevelKind::Ups, Watts::new(250_000.0), ats)?;
/// let pdu = h.add_child("pdu-1", LevelKind::Pdu, Watts::new(300_000.0), ups)?;
/// let rack = h.add_child("rack-1", LevelKind::Rack, Watts::new(300_000.0), pdu)?;
/// h.set_load(rack, Watts::new(260_000.0))?;
/// // The UPS is the binding constraint: it is the only overloaded level.
/// let over = h.overloaded();
/// assert_eq!(over.len(), 1);
/// assert_eq!(over[0].kind, LevelKind::Ups);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerHierarchy {
    nodes: Vec<Node>,
}

impl PowerHierarchy {
    /// Creates an empty hierarchy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root node (typically the ATS) and returns its id.
    pub fn add_root(&mut self, name: impl Into<String>, kind: LevelKind, capacity: Watts) -> usize {
        self.push_node(name, kind, capacity, None)
    }

    /// Appends a node unconditionally; nesting rules are the caller's job.
    fn push_node(
        &mut self,
        name: impl Into<String>,
        kind: LevelKind,
        capacity: Watts,
        parent: Option<usize>,
    ) -> usize {
        self.nodes.push(Node {
            name: name.into(),
            kind,
            capacity,
            parent,
            load: Watts::ZERO,
            aggregate: Watts::ZERO,
        });
        self.nodes.len() - 1
    }

    /// Adds a child node feeding from `parent`, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::UnknownNode`] for a bad parent id and
    /// [`HierarchyError::InvalidNesting`] if the child's kind cannot feed
    /// from the parent's kind.
    pub fn add_child(
        &mut self,
        name: impl Into<String>,
        kind: LevelKind,
        capacity: Watts,
        parent: usize,
    ) -> Result<usize, HierarchyError> {
        let Some(p) = self.nodes.get(parent) else {
            return Err(HierarchyError::UnknownNode(parent));
        };
        let ok = matches!(
            (p.kind, kind),
            (LevelKind::Ats, LevelKind::Ups)
                | (LevelKind::Ups, LevelKind::Pdu)
                | (LevelKind::Pdu, LevelKind::Rack)
        );
        if !ok {
            return Err(HierarchyError::InvalidNesting {
                parent: p.kind,
                child: kind,
            });
        }
        Ok(self.push_node(name, kind, capacity, Some(parent)))
    }

    /// Sets the leaf load of a rack and propagates the change up through
    /// *all* ancestor levels (PDU, UPS, ATS), so every level's aggregate is
    /// current the moment this returns.
    ///
    /// # Errors
    ///
    /// Returns [`HierarchyError::UnknownNode`] or
    /// [`HierarchyError::NotARack`].
    pub fn set_load(&mut self, rack: usize, load: Watts) -> Result<(), HierarchyError> {
        let Some(node) = self.nodes.get_mut(rack) else {
            return Err(HierarchyError::UnknownNode(rack));
        };
        if node.kind != LevelKind::Rack {
            return Err(HierarchyError::NotARack(rack));
        }
        let delta = load.get() - node.load.get();
        node.load = load;
        let mut cursor = Some(rack);
        while let Some(id) = cursor {
            let Some(n) = self.nodes.get_mut(id) else {
                break;
            };
            n.aggregate = Watts::new(n.aggregate.get() + delta);
            cursor = n.parent;
        }
        Ok(())
    }

    /// Aggregate load seen by a node: its own leaf load plus everything
    /// below it. O(1) — aggregates are maintained on every `set_load`.
    #[must_use]
    pub fn load_at(&self, id: usize) -> Watts {
        self.nodes.get(id).map_or(Watts::ZERO, |n| n.aggregate)
    }

    /// Distance from `id` to its root (root = 0); `None` for an unknown
    /// node. Bounded by the node count, so a (malformed) parent cycle
    /// cannot hang the walk.
    #[must_use]
    pub fn depth(&self, id: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut cursor = self.nodes.get(id)?.parent;
        while let Some(pid) = cursor {
            depth += 1;
            if depth > self.nodes.len() {
                return None;
            }
            cursor = self.nodes.get(pid)?.parent;
        }
        Some(depth)
    }

    /// All nodes whose aggregate load exceeds their capacity, in
    /// deterministic (depth, id) order — shallow levels first, ids
    /// ascending within a level. Simultaneous overloads at nested levels
    /// (e.g. a rack *and* its UPS) are all reported; a federated clearing
    /// walk iterates this list in reverse for its bottom-up sweep.
    #[must_use]
    pub fn overloaded(&self) -> Vec<OverloadedNode> {
        let mut over: Vec<OverloadedNode> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.aggregate > n.capacity)
            .map(|(id, n)| OverloadedNode {
                id,
                name: n.name.clone(),
                kind: n.kind,
                load: n.aggregate,
                capacity: n.capacity,
                depth: self.depth(id).unwrap_or(0),
            })
            .collect();
        over.sort_by_key(|o| (o.depth, o.id));
        over
    }

    /// Spare capacity at a node: `capacity − aggregate load` (negative when
    /// the subtree is overloaded). `Watts::ZERO` for unknown nodes.
    #[must_use]
    pub fn subtree_headroom(&self, id: usize) -> Watts {
        self.nodes.get(id).map_or(Watts::ZERO, |n| {
            Watts::new(n.capacity.get() - n.aggregate.get())
        })
    }

    /// Ids of every rack in the subtree rooted at `id`, ascending. A rack
    /// id queries as its own (single-element) leaf set; unknown ids yield
    /// an empty set.
    #[must_use]
    pub fn leaf_racks(&self, id: usize) -> Vec<usize> {
        if self.nodes.get(id).is_none() {
            return Vec::new();
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == LevelKind::Rack)
            .filter(|&(rid, _)| self.is_ancestor_or_self(id, rid))
            .map(|(rid, _)| rid)
            .collect()
    }

    /// `true` when `ancestor` is `node` itself or lies on `node`'s parent
    /// chain.
    fn is_ancestor_or_self(&self, ancestor: usize, node: usize) -> bool {
        let mut cursor = Some(node);
        let mut hops = 0usize;
        while let Some(id) = cursor {
            if id == ancestor {
                return true;
            }
            hops += 1;
            if hops > self.nodes.len() {
                return false;
            }
            cursor = self.nodes.get(id).and_then(|n| n.parent);
        }
        false
    }

    /// The parent id of a node, if it has one.
    #[must_use]
    pub fn parent(&self, id: usize) -> Option<usize> {
        self.nodes.get(id)?.parent
    }

    /// The capacity of a node (`Watts::ZERO` for unknown ids).
    #[must_use]
    pub fn capacity_of(&self, id: usize) -> Watts {
        self.nodes.get(id).map_or(Watts::ZERO, |n| n.capacity)
    }

    /// The kind of a node, if it exists.
    #[must_use]
    pub fn kind_of(&self, id: usize) -> Option<LevelKind> {
        Some(self.nodes.get(id)?.kind)
    }

    /// The name of a node (empty for unknown ids).
    #[must_use]
    pub fn name_of(&self, id: usize) -> &str {
        self.nodes.get(id).map_or("", |n| n.name.as_str())
    }

    /// Number of nodes in the hierarchy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the hierarchy has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Builds the paper's canonical single-UPS layout: one ATS feeding one
    /// UPS of capacity `ups_capacity`, one PDU and one rack (both given
    /// ample headroom, per Section II's assumption). Returns
    /// `(hierarchy, ups_id, rack_id)`.
    #[must_use]
    pub fn single_ups(ups_capacity: Watts) -> (Self, usize, usize) {
        let ample = ups_capacity * 10.0;
        let mut h = Self::new();
        let ats = h.push_node("ats", LevelKind::Ats, ample, None);
        let ups = h.push_node("ups", LevelKind::Ups, ups_capacity, Some(ats));
        let pdu = h.push_node("pdu", LevelKind::Pdu, ample, Some(ups));
        let rack = h.push_node("rack", LevelKind::Rack, ample, Some(pdu));
        (h, ups, rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ups_layout_detects_ups_overload() {
        let (mut h, ups, rack) = PowerHierarchy::single_ups(Watts::new(1000.0));
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        h.set_load(rack, Watts::new(1200.0)).unwrap();
        let over = h.overloaded();
        assert_eq!(over.len(), 1);
        assert_eq!(over[0].id, ups);
        assert_eq!(over[0].kind, LevelKind::Ups);
        assert_eq!(over[0].load, Watts::new(1200.0));
    }

    #[test]
    fn loads_aggregate_across_subtrees() {
        let mut h = PowerHierarchy::new();
        let ats = h.add_root("ats", LevelKind::Ats, Watts::new(1e6));
        let ups = h
            .add_child("ups", LevelKind::Ups, Watts::new(5000.0), ats)
            .unwrap();
        let pdu1 = h
            .add_child("pdu1", LevelKind::Pdu, Watts::new(3000.0), ups)
            .unwrap();
        let pdu2 = h
            .add_child("pdu2", LevelKind::Pdu, Watts::new(3000.0), ups)
            .unwrap();
        let r1 = h
            .add_child("r1", LevelKind::Rack, Watts::new(2000.0), pdu1)
            .unwrap();
        let r2 = h
            .add_child("r2", LevelKind::Rack, Watts::new(2000.0), pdu2)
            .unwrap();
        h.set_load(r1, Watts::new(1500.0)).unwrap();
        h.set_load(r2, Watts::new(1500.0)).unwrap();
        assert_eq!(h.load_at(ups), Watts::new(3000.0));
        assert_eq!(h.load_at(pdu1), Watts::new(1500.0));
        assert_eq!(h.load_at(ats), Watts::new(3000.0));
        assert!(h.overloaded().is_empty());
        // Push one PDU over.
        h.set_load(r1, Watts::new(4000.0)).unwrap();
        let over = h.overloaded();
        let kinds: Vec<LevelKind> = over.iter().map(|o| o.kind).collect();
        assert!(kinds.contains(&LevelKind::Pdu));
        assert!(kinds.contains(&LevelKind::Ups));
        assert!(kinds.contains(&LevelKind::Rack));
    }

    #[test]
    fn nested_rack_and_ups_simultaneous_overloads() {
        // A rack whose own capacity binds *and* a UPS two levels up whose
        // aggregate binds: both must be reported at once, with correct
        // per-level aggregates.
        let mut h = PowerHierarchy::new();
        let ats = h.add_root("ats", LevelKind::Ats, Watts::new(1e6));
        let ups = h
            .add_child("ups", LevelKind::Ups, Watts::new(4000.0), ats)
            .unwrap();
        let pdu1 = h
            .add_child("pdu1", LevelKind::Pdu, Watts::new(10_000.0), ups)
            .unwrap();
        let pdu2 = h
            .add_child("pdu2", LevelKind::Pdu, Watts::new(10_000.0), ups)
            .unwrap();
        let r1 = h
            .add_child("r1", LevelKind::Rack, Watts::new(2000.0), pdu1)
            .unwrap();
        let r2 = h
            .add_child("r2", LevelKind::Rack, Watts::new(5000.0), pdu2)
            .unwrap();
        h.set_load(r1, Watts::new(2500.0)).unwrap(); // rack overloaded
        h.set_load(r2, Watts::new(2000.0)).unwrap(); // within rack capacity
        let over = h.overloaded();
        let ids: Vec<usize> = over.iter().map(|o| o.id).collect();
        assert_eq!(
            ids,
            vec![ups, r1],
            "UPS (4500 > 4000) and rack r1 (2500 > 2000)"
        );
        let ups_over = &over[0];
        assert_eq!(ups_over.kind, LevelKind::Ups);
        assert_eq!(ups_over.load, Watts::new(4500.0));
        let rack_over = &over[1];
        assert_eq!(rack_over.kind, LevelKind::Rack);
        assert_eq!(rack_over.load, Watts::new(2500.0));
        // The PDUs in between have headroom and are not reported.
        assert_eq!(h.load_at(pdu1), Watts::new(2500.0));
        assert_eq!(h.load_at(pdu2), Watts::new(2000.0));
        assert_eq!(h.load_at(ats), Watts::new(4500.0));
    }

    #[test]
    fn repeated_set_load_keeps_ancestor_aggregates_exact() {
        // Updates replace (not accumulate) the rack's load; every ancestor
        // level must track the delta exactly through many updates.
        let (mut h, ups, rack) = PowerHierarchy::single_ups(Watts::new(1000.0));
        for w in [500.0, 1200.0, 0.0, 800.0, 800.0, 350.0] {
            h.set_load(rack, Watts::new(w)).unwrap();
            assert_eq!(h.load_at(rack), Watts::new(w));
            assert_eq!(h.load_at(ups), Watts::new(w));
            assert_eq!(h.load_at(0), Watts::new(w), "root tracks every update");
        }
        assert!(h.overloaded().is_empty());
    }

    #[test]
    fn load_at_unknown_node_is_zero() {
        let (h, _, _) = PowerHierarchy::single_ups(Watts::new(1000.0));
        assert_eq!(h.load_at(99), Watts::ZERO);
    }

    #[test]
    fn nesting_rules_enforced() {
        let mut h = PowerHierarchy::new();
        let ats = h.add_root("ats", LevelKind::Ats, Watts::new(1e6));
        assert!(matches!(
            h.add_child("bad", LevelKind::Rack, Watts::new(1.0), ats),
            Err(HierarchyError::InvalidNesting { .. })
        ));
        assert!(matches!(
            h.add_child("bad", LevelKind::Ups, Watts::new(1.0), 99),
            Err(HierarchyError::UnknownNode(99))
        ));
    }

    #[test]
    fn load_attach_validation() {
        let (mut h, ups, _rack) = PowerHierarchy::single_ups(Watts::new(1000.0));
        assert_eq!(
            h.set_load(ups, Watts::new(10.0)),
            Err(HierarchyError::NotARack(ups))
        );
        assert_eq!(
            h.set_load(77, Watts::new(10.0)),
            Err(HierarchyError::UnknownNode(77))
        );
    }

    /// Two UPS subtrees under one ATS: `(h, ups_a, ups_b, racks_a, racks_b)`.
    fn two_ups_tree() -> (PowerHierarchy, usize, usize, Vec<usize>, Vec<usize>) {
        let mut h = PowerHierarchy::new();
        let ats = h.add_root("ats", LevelKind::Ats, Watts::new(10_000.0));
        let ups_a = h
            .add_child("ups-a", LevelKind::Ups, Watts::new(3000.0), ats)
            .unwrap();
        let ups_b = h
            .add_child("ups-b", LevelKind::Ups, Watts::new(3000.0), ats)
            .unwrap();
        let pdu_a = h
            .add_child("pdu-a", LevelKind::Pdu, Watts::new(4000.0), ups_a)
            .unwrap();
        let pdu_b = h
            .add_child("pdu-b", LevelKind::Pdu, Watts::new(4000.0), ups_b)
            .unwrap();
        let racks_a: Vec<usize> = (0..2)
            .map(|i| {
                h.add_child(
                    format!("rack-a{i}"),
                    LevelKind::Rack,
                    Watts::new(2000.0),
                    pdu_a,
                )
                .unwrap()
            })
            .collect();
        let racks_b: Vec<usize> = (0..2)
            .map(|i| {
                h.add_child(
                    format!("rack-b{i}"),
                    LevelKind::Rack,
                    Watts::new(2000.0),
                    pdu_b,
                )
                .unwrap()
            })
            .collect();
        (h, ups_a, ups_b, racks_a, racks_b)
    }

    #[test]
    fn overloaded_is_sorted_by_depth_then_id() {
        let (mut h, ups_a, ups_b, racks_a, racks_b) = two_ups_tree();
        // Overload a deep rack in subtree B first, then both UPSes: the
        // report must still come out shallow-first, ids ascending per level,
        // regardless of set_load order.
        h.set_load(racks_b[1], Watts::new(2500.0)).unwrap();
        h.set_load(racks_b[0], Watts::new(1000.0)).unwrap();
        h.set_load(racks_a[0], Watts::new(2200.0)).unwrap();
        h.set_load(racks_a[1], Watts::new(1500.0)).unwrap();
        let over = h.overloaded();
        let order: Vec<(usize, usize)> = over.iter().map(|o| (o.depth, o.id)).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "must be (depth, id)-sorted");
        // Both UPSes (depth 1) precede every rack (depth 3).
        assert_eq!(over[0].id, ups_a);
        assert_eq!(over[1].id, ups_b);
        assert!(over[2..].iter().all(|o| o.depth == 3));
    }

    #[test]
    fn depth_counts_hops_from_the_root() {
        let (h, ups_a, _, racks_a, _) = two_ups_tree();
        assert_eq!(h.depth(0), Some(0));
        assert_eq!(h.depth(ups_a), Some(1));
        assert_eq!(h.depth(racks_a[0]), Some(3));
        assert_eq!(h.depth(99), None);
    }

    #[test]
    fn subtree_headroom_tracks_loads_and_goes_negative_on_overload() {
        let (mut h, ups_a, ups_b, racks_a, _) = two_ups_tree();
        assert_eq!(h.subtree_headroom(ups_a), Watts::new(3000.0));
        h.set_load(racks_a[0], Watts::new(1800.0)).unwrap();
        assert_eq!(h.subtree_headroom(ups_a), Watts::new(1200.0));
        assert_eq!(h.subtree_headroom(ups_b), Watts::new(3000.0));
        h.set_load(racks_a[1], Watts::new(1800.0)).unwrap();
        assert!(
            h.subtree_headroom(ups_a).get() < 0.0,
            "overloaded ⇒ negative"
        );
        assert_eq!(h.subtree_headroom(0), Watts::new(10_000.0 - 3600.0));
        assert_eq!(h.subtree_headroom(42), Watts::ZERO);
    }

    #[test]
    fn leaf_racks_collects_each_subtrees_racks() {
        let (h, ups_a, ups_b, racks_a, racks_b) = two_ups_tree();
        assert_eq!(h.leaf_racks(ups_a), racks_a);
        assert_eq!(h.leaf_racks(ups_b), racks_b);
        let mut all = racks_a.clone();
        all.extend(&racks_b);
        assert_eq!(h.leaf_racks(0), all, "root sees every rack");
        // A rack is its own leaf set; unknown ids are empty.
        assert_eq!(h.leaf_racks(racks_a[1]), vec![racks_a[1]]);
        assert!(h.leaf_racks(99).is_empty());
    }

    #[test]
    fn node_accessors_expose_parent_capacity_kind_name() {
        let (h, ups_a, _, racks_a, _) = two_ups_tree();
        assert_eq!(h.parent(ups_a), Some(0));
        assert_eq!(h.parent(0), None);
        assert_eq!(h.capacity_of(ups_a), Watts::new(3000.0));
        assert_eq!(h.kind_of(racks_a[0]), Some(LevelKind::Rack));
        assert_eq!(h.kind_of(99), None);
        assert_eq!(h.name_of(ups_a), "ups-a");
        assert_eq!(h.name_of(99), "");
    }

    #[test]
    fn error_and_kind_display() {
        assert_eq!(LevelKind::Ups.to_string(), "UPS");
        let e = HierarchyError::InvalidNesting {
            parent: LevelKind::Ats,
            child: LevelKind::Rack,
        };
        assert!(e.to_string().contains("rack"));
        assert!(!HierarchyError::UnknownNode(3).to_string().is_empty());
        assert!(!HierarchyError::NotARack(3).to_string().is_empty());
    }
}
