//! The job-attributed power model of Section IV-A.
//!
//! `Power = Power_static + Utilization · Power_dynamic`, applied per core:
//! every *allocated* core draws its static power plus a dynamic share
//! proportional to its current speed. Attributing server power to jobs by
//! their core share is what lets MPR reason about jobs instead of servers
//! (Section III-A).

use mpr_core::Watts;

use crate::error::PowerError;

/// Per-core power coefficients.
///
/// The paper's Gaia evaluation uses 25 W static + 125 W dynamic per core,
/// giving the 2012-core peak allocation its 301.8 kW peak power.
///
/// ```
/// use mpr_power::PowerModel;
///
/// let m = PowerModel::paper();
/// // 2012 allocated cores at full speed → 301.8 kW (Section IV-A).
/// assert!((m.power(2012.0, 1.0).get() - 301_800.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    static_w_per_core: f64,
    dynamic_w_per_core: f64,
}

impl PowerModel {
    /// Creates a power model from per-core static and dynamic watts.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite; use
    /// [`try_new`](Self::try_new) to validate untrusted input.
    #[must_use]
    pub fn new(static_w_per_core: f64, dynamic_w_per_core: f64) -> Self {
        match Self::try_new(static_w_per_core, dynamic_w_per_core) {
            Ok(m) => m,
            // lint: allow(panic-freedom) documented constructor panic; try_new is the non-panicking path
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a power model, rejecting negative or non-finite
    /// coefficients with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] naming the offending
    /// coefficient.
    pub fn try_new(static_w_per_core: f64, dynamic_w_per_core: f64) -> Result<Self, PowerError> {
        if !(static_w_per_core.is_finite() && static_w_per_core >= 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "static power",
                value: static_w_per_core,
                constraint: "must be finite and non-negative",
            });
        }
        if !(dynamic_w_per_core.is_finite() && dynamic_w_per_core >= 0.0) {
            return Err(PowerError::InvalidParameter {
                name: "dynamic power",
                value: dynamic_w_per_core,
                constraint: "must be finite and non-negative",
            });
        }
        Ok(Self {
            static_w_per_core,
            dynamic_w_per_core,
        })
    }

    /// The paper's model: 25 W static + 125 W dynamic per core.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(25.0, 125.0)
    }

    /// Static watts per allocated core (uncore, DRAM and storage power are
    /// folded in, per the paper).
    #[must_use]
    pub fn static_w_per_core(&self) -> f64 {
        self.static_w_per_core
    }

    /// Dynamic watts per core at full speed.
    #[must_use]
    pub fn dynamic_w_per_core(&self) -> f64 {
        self.dynamic_w_per_core
    }

    /// Power drawn by `cores` allocated cores running at `speed ∈ [0, 1]`.
    #[must_use]
    pub fn power(&self, cores: f64, speed: f64) -> Watts {
        let s = speed.clamp(0.0, 1.0);
        Watts::new(cores.max(0.0) * (self.static_w_per_core + s * self.dynamic_w_per_core))
    }

    /// Peak power of a system whose maximum core allocation is
    /// `peak_cores` (all cores at full speed).
    #[must_use]
    pub fn peak_power(&self, peak_cores: f64) -> Watts {
        self.power(peak_cores, 1.0)
    }

    /// Power saved by reducing `delta` cores worth of resource (speed
    /// scaling sheds only dynamic power — cores stay allocated).
    #[must_use]
    pub fn reduction_power(&self, delta: f64) -> Watts {
        Watts::new(delta.max(0.0) * self.dynamic_w_per_core)
    }

    /// The market's `watts_per_unit` conversion: dynamic watts per core of
    /// reduction.
    #[must_use]
    pub fn watts_per_unit(&self) -> Watts {
        Watts::new(self.dynamic_w_per_core)
    }
}

impl Default for PowerModel {
    /// The paper's 25 W / 125 W model.
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_model_matches_gaia_peak() {
        let m = PowerModel::paper();
        assert_eq!(m.static_w_per_core(), 25.0);
        assert_eq!(m.dynamic_w_per_core(), 125.0);
        // Gaia: 2012 peak cores → 301.8 kW.
        assert!((m.peak_power(2012.0).get() - 301_800.0).abs() < 1e-6);
    }

    #[test]
    fn speed_scaling_sheds_only_dynamic_power() {
        let m = PowerModel::paper();
        let full = m.power(10.0, 1.0);
        let half = m.power(10.0, 0.5);
        assert!((full.get() - 1500.0).abs() < 1e-9);
        assert!(((full - half).get() - 10.0 * 0.5 * 125.0).abs() < 1e-9);
        // Static power stays even at speed 0.
        assert!((m.power(10.0, 0.0).get() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn speed_is_clamped() {
        let m = PowerModel::paper();
        assert_eq!(m.power(1.0, 2.0), m.power(1.0, 1.0));
        assert_eq!(m.power(1.0, -1.0), m.power(1.0, 0.0));
        assert_eq!(m.power(-5.0, 1.0).get(), 0.0);
    }

    #[test]
    fn reduction_power_uses_dynamic_share() {
        let m = PowerModel::paper();
        assert!((m.reduction_power(4.0).get() - 500.0).abs() < 1e-9);
        assert_eq!(m.reduction_power(-1.0).get(), 0.0);
        assert_eq!(m.watts_per_unit(), Watts::new(125.0));
    }

    #[test]
    #[should_panic(expected = "static power")]
    fn negative_static_panics() {
        let _ = PowerModel::new(-1.0, 125.0);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        use crate::error::PowerError;
        assert_eq!(
            PowerModel::try_new(25.0, 125.0).unwrap(),
            PowerModel::paper()
        );
        match PowerModel::try_new(f64::NAN, 125.0) {
            Err(PowerError::InvalidParameter { name, .. }) => assert_eq!(name, "static power"),
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
        match PowerModel::try_new(25.0, -0.5) {
            Err(PowerError::InvalidParameter { name, value, .. }) => {
                assert_eq!(name, "dynamic power");
                assert_eq!(value, -0.5);
            }
            other => panic!("expected InvalidParameter, got {other:?}"),
        }
    }

    #[test]
    fn default_is_paper() {
        assert_eq!(PowerModel::default(), PowerModel::paper());
    }

    proptest! {
        /// Reducing a job's speed by δ/cores reduces its power by exactly
        /// reduction_power(δ): the two APIs agree.
        #[test]
        fn reduction_consistency(cores in 1.0f64..512.0, frac in 0.0f64..1.0) {
            let m = PowerModel::paper();
            let delta = frac * cores;
            let before = m.power(cores, 1.0);
            let after = m.power(cores, 1.0 - frac);
            prop_assert!(((before - after).get() - m.reduction_power(delta).get()).abs() < 1e-6);
        }
    }
}
