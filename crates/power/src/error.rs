//! Typed validation errors for the power substrate.

use std::fmt;

/// A rejected numeric parameter: the offending value plus the constraint
/// it violated. Mirrors `mpr_core::MarketError::InvalidParameter` so
/// callers handle both sides of the stack uniformly.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A constructor argument was out of range.
    InvalidParameter {
        /// Human-readable parameter name (e.g. `"oversubscription percent"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// The constraint the value violated.
        constraint: &'static str,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid {name}: {value} ({constraint})")
            }
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter_and_constraint() {
        let e = PowerError::InvalidParameter {
            name: "static power",
            value: -1.0,
            constraint: "must be finite and non-negative",
        };
        let msg = e.to_string();
        assert!(msg.contains("static power"));
        assert!(msg.contains("-1"));
        assert!(msg.contains("finite and non-negative"));
    }
}
