//! Data-center thermal inertia (Section I / Section II).
//!
//! The second leg of the reactive-safety argument: "HPC data center
//! cooling can also withstand these short-lived overloads due to thermal
//! inertia", but "the cooling system cannot withstand overloads as long as
//! UPSs" — which is why the manager mitigates promptly even though breakers
//! would allow tens of minutes.
//!
//! We model the machine room as a lumped thermal capacitance: heat flows in
//! from IT power, out through cooling sized for the rated load, and the
//! room temperature integrates the difference.

use mpr_core::Watts;

/// Lumped-capacitance machine-room model.
///
/// `dT/dt = (P_IT − P_cooling) / C_th`, with cooling capacity equal to the
/// rated IT load (a data center's CRAC plant is sized for its nameplate
/// power, not its oversubscribed peak).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Cooling capacity, watts (heat removed at full fan/chiller output).
    cooling_w: f64,
    /// Thermal capacitance, joules per kelvin.
    capacitance_j_per_k: f64,
    /// Supply/setpoint temperature, °C.
    setpoint_c: f64,
    /// Temperature at which equipment must shut down, °C.
    critical_c: f64,
}

impl ThermalModel {
    /// Creates a thermal model.
    ///
    /// # Panics
    ///
    /// Panics unless `cooling_w` and `capacitance_j_per_k` are positive and
    /// `critical_c > setpoint_c`.
    #[must_use]
    pub fn new(cooling: Watts, capacitance_j_per_k: f64, setpoint_c: f64, critical_c: f64) -> Self {
        let cooling_w = cooling.get();
        assert!(cooling_w > 0.0, "cooling capacity must be positive");
        assert!(capacitance_j_per_k > 0.0, "capacitance must be positive");
        assert!(critical_c > setpoint_c, "critical must exceed setpoint");
        Self {
            cooling_w,
            capacitance_j_per_k,
            setpoint_c,
            critical_c,
        }
    }

    /// A typical mid-size room per kW of cooling: ~15 kJ/K of air thermal
    /// mass per kW (air turns over fast; fabric mass helps little on CRAC
    /// timescales), 22 °C setpoint, 35 °C critical inlet. With these
    /// constants the cooling margin binds *before* the breaker's long-delay
    /// zone — the paper's reason the manager mitigates promptly.
    #[must_use]
    pub fn typical(cooling: Watts) -> Self {
        Self::new(cooling, 15.0 * cooling.get(), 22.0, 35.0)
    }

    /// The rated cooling capacity.
    #[must_use]
    pub fn cooling_w(&self) -> Watts {
        Watts::new(self.cooling_w)
    }

    /// Time in seconds a *constant* IT load takes to heat the room from
    /// the setpoint to the critical temperature; `None` when the load is
    /// within cooling capacity (never overheats).
    #[must_use]
    pub fn time_to_critical(&self, it_load: Watts) -> Option<f64> {
        let excess = it_load.get() - self.cooling_w;
        if excess <= 0.0 {
            return None;
        }
        Some((self.critical_c - self.setpoint_c) * self.capacitance_j_per_k / excess)
    }
}

/// Integrates room temperature over a varying load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoomState {
    model: ThermalModel,
    temperature_c: f64,
}

impl RoomState {
    /// Creates a room at the cooling setpoint.
    #[must_use]
    pub fn new(model: ThermalModel) -> Self {
        Self {
            temperature_c: model.setpoint_c,
            model,
        }
    }

    /// Advances the room by `dt_seconds` under `it_load`. Cooling never
    /// pulls the room below its setpoint. Returns `true` if the room is at
    /// or above the critical temperature after the step.
    pub fn step(&mut self, it_load: Watts, dt_seconds: f64) -> bool {
        let excess = it_load.get() - self.model.cooling_w;
        self.temperature_c = (self.temperature_c
            + excess * dt_seconds / self.model.capacitance_j_per_k)
            .max(self.model.setpoint_c);
        self.temperature_c >= self.model.critical_c
    }

    /// Current room temperature, °C.
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Fraction of the setpoint→critical margin consumed, in `[0, 1]`.
    #[must_use]
    pub fn margin_used(&self) -> f64 {
        ((self.temperature_c - self.model.setpoint_c)
            / (self.model.critical_c - self.model.setpoint_c))
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        // 100 kW cooling, typical capacitance.
        ThermalModel::typical(Watts::new(100_000.0))
    }

    #[test]
    fn within_capacity_never_overheats() {
        let m = model();
        assert_eq!(m.time_to_critical(Watts::new(100_000.0)), None);
        assert_eq!(m.time_to_critical(Watts::new(50_000.0)), None);
        assert_eq!(m.cooling_w(), Watts::new(100_000.0));
    }

    #[test]
    fn moderate_overload_gives_minutes_of_inertia() {
        let m = model();
        // 15 % thermal overload.
        let t = m.time_to_critical(Watts::new(115_000.0)).unwrap();
        assert!(
            t > 10.0 * 60.0,
            "thermal inertia should cover several minutes, got {t} s"
        );
        // Deeper overloads overheat sooner.
        let t25 = m.time_to_critical(Watts::new(125_000.0)).unwrap();
        assert!(t25 < t);
    }

    #[test]
    fn room_integration_matches_closed_form() {
        let m = model();
        let load = Watts::new(120_000.0);
        let expected = m.time_to_critical(load).unwrap();
        let mut room = RoomState::new(m);
        let mut t = 0.0;
        while !room.step(load, 10.0) {
            t += 10.0;
            assert!(t < 2.0 * expected, "room never reached critical");
        }
        assert!((t - expected).abs() <= 20.0, "t={t} expected={expected}");
        assert!(room.margin_used() >= 1.0 - 1e-9);
    }

    #[test]
    fn cooling_recovers_but_not_below_setpoint() {
        let m = model();
        let mut room = RoomState::new(m);
        room.step(Watts::new(130_000.0), 300.0);
        let hot = room.temperature_c();
        assert!(hot > 22.0);
        room.step(Watts::new(50_000.0), 10_000.0);
        assert_eq!(room.temperature_c(), 22.0);
        assert_eq!(room.margin_used(), 0.0);
    }

    #[test]
    #[should_panic(expected = "critical must exceed setpoint")]
    fn bad_temperatures_panic() {
        let _ = ThermalModel::new(Watts::new(1000.0), 1000.0, 30.0, 25.0);
    }

    #[test]
    fn breaker_outlasts_cooling_for_same_overload() {
        // The paper's ordering: cooling is the tighter constraint, so the
        // manager reacts promptly even though breakers would allow longer.
        let cap = Watts::new(100_000.0);
        let m = ThermalModel::typical(cap);
        let b = crate::breaker::TripCurve::new(cap, 600.0);
        let overload = Watts::new(112_000.0);
        let t_room = m.time_to_critical(overload).unwrap();
        let t_breaker = b.time_to_trip(overload).unwrap();
        assert!(
            t_room < t_breaker,
            "cooling margin ({t_room:.0}s) should bind before the breaker ({t_breaker:.0}s)"
        );
    }
}
