//! Time-varying capacity policies.
//!
//! The paper's evaluation uses a fixed infrastructure capacity, but its
//! user-in-the-loop design explicitly generalizes beyond oversubscription:
//! "users can also assist in socially responsible HPC management, such as
//! cutting carbon emissions … and participating in demand response"
//! (Section I, merit ④). A [`CapacityPolicy`] abstracts *why* the usable
//! capacity at time `t` is what it is — a fixed UPS rating, a grid
//! demand-response obligation, or a carbon cap. The simulator consults the
//! policy every slot; the `mpr-grid` crate provides the grid-driven
//! implementations.

use mpr_core::Watts;

/// The usable power capacity as a function of time.
pub trait CapacityPolicy: Send + Sync {
    /// Capacity at `t_secs` from simulation origin.
    fn capacity_at(&self, t_secs: f64) -> Watts;
}

/// The paper's baseline: a constant capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedCapacity(pub Watts);

impl CapacityPolicy for FixedCapacity {
    fn capacity_at(&self, _t_secs: f64) -> Watts {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emergency::{EmergencyAction, EmergencyConfig, EmergencyController};

    #[test]
    fn fixed_capacity_is_constant() {
        let p = FixedCapacity(Watts::new(1000.0));
        assert_eq!(p.capacity_at(0.0), Watts::new(1000.0));
        assert_eq!(p.capacity_at(1e9), Watts::new(1000.0));
    }

    #[test]
    fn lowering_capacity_mid_run_triggers_emergency() {
        let mut c = EmergencyController::new(EmergencyConfig::paper(Watts::new(1000.0)));
        assert_eq!(c.step(0.0, Watts::new(900.0)), EmergencyAction::None);
        // A demand-response event shrinks the usable capacity to 800 W.
        c.set_capacity(Watts::new(800.0));
        match c.step(60.0, Watts::new(900.0)) {
            EmergencyAction::Declare { target } => {
                // Target: 900 − 0.99·800 = 108 W.
                assert!((target.get() - (900.0 - 0.99 * 800.0)).abs() < 1e-9);
            }
            other => panic!("expected Declare, got {other:?}"),
        }
    }

    #[test]
    fn policy_is_object_safe() {
        let p: Box<dyn CapacityPolicy> = Box::new(FixedCapacity(Watts::new(5.0)));
        assert_eq!(p.capacity_at(3.0), Watts::new(5.0));
    }
}
