//! Sensor-fault-tolerant power telemetry.
//!
//! The paper's reactive loop (Section III-E) assumes the manager reads the
//! true system power `P(t)` and compares it against capacity `C`. Real
//! telemetry is noisy, delayed and lossy: meters drift, management networks
//! drop samples, BMC registers freeze, and transient spikes alias into the
//! sampling window. This module separates the two concerns:
//!
//! * [`PowerSensor`] — the measurement side. [`FaultySensor`] layers
//!   seeded-deterministic fault processes (Gaussian noise, dropout,
//!   stuck-at-last-value, delivery delay, spike outliers) over the true
//!   power, so simulations can study the reactive loop under realistic
//!   measurement error. Individual adapters ([`GaussianNoise`],
//!   [`Dropout`], [`StuckAtLast`], [`Delayed`], [`Spike`]) compose over any
//!   sensor for targeted experiments.
//! * [`RobustEstimator`] — the estimation side. A median-of-window front
//!   end absorbs isolated spikes, an outlier gate protects the EWMA from
//!   bursts while still tracking genuine level shifts, staleness detection
//!   flags silent sensors, and a configurable confidence margin biases the
//!   reported **upper bound** conservatively so that feeding it to the
//!   [`EmergencyController`](crate::EmergencyController) never lets true
//!   power exceed capacity because of *under*-estimation, while transient
//!   spikes do not trigger false emergencies.
//!
//! Everything here is deterministic given the seed, and every piece of
//! mutable state is exposed (public fields) so a simulation can snapshot
//! and restore the pipeline bit-for-bit across a crash/resume boundary.

use std::collections::VecDeque;

use mpr_core::Watts;

/// A tiny deterministic PRNG (SplitMix64) for the sensor fault processes.
///
/// `mpr-power` deliberately has no RNG dependency; SplitMix64 is the
/// standard 64-bit mixing generator — a single `u64` of state, trivially
/// snapshottable, and statistically ample for fault sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    /// Current generator state. Public so checkpoints can capture and
    /// restore the stream exactly.
    pub state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal draw (Box–Muller, no caching so the per-draw state
    /// advance is fixed).
    pub fn next_gaussian(&mut self) -> f64 {
        // 1 − u ∈ (0, 1] keeps the log argument away from zero.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// One delivered power sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// Measurement timestamp, seconds. Under delivery delay this is older
    /// than the sampling instant.
    pub t_secs: f64,
    /// Measured power (possibly corrupted).
    pub power: Watts,
}

/// A power sensor: polled once per monitoring interval, it may deliver a
/// (possibly corrupted, possibly stale) reading or nothing at all.
pub trait PowerSensor {
    /// Polls the sensor at `now_secs` while the true system power is
    /// `true_power`. `None` models a dropped sample.
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading>;
}

/// The ideal sensor: delivers the true power, always, immediately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrueSensor;

impl PowerSensor for TrueSensor {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        Some(SensorReading {
            t_secs: now_secs,
            power: true_power,
        })
    }
}

/// Adapter: multiplicative zero-mean Gaussian noise on every delivered
/// reading (meter accuracy class / ADC noise).
#[derive(Debug, Clone)]
pub struct GaussianNoise<S> {
    /// The wrapped sensor.
    pub inner: S,
    /// Noise standard deviation as a fraction of the reading.
    pub sigma_frac: f64,
    /// Fault-process RNG.
    pub rng: SplitMix64,
}

impl<S> GaussianNoise<S> {
    /// Wraps `inner`, corrupting readings with the given relative sigma.
    pub fn new(inner: S, sigma_frac: f64, seed: u64) -> Self {
        Self {
            inner,
            sigma_frac,
            rng: SplitMix64::new(seed),
        }
    }
}

impl<S: PowerSensor> PowerSensor for GaussianNoise<S> {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        let r = self.inner.sample(now_secs, true_power)?;
        let factor = (1.0 + self.sigma_frac * self.rng.next_gaussian()).max(0.0);
        Some(SensorReading {
            power: r.power * factor,
            ..r
        })
    }
}

/// Adapter: drops each delivered reading with a fixed probability
/// (management-network sample loss).
#[derive(Debug, Clone)]
pub struct Dropout<S> {
    /// The wrapped sensor.
    pub inner: S,
    /// Per-sample drop probability.
    pub drop_prob: f64,
    /// Fault-process RNG.
    pub rng: SplitMix64,
}

impl<S> Dropout<S> {
    /// Wraps `inner`, dropping samples with probability `drop_prob`.
    pub fn new(inner: S, drop_prob: f64, seed: u64) -> Self {
        Self {
            inner,
            drop_prob,
            rng: SplitMix64::new(seed),
        }
    }
}

impl<S: PowerSensor> PowerSensor for Dropout<S> {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        let r = self.inner.sample(now_secs, true_power)?;
        (self.rng.next_f64() >= self.drop_prob).then_some(r)
    }
}

/// Adapter: with a fixed per-sample probability the sensor freezes and
/// replays its last delivered reading — timestamp and all — for a number
/// of polls (a latched BMC register).
#[derive(Debug, Clone)]
pub struct StuckAtLast<S> {
    /// The wrapped sensor.
    pub inner: S,
    /// Per-sample probability of entering a stuck episode.
    pub stick_prob: f64,
    /// Length of a stuck episode, polls.
    pub stuck_polls: u32,
    /// Polls left in the current episode.
    pub remaining: u32,
    /// Last delivered reading (the value replayed while stuck).
    pub held: Option<SensorReading>,
    /// Fault-process RNG.
    pub rng: SplitMix64,
}

impl<S> StuckAtLast<S> {
    /// Wraps `inner` with the given episode probability and length.
    pub fn new(inner: S, stick_prob: f64, stuck_polls: u32, seed: u64) -> Self {
        Self {
            inner,
            stick_prob,
            stuck_polls,
            remaining: 0,
            held: None,
            rng: SplitMix64::new(seed),
        }
    }
}

impl<S: PowerSensor> PowerSensor for StuckAtLast<S> {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        let fresh = self.inner.sample(now_secs, true_power);
        if self.remaining > 0 {
            self.remaining -= 1;
            return self.held;
        }
        if self.held.is_some() && self.rng.next_f64() < self.stick_prob {
            self.remaining = self.stuck_polls.saturating_sub(1);
            return self.held;
        }
        if fresh.is_some() {
            self.held = fresh;
        }
        fresh
    }
}

/// Adapter: delivers readings a fixed number of polls late (telemetry
/// pipeline latency). Timestamps are preserved, so delivered readings are
/// *stale*, and the first `delay_polls` polls deliver nothing.
#[derive(Debug, Clone)]
pub struct Delayed<S> {
    /// The wrapped sensor.
    pub inner: S,
    /// Delivery delay, polls.
    pub delay_polls: usize,
    /// In-flight readings.
    pub buf: VecDeque<SensorReading>,
}

impl<S> Delayed<S> {
    /// Wraps `inner` with a delivery delay of `delay_polls` polls.
    pub fn new(inner: S, delay_polls: usize) -> Self {
        Self {
            inner,
            delay_polls,
            buf: VecDeque::new(),
        }
    }
}

impl<S: PowerSensor> PowerSensor for Delayed<S> {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        if let Some(r) = self.inner.sample(now_secs, true_power) {
            self.buf.push_back(r);
        }
        if self.buf.len() > self.delay_polls {
            self.buf.pop_front()
        } else {
            None
        }
    }
}

/// Adapter: with a fixed probability a reading is replaced by a spike
/// outlier, `±magnitude_frac` around the true value (EMI glitches, ADC
/// range errors).
#[derive(Debug, Clone)]
pub struct Spike<S> {
    /// The wrapped sensor.
    pub inner: S,
    /// Per-sample spike probability.
    pub spike_prob: f64,
    /// Spike magnitude as a fraction of the reading.
    pub magnitude_frac: f64,
    /// Fault-process RNG.
    pub rng: SplitMix64,
}

impl<S> Spike<S> {
    /// Wraps `inner` with the given spike probability and magnitude.
    pub fn new(inner: S, spike_prob: f64, magnitude_frac: f64, seed: u64) -> Self {
        Self {
            inner,
            spike_prob,
            magnitude_frac,
            rng: SplitMix64::new(seed),
        }
    }
}

impl<S: PowerSensor> PowerSensor for Spike<S> {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        let r = self.inner.sample(now_secs, true_power)?;
        if self.rng.next_f64() < self.spike_prob {
            let sign = if self.rng.next_f64() < 0.5 { 1.0 } else { -1.0 };
            let factor = (1.0 + sign * self.magnitude_frac).max(0.0);
            return Some(SensorReading {
                power: r.power * factor,
                ..r
            });
        }
        Some(r)
    }
}

/// Fault mix for the flat [`FaultySensor`] used by the simulator. All-zero
/// rates (the default) make the sensor ideal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorFaultConfig {
    /// Gaussian noise sigma as a fraction of the reading.
    pub noise_sigma_frac: f64,
    /// Per-sample drop probability.
    pub dropout_prob: f64,
    /// Per-sample probability of a stuck episode.
    pub stuck_prob: f64,
    /// Stuck episode length, polls.
    pub stuck_polls: u32,
    /// Delivery delay, polls (readings arrive stale).
    pub delay_polls: usize,
    /// Per-sample spike probability.
    pub spike_prob: f64,
    /// Spike magnitude as a fraction of the reading.
    pub spike_magnitude_frac: f64,
}

impl Default for SensorFaultConfig {
    fn default() -> Self {
        Self {
            noise_sigma_frac: 0.0,
            dropout_prob: 0.0,
            stuck_prob: 0.0,
            stuck_polls: 5,
            delay_polls: 0,
            spike_prob: 0.0,
            spike_magnitude_frac: 0.5,
        }
    }
}

impl SensorFaultConfig {
    /// `true` when at least one fault process is enabled.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.noise_sigma_frac > 0.0
            || self.dropout_prob > 0.0
            || self.stuck_prob > 0.0
            || self.delay_polls > 0
            || self.spike_prob > 0.0
    }
}

/// A sensor running the full fault mix of [`SensorFaultConfig`] with flat,
/// directly snapshottable state (unlike a tower of generic adapters).
///
/// Fault order per poll: delivery delay → stuck register → dropout →
/// Gaussian noise → spike. The RNG draw sequence is a pure function of the
/// seed and the poll/branch history, so runs reproduce bit-for-bit and a
/// restored snapshot continues the exact stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultySensor {
    /// The fault mix.
    pub config: SensorFaultConfig,
    /// Fault-process RNG.
    pub rng: SplitMix64,
    /// In-flight readings (delivery delay).
    pub delay_buf: VecDeque<SensorReading>,
    /// Polls left in the current stuck episode.
    pub stuck_remaining: u32,
    /// Last delivered reading (replayed while stuck).
    pub held: Option<SensorReading>,
}

impl FaultySensor {
    /// Creates a sensor with the given fault mix and seed.
    #[must_use]
    pub fn new(config: SensorFaultConfig, seed: u64) -> Self {
        Self {
            config,
            rng: SplitMix64::new(seed),
            delay_buf: VecDeque::new(),
            stuck_remaining: 0,
            held: None,
        }
    }
}

impl PowerSensor for FaultySensor {
    fn sample(&mut self, now_secs: f64, true_power: Watts) -> Option<SensorReading> {
        let cfg = self.config;
        let mut reading = SensorReading {
            t_secs: now_secs,
            power: true_power,
        };
        if cfg.delay_polls > 0 {
            self.delay_buf.push_back(reading);
            if self.delay_buf.len() <= cfg.delay_polls {
                return None;
            }
            match self.delay_buf.pop_front() {
                Some(delayed) => reading = delayed,
                None => return None,
            }
        }
        if self.stuck_remaining > 0 {
            self.stuck_remaining -= 1;
            return self.held;
        }
        if cfg.stuck_prob > 0.0 && self.held.is_some() && self.rng.next_f64() < cfg.stuck_prob {
            self.stuck_remaining = cfg.stuck_polls.saturating_sub(1);
            return self.held;
        }
        if cfg.dropout_prob > 0.0 && self.rng.next_f64() < cfg.dropout_prob {
            return None;
        }
        if cfg.noise_sigma_frac > 0.0 {
            let factor = (1.0 + cfg.noise_sigma_frac * self.rng.next_gaussian()).max(0.0);
            reading.power = reading.power * factor;
        }
        if cfg.spike_prob > 0.0 && self.rng.next_f64() < cfg.spike_prob {
            let sign = if self.rng.next_f64() < 0.5 { 1.0 } else { -1.0 };
            let factor = (1.0 + sign * cfg.spike_magnitude_frac).max(0.0);
            reading.power = reading.power * factor;
        }
        self.held = Some(reading);
        Some(reading)
    }
}

/// Tuning of the [`RobustEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Median window length, samples.
    pub window: usize,
    /// EWMA smoothing factor in `(0, 1]` (1 = no smoothing).
    pub ewma_alpha: f64,
    /// A delivered sample deviating from the EWMA by more than this
    /// fraction is rejected as an outlier — unless the deviation persists
    /// (see [`outlier_streak`](Self::outlier_streak)).
    pub outlier_frac: f64,
    /// Consecutive rejections after which the deviation is accepted as a
    /// genuine level shift (a step change must never be gated forever).
    pub outlier_streak: usize,
    /// The estimate counts as stale once the newest underlying measurement
    /// is older than this, seconds.
    pub stale_after_secs: f64,
    /// Confidence margin: the reported upper bound is
    /// `estimate · (1 + margin_frac)`.
    pub margin_frac: f64,
    /// Extra margin applied while stale (the estimate may lag a rising
    /// load).
    pub stale_margin_frac: f64,
}

impl Default for EstimatorConfig {
    /// Defaults tuned for 60 s polls: 5-sample median, gentle EWMA, 15 %
    /// outlier gate releasing after 3 polls, 3-poll staleness, 1 % margin
    /// (+2 % while stale).
    fn default() -> Self {
        Self {
            window: 5,
            ewma_alpha: 0.4,
            outlier_frac: 0.15,
            outlier_streak: 3,
            stale_after_secs: 180.0,
            margin_frac: 0.01,
            stale_margin_frac: 0.02,
        }
    }
}

impl EstimatorConfig {
    /// A pass-through configuration: no median window, no smoothing, no
    /// outlier gate, no margin, never stale. Feeding a faulty sensor
    /// through a pass-through estimator shows what the raw telemetry would
    /// do to the controller — the ablation baseline.
    #[must_use]
    pub fn passthrough() -> Self {
        Self {
            window: 1,
            ewma_alpha: 1.0,
            outlier_frac: f64::INFINITY,
            outlier_streak: usize::MAX,
            stale_after_secs: f64::INFINITY,
            margin_frac: 0.0,
            stale_margin_frac: 0.0,
        }
    }
}

/// Health counters of a telemetry pipeline, accumulated by the estimator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryHealth {
    /// Samples the sensor delivered.
    pub samples_delivered: usize,
    /// Polls that delivered nothing.
    pub samples_missed: usize,
    /// Delivered samples rejected by the outlier gate.
    pub outliers_rejected: usize,
    /// Polls at which the estimate was stale.
    pub stale_polls: usize,
}

/// The estimator's output for one poll.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Best estimate of the current power.
    pub power: Watts,
    /// Conservative upper confidence bound — feed **this** to the
    /// emergency controller so under-estimation cannot hide an overload.
    pub upper_bound: Watts,
    /// Age of the newest underlying measurement, seconds.
    pub age_secs: f64,
    /// `true` when the newest measurement is older than the staleness
    /// threshold (or no measurement ever arrived).
    pub stale: bool,
}

/// Median-of-window + outlier-gated EWMA power estimator.
///
/// ```
/// use mpr_core::Watts;
/// use mpr_power::telemetry::{
///     EstimatorConfig, PowerSensor, RobustEstimator, TrueSensor,
/// };
///
/// let mut sensor = TrueSensor;
/// let mut est = RobustEstimator::new(EstimatorConfig::default());
/// for poll in 0..10 {
///     let t = poll as f64 * 60.0;
///     let r = sensor.sample(t, Watts::new(1000.0));
///     let e = est.observe(t, r);
///     assert!(e.upper_bound >= e.power);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RobustEstimator {
    /// Tuning.
    pub config: EstimatorConfig,
    /// Accepted samples, newest last (bounded by `config.window`).
    pub window: VecDeque<f64>,
    /// Smoothed estimate.
    pub ewma: Option<f64>,
    /// Consecutive outlier rejections.
    pub reject_streak: usize,
    /// Timestamp of the newest underlying measurement.
    pub last_reading_secs: Option<f64>,
    /// Health counters.
    pub health: TelemetryHealth,
}

impl RobustEstimator {
    /// Creates an estimator with the given tuning.
    #[must_use]
    pub fn new(config: EstimatorConfig) -> Self {
        Self {
            config,
            window: VecDeque::new(),
            ewma: None,
            reject_streak: 0,
            last_reading_secs: None,
            health: TelemetryHealth::default(),
        }
    }

    /// Folds one poll result in and returns the current estimate.
    pub fn observe(&mut self, now_secs: f64, reading: Option<SensorReading>) -> PowerEstimate {
        match reading {
            Some(r) => {
                self.health.samples_delivered += 1;
                self.last_reading_secs = Some(
                    self.last_reading_secs
                        .map_or(r.t_secs, |prev| prev.max(r.t_secs)),
                );
                self.accept_or_reject(r.power.get());
            }
            None => self.health.samples_missed += 1,
        }
        if let Some(med) = self.median() {
            let alpha = self.config.ewma_alpha.clamp(0.0, 1.0);
            self.ewma = Some(match self.ewma {
                Some(prev) => alpha * med + (1.0 - alpha) * prev,
                None => med,
            });
        }
        let estimate = self.ewma.unwrap_or(0.0);
        let age_secs = self
            .last_reading_secs
            .map_or(f64::INFINITY, |last| (now_secs - last).max(0.0));
        let stale = age_secs > self.config.stale_after_secs;
        if stale {
            self.health.stale_polls += 1;
        }
        let margin = self.config.margin_frac
            + if stale {
                self.config.stale_margin_frac
            } else {
                0.0
            };
        PowerEstimate {
            power: Watts::new(estimate),
            upper_bound: Watts::new(estimate * (1.0 + margin)),
            age_secs,
            stale,
        }
    }

    /// Gates one delivered value against the EWMA before it may enter the
    /// median window. A deviation persisting for `outlier_streak`
    /// consecutive polls is treated as a genuine regime change: the stale
    /// window is flushed and the EWMA re-seeds at the new level, so step
    /// changes are only delayed by the streak, never suppressed.
    fn accept_or_reject(&mut self, value: f64) {
        let gated = match self.ewma {
            Some(e) => {
                let scale = e.abs().max(1.0);
                (value - e).abs() > self.config.outlier_frac * scale
            }
            None => false,
        };
        if gated {
            if self.reject_streak.saturating_add(1) < self.config.outlier_streak.max(1) {
                self.reject_streak += 1;
                self.health.outliers_rejected += 1;
                return;
            }
            // Confirmed regime change: trust the new level outright.
            self.window.clear();
            self.ewma = None;
        }
        self.reject_streak = 0;
        self.window.push_back(value);
        while self.window.len() > self.config.window.max(1) {
            self.window.pop_front();
        }
    }

    fn median(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let mid = n / 2;
        if n % 2 == 1 {
            v.get(mid).copied()
        } else {
            match (v.get(mid.wrapping_sub(1)), v.get(mid)) {
                (Some(a), Some(b)) => Some(0.5 * (a + b)),
                _ => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmergencyAction, EmergencyConfig, EmergencyController};

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(7);
        let mean: f64 = (0..4000).map(|_| r.next_f64()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        let gmean: f64 = (0..4000).map(|_| r.next_gaussian()).sum::<f64>() / 4000.0;
        assert!(gmean.abs() < 0.1, "gaussian mean {gmean}");
    }

    #[test]
    fn true_sensor_is_ideal() {
        let mut s = TrueSensor;
        let r = s.sample(60.0, Watts::new(500.0)).unwrap();
        assert_eq!(r.t_secs, 60.0);
        assert_eq!(r.power, Watts::new(500.0));
    }

    #[test]
    fn gaussian_noise_is_zero_mean() {
        let mut s = GaussianNoise::new(TrueSensor, 0.05, 11);
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|i| s.sample(i as f64, Watts::new(1000.0)).unwrap().power.get())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 1000.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn dropout_rate_matches_probability() {
        let mut s = Dropout::new(TrueSensor, 0.3, 5);
        let n = 4000;
        let delivered = (0..n)
            .filter(|&i| s.sample(f64::from(i), Watts::new(100.0)).is_some())
            .count();
        let rate = 1.0 - delivered as f64 / f64::from(n);
        assert!((rate - 0.3).abs() < 0.05, "drop rate {rate}");
    }

    #[test]
    fn stuck_sensor_replays_last_reading() {
        let mut s = StuckAtLast::new(TrueSensor, 1.0, 3, 1);
        let first = s.sample(0.0, Watts::new(100.0)).unwrap();
        assert_eq!(first.power, Watts::new(100.0));
        // Every subsequent episode replays the held reading, timestamp
        // included.
        for i in 1..=3 {
            let r = s
                .sample(i as f64 * 60.0, Watts::new(100.0 + i as f64))
                .unwrap();
            assert_eq!(r, first, "poll {i} must replay the held reading");
        }
    }

    #[test]
    fn delayed_sensor_preserves_timestamps() {
        let mut s = Delayed::new(TrueSensor, 2);
        assert!(s.sample(0.0, Watts::new(10.0)).is_none());
        assert!(s.sample(60.0, Watts::new(20.0)).is_none());
        let r = s.sample(120.0, Watts::new(30.0)).unwrap();
        assert_eq!(r.t_secs, 0.0);
        assert_eq!(r.power, Watts::new(10.0));
    }

    #[test]
    fn spike_sensor_spikes_at_given_rate() {
        let mut s = Spike::new(TrueSensor, 0.2, 0.5, 3);
        let n = 4000;
        let spiked = (0..n)
            .filter(|&i| {
                let p = s
                    .sample(f64::from(i), Watts::new(100.0))
                    .unwrap()
                    .power
                    .get();
                (p - 100.0).abs() > 1.0
            })
            .count();
        let rate = spiked as f64 / f64::from(n);
        assert!((rate - 0.2).abs() < 0.04, "spike rate {rate}");
    }

    #[test]
    fn faulty_sensor_default_is_ideal() {
        let mut s = FaultySensor::new(SensorFaultConfig::default(), 9);
        assert!(!s.config.is_active());
        for i in 0..10 {
            let t = f64::from(i) * 60.0;
            let r = s.sample(t, Watts::new(123.0)).unwrap();
            assert_eq!(r.t_secs, t);
            assert_eq!(r.power, Watts::new(123.0));
        }
    }

    #[test]
    fn faulty_sensor_is_seed_deterministic() {
        let cfg = SensorFaultConfig {
            noise_sigma_frac: 0.05,
            dropout_prob: 0.2,
            stuck_prob: 0.05,
            delay_polls: 1,
            spike_prob: 0.05,
            ..SensorFaultConfig::default()
        };
        assert!(cfg.is_active());
        let mut a = FaultySensor::new(cfg, 77);
        let mut b = FaultySensor::new(cfg, 77);
        for i in 0..500 {
            let t = f64::from(i) * 60.0;
            let p = Watts::new(1000.0 + f64::from(i));
            assert_eq!(a.sample(t, p), b.sample(t, p));
        }
    }

    #[test]
    fn faulty_sensor_snapshot_resumes_identically() {
        let cfg = SensorFaultConfig {
            noise_sigma_frac: 0.1,
            dropout_prob: 0.3,
            stuck_prob: 0.1,
            delay_polls: 2,
            spike_prob: 0.1,
            ..SensorFaultConfig::default()
        };
        let mut reference = FaultySensor::new(cfg, 5);
        for i in 0..100 {
            reference.sample(f64::from(i) * 60.0, Watts::new(900.0));
        }
        // Cloning captures the full state — the clone must continue the
        // exact stream (the checkpoint restores exactly these fields).
        let mut resumed = reference.clone();
        for i in 100..200 {
            let t = f64::from(i) * 60.0;
            assert_eq!(
                reference.sample(t, Watts::new(950.0)),
                resumed.sample(t, Watts::new(950.0))
            );
        }
    }

    #[test]
    fn estimator_tracks_clean_signal() {
        let mut est = RobustEstimator::new(EstimatorConfig::default());
        let mut sensor = TrueSensor;
        let mut last = est.observe(0.0, sensor.sample(0.0, Watts::new(1000.0)));
        for i in 1..20 {
            let t = f64::from(i) * 60.0;
            last = est.observe(t, sensor.sample(t, Watts::new(1000.0)));
        }
        assert!((last.power.get() - 1000.0).abs() < 1e-6);
        assert!(!last.stale);
        assert_eq!(last.age_secs, 0.0);
        // The upper bound carries exactly the configured margin.
        assert!((last.upper_bound.get() - 1010.0).abs() < 1e-6);
        assert_eq!(est.health.samples_missed, 0);
    }

    #[test]
    fn estimator_rejects_isolated_spikes() {
        let mut est = RobustEstimator::new(EstimatorConfig::default());
        for i in 0..10 {
            let t = f64::from(i) * 60.0;
            est.observe(
                t,
                Some(SensorReading {
                    t_secs: t,
                    power: Watts::new(1000.0),
                }),
            );
        }
        // One +60 % spike: gated, estimate unmoved.
        let e = est.observe(
            600.0,
            Some(SensorReading {
                t_secs: 600.0,
                power: Watts::new(1600.0),
            }),
        );
        assert!((e.power.get() - 1000.0).abs() < 1e-6, "estimate {e:?}");
        assert_eq!(est.health.outliers_rejected, 1);
    }

    #[test]
    fn estimator_accepts_persistent_level_shift() {
        let mut est = RobustEstimator::new(EstimatorConfig::default());
        for i in 0..10 {
            let t = f64::from(i) * 60.0;
            est.observe(
                t,
                Some(SensorReading {
                    t_secs: t,
                    power: Watts::new(1000.0),
                }),
            );
        }
        // A genuine step to 1600 W: gated for `outlier_streak − 1` polls,
        // then tracked.
        let mut last = None;
        for i in 10..25 {
            let t = f64::from(i) * 60.0;
            last = Some(est.observe(
                t,
                Some(SensorReading {
                    t_secs: t,
                    power: Watts::new(1600.0),
                }),
            ));
        }
        let e = last.unwrap();
        assert!(
            (e.power.get() - 1600.0).abs() < 10.0,
            "estimate must reach the new level, got {e:?}"
        );
    }

    #[test]
    fn estimator_flags_staleness_and_widens_margin() {
        let mut est = RobustEstimator::new(EstimatorConfig::default());
        est.observe(
            0.0,
            Some(SensorReading {
                t_secs: 0.0,
                power: Watts::new(1000.0),
            }),
        );
        // Sensor silent for 10 polls: estimate holds, staleness flips on
        // once the age threshold passes and the margin widens.
        let mut e = est.observe(60.0, None);
        assert!(!e.stale);
        for i in 2..=10 {
            e = est.observe(f64::from(i) * 60.0, None);
        }
        assert!(e.stale);
        assert_eq!(e.age_secs, 600.0);
        assert!((e.power.get() - 1000.0).abs() < 1e-6);
        assert!(
            (e.upper_bound.get() - 1030.0).abs() < 1e-6,
            "1% + 2% stale margin"
        );
        assert!(est.health.stale_polls > 0);
        assert_eq!(est.health.samples_missed, 10);
    }

    #[test]
    fn estimator_with_no_readings_reports_zero_and_stale() {
        let mut est = RobustEstimator::new(EstimatorConfig::default());
        let e = est.observe(0.0, None);
        assert_eq!(e.power, Watts::ZERO);
        assert_eq!(e.upper_bound, Watts::ZERO);
        assert!(e.stale);
        assert!(e.age_secs.is_infinite());
    }

    #[test]
    fn passthrough_config_forwards_raw_readings() {
        let mut est = RobustEstimator::new(EstimatorConfig::passthrough());
        for (i, p) in [1000.0, 1600.0, 400.0, 1000.0].iter().enumerate() {
            let t = i as f64 * 60.0;
            let e = est.observe(
                t,
                Some(SensorReading {
                    t_secs: t,
                    power: Watts::new(*p),
                }),
            );
            assert!((e.power.get() - p).abs() < 1e-9, "raw value forwarded");
            assert_eq!(e.power, e.upper_bound, "no margin");
            assert!(!e.stale);
        }
        assert_eq!(est.health.outliers_rejected, 0);
    }

    /// End-to-end: a spiky sensor drives the emergency controller. Raw
    /// telemetry declares false emergencies; the robust estimator does not.
    #[test]
    fn robust_estimator_suppresses_false_emergencies() {
        let true_power = Watts::new(950.0); // below the 1000 W capacity
        let spiky = SensorFaultConfig {
            spike_prob: 0.1,
            spike_magnitude_frac: 0.5,
            ..SensorFaultConfig::default()
        };
        let run = |est_cfg: EstimatorConfig| -> usize {
            let mut sensor = FaultySensor::new(spiky, 21);
            let mut est = RobustEstimator::new(est_cfg);
            let mut ctl = EmergencyController::new(EmergencyConfig::paper(Watts::new(1000.0)));
            // Commissioning: a few clean polls seed the estimator before
            // the faulty feed takes over.
            for i in 0..5 {
                let t = f64::from(i) * 60.0;
                est.observe(
                    t,
                    Some(SensorReading {
                        t_secs: t,
                        power: true_power,
                    }),
                );
            }
            let mut declares = 0;
            for i in 5..200 {
                let t = f64::from(i) * 60.0;
                let e = est.observe(t, sensor.sample(t, true_power));
                if matches!(ctl.step(t, e.upper_bound), EmergencyAction::Declare { .. }) {
                    declares += 1;
                }
            }
            declares
        };
        assert!(
            run(EstimatorConfig::passthrough()) > 0,
            "raw spikes must cross capacity"
        );
        assert_eq!(
            run(EstimatorConfig::default()),
            0,
            "robust estimator must suppress transient spikes"
        );
    }

    /// End-to-end: a sustained true overload is declared despite dropout,
    /// and the conservative upper bound never under-reports a settled
    /// signal.
    #[test]
    fn sustained_overload_is_declared_through_dropout() {
        let lossy = SensorFaultConfig {
            dropout_prob: 0.4,
            ..SensorFaultConfig::default()
        };
        let mut sensor = FaultySensor::new(lossy, 13);
        let mut est = RobustEstimator::new(EstimatorConfig::default());
        let mut ctl = EmergencyController::new(EmergencyConfig::paper(Watts::new(1000.0)));
        let mut declared = false;
        for i in 0..50 {
            let t = f64::from(i) * 60.0;
            let e = est.observe(t, sensor.sample(t, Watts::new(1100.0)));
            if matches!(ctl.step(t, e.upper_bound), EmergencyAction::Declare { .. }) {
                declared = true;
                // Conservative: the declared target covers at least the
                // true excess over the buffered capacity.
                assert!(
                    ctl.active_target().get() >= 1100.0 - 990.0 - 1e-9,
                    "target {} must cover the true excess",
                    ctl.active_target()
                );
                break;
            }
        }
        assert!(declared, "a 10% sustained overload must be declared");
    }
}
