//! Federated clearing of the whole power tree.
//!
//! The paper clears one global constraint; [`HierarchicalMarket`] clears
//! *every* oversubscribed level of a [`PowerHierarchy`]. Jobs are assigned
//! to racks; each overloaded node runs its own subtree market over an
//! [`InstanceView`] window of the shared [`MarketInstance`] with its local
//! capacity deficit as the target. The sweep walks
//! [`PowerHierarchy::overloaded`] bottom-up (deepest level first, so rack
//! markets shed load before their UPS asks for more), commits the
//! incremental reductions, propagates the residual demand up, and
//! re-clears until the root is feasible or no further progress is
//! possible.
//!
//! Determinism: overloaded nodes are visited in (depth, id) order;
//! same-depth subtree markets (always disjoint) clear in parallel on the
//! rayon shim, whose `collect` returns results in task-index order, and
//! the commit fold then runs sequentially in that same order — so the
//! outcome is bit-identical across thread counts (`RAYON_NUM_THREADS=1`
//! vs default).
//!
//! Flat equivalence: when only one node is constrained and every job is in
//! its subtree (e.g. a root-only-constrained tree), the single market
//! clears the *identity* view — the borrowed full instance — and
//! [`Clearing::merge`] returns that clearing verbatim, so the federated
//! path is bit-identical to `mechanism.clear(&instance, target)`,
//! diagnostics included.

use std::collections::BTreeMap;

use mpr_core::mechanism::{
    Clearing, Diagnostics, InstanceView, MarketInstance, Mechanism, MechanismError, ParticipantSpec,
};
use mpr_core::{Price, Watts};
use rayon::prelude::*;

use crate::hierarchy::{LevelKind, PowerHierarchy};

/// Residual tolerance: deficits below this are treated as feasible.
const DEFICIT_TOL: f64 = 1e-6;

/// Default for [`HierarchicalMarket::with_exhausted_frac`]: a row whose
/// remaining Δ has fallen to this fraction of its original Δ (or below an
/// absolute floor) is exhausted and never re-marketed. A best-effort
/// ceiling clear leaves exactly `Δ/1000` on the table (the ceiling is
/// 1000× the highest activation price); re-clearing those leftovers would
/// multiply the next market's activation prices — and hence its ceiling —
/// by 1000 per round, compounding payments without bound. The unshed
/// remainder escalates as residual instead, which the manager covers with
/// direct power capping outside the market.
pub const DEFAULT_EXHAUSTED_FRAC: f64 = 2e-3;

/// Errors from federated market construction and clearing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FederatedError {
    /// The job→rack assignment names a node that is not a rack (or does
    /// not exist).
    BadAssignment {
        /// Instance row with the bad assignment.
        row: usize,
        /// The offending node id.
        node: usize,
    },
    /// The assignment vector's length does not match the instance.
    AssignmentLength {
        /// Rows in the instance.
        rows: usize,
        /// Entries in the assignment.
        assigned: usize,
    },
    /// The hierarchy contains a node with zero (or negative) capacity. A
    /// dead node must be *fenced out* of the hierarchy (see
    /// `mpr_power::gridfault::TopologyState::to_hierarchy_scaled`), never
    /// modeled as a zero-capacity constraint: its deficit arithmetic would
    /// silently report the node as feasible while power still routes
    /// through it.
    ZeroCapacity {
        /// The offending node id.
        node: usize,
        /// The node's name.
        name: String,
    },
    /// Every subtree market failed; the first error observed.
    Mechanism(MechanismError),
}

impl std::fmt::Display for FederatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederatedError::BadAssignment { row, node } => {
                write!(
                    f,
                    "job row {row} is assigned to node {node}, which is not a rack"
                )
            }
            FederatedError::AssignmentLength { rows, assigned } => write!(
                f,
                "assignment has {assigned} entries for an instance of {rows} rows"
            ),
            FederatedError::ZeroCapacity { node, name } => write!(
                f,
                "node {node} (`{name}`) has zero capacity — fence dead nodes out of the \
                 hierarchy instead of zeroing them"
            ),
            FederatedError::Mechanism(e) => write!(f, "federated clearing failed: {e}"),
        }
    }
}

impl std::error::Error for FederatedError {}

/// Per-node accounting of one federated sweep, in (depth, id) order.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelReport {
    /// Hierarchy node id.
    pub id: usize,
    /// Node name.
    pub name: String,
    /// Node kind.
    pub kind: LevelKind,
    /// Distance from the root.
    pub depth: usize,
    /// The node's initial capacity deficit (its first market's target).
    pub target: Watts,
    /// Power shed by markets run *at this node* (not by descendants).
    pub cleared: Watts,
    /// Number of market clearings run at this node across all rounds.
    pub markets: usize,
    /// The node's own residual deficit after the sweep (0 when feasible).
    pub residual: Watts,
    /// Residual propagated up the subtree: `max(residual, children's
    /// propagated residuals)`. Edge-monotone by construction — the chaos
    /// oracle checks reported values preserve this.
    pub propagated_residual: Watts,
    /// `true` when the node's local markets could not shed its full
    /// deficit: the residual escalates past the market to the node's
    /// emergency path (direct capping / load shedding outside the market).
    pub escalated: bool,
}

/// The outcome of one federated sweep over the tree.
#[derive(Debug, Clone)]
pub struct FederatedOutcome {
    /// The merged clearing over the full instance, in parent row order.
    pub clearing: Clearing,
    /// Per-node accounting for every node that was overloaded at any
    /// point, in (depth, id) order.
    pub levels: Vec<LevelReport>,
    /// Sweep rounds executed (one round = one deepest-to-root pass).
    pub rounds: usize,
    /// Total initial deficit over the maximal overloaded subtrees — the
    /// headline target of the merged clearing.
    pub initial_deficit: Watts,
    /// Total final deficit over the maximal still-overloaded subtrees
    /// (zero when the whole tree cleared feasible).
    pub residual: Watts,
    /// Subtree markets cleared in total.
    pub markets: usize,
}

impl FederatedOutcome {
    /// `true` when every level ended within its capacity.
    #[must_use]
    pub fn feasible(&self) -> bool {
        self.residual.get() <= DEFICIT_TOL
    }
}

/// One subtree market task of a depth wave (disjoint from its siblings).
struct NodeTask {
    node: usize,
    /// Instance rows the clearing's outputs map to, in clearing order.
    /// The full subtree for a pristine window; only the non-exhausted
    /// rows for a re-materialized one.
    rows: Vec<u32>,
    target: Watts,
    /// The re-clear instance for a partially committed subtree; `None`
    /// means the market clears a pristine window of the original instance.
    remaining: Option<MarketInstance>,
}

/// What one subtree market produced.
struct NodeClear<'a> {
    node: usize,
    rows: Vec<u32>,
    target: Watts,
    /// The pristine window, when one was used (enables verbatim merge).
    view: Option<InstanceView<'a>>,
    result: Result<Clearing, MechanismError>,
}

/// Federated clearing over a power tree: jobs assigned to racks, one
/// market per oversubscribed node, residual demand propagated upward.
#[derive(Debug)]
pub struct HierarchicalMarket<'h> {
    hierarchy: &'h PowerHierarchy,
    /// Instance row → rack node id.
    assignment: Vec<usize>,
    /// Cap on deepest-to-root sweep rounds.
    max_rounds: usize,
    /// Remaining-Δ fraction under which a row is exhausted and never
    /// re-marketed (see [`DEFAULT_EXHAUSTED_FRAC`] for why).
    exhausted_frac: f64,
}

impl<'h> HierarchicalMarket<'h> {
    /// Builds a federated market over `hierarchy` with the given job→rack
    /// assignment (one rack id per instance row).
    ///
    /// # Errors
    ///
    /// * [`FederatedError::BadAssignment`] when an entry is not a rack id.
    /// * [`FederatedError::ZeroCapacity`] when any hierarchy node has no
    ///   capacity — dead nodes must be fenced out of the tree, not zeroed.
    pub fn new(
        hierarchy: &'h PowerHierarchy,
        assignment: Vec<usize>,
    ) -> Result<Self, FederatedError> {
        for node in 0..hierarchy.len() {
            if hierarchy.capacity_of(node).get() <= 0.0 {
                return Err(FederatedError::ZeroCapacity {
                    node,
                    name: hierarchy.name_of(node).to_owned(),
                });
            }
        }
        for (row, &node) in assignment.iter().enumerate() {
            if hierarchy.kind_of(node) != Some(LevelKind::Rack) {
                return Err(FederatedError::BadAssignment { row, node });
            }
        }
        Ok(Self {
            hierarchy,
            assignment,
            max_rounds: 8,
            exhausted_frac: DEFAULT_EXHAUSTED_FRAC,
        })
    }

    /// Overrides the sweep-round cap (default 8).
    #[must_use]
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds.max(1);
        self
    }

    /// Overrides the exhausted-row fencing fraction (default
    /// [`DEFAULT_EXHAUSTED_FRAC`]). Clamped to `[0, 0.5]`: rows whose
    /// remaining Δ falls under this fraction of their original Δ are
    /// dropped from re-clears so ceiling-clear leftovers are never
    /// re-priced.
    #[must_use]
    pub fn with_exhausted_frac(mut self, frac: f64) -> Self {
        self.exhausted_frac = frac.clamp(0.0, 0.5);
        self
    }

    /// The job→rack assignment in use.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The exhausted-row fencing fraction in use.
    #[must_use]
    pub fn exhausted_frac(&self) -> f64 {
        self.exhausted_frac
    }

    /// Ascending instance rows living in the subtree rooted at `node`.
    fn subtree_rows(&self, node: usize) -> Vec<u32> {
        let racks = self.hierarchy.leaf_racks(node);
        let mut rows: Vec<u32> = self
            .assignment
            .iter()
            .enumerate()
            .filter(|(_, rack)| racks.binary_search(rack).is_ok())
            .map(|(row, _)| row as u32)
            .collect();
        rows.sort_unstable();
        rows
    }

    /// Committed watts inside the subtree rooted at `node`.
    fn committed_in_subtree(&self, node: usize, committed: &[f64], wpu: &[f64]) -> f64 {
        let racks = self.hierarchy.leaf_racks(node);
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, rack)| racks.binary_search(rack).is_ok())
            .map(|(row, _)| {
                committed.get(row).copied().unwrap_or(0.0) * wpu.get(row).copied().unwrap_or(0.0)
            })
            .sum()
    }

    /// The node's capacity deficit after subtracting committed reductions.
    fn effective_deficit(&self, node: usize, committed: &[f64], wpu: &[f64]) -> f64 {
        let load = self.hierarchy.load_at(node).get();
        let shed = self.committed_in_subtree(node, committed, wpu);
        load - shed - self.hierarchy.capacity_of(node).get()
    }

    /// Clears the whole tree with one fresh mechanism per subtree market.
    ///
    /// The factory is invoked once per market (mechanisms are stateful and
    /// cleared concurrently); all six paper schemes are instance-driven
    /// and work here, as do [`FallbackChain`](mpr_core::mechanism::FallbackChain)s
    /// built fresh per call.
    ///
    /// # Errors
    ///
    /// * [`FederatedError::AssignmentLength`] on a row-count mismatch.
    /// * [`FederatedError::Mechanism`] when every market failed and
    ///   nothing was committed.
    pub fn clear<M, F>(
        &self,
        instance: &MarketInstance,
        factory: F,
    ) -> Result<FederatedOutcome, FederatedError>
    where
        M: Mechanism,
        F: Fn() -> M + Sync,
    {
        let n = instance.len();
        if self.assignment.len() != n {
            return Err(FederatedError::AssignmentLength {
                rows: n,
                assigned: self.assignment.len(),
            });
        }
        let wpu = instance.watts_per_unit_slice().to_vec();
        let deltas = instance.deltas().to_vec();

        let mut committed = vec![0.0f64; n];
        let mut prices_acc = vec![0.0f64; n];
        let mut payments_acc = vec![0.0f64; n];
        let mut headline = Price::ZERO;
        let mut folded: Option<Diagnostics> = None;
        // Pristine windows cleared so far; `None` once any market ran over
        // a re-materialized (partially committed) subtree.
        let mut pristine_parts: Option<Vec<(InstanceView<'_>, Clearing)>> = Some(Vec::new());
        let mut reports: BTreeMap<usize, LevelReport> = BTreeMap::new();
        let mut first_error: Option<MechanismError> = None;
        let mut markets = 0usize;
        let mut rounds = 0usize;

        let initial_deficit = self.maximal_deficit_sum(&committed, &wpu);

        for _round in 0..self.max_rounds {
            let over = self.overloaded_effective(&committed, &wpu);
            if over.is_empty() {
                break;
            }
            rounds += 1;
            let committed_before: f64 = committed.iter().zip(&wpu).map(|(c, w)| c * w).sum();

            // Deepest level first: rack markets shed before their UPS asks.
            let mut depths: Vec<usize> = over.iter().map(|&(d, _, _)| d).collect();
            depths.sort_unstable();
            depths.dedup();
            for &depth in depths.iter().rev() {
                // Re-derive each node's deficit now — deeper waves of this
                // round may already have shed part of it.
                let tasks: Vec<NodeTask> = over
                    .iter()
                    .filter(|&&(d, _, _)| d == depth)
                    .filter_map(|&(_, id, _)| {
                        let deficit = self.effective_deficit(id, &committed, &wpu);
                        if deficit <= DEFICIT_TOL {
                            return None;
                        }
                        let rows = self.subtree_rows(id);
                        // A row is pristine while its commit slot still
                        // holds the exact `+0.0` it was initialised with —
                        // commits only ever add positive reductions, so a
                        // bitwise zero test is the precise check.
                        let pristine = rows.iter().all(|&r| {
                            committed.get(r as usize).copied().unwrap_or(0.0).to_bits() == 0
                        });
                        let (rows, remaining) = if pristine {
                            (rows, None)
                        } else {
                            let (kept, remaining) =
                                gather_remaining(instance, &rows, &committed, self.exhausted_frac);
                            if kept.is_empty() {
                                // Every row is exhausted: the deficit is
                                // stuck residual, there is no market to run.
                                return None;
                            }
                            (kept, Some(remaining))
                        };
                        Some(NodeTask {
                            node: id,
                            rows,
                            target: Watts::new(deficit),
                            remaining,
                        })
                    })
                    .collect();
                if tasks.is_empty() {
                    continue;
                }
                // Same-depth subtrees are disjoint: clear them in parallel.
                // The shim's collect returns results in task-index order
                // and the commit fold below is sequential in that order,
                // so the sweep is bit-identical across thread counts.
                let wave: Vec<NodeClear<'_>> = tasks
                    .into_par_iter()
                    .map(|task| {
                        let mut mechanism = factory();
                        match task.remaining {
                            None => {
                                let view = instance.select(&task.rows);
                                let result = mechanism.clear_view(&view, task.target);
                                NodeClear {
                                    node: task.node,
                                    rows: task.rows,
                                    target: task.target,
                                    view: Some(view),
                                    result,
                                }
                            }
                            Some(remaining) => {
                                let result = mechanism.clear(&remaining, task.target);
                                NodeClear {
                                    node: task.node,
                                    rows: task.rows,
                                    target: task.target,
                                    view: None,
                                    result,
                                }
                            }
                        }
                    })
                    .collect();
                for clear in wave {
                    markets += 1;
                    let report = reports.entry(clear.node).or_insert_with(|| LevelReport {
                        id: clear.node,
                        name: self.hierarchy.name_of(clear.node).to_owned(),
                        kind: self
                            .hierarchy
                            .kind_of(clear.node)
                            .unwrap_or(LevelKind::Rack),
                        depth: self.hierarchy.depth(clear.node).unwrap_or(0),
                        target: clear.target,
                        cleared: Watts::ZERO,
                        markets: 0,
                        residual: Watts::ZERO,
                        propagated_residual: Watts::ZERO,
                        escalated: false,
                    });
                    report.markets += 1;
                    let clearing = match clear.result {
                        Ok(c) => c,
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                            continue;
                        }
                    };
                    let mut shed_w = 0.0;
                    for (j, &row) in clear.rows.iter().enumerate() {
                        let row = row as usize;
                        let r = clearing.reductions().get(j).copied().unwrap_or(0.0);
                        let (Some(c), Some(&d), Some(&w)) =
                            (committed.get_mut(row), deltas.get(row), wpu.get(row))
                        else {
                            continue;
                        };
                        let inc = r.min(d - *c).max(0.0);
                        *c += inc;
                        shed_w += inc * w;
                        if let Some(p) = prices_acc.get_mut(row) {
                            *p = clearing.participant_prices().get(j).copied().unwrap_or(0.0);
                        }
                        if let Some(pay) = payments_acc.get_mut(row) {
                            let rate = clearing.payment_rates().get(j).copied().unwrap_or(0.0);
                            *pay += if r > 1e-12 { rate * (inc / r) } else { 0.0 };
                        }
                    }
                    report.cleared = Watts::new(report.cleared.get() + shed_w);
                    if clearing.price() > headline {
                        headline = clearing.price();
                    }
                    let d = clearing.diagnostics().clone();
                    folded = Some(match folded.take() {
                        None => d,
                        Some(acc) => Diagnostics::fold(acc, &d),
                    });
                    match (&mut pristine_parts, clear.view) {
                        (Some(parts), Some(view)) => parts.push((view, clearing)),
                        (parts, _) => *parts = None,
                    }
                }
            }

            let committed_after: f64 = committed.iter().zip(&wpu).map(|(c, w)| c * w).sum();
            if committed_after - committed_before <= DEFICIT_TOL {
                break; // No progress: every remaining deficit is stuck.
            }
        }

        let any_committed = committed.iter().any(|&c| c > 0.0);
        if let Some(e) = first_error {
            if !any_committed && markets > 0 {
                return Err(FederatedError::Mechanism(e));
            }
        }

        // Final per-node residuals + upward propagation for the reports.
        let mut levels: Vec<LevelReport> = reports.into_values().collect();
        for report in &mut levels {
            report.residual =
                Watts::new(self.effective_deficit(report.id, &committed, &wpu).max(0.0));
            // The market is out of supply here: the leftover deficit must
            // escalate to the node's emergency path (direct capping).
            report.escalated = report.residual.get() > DEFICIT_TOL;
        }
        levels.sort_by_key(|r| (r.depth, r.id));
        // The recursive max-of-children's-maxes collapses to one max over
        // the subtree: a node's propagated residual is the largest
        // residual reported at the node itself or at any strictly deeper
        // descendant (chains reported without an intermediate level
        // included).
        let snapshot: Vec<(usize, usize, Watts)> =
            levels.iter().map(|r| (r.id, r.depth, r.residual)).collect();
        for report in &mut levels {
            let mut propagated = report.residual;
            for &(id, depth, residual) in &snapshot {
                if depth > report.depth && self.is_under(id, report.id) && residual > propagated {
                    propagated = residual;
                }
            }
            report.propagated_residual = propagated;
        }

        let residual = Watts::new(self.maximal_deficit_sum(&committed, &wpu));
        let clearing = match pristine_parts {
            Some(parts) if !parts.is_empty() => {
                Clearing::merge(instance, Watts::new(initial_deficit), &parts)
            }
            _ => Clearing::build(
                &instance.view(),
                Watts::new(initial_deficit),
                headline,
                committed,
                Some(prices_acc),
                Some(payments_acc),
                folded.unwrap_or_default(),
            ),
        };
        Ok(FederatedOutcome {
            clearing,
            levels,
            rounds,
            initial_deficit: Watts::new(initial_deficit),
            residual,
            markets,
        })
    }

    /// `true` when `node` lies inside the subtree rooted at `root`.
    fn is_under(&self, node: usize, root: usize) -> bool {
        let mut cursor = Some(node);
        let mut hops = 0usize;
        while let Some(id) = cursor {
            if id == root {
                return true;
            }
            hops += 1;
            if hops > self.hierarchy.len() {
                return false;
            }
            cursor = self.hierarchy.parent(id);
        }
        false
    }

    /// Effectively overloaded nodes as `(depth, id, deficit)` in
    /// deterministic (depth, id) order.
    fn overloaded_effective(&self, committed: &[f64], wpu: &[f64]) -> Vec<(usize, usize, f64)> {
        let mut over: Vec<(usize, usize, f64)> = (0..self.hierarchy.len())
            .filter_map(|id| {
                let deficit = self.effective_deficit(id, committed, wpu);
                (deficit > DEFICIT_TOL)
                    .then(|| (self.hierarchy.depth(id).unwrap_or(0), id, deficit))
            })
            .collect();
        over.sort_by_key(|a| (a.0, a.1));
        over
    }

    /// Summed deficit over the *maximal* overloaded subtrees (nodes with
    /// no overloaded strict ancestor) — disjoint, so the sum is the total
    /// shed the tree still needs.
    fn maximal_deficit_sum(&self, committed: &[f64], wpu: &[f64]) -> f64 {
        let over = self.overloaded_effective(committed, wpu);
        over.iter()
            .filter(|&&(_, id, _)| {
                !over
                    .iter()
                    .any(|&(_, other, _)| other != id && self.is_under(id, other))
            })
            .map(|&(_, _, deficit)| deficit)
            .sum()
    }
}

/// A standalone instance of the non-exhausted rows with each `Δ_m` reduced
/// by what is already committed (bids, costs, cores and watts-per-unit
/// carried over) — the re-clear instance for a partially shed subtree.
/// Returns the kept parent rows (in order) alongside the instance, so the
/// clearing's outputs map back row-for-row. Rows with less than
/// `exhausted_frac` of their original Δ left are dropped: re-pricing
/// ceiling-clear leftovers compounds without bound (see
/// [`DEFAULT_EXHAUSTED_FRAC`]).
fn gather_remaining(
    instance: &MarketInstance,
    rows: &[u32],
    committed: &[f64],
    exhausted_frac: f64,
) -> (Vec<u32>, MarketInstance) {
    let mut kept = Vec::new();
    let gathered: MarketInstance = rows
        .iter()
        .filter_map(|&r| {
            let row = r as usize;
            let id = instance.ids().get(row)?;
            let delta = instance.deltas().get(row)?;
            let done = committed.get(row).copied().unwrap_or(0.0);
            let remaining = (delta - done).max(0.0);
            if remaining <= (delta * exhausted_frac).max(1e-9) {
                return None;
            }
            let wpu = instance.watts_per_unit_slice().get(row)?;
            let cores = instance.cores().get(row)?;
            let mut spec =
                ParticipantSpec::new(*id, remaining, Watts::new(*wpu)).with_cores(*cores);
            if instance.bid_supplied(row) {
                let bid = instance.bids().get(row).copied().unwrap_or(f64::NAN);
                spec = spec.with_bid(bid);
            }
            if let Some(cost) = instance.costs().get(row).and_then(Clone::clone) {
                spec = spec.with_cost(cost);
            }
            kept.push(r);
            Some(spec)
        })
        .collect();
    (kept, gathered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_core::mechanism::MclrMechanism;

    /// Two UPS subtrees under one ATS, one rack each:
    /// `(h, ups_a, ups_b, rack_a, rack_b)`.
    fn two_ups_tree(ats_cap: f64, ups_cap: f64) -> (PowerHierarchy, usize, usize, usize, usize) {
        let mut h = PowerHierarchy::new();
        let ats = h.add_root("ats", LevelKind::Ats, Watts::new(ats_cap));
        let ups_a = h
            .add_child("ups-a", LevelKind::Ups, Watts::new(ups_cap), ats)
            .unwrap();
        let ups_b = h
            .add_child("ups-b", LevelKind::Ups, Watts::new(ups_cap), ats)
            .unwrap();
        let pdu_a = h
            .add_child("pdu-a", LevelKind::Pdu, Watts::new(ups_cap * 10.0), ups_a)
            .unwrap();
        let pdu_b = h
            .add_child("pdu-b", LevelKind::Pdu, Watts::new(ups_cap * 10.0), ups_b)
            .unwrap();
        let rack_a = h
            .add_child("rack-a", LevelKind::Rack, Watts::new(ups_cap * 10.0), pdu_a)
            .unwrap();
        let rack_b = h
            .add_child("rack-b", LevelKind::Rack, Watts::new(ups_cap * 10.0), pdu_b)
            .unwrap();
        (h, ups_a, ups_b, rack_a, rack_b)
    }

    /// `n` jobs, delta 2 cores, 125 W/core, bid 0.2.
    fn instance(n: usize) -> MarketInstance {
        (0..n)
            .map(|id| ParticipantSpec::new(id as u64, 2.0, Watts::new(125.0)).with_bid(0.2))
            .collect()
    }

    #[test]
    fn root_only_constraint_is_bit_identical_to_flat() {
        let (mut h, _, _, rack_a, rack_b) = two_ups_tree(1500.0, 1e6);
        h.set_load(rack_a, Watts::new(1000.0)).unwrap();
        h.set_load(rack_b, Watts::new(1000.0)).unwrap();
        let inst = instance(4);
        let assignment = vec![rack_a, rack_a, rack_b, rack_b];
        let market = HierarchicalMarket::new(&h, assignment).unwrap();
        let outcome = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        assert!(outcome.feasible());
        assert_eq!(outcome.markets, 1, "one pristine root market");

        let mut flat = MclrMechanism::best_effort();
        let expect = flat.clear(&inst, Watts::new(500.0)).unwrap();
        assert_eq!(outcome.clearing.reductions(), expect.reductions());
        assert_eq!(outcome.clearing.price(), expect.price());
        assert_eq!(
            outcome.clearing.participant_prices(),
            expect.participant_prices()
        );
        assert_eq!(outcome.clearing.payment_rates(), expect.payment_rates());
        assert_eq!(outcome.clearing.diagnostics(), expect.diagnostics());
    }

    #[test]
    fn disjoint_ups_overloads_clear_as_two_parallel_markets() {
        let (mut h, ups_a, ups_b, rack_a, rack_b) = two_ups_tree(1e6, 900.0);
        h.set_load(rack_a, Watts::new(1000.0)).unwrap();
        h.set_load(rack_b, Watts::new(1100.0)).unwrap();
        let inst = instance(4);
        let market = HierarchicalMarket::new(&h, vec![rack_a, rack_a, rack_b, rack_b]).unwrap();
        let outcome = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        assert!(outcome.feasible());
        assert_eq!(outcome.markets, 2);
        assert_eq!(outcome.rounds, 1);
        assert_eq!(outcome.levels.len(), 2);
        assert!(
            outcome.levels.iter().all(|l| !l.escalated),
            "feasible nodes never escalate"
        );
        assert_eq!(outcome.levels[0].id, ups_a);
        assert_eq!(outcome.levels[1].id, ups_b);
        assert!((outcome.levels[0].target.get() - 100.0).abs() < 1e-9);
        assert!((outcome.levels[1].target.get() - 200.0).abs() < 1e-9);
        assert!(outcome.levels.iter().all(|l| l.residual == Watts::ZERO));
        // Subtree B had the bigger deficit, so its rows shed more.
        let r = outcome.clearing.reductions();
        assert!(r[2] + r[3] > r[0] + r[1]);
        assert!((outcome.initial_deficit.get() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn nested_overload_escalates_residual_to_the_parent() {
        // UPS-A's deficit exceeds what its own jobs can shed; the ATS is
        // also constrained and must extract the rest from subtree B.
        let (mut h, ups_a, _, rack_a, rack_b) = two_ups_tree(1900.0, 800.0);
        h.set_load(rack_a, Watts::new(1100.0)).unwrap();
        h.set_load(rack_b, Watts::new(1000.0)).unwrap();
        // Rows 0..1 in rack A can shed 2 cores · 125 W = 250 W at most.
        let inst: MarketInstance = (0..4)
            .map(|id| {
                let delta = if id < 1 { 1.0 } else { 2.0 };
                ParticipantSpec::new(id as u64, delta, Watts::new(125.0)).with_bid(0.2)
            })
            .collect();
        let market = HierarchicalMarket::new(&h, vec![rack_a, rack_b, rack_b, rack_b]).unwrap();
        let outcome = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        // UPS-A needs 300 W but its only job caps at 125 W: residual stays.
        let a_report = outcome.levels.iter().find(|l| l.id == ups_a).unwrap();
        assert!(a_report.residual.get() > 0.0);
        assert!(
            a_report.escalated,
            "a stuck residual escalates to the node's emergency path"
        );
        assert!(!outcome.feasible());
        assert!(outcome.rounds >= 1);
        // Propagated residuals are edge-monotone: the root's reported
        // propagation is at least UPS-A's.
        let root_report = outcome.levels.iter().find(|l| l.id == 0);
        if let Some(root) = root_report {
            assert!(root.propagated_residual >= a_report.propagated_residual);
        }
        // The merged clearing accounts every committed reduction once.
        let total: f64 = outcome
            .clearing
            .reductions()
            .iter()
            .zip(inst.deltas())
            .map(|(r, d)| {
                assert!(*r <= d + 1e-9, "no row over-commits");
                r * 125.0
            })
            .sum();
        assert!(total > 0.0);
    }

    #[test]
    fn feasible_tree_returns_zero_markets() {
        let (mut h, _, _, rack_a, rack_b) = two_ups_tree(1e6, 1e6);
        h.set_load(rack_a, Watts::new(10.0)).unwrap();
        h.set_load(rack_b, Watts::new(10.0)).unwrap();
        let inst = instance(2);
        let market = HierarchicalMarket::new(&h, vec![rack_a, rack_b]).unwrap();
        let outcome = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        assert!(outcome.feasible());
        assert_eq!(outcome.markets, 0);
        assert_eq!(outcome.rounds, 0);
        assert_eq!(outcome.initial_deficit, Watts::ZERO);
        assert_eq!(outcome.clearing.total_power_reduction(), Watts::ZERO);
    }

    #[test]
    fn bad_assignment_and_length_mismatch_error() {
        let (h, ups_a, _, rack_a, _) = two_ups_tree(1e6, 1e6);
        assert!(matches!(
            HierarchicalMarket::new(&h, vec![rack_a, ups_a]),
            Err(FederatedError::BadAssignment { row: 1, .. })
        ));
        let market = HierarchicalMarket::new(&h, vec![rack_a]).unwrap();
        assert!(matches!(
            market.clear(&instance(3), MclrMechanism::best_effort),
            Err(FederatedError::AssignmentLength {
                rows: 3,
                assigned: 1
            })
        ));
    }

    #[test]
    fn exhausted_rows_are_never_remarketed_so_prices_stay_bounded() {
        // Every level is hopelessly overconstrained: each market
        // best-effort-clears at its price ceiling. The leftovers (Δ/1000
        // per row) must not be re-marketed — doing so would multiply the
        // ceiling by 1000 per round and compound payments without bound.
        let (mut h, _, _, rack_a, rack_b) = two_ups_tree(10.0, 5.0);
        h.set_load(rack_a, Watts::new(1000.0)).unwrap();
        h.set_load(rack_b, Watts::new(1000.0)).unwrap();
        let inst = instance(4);
        let market = HierarchicalMarket::new(&h, vec![rack_a, rack_a, rack_b, rack_b]).unwrap();
        let outcome = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        assert!(!outcome.feasible());
        // Activation price is b/Δ = 0.1; a single ceiling pass caps at
        // 1000×0.1 = 100. Unbounded compounding would exceed this by
        // orders of magnitude.
        assert!(
            outcome.clearing.price().get() <= 100.0 + 1e-9,
            "headline price {} escaped the single-pass ceiling",
            outcome.clearing.price().get()
        );
        for (row, &rate) in outcome.clearing.payment_rates().iter().enumerate() {
            assert!(
                rate <= 100.0 * 2.0 + 1e-9,
                "row {row} payment rate {rate} escaped q·Δ at the ceiling"
            );
        }
        // The sweep settles instead of spinning all eight rounds.
        assert!(outcome.rounds <= 3, "rounds: {}", outcome.rounds);
    }

    #[test]
    fn zero_capacity_nodes_are_a_typed_error() {
        let mut h = PowerHierarchy::new();
        let ats = h.add_root("ats", LevelKind::Ats, Watts::new(100.0));
        let ups = h
            .add_child("ups", LevelKind::Ups, Watts::ZERO, ats)
            .unwrap();
        let pdu = h
            .add_child("pdu", LevelKind::Pdu, Watts::new(100.0), ups)
            .unwrap();
        h.add_child("rack", LevelKind::Rack, Watts::new(100.0), pdu)
            .unwrap();
        match HierarchicalMarket::new(&h, Vec::new()) {
            Err(FederatedError::ZeroCapacity { node, name }) => {
                assert_eq!(node, ups);
                assert_eq!(name, "ups");
            }
            other => panic!("expected ZeroCapacity, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_fencing_fraction_is_configurable() {
        let (mut h, _, _, rack_a, rack_b) = two_ups_tree(10.0, 5.0);
        h.set_load(rack_a, Watts::new(1000.0)).unwrap();
        h.set_load(rack_b, Watts::new(1000.0)).unwrap();
        let inst = instance(4);
        let market = HierarchicalMarket::new(&h, vec![rack_a, rack_a, rack_b, rack_b]).unwrap();
        assert_eq!(market.exhausted_frac(), DEFAULT_EXHAUSTED_FRAC);
        // The clamp keeps pathological values out.
        let market = market.with_exhausted_frac(5.0);
        assert_eq!(market.exhausted_frac(), 0.5);
        // With fencing effectively off, ceiling-clear leftovers are
        // re-marketed and the headline price escapes the single-pass
        // ceiling — exactly the compounding the default prevents.
        let market = market.with_exhausted_frac(0.0);
        assert_eq!(market.exhausted_frac(), 0.0);
        let outcome = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        assert!(
            outcome.clearing.price().get() > 100.0 + 1e-9,
            "price {} should compound past the single-pass ceiling with fencing off",
            outcome.clearing.price().get()
        );
    }

    #[test]
    fn single_thread_env_is_bit_identical() {
        // The parallel wave must not depend on worker count. The shim
        // collects in task order regardless, so this pins the contract.
        let (mut h, _, _, rack_a, rack_b) = two_ups_tree(1e6, 900.0);
        h.set_load(rack_a, Watts::new(1000.0)).unwrap();
        h.set_load(rack_b, Watts::new(1100.0)).unwrap();
        let inst = instance(4);
        let market = HierarchicalMarket::new(&h, vec![rack_a, rack_a, rack_b, rack_b]).unwrap();
        let a = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        let b = market.clear(&inst, MclrMechanism::best_effort).unwrap();
        assert_eq!(a.clearing.reductions(), b.clearing.reductions());
        assert_eq!(a.clearing.payment_rates(), b.clearing.payment_rates());
        assert_eq!(a.levels, b.levels);
    }
}
