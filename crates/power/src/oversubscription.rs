//! Oversubscription arithmetic (Sections II and IV-A).
//!
//! Oversubscribing by `x %` means permanently installing `x %` more compute
//! than the infrastructure capacity supports. Equivalently, with the
//! workload scaled up to the new compute, overloading occurs whenever power
//! demand exceeds `100/(100+x)` of its peak.

use mpr_core::{CoreHours, Watts};

use crate::error::PowerError;

/// An oversubscription level, e.g. 10 %, 15 %, 20 % (Table I).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Oversubscription {
    percent: f64,
}

impl Oversubscription {
    /// Creates a level from a percentage (e.g. `15.0` for 15 %).
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite percentages; use
    /// [`try_percent`](Self::try_percent) to validate untrusted input.
    #[must_use]
    pub fn percent(percent: f64) -> Self {
        match Self::try_percent(percent) {
            Ok(os) => os,
            // lint: allow(panic-freedom) documented constructor panic; try_percent is the non-panicking path
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a level from a percentage, rejecting negative or non-finite
    /// values with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when `percent` is negative
    /// or non-finite.
    pub fn try_percent(percent: f64) -> Result<Self, PowerError> {
        if percent.is_finite() && percent >= 0.0 {
            Ok(Self { percent })
        } else {
            Err(PowerError::InvalidParameter {
                name: "oversubscription percent",
                value: percent,
                constraint: "must be finite and non-negative",
            })
        }
    }

    /// The level as a percentage.
    #[must_use]
    pub fn as_percent(&self) -> f64 {
        self.percent
    }

    /// Infrastructure capacity when the system's peak demand is
    /// `peak_power`: `C = peak · 100/(100+x)` (Section IV-A).
    #[must_use]
    pub fn capacity(&self, peak_power: Watts) -> Watts {
        peak_power * (100.0 / (100.0 + self.percent))
    }

    /// Extra compute capacity gained by oversubscribing: with `total_cores`
    /// fitting the old capacity exactly, `x %` oversubscription adds
    /// `total_cores · x/100` cores — `hours · that` core-hours over a
    /// period (the "Extra Capacity" row of Table I).
    #[must_use]
    pub fn extra_core_hours(&self, total_cores: f64, hours: f64) -> CoreHours {
        CoreHours::new(total_cores * (self.percent / 100.0) * hours)
    }

    /// The levels evaluated in Table I.
    #[must_use]
    pub fn table1_levels() -> [Oversubscription; 4] {
        [
            Oversubscription::percent(10.0),
            Oversubscription::percent(15.0),
            Oversubscription::percent(20.0),
            Oversubscription::percent(25.0),
        ]
    }

    /// The levels evaluated in Figs. 8–15.
    #[must_use]
    pub fn eval_levels() -> [Oversubscription; 4] {
        [
            Oversubscription::percent(5.0),
            Oversubscription::percent(10.0),
            Oversubscription::percent(15.0),
            Oversubscription::percent(20.0),
        ]
    }
}

impl std::fmt::Display for Oversubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.percent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_formula() {
        let os = Oversubscription::percent(20.0);
        let cap = os.capacity(Watts::new(301_800.0));
        assert!((cap.get() - 301_800.0 * 100.0 / 120.0).abs() < 1e-6);
        // 0 % oversubscription: capacity equals peak.
        let none = Oversubscription::percent(0.0);
        assert_eq!(none.capacity(Watts::new(1000.0)), Watts::new(1000.0));
    }

    #[test]
    fn extra_core_hours_matches_table1_scale() {
        // Gaia: 2004 cores, ~720 h/month, 10 % → ~144 K core-hours/month.
        let os = Oversubscription::percent(10.0);
        let extra = os.extra_core_hours(2004.0, 720.0);
        assert!((extra.get() - 144_288.0).abs() < 1.0, "extra = {extra}");
    }

    #[test]
    fn level_sets() {
        let t1: Vec<f64> = Oversubscription::table1_levels()
            .iter()
            .map(Oversubscription::as_percent)
            .collect();
        assert_eq!(t1, vec![10.0, 15.0, 20.0, 25.0]);
        let ev: Vec<f64> = Oversubscription::eval_levels()
            .iter()
            .map(Oversubscription::as_percent)
            .collect();
        assert_eq!(ev, vec![5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn display() {
        assert_eq!(Oversubscription::percent(15.0).to_string(), "15%");
    }

    #[test]
    #[should_panic(expected = "oversubscription percent")]
    fn negative_percent_panics() {
        let _ = Oversubscription::percent(-5.0);
    }

    #[test]
    fn try_percent_returns_typed_errors() {
        use crate::error::PowerError;
        assert_eq!(
            Oversubscription::try_percent(15.0).unwrap().as_percent(),
            15.0
        );
        for bad in [-5.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match Oversubscription::try_percent(bad) {
                Err(PowerError::InvalidParameter { name, .. }) => {
                    assert_eq!(name, "oversubscription percent");
                }
                other => panic!("expected InvalidParameter for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn higher_level_means_lower_capacity() {
        let peak = Watts::new(100_000.0);
        let caps: Vec<f64> = Oversubscription::eval_levels()
            .iter()
            .map(|o| o.capacity(peak).get())
            .collect();
        for w in caps.windows(2) {
            assert!(w[1] < w[0]);
        }
    }
}
