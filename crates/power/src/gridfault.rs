//! Infrastructure fault injection for the power tree.
//!
//! A [`GridFaultPlan`] is the infrastructure sibling of the agent, network,
//! sensor and disk fault plans: a seeded ChaCha8 schedule of UPS failures,
//! ATS transfers with derated capacity, PDU breaker trips and gradual
//! capacity deratings, each with a scheduled repair time. The schedule is a
//! **pure function** of `(plan, topology)` — no mutable fault state exists
//! anywhere — so checkpoints stay format-stable, resume is bit-identical,
//! and every consumer (engine, chaos oracles, proptests) reconstructs the
//! exact same fault timeline independently.
//!
//! A [`TopologyState`] is the mutable-in-time view the plan induces over an
//! immutable [`TopologySpec`] at one instant: per-node liveness (a dead
//! node kills its whole subtree) and per-node derate factors. Federated
//! clearing fences dead subtrees out of the [`PowerHierarchy`] it builds
//! ([`TopologyState::to_hierarchy_scaled`] prunes them), reassigns their
//! jobs to the nearest surviving sibling rack
//! ([`TopologyState::reassign_rack`]), and clears the survivors against
//! derated capacities. Once every fault is repaired the state compares
//! bit-identical to the healthy spec, so post-repair clearing is ULP-exact
//! with the never-faulted run — one of the chaos oracles' invariants.

use mpr_core::Watts;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::hierarchy::{LevelKind, PowerHierarchy};
use crate::topology::{TopologyError, TopologySpec};

/// Per-node stream separator so each node's fault draws are independent of
/// every other node's (adding a node never reshuffles existing schedules).
const NODE_SEED_MUL: u64 = 0x9e37_79b9_7f4a_7c15;

/// A seeded schedule of infrastructure faults over a power tree.
///
/// Probabilities are **per node of the matching kind**: each UPS fails with
/// `ups_failure_prob`, each ATS transfers onto its derated alternate feed
/// with `ats_derate_prob`, each PDU trips its breaker with `pdu_trip_prob`,
/// and every node (any kind) gradually derates with `derate_prob`. Onsets
/// are drawn uniformly from `[onset_secs, onset_secs + window_secs)` and
/// each fault repairs after `repair_secs · [0.5, 1.5)`. All draws come from
/// a per-node ChaCha8 stream, so the schedule is deterministic, bit-stable
/// across thread counts, and insensitive to unrelated nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridFaultPlan {
    /// Seed of the fault schedule (independent of the simulation seed).
    pub seed: u64,
    /// Probability each UPS suffers a hard failure (subtree dead until
    /// repair).
    pub ups_failure_prob: f64,
    /// Probability each ATS transfers to its alternate feed at derated
    /// capacity.
    pub ats_derate_prob: f64,
    /// Remaining capacity fraction while an ATS runs on its alternate feed.
    pub ats_derate_frac: f64,
    /// Probability each PDU trips its breaker (subtree dead until repair).
    pub pdu_trip_prob: f64,
    /// Probability each node (any kind) gradually derates.
    pub derate_prob: f64,
    /// Capacity fraction a gradual derating ramps down to.
    pub derate_floor: f64,
    /// Earliest fault onset, seconds.
    pub onset_secs: f64,
    /// Width of the onset window, seconds (onsets uniform inside it).
    pub window_secs: f64,
    /// Base repair duration, seconds; each fault repairs after
    /// `repair_secs · [0.5, 1.5)`. `f64::INFINITY` means never repaired.
    pub repair_secs: f64,
}

impl Default for GridFaultPlan {
    fn default() -> Self {
        Self {
            seed: 0x6772_6964_5eed,
            ups_failure_prob: 0.0,
            ats_derate_prob: 0.0,
            ats_derate_frac: 0.6,
            pdu_trip_prob: 0.0,
            derate_prob: 0.0,
            derate_floor: 0.7,
            onset_secs: 0.0,
            window_secs: 3600.0,
            repair_secs: 1800.0,
        }
    }
}

impl GridFaultPlan {
    /// A plan failing each UPS with the given probability (the chaos
    /// matrix's canonical infrastructure fault).
    #[must_use]
    pub fn ups_outage(prob: f64) -> Self {
        Self {
            ups_failure_prob: prob.clamp(0.0, 1.0),
            ..Self::default()
        }
    }

    /// **Test-only.** A plan that fails every UPS at `t = 0` and never
    /// repairs it — the chaos harness's planted infrastructure bug.
    #[must_use]
    pub fn always_on_ups_failure() -> Self {
        Self {
            ups_failure_prob: 1.0,
            onset_secs: 0.0,
            window_secs: 0.0,
            repair_secs: f64::INFINITY,
            ..Self::default()
        }
    }

    /// `true` when at least one fault class can fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.ups_failure_prob > 0.0
            || self.ats_derate_prob > 0.0
            || self.pdu_trip_prob > 0.0
            || self.derate_prob > 0.0
    }

    /// The per-node fault RNG: seeded from the plan seed and the node
    /// index only, so one node's schedule never depends on another's.
    fn node_rng(&self, node: usize) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ (node as u64 + 1).wrapping_mul(NODE_SEED_MUL))
    }

    /// The full fault schedule this plan induces over `spec`, in node
    /// order (at most two faults per node: its class fault, then a gradual
    /// derating).
    #[must_use]
    pub fn schedule(&self, spec: &TopologySpec) -> Vec<GridFault> {
        let mut out = Vec::new();
        if !self.is_active() {
            return out;
        }
        for (i, node) in spec.nodes.iter().enumerate() {
            let mut rng = self.node_rng(i);
            // Fixed draw order per node: class roll/onset/duration, then
            // derate roll/onset/duration — consumed unconditionally so a
            // probability change never reshuffles the other draws.
            let class_roll: f64 = rng.gen();
            let class_onset: f64 = rng.gen();
            let class_dur: f64 = rng.gen();
            let derate_roll: f64 = rng.gen();
            let derate_onset: f64 = rng.gen();
            let derate_dur: f64 = rng.gen();
            let (class_prob, kind) = match node.kind {
                LevelKind::Ups => (self.ups_failure_prob, GridFaultKind::UpsFailure),
                LevelKind::Ats => (
                    self.ats_derate_prob,
                    GridFaultKind::AtsDerate {
                        frac: self.ats_derate_frac.clamp(0.01, 1.0),
                    },
                ),
                LevelKind::Pdu => (self.pdu_trip_prob, GridFaultKind::PduTrip),
                LevelKind::Rack => (0.0, GridFaultKind::PduTrip),
            };
            if class_roll < class_prob {
                let start = self.onset_secs + class_onset * self.window_secs;
                out.push(GridFault {
                    node: i,
                    kind,
                    start_secs: start,
                    end_secs: start + self.repair_secs * (0.5 + class_dur),
                });
            }
            if derate_roll < self.derate_prob {
                let start = self.onset_secs + derate_onset * self.window_secs;
                out.push(GridFault {
                    node: i,
                    kind: GridFaultKind::GradualDerate {
                        floor: self.derate_floor.clamp(0.01, 1.0),
                    },
                    start_secs: start,
                    end_secs: start + self.repair_secs * (0.5 + derate_dur),
                });
            }
        }
        out
    }

    /// The instant every fault is repaired (0 when the schedule is empty;
    /// infinite for never-repaired plans).
    #[must_use]
    pub fn last_repair_secs(&self, spec: &TopologySpec) -> f64 {
        self.schedule(spec)
            .iter()
            .map(|f| f.end_secs)
            .fold(0.0, f64::max)
    }

    /// The topology state this plan induces over `spec` at time `t_secs`.
    #[must_use]
    pub fn state_at<'s>(&self, spec: &'s TopologySpec, t_secs: f64) -> TopologyState<'s> {
        let mut state = TopologyState::healthy(spec);
        for fault in self.schedule(spec) {
            if !fault.is_active_at(t_secs) {
                continue;
            }
            match fault.kind {
                GridFaultKind::UpsFailure | GridFaultKind::PduTrip => {
                    if let Some(a) = state.own_alive.get_mut(fault.node) {
                        *a = false;
                    }
                }
                GridFaultKind::AtsDerate { frac } => {
                    if let Some(f) = state.factor.get_mut(fault.node) {
                        *f *= frac;
                    }
                }
                GridFaultKind::GradualDerate { floor } => {
                    if let Some(f) = state.factor.get_mut(fault.node) {
                        *f *= fault.ramp_factor(t_secs, floor);
                    }
                }
            }
        }
        state.close_over_ancestors();
        state
    }
}

/// One scheduled infrastructure fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridFault {
    /// Spec index of the faulted node.
    pub node: usize,
    /// What failed and how.
    pub kind: GridFaultKind,
    /// Fault onset, seconds.
    pub start_secs: f64,
    /// Repair/restore instant, seconds (exclusive).
    pub end_secs: f64,
}

impl GridFault {
    /// `true` while the fault is in force at `t`.
    #[must_use]
    pub fn is_active_at(&self, t_secs: f64) -> bool {
        t_secs >= self.start_secs && t_secs < self.end_secs
    }

    /// Gradual-derate ramp: capacity falls linearly from 1.0 at onset to
    /// `floor` at the window's midpoint, holds there, then snaps back to
    /// 1.0 at repair.
    fn ramp_factor(&self, t_secs: f64, floor: f64) -> f64 {
        let half = (self.end_secs - self.start_secs) * 0.5;
        if half <= 0.0 || !half.is_finite() {
            return floor;
        }
        let progress = ((t_secs - self.start_secs) / half).clamp(0.0, 1.0);
        1.0 - (1.0 - floor) * progress
    }
}

/// The fault class of a [`GridFault`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GridFaultKind {
    /// Hard UPS failure: the subtree is dead until repair.
    UpsFailure,
    /// ATS transfer onto the alternate feed at derated capacity.
    AtsDerate {
        /// Remaining capacity fraction while on the alternate feed.
        frac: f64,
    },
    /// PDU breaker trip: the subtree is dead until repair.
    PduTrip,
    /// Gradual capacity derating ramping down to a floor.
    GradualDerate {
        /// Capacity fraction the ramp bottoms out at.
        floor: f64,
    },
}

/// The per-instant health of a power tree: liveness and derate factors
/// layered over an immutable [`TopologySpec`].
///
/// Liveness is ancestor-closed: a node is alive only if it and every
/// ancestor are alive, so a dead UPS fences its whole subtree. Derate
/// factors are per-node (a node's own capacity constraint shrinks; its
/// descendants keep their own capacities and are constrained through the
/// parent as usual).
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyState<'s> {
    spec: &'s TopologySpec,
    /// Per-node own liveness (before ancestor closure).
    own_alive: Vec<bool>,
    /// Effective liveness after ancestor closure.
    alive: Vec<bool>,
    /// Per-node own capacity factor in `(0, 1]`.
    factor: Vec<f64>,
}

impl<'s> TopologyState<'s> {
    /// The all-healthy state: every node alive at full capacity.
    #[must_use]
    pub fn healthy(spec: &'s TopologySpec) -> Self {
        let n = spec.nodes.len();
        Self {
            spec,
            own_alive: vec![true; n],
            alive: vec![true; n],
            factor: vec![1.0; n],
        }
    }

    /// Recomputes effective liveness from own liveness (parents precede
    /// children in a valid spec, so one forward pass closes the relation).
    fn close_over_ancestors(&mut self) {
        for i in 0..self.spec.nodes.len() {
            let parent_alive = match self.spec.nodes.get(i).and_then(|n| n.parent) {
                Some(p) => self.alive.get(p).copied().unwrap_or(false),
                None => true,
            };
            let own = self.own_alive.get(i).copied().unwrap_or(false);
            if let Some(a) = self.alive.get_mut(i) {
                *a = own && parent_alive;
            }
        }
    }

    /// The spec this state is layered over.
    #[must_use]
    pub fn spec(&self) -> &'s TopologySpec {
        self.spec
    }

    /// `true` when no fault is in force: every node alive at a factor of
    /// exactly 1.0 (bitwise — the post-repair oracle relies on this).
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.alive.iter().all(|&a| a) && self.factor.iter().all(|f| f.to_bits() == 1.0f64.to_bits())
    }

    /// Effective liveness of a node (its whole ancestor chain is up).
    #[must_use]
    pub fn alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// The node's own capacity factor (1.0 when clean).
    #[must_use]
    pub fn factor(&self, node: usize) -> f64 {
        self.factor.get(node).copied().unwrap_or(1.0)
    }

    /// The node's capacity under its current derate factor.
    #[must_use]
    pub fn derated_capacity(&self, node: usize) -> Watts {
        let cap = self
            .spec
            .nodes
            .get(node)
            .map_or(Watts::ZERO, |n| n.capacity);
        cap * self.factor(node)
    }

    /// Number of fenced (dead) nodes.
    #[must_use]
    pub fn dead_count(&self) -> usize {
        self.alive.iter().filter(|&&a| !a).count()
    }

    /// Number of alive nodes running below full capacity.
    #[must_use]
    pub fn derated_count(&self) -> usize {
        self.alive
            .iter()
            .zip(&self.factor)
            .filter(|&(&a, f)| a && f.to_bits() != 1.0f64.to_bits())
            .count()
    }

    /// Spec indices of the racks still alive, ascending.
    #[must_use]
    pub fn alive_racks(&self) -> Vec<usize> {
        self.spec
            .rack_ids()
            .into_iter()
            .filter(|&r| self.alive(r))
            .collect()
    }

    /// `true` when `node` lies inside the spec subtree rooted at `root`.
    fn is_under(&self, node: usize, root: usize) -> bool {
        let mut cursor = Some(node);
        let mut hops = 0usize;
        while let Some(id) = cursor {
            if id == root {
                return true;
            }
            hops += 1;
            if hops > self.spec.nodes.len() {
                return false;
            }
            cursor = self.spec.nodes.get(id).and_then(|n| n.parent);
        }
        false
    }

    /// The deterministic reassignment target for a job on a dead rack: the
    /// lowest-id alive rack under the nearest ancestor that still has one
    /// (same PDU first, then the same UPS, widening to the whole tree).
    /// `None` when no rack anywhere survives — the job is quarantined.
    #[must_use]
    pub fn reassign_rack(&self, dead_rack: usize) -> Option<usize> {
        let alive = self.alive_racks();
        if alive.is_empty() {
            return None;
        }
        let mut ancestor = self.spec.nodes.get(dead_rack).and_then(|n| n.parent);
        while let Some(a) = ancestor {
            if let Some(&r) = alive.iter().find(|&&r| self.is_under(r, a)) {
                return Some(r);
            }
            ancestor = self.spec.nodes.get(a).and_then(|n| n.parent);
        }
        alive.first().copied()
    }

    /// The tree's usable capacity under the current state: a min-cut walk
    /// where a dead node contributes nothing, a rack contributes its
    /// derated capacity, and an inner node contributes the smaller of its
    /// derated capacity and its children's total.
    #[must_use]
    pub fn usable_capacity(&self) -> Watts {
        let n = self.spec.nodes.len();
        let mut usable = vec![0.0f64; n];
        let mut child_sum = vec![0.0f64; n];
        let mut has_children = vec![false; n];
        for node in &self.spec.nodes {
            if let Some(p) = node.parent {
                if let Some(h) = has_children.get_mut(p) {
                    *h = true;
                }
            }
        }
        for i in (0..n).rev() {
            let u = if !self.alive(i) {
                0.0
            } else {
                let cap = self.derated_capacity(i).get();
                match (has_children.get(i), self.spec.nodes.get(i)) {
                    (Some(true), _) => cap.min(child_sum.get(i).copied().unwrap_or(0.0)),
                    (_, Some(node)) if node.kind == LevelKind::Rack => cap,
                    _ => 0.0,
                }
            };
            if let Some(slot) = usable.get_mut(i) {
                *slot = u;
            }
            if let Some(p) = self.spec.nodes.get(i).and_then(|nd| nd.parent) {
                if let Some(s) = child_sum.get_mut(p) {
                    *s += u;
                }
            }
        }
        Watts::new(usable.first().copied().unwrap_or(0.0))
    }

    /// Usable capacity as a fraction of the healthy tree's — the factor
    /// the engine derates its flat power budget by. Exactly 1.0 (bitwise)
    /// when the state is healthy.
    #[must_use]
    pub fn capacity_frac(&self) -> f64 {
        if self.is_healthy() {
            return 1.0;
        }
        let healthy = TopologyState::healthy(self.spec).usable_capacity().get();
        if healthy <= 0.0 {
            return 0.0;
        }
        (self.usable_capacity().get() / healthy).clamp(0.0, 1.0)
    }

    /// Builds the surviving hierarchy: dead subtrees pruned, derated
    /// capacities, everything multiplied by `scale`. Returns the hierarchy
    /// plus the spec-index → hierarchy-id map (`None` for fenced nodes).
    /// On a healthy state this is bit-identical to
    /// [`TopologySpec::to_hierarchy_scaled`] with an identity map.
    ///
    /// # Errors
    ///
    /// [`TopologyError::Hierarchy`] when a surviving edge violates the
    /// nesting rules (impossible for a spec that already validated).
    pub fn to_hierarchy_scaled(
        &self,
        scale: f64,
    ) -> Result<(PowerHierarchy, Vec<Option<usize>>), TopologyError> {
        let mut h = PowerHierarchy::new();
        let mut map: Vec<Option<usize>> = vec![None; self.spec.nodes.len()];
        for (i, node) in self.spec.nodes.iter().enumerate() {
            if !self.alive(i) {
                continue;
            }
            let capacity = node.capacity * self.factor(i) * scale;
            let id = match node.parent {
                None => h.add_root(node.name.clone(), node.kind, capacity),
                Some(p) => {
                    // Alive children of dead parents cannot exist (the
                    // closure above fences whole subtrees).
                    let Some(&Some(parent_id)) = map.get(p) else {
                        continue;
                    };
                    h.add_child(node.name.clone(), node.kind, capacity, parent_id)?
                }
            };
            if let Some(slot) = map.get_mut(i) {
                *slot = Some(id);
            }
        }
        Ok((h, map))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two UPS feeds, one PDU each; PDU-a carries two racks so a rack
    /// fault has a same-PDU sibling to fail over to.
    fn spec() -> TopologySpec {
        TopologySpec::parse(
            r#"{
              "name": "grid-test",
              "nodes": [
                {"name": "ats", "kind": "ats", "capacity_w": 12000.0, "parent": null},
                {"name": "ups-a", "kind": "ups", "capacity_w": 3000.0, "parent": 0},
                {"name": "ups-b", "kind": "ups", "capacity_w": 3000.0, "parent": 0},
                {"name": "pdu-a", "kind": "pdu", "capacity_w": 4000.0, "parent": 1},
                {"name": "pdu-b", "kind": "pdu", "capacity_w": 4000.0, "parent": 2},
                {"name": "rack-a1", "kind": "rack", "capacity_w": 1500.0, "parent": 3},
                {"name": "rack-a2", "kind": "rack", "capacity_w": 1500.0, "parent": 3},
                {"name": "rack-b", "kind": "rack", "capacity_w": 2500.0, "parent": 4}
              ]
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn default_plan_is_inactive_and_leaves_the_tree_healthy() {
        let plan = GridFaultPlan::default();
        assert!(!plan.is_active());
        let s = spec();
        assert!(plan.schedule(&s).is_empty());
        let state = plan.state_at(&s, 1234.5);
        assert!(state.is_healthy());
        assert_eq!(state.dead_count(), 0);
        assert_eq!(state.capacity_frac().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let s = spec();
        let plan = GridFaultPlan {
            ups_failure_prob: 0.7,
            pdu_trip_prob: 0.5,
            derate_prob: 0.4,
            ..GridFaultPlan::default()
        };
        let a = plan.schedule(&s);
        let b = plan.schedule(&s);
        assert_eq!(a, b, "schedule is a pure function of (plan, spec)");
        let reseeded = GridFaultPlan {
            seed: plan.seed ^ 1,
            ..plan
        };
        assert_ne!(reseeded.schedule(&s), a, "seed changes the schedule");
        // Node order: faults are emitted in ascending node index.
        assert!(a.windows(2).all(|w| w[0].node <= w[1].node));
    }

    #[test]
    fn ups_failure_fences_the_whole_subtree() {
        let s = spec();
        let plan = GridFaultPlan::always_on_ups_failure();
        let state = plan.state_at(&s, 10.0);
        // Both UPS feeds are down: everything below them is fenced.
        assert!(state.alive(0), "the ATS itself stays alive");
        for node in 1..s.nodes.len() {
            assert!(!state.alive(node), "node {node} should be fenced");
        }
        assert_eq!(state.dead_count(), 7);
        assert!(state.alive_racks().is_empty());
        assert_eq!(state.reassign_rack(5), None, "no rack survives anywhere");
        assert_eq!(state.usable_capacity(), Watts::ZERO);
        // Never repaired: still dead arbitrarily far in the future.
        assert!(!plan.state_at(&s, 1e12).alive(1));
        assert!(plan.last_repair_secs(&s).is_infinite());
    }

    #[test]
    fn reassignment_prefers_the_nearest_surviving_sibling() {
        let s = spec();
        // Kill only ups-a by planting its own fault directly.
        let mut state = TopologyState::healthy(&s);
        state.own_alive[1] = false;
        state.close_over_ancestors();
        assert!(!state.alive(5) && !state.alive(6), "ups-a racks fenced");
        assert!(state.alive(7));
        // Nothing survives under pdu-a or ups-a; the search widens to the
        // tree and lands on rack-b.
        assert_eq!(state.reassign_rack(5), Some(7));
        assert_eq!(state.reassign_rack(6), Some(7));
        // A dead rack with a same-PDU sibling fails over locally.
        let mut rack_fault = TopologyState::healthy(&s);
        rack_fault.own_alive[5] = false;
        rack_fault.close_over_ancestors();
        assert_eq!(rack_fault.reassign_rack(5), Some(6));
    }

    #[test]
    fn gradual_derate_ramps_down_and_repairs_exactly() {
        let fault = GridFault {
            node: 3,
            kind: GridFaultKind::GradualDerate { floor: 0.5 },
            start_secs: 100.0,
            end_secs: 300.0,
        };
        // Ramp reaches the floor at the midpoint and holds.
        assert_eq!(fault.ramp_factor(100.0, 0.5).to_bits(), 1.0f64.to_bits());
        let mid = fault.ramp_factor(150.0, 0.5);
        assert!(mid < 1.0 && mid > 0.5, "mid-ramp factor: {mid}");
        assert_eq!(fault.ramp_factor(200.0, 0.5), 0.5);
        assert_eq!(fault.ramp_factor(299.0, 0.5), 0.5);
        assert!(!fault.is_active_at(300.0), "repair restores at end");
    }

    #[test]
    fn post_repair_state_is_bit_identical_to_healthy() {
        let s = spec();
        let plan = GridFaultPlan {
            ups_failure_prob: 1.0,
            ats_derate_prob: 1.0,
            pdu_trip_prob: 1.0,
            derate_prob: 1.0,
            window_secs: 600.0,
            repair_secs: 900.0,
            ..GridFaultPlan::default()
        };
        let last = plan.last_repair_secs(&s);
        assert!(last.is_finite() && last > 0.0);
        let mid = plan.state_at(&s, plan.onset_secs + 650.0);
        assert!(!mid.is_healthy(), "faults are in force mid-window");
        let repaired = plan.state_at(&s, last + 1.0);
        let healthy = TopologyState::healthy(&s);
        assert!(repaired.is_healthy());
        assert_eq!(repaired, healthy);
        for i in 0..s.nodes.len() {
            assert_eq!(
                repaired.derated_capacity(i).get().to_bits(),
                s.nodes[i].capacity.get().to_bits(),
                "node {i} capacity must restore ULP-exact"
            );
        }
    }

    #[test]
    fn pruned_hierarchy_excludes_dead_nodes_and_derates_survivors() {
        let s = spec();
        let mut state = TopologyState::healthy(&s);
        state.own_alive[1] = false; // ups-a dead
        state.factor[2] = 0.5; // ups-b derated
        state.close_over_ancestors();
        let (h, map) = state.to_hierarchy_scaled(2.0).unwrap();
        // Fenced: ups-a, pdu-a, rack-a1, rack-a2.
        assert_eq!(h.len(), 4);
        assert_eq!(map[1], None);
        assert_eq!(map[3], None);
        assert_eq!(map[5], None);
        let ups_b = map[2].unwrap();
        assert_eq!(h.capacity_of(ups_b), Watts::new(3000.0 * 0.5 * 2.0));
        let rack_b = map[7].unwrap();
        assert_eq!(h.capacity_of(rack_b), Watts::new(2500.0 * 2.0));
        assert_eq!(h.kind_of(rack_b), Some(LevelKind::Rack));
        // Healthy state: identity map, bit-identical to the spec build.
        let (hh, hmap) = TopologyState::healthy(&s).to_hierarchy_scaled(1.0).unwrap();
        let plain = s.to_hierarchy().unwrap();
        assert_eq!(hh.len(), plain.len());
        for (i, m) in hmap.iter().enumerate() {
            assert_eq!(*m, Some(i));
            assert_eq!(
                hh.capacity_of(i).get().to_bits(),
                plain.capacity_of(i).get().to_bits()
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_plan() -> impl Strategy<Value = GridFaultPlan> {
            (
                0u64..=u64::MAX,
                (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
                (0.05f64..=1.0, 0.05f64..=1.0),
                (0.0f64..1000.0, 0.0f64..7200.0, 60.0f64..7200.0),
            )
                .prop_map(
                    |(seed, (ups, ats, pdu, derate), (frac, floor), (onset, window, repair))| {
                        GridFaultPlan {
                            seed,
                            ups_failure_prob: ups,
                            ats_derate_prob: ats,
                            ats_derate_frac: frac,
                            pdu_trip_prob: pdu,
                            derate_prob: derate,
                            derate_floor: floor,
                            onset_secs: onset,
                            window_secs: window,
                            repair_secs: repair,
                        }
                    },
                )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Satellite invariant (a): under any fault plan at any instant,
            /// every node's derated capacity stays within its spec capacity,
            /// factors stay in `(0, 1]`, liveness stays ancestor-closed, and
            /// the min-cut never exceeds the healthy tree's.
            #[test]
            fn derated_capacity_bounds_hold_at_every_level(
                plan in arb_plan(),
                t in 0.0f64..25_000.0,
            ) {
                let s = spec();
                let state = plan.state_at(&s, t);
                for i in 0..s.nodes.len() {
                    let f = state.factor(i);
                    prop_assert!(f > 0.0 && f <= 1.0, "node {i} factor {f}");
                    prop_assert!(
                        state.derated_capacity(i) <= s.nodes[i].capacity,
                        "node {i} derated above spec capacity"
                    );
                    if state.alive(i) {
                        if let Some(p) = s.nodes[i].parent {
                            prop_assert!(state.alive(p), "alive node {i} under dead parent {p}");
                        }
                    }
                }
                let healthy = TopologyState::healthy(&s).usable_capacity();
                prop_assert!(state.usable_capacity() <= healthy);
                let frac = state.capacity_frac();
                prop_assert!((0.0..=1.0).contains(&frac), "capacity_frac {frac}");
            }

            /// Satellite invariant (b): once the last fault repairs, the
            /// state is healthy and the hierarchy it builds is bit-identical
            /// (ULP-exact capacities, identity node map) to the flat spec
            /// build — the foundation of the post-repair chaos oracle.
            #[test]
            fn repair_restores_ulp_exact_flat_equivalence(plan in arb_plan()) {
                let s = spec();
                let last = plan.last_repair_secs(&s);
                prop_assert!(last.is_finite());
                let repaired = plan.state_at(&s, last + 1.0);
                prop_assert!(repaired.is_healthy(), "faults must clear after the last repair");
                let (h, map) = repaired.to_hierarchy_scaled(1.0).unwrap();
                let flat = s.to_hierarchy().unwrap();
                prop_assert_eq!(h.len(), flat.len());
                for (i, m) in map.iter().enumerate() {
                    prop_assert_eq!(*m, Some(i));
                    prop_assert_eq!(
                        h.capacity_of(i).get().to_bits(),
                        flat.capacity_of(i).get().to_bits(),
                        "node {} capacity must restore ULP-exact", i
                    );
                }
            }
        }
    }

    #[test]
    fn capacity_frac_reflects_the_min_cut() {
        let s = spec();
        // Healthy min-cut: racks 1500+1500 cap pdu-a at 3000 → ups-a 3000;
        // rack-b 2500 → ups-b 2500; root min(12000, 5500) = 5500.
        let healthy = TopologyState::healthy(&s);
        assert_eq!(healthy.usable_capacity(), Watts::new(5500.0));
        let mut state = TopologyState::healthy(&s);
        state.own_alive[1] = false;
        state.close_over_ancestors();
        assert_eq!(state.usable_capacity(), Watts::new(2500.0));
        assert!((state.capacity_frac() - 2500.0 / 5500.0).abs() < 1e-12);
    }
}
