//! The OPT benchmark (Eqns. 1–2): centralized optimal overload handling.
//!
//! OPT minimizes the total cost of performance loss `Σ C_m(δ_m)` subject to
//! the power-reduction constraint `Σ P(δ_m) ≥ P(t) − C` and per-job bounds
//! `0 ≤ δ_m ≤ Δ_m`. It is the performance upper limit MPR is compared
//! against, and also what MPR-INT provably attains at equilibrium.
//!
//! The problem is a *separable* non-linear program, which we exploit:
//!
//! * [`OptMethod::WaterFilling`] — exact for convex per-job costs:
//!   λ-bisection on the common marginal cost (KKT conditions), per-job
//!   inverse marginals found by inner bisection.
//! * [`OptMethod::ConcaveGreedy`] — for concave per-job costs the optimum
//!   lies at an extreme point with at most one fractionally reduced job;
//!   greedily fill the cheapest average-cost jobs.
//! * [`OptMethod::Auto`] — probes the marginals and dispatches.

use crate::cost::CostModel;
use crate::error::MarketError;
use crate::numeric;
use crate::participant::JobId;
use crate::units::Watts;

/// One job as seen by the centralized OPT solver: the manager would need to
/// know the true cost model of every job — precisely the burden MPR removes.
#[derive(Clone, Copy)]
pub struct OptJob<'a> {
    id: JobId,
    cost: &'a dyn CostModel,
    watts_per_unit: f64,
}

impl<'a> OptJob<'a> {
    /// Creates an OPT job from its (true) cost model.
    #[must_use]
    pub fn new(id: JobId, cost: &'a dyn CostModel, watts_per_unit: Watts) -> Self {
        Self {
            id,
            cost,
            watts_per_unit: watts_per_unit.get(),
        }
    }

    /// The job id.
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Evaluates the job's cost model at a reduction (used by the VCG
    /// auction's payment rule).
    #[must_use]
    pub fn cost_at(&self, delta: f64) -> f64 {
        self.cost.cost(delta)
    }

    /// Power reduction per unit of resource reduction.
    #[must_use]
    pub fn watts_per_unit(&self) -> Watts {
        Watts::new(self.watts_per_unit)
    }
}

impl std::fmt::Debug for OptJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptJob")
            .field("id", &self.id)
            .field("delta_max", &self.cost.delta_max())
            .field("watts_per_unit", &self.watts_per_unit)
            .finish()
    }
}

/// Solution strategy for OPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptMethod {
    /// Probe cost-model curvature and pick water-filling (convex) or the
    /// concave greedy automatically.
    #[default]
    Auto,
    /// KKT water-filling; exact when every cost model is convex.
    WaterFilling,
    /// Extreme-point greedy; exact when every cost model is concave.
    ConcaveGreedy,
}

/// The reductions chosen by OPT.
#[derive(Debug, Clone, PartialEq)]
pub struct OptSolution {
    /// Per-job reductions `(job id, δ_m)` in input order.
    pub reductions: Vec<(JobId, f64)>,
    /// Total performance-loss cost `Σ C_m(δ_m)`.
    pub total_cost: f64,
    /// Total power reduction achieved, in watts.
    pub total_power: f64,
}

/// Solves OPT for the given jobs and power-reduction target.
///
/// A non-positive target returns the all-zero solution.
///
/// ```
/// use mpr_core::opt::{solve, OptJob, OptMethod};
/// use mpr_core::{QuadraticCost, Watts};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// let cheap = QuadraticCost::new(1.0, 1.0);
/// let dear = QuadraticCost::new(4.0, 1.0);
/// let w = Watts::new(125.0);
/// let jobs = [OptJob::new(0, &cheap, w), OptJob::new(1, &dear, w)];
/// let sol = solve(&jobs, Watts::new(100.0), OptMethod::Auto)?;
/// // Water-filling equalizes marginals: the cheap job sheds 4x more.
/// assert!(sol.reductions[0].1 > 3.5 * sol.reductions[1].1);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`MarketError::NoParticipants`] for an empty job list with positive
///   target.
/// * [`MarketError::Infeasible`] when `Σ Δ_m · watts_per_unit` is below the
///   target.
pub fn solve(
    jobs: &[OptJob<'_>],
    target: Watts,
    method: OptMethod,
) -> Result<OptSolution, MarketError> {
    let target_watts = target.get();
    if target_watts <= 0.0 {
        return Ok(OptSolution {
            reductions: jobs.iter().map(|j| (j.id, 0.0)).collect(),
            total_cost: 0.0,
            total_power: 0.0,
        });
    }
    if jobs.is_empty() {
        return Err(MarketError::NoParticipants);
    }
    for j in jobs {
        if !j.cost.delta_max().is_finite() {
            return Err(MarketError::InvalidParameter {
                name: "delta_max",
                value: j.cost.delta_max(),
                constraint: "cost model delta_max must be finite",
            });
        }
        if !j.watts_per_unit.is_finite() || j.watts_per_unit < 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "watts_per_unit",
                value: j.watts_per_unit,
                constraint: "must be finite and non-negative",
            });
        }
    }
    let attainable: f64 = jobs
        .iter()
        .map(|j| j.cost.delta_max() * j.watts_per_unit)
        .sum();
    if attainable < target_watts * (1.0 - 1e-9) {
        return Err(MarketError::Infeasible {
            target_watts,
            attainable_watts: attainable,
        });
    }

    match method {
        OptMethod::WaterFilling => water_filling(jobs, target_watts),
        OptMethod::ConcaveGreedy => concave_greedy(jobs, target_watts),
        OptMethod::Auto => {
            if jobs.iter().all(|j| is_convex(j.cost)) {
                water_filling(jobs, target_watts)
            } else {
                concave_greedy(jobs, target_watts)
            }
        }
    }
}

/// Samples the marginal cost at a few points to classify curvature.
fn is_convex(cost: &dyn CostModel) -> bool {
    let delta_max = cost.delta_max();
    if delta_max <= 0.0 {
        return true;
    }
    let mut prev = f64::NEG_INFINITY;
    for i in 1..=8 {
        let d = delta_max * (i as f64) / 9.0;
        let m = cost.marginal(d);
        if m < prev - 1e-9 * prev.abs().max(1.0) {
            return false;
        }
        prev = m;
    }
    true
}

/// Per-job reduction at Lagrange multiplier `lambda`: the largest `δ` whose
/// marginal cost per watt stays below `lambda`.
fn delta_at_lambda(job: &OptJob<'_>, lambda: f64) -> f64 {
    let delta_max = job.cost.delta_max();
    if delta_max <= 0.0 {
        return 0.0;
    }
    let threshold = lambda * job.watts_per_unit;
    if job.cost.marginal(0.0) >= threshold {
        return 0.0;
    }
    if job.cost.marginal(delta_max) <= threshold {
        return delta_max;
    }
    // Smallest δ with C'(δ) >= threshold; C' non-decreasing for convex costs.
    numeric::bisect_threshold(0.0, delta_max, threshold, 1e-12, |d| job.cost.marginal(d))
        .unwrap_or(delta_max)
}

fn water_filling(jobs: &[OptJob<'_>], target_watts: f64) -> Result<OptSolution, MarketError> {
    let power_at = |lambda: f64| -> f64 {
        jobs.iter()
            .map(|j| delta_at_lambda(j, lambda) * j.watts_per_unit)
            .sum()
    };
    // Bracket lambda by doubling.
    let mut hi = 1e-6;
    let mut doubles = 0;
    while power_at(hi) < target_watts {
        hi *= 2.0;
        doubles += 1;
        if doubles > 200 {
            break;
        }
    }
    let lambda = numeric::bisect_threshold(0.0, hi, target_watts, 1e-12, power_at)?;
    let mut reductions: Vec<(JobId, f64)> = jobs
        .iter()
        .map(|j| (j.id, delta_at_lambda(j, lambda)))
        .collect();

    // Trim overshoot: the bisection lands a hair above the target; shave the
    // most expensive marginal reductions back to hit it exactly.
    let total: f64 = reductions
        .iter()
        .zip(jobs)
        .map(|((_, d), j)| d * j.watts_per_unit)
        .sum();
    let mut excess = total - target_watts;
    if excess > 0.0 {
        // Shrink jobs with the highest marginal cost first (they benefit
        // most); sort `(marginal, index)` pairs so no post-sort indexing
        // into a parallel array is needed.
        let mut order: Vec<(f64, usize)> = reductions
            .iter()
            .zip(jobs)
            .enumerate()
            .map(|(i, ((_, d), j))| (j.cost.marginal(*d), i))
            .collect();
        if let Some(&(bad, _)) = order.iter().find(|(m, _)| !m.is_finite()) {
            return Err(MarketError::InvalidParameter {
                name: "marginal",
                value: bad,
                constraint: "cost model produced a non-finite marginal cost",
            });
        }
        order.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (_, idx) in order {
            if excess <= 0.0 {
                break;
            }
            let Some((j, r)) = jobs.get(idx).zip(reductions.get_mut(idx)) else {
                continue;
            };
            let give_back = (excess / j.watts_per_unit).min(r.1);
            r.1 -= give_back;
            excess -= give_back * j.watts_per_unit;
        }
    }

    Ok(finish(jobs, reductions))
}

fn concave_greedy(jobs: &[OptJob<'_>], target_watts: f64) -> Result<OptSolution, MarketError> {
    // For concave costs, average cost per watt at full reduction is the
    // right greedy key: the optimum reduces the cheapest jobs fully, with at
    // most one fractional job. Jobs with Δ = 0 cannot contribute and are
    // skipped outright.
    let mut entries: Vec<(f64, usize)> = Vec::with_capacity(jobs.len());
    for (i, j) in jobs.iter().enumerate() {
        let dm = j.cost.delta_max();
        if dm <= 0.0 {
            continue;
        }
        let key = j.cost.cost(dm) / (dm * j.watts_per_unit);
        if !key.is_finite() {
            return Err(MarketError::InvalidParameter {
                name: "cost",
                value: key,
                constraint: "cost model produced a non-finite average cost per watt",
            });
        }
        entries.push((key, i));
    }
    entries.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut reductions: Vec<(JobId, f64)> = jobs.iter().map(|j| (j.id, 0.0)).collect();
    let mut remaining = target_watts;
    for (_, i) in entries {
        if remaining <= 0.0 {
            break;
        }
        let Some((j, r)) = jobs.get(i).zip(reductions.get_mut(i)) else {
            continue;
        };
        let delta = (remaining / j.watts_per_unit).min(j.cost.delta_max());
        r.1 = delta;
        remaining -= delta * j.watts_per_unit;
    }
    Ok(finish(jobs, reductions))
}

fn finish(jobs: &[OptJob<'_>], reductions: Vec<(JobId, f64)>) -> OptSolution {
    let total_cost = reductions
        .iter()
        .zip(jobs)
        .map(|((_, d), j)| j.cost.cost(*d))
        .sum();
    let total_power = reductions
        .iter()
        .zip(jobs)
        .map(|((_, d), j)| d * j.watts_per_unit)
        .sum();
    OptSolution {
        reductions,
        total_cost,
        total_power,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LinearCost, LogFitCost, QuadraticCost};
    use proptest::prelude::*;

    const W125: Watts = Watts::new(125.0);

    fn w(x: f64) -> Watts {
        Watts::new(x)
    }

    #[test]
    fn zero_target_is_free() {
        let c = QuadraticCost::new(1.0, 1.0);
        let jobs = vec![OptJob::new(0, &c, W125)];
        let sol = solve(&jobs, w(0.0), OptMethod::Auto).unwrap();
        assert_eq!(sol.total_cost, 0.0);
        assert_eq!(sol.reductions, vec![(0, 0.0)]);
    }

    #[test]
    fn empty_and_infeasible_errors() {
        assert_eq!(
            solve(&[], w(10.0), OptMethod::Auto),
            Err(MarketError::NoParticipants)
        );
        let c = QuadraticCost::new(1.0, 1.0);
        let jobs = vec![OptJob::new(0, &c, W125)];
        assert!(matches!(
            solve(&jobs, w(1000.0), OptMethod::Auto),
            Err(MarketError::Infeasible { .. })
        ));
    }

    #[test]
    fn water_filling_equalizes_marginals() {
        // Two quadratic jobs: marginal 2αδ; equal marginals → δ1/δ2 = α2/α1.
        let c1 = QuadraticCost::new(1.0, 10.0);
        let c2 = QuadraticCost::new(3.0, 10.0);
        let jobs = vec![OptJob::new(0, &c1, W125), OptJob::new(1, &c2, W125)];
        let sol = solve(&jobs, w(500.0), OptMethod::WaterFilling).unwrap();
        let d1 = sol.reductions[0].1;
        let d2 = sol.reductions[1].1;
        assert!((d1 / d2 - 3.0).abs() < 1e-3, "d1={d1} d2={d2}");
        assert!((sol.total_power - 500.0).abs() < 1e-6);
    }

    #[test]
    fn water_filling_beats_uniform_for_heterogeneous_costs() {
        let c1 = QuadraticCost::new(1.0, 2.0);
        let c2 = QuadraticCost::new(9.0, 2.0);
        let jobs = vec![OptJob::new(0, &c1, W125), OptJob::new(1, &c2, W125)];
        let target = w(250.0); // needs total δ = 2.0
        let sol = solve(&jobs, target, OptMethod::Auto).unwrap();
        let uniform_cost = c1.cost(1.0) + c2.cost(1.0);
        assert!(
            sol.total_cost < uniform_cost,
            "OPT {} should beat uniform {}",
            sol.total_cost,
            uniform_cost
        );
    }

    #[test]
    fn concave_greedy_prefers_cheapest_average_cost() {
        let cheap = LogFitCost::new(0.1, 20.0, 1.0);
        let dear = LogFitCost::new(2.0, 20.0, 1.0);
        let jobs = vec![OptJob::new(0, &cheap, W125), OptJob::new(1, &dear, W125)];
        let sol = solve(&jobs, w(125.0), OptMethod::Auto).unwrap();
        // The cheap job should be reduced fully; the expensive one untouched.
        assert!((sol.reductions[0].1 - 1.0).abs() < 1e-9);
        assert!(sol.reductions[1].1.abs() < 1e-9);
    }

    #[test]
    fn auto_detects_concavity() {
        let c = LogFitCost::new(1.0, 10.0, 1.0);
        assert!(!is_convex(&c));
        let q = QuadraticCost::new(1.0, 1.0);
        assert!(is_convex(&q));
        let l = LinearCost::new(2.0, 1.0);
        assert!(is_convex(&l));
    }

    #[test]
    fn linear_costs_fill_cheapest_first() {
        let cheap = LinearCost::new(1.0, 1.0);
        let dear = LinearCost::new(5.0, 1.0);
        let jobs = vec![OptJob::new(0, &cheap, W125), OptJob::new(1, &dear, W125)];
        let sol = solve(&jobs, w(150.0), OptMethod::WaterFilling).unwrap();
        assert!((sol.reductions[0].1 - 1.0).abs() < 1e-6);
        assert!((sol.reductions[1].1 - 0.2).abs() < 1e-3);
    }

    /// A pathological cost model whose cost (and hence marginal) is NaN:
    /// before input validation this silently mis-sorted the greedy/trim
    /// orders instead of failing.
    struct NanCost {
        delta_max: f64,
    }

    impl crate::cost::CostModel for NanCost {
        fn cost(&self, _delta: f64) -> f64 {
            f64::NAN
        }
        fn delta_max(&self) -> f64 {
            self.delta_max
        }
        fn marginal(&self, _delta: f64) -> f64 {
            f64::NAN
        }
    }

    #[test]
    fn nan_costs_are_rejected_not_missorted() {
        let bad = NanCost { delta_max: 4.0 };
        let good = QuadraticCost::new(1.0, 4.0);
        let jobs = vec![OptJob::new(0, &bad, W125), OptJob::new(1, &good, W125)];
        // Concave greedy path: NaN average cost per watt must be a typed error.
        let err = solve(&jobs, w(100.0), OptMethod::ConcaveGreedy).unwrap_err();
        assert!(
            matches!(err, MarketError::InvalidParameter { name: "cost", .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn non_finite_job_parameters_are_rejected() {
        let inf = NanCost {
            delta_max: f64::INFINITY,
        };
        let jobs = vec![OptJob::new(0, &inf, W125)];
        assert!(matches!(
            solve(&jobs, w(10.0), OptMethod::Auto).unwrap_err(),
            MarketError::InvalidParameter {
                name: "delta_max",
                ..
            }
        ));

        let good = QuadraticCost::new(1.0, 4.0);
        let jobs = vec![OptJob::new(0, &good, w(f64::NAN))];
        assert!(matches!(
            solve(&jobs, w(10.0), OptMethod::Auto).unwrap_err(),
            MarketError::InvalidParameter {
                name: "watts_per_unit",
                ..
            }
        ));
    }

    #[test]
    fn debug_impl_is_nonempty() {
        let c = LinearCost::new(1.0, 1.0);
        let j = OptJob::new(3, &c, W125);
        assert!(format!("{j:?}").contains("OptJob"));
        assert_eq!(j.id(), 3);
        assert_eq!(j.watts_per_unit(), W125);
    }

    proptest! {
        /// OPT meets the target (within tolerance) and respects bounds, and
        /// never costs more than the uniform-split allocation.
        #[test]
        fn opt_feasible_and_no_worse_than_uniform(
            alphas in proptest::collection::vec(0.2f64..8.0, 2..12),
            frac in 0.1f64..0.9,
        ) {
            let costs: Vec<QuadraticCost> =
                alphas.iter().map(|&a| QuadraticCost::new(a, 1.0)).collect();
            let jobs: Vec<OptJob<'_>> = costs
                .iter()
                .enumerate()
                .map(|(i, c)| OptJob::new(i as u64, c, W125))
                .collect();
            let attainable = 125.0 * jobs.len() as f64;
            let target = frac * attainable;
            let sol = solve(&jobs, w(target), OptMethod::Auto).unwrap();
            prop_assert!(sol.total_power >= target * (1.0 - 1e-6));
            for (i, (_, d)) in sol.reductions.iter().enumerate() {
                prop_assert!(*d >= -1e-12 && *d <= costs[i].delta_max() + 1e-9);
            }
            // Uniform allocation with the same total power.
            let uniform = target / attainable;
            let uniform_cost: f64 = costs.iter().map(|c| {
                use crate::cost::CostModel;
                c.cost(uniform)
            }).sum();
            prop_assert!(sol.total_cost <= uniform_cost * (1.0 + 1e-6) + 1e-9,
                "OPT {} worse than uniform {}", sol.total_cost, uniform_cost);
        }
    }
}
