//! User-side bidding strategies (Section III-C, Fig. 4).
//!
//! * For **MPR-STAT**, bids are fixed at job submission without knowledge of
//!   the clearing price. The paper proposes a *cooperative* strategy — the
//!   largest supply whose curve stays at-or-below the user's reference-cost
//!   curve, guaranteeing a non-negative net gain over the whole price range —
//!   plus a *conservative* variant (higher bid, less supply) and a
//!   *deficient* one (lower bid, possible negative gain).
//! * For **MPR-INT**, the user observes each announced price `q` and picks
//!   the bid maximizing its net gain `G = q·δ(q) − C(δ(q))` (Eqn. 7).

use crate::cost::CostModel;
use crate::error::MarketError;
use crate::numeric;
use crate::supply::SupplyFunction;
use crate::units::Price;

/// Grid density for the bid/response searches. 512 samples over `[0, Δ]`
/// keeps strategy computation O(microseconds) — the "lightweight
/// computation" the paper expects of bidding agents.
const GRID: usize = 512;

/// Static bidding strategies for MPR-STAT markets (Fig. 4(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StaticStrategy {
    /// Bid exactly on the reference cost curve with maximal supply: the
    /// largest participation that still guarantees a non-negative net gain
    /// at every possible clearing price.
    Cooperative,
    /// Bid `factor > 1` times the cooperative bid: less supply at any given
    /// price, a safety margin against cost-model error.
    Conservative {
        /// Multiplier applied to the cooperative bid (must be `>= 1`).
        factor: f64,
    },
    /// Bid `factor < 1` times the cooperative bid: more supply, but a
    /// negative net gain over part of the price range.
    Deficient {
        /// Multiplier applied to the cooperative bid (must be in `(0, 1]`).
        factor: f64,
    },
}

impl StaticStrategy {
    /// Computes the supply function this strategy submits for a job with
    /// the given cost model.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidParameter`] if the strategy factor is
    /// out of range or the cost model's `delta_max` is not positive.
    pub fn supply_for<C: CostModel + ?Sized>(
        &self,
        cost: &C,
    ) -> Result<SupplyFunction, MarketError> {
        let base = cooperative_bid(cost)?;
        let bid = match *self {
            StaticStrategy::Cooperative => base,
            StaticStrategy::Conservative { factor } => {
                if !(factor.is_finite() && factor >= 1.0) {
                    return Err(MarketError::InvalidParameter {
                        name: "factor",
                        value: factor,
                        constraint: "conservative factor must be >= 1",
                    });
                }
                base * factor
            }
            StaticStrategy::Deficient { factor } => {
                if !(factor.is_finite() && factor > 0.0 && factor <= 1.0) {
                    return Err(MarketError::InvalidParameter {
                        name: "factor",
                        value: factor,
                        constraint: "deficient factor must be in (0, 1]",
                    });
                }
                base * factor
            }
        };
        SupplyFunction::new(cost.delta_max(), bid)
    }
}

/// The cooperative bid: the smallest `b` such that the supply curve
/// `δ(q) = Δ − b/q` never rises above the user's reference cost curve
/// `δ_ref(q)` (the inverse of `q_ref(δ) = C(δ)/δ`).
///
/// Equivalently `b = max_{0 < δ ≤ Δ} (Δ − δ) · C(δ)/δ`: at every reduction
/// level the price the user receives, `b/(Δ−δ)`, is at least its actual unit
/// cost, so the net gain is non-negative at *any* clearing price — the
/// defining property of cooperative bidding.
///
/// ```
/// use mpr_core::bidding::cooperative_bid;
/// use mpr_core::QuadraticCost;
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// // C(δ) = 4δ² on [0, 1]: unit cost 4δ, so b = max (1−δ)·4δ = 1 at δ = ½.
/// let b = cooperative_bid(&QuadraticCost::new(4.0, 1.0))?;
/// assert!((b - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`MarketError::InvalidParameter`] when the cost model's
/// `delta_max` is not a positive finite number.
pub fn cooperative_bid<C: CostModel + ?Sized>(cost: &C) -> Result<f64, MarketError> {
    let delta_max = cost.delta_max();
    if !delta_max.is_finite() || delta_max <= 0.0 {
        return Err(MarketError::InvalidParameter {
            name: "delta_max",
            value: delta_max,
            constraint: "cost model must allow a positive reduction",
        });
    }
    let f = |delta: f64| {
        if delta <= 0.0 {
            return 0.0;
        }
        (delta_max - delta) * cost.unit_cost(delta)
    };
    let (_, bid) = numeric::maximize(delta_max * 1e-6, delta_max, GRID, f)?;
    Ok(bid.max(0.0))
}

/// Outcome of a net-gain-maximizing best response at a given price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BestResponse {
    /// The reduction `δ*` the user wants to supply at this price.
    pub delta: f64,
    /// The bid `b = q · (Δ − δ*)` that makes the supply function pass
    /// through `(q, δ*)`.
    pub bid: f64,
    /// The net gain `q·δ* − C(δ*)` achieved.
    pub net_gain: f64,
}

/// Computes the MPR-INT best response (Fig. 4(b)): the reduction `δ*` in
/// `[0, Δ]` maximizing `G(δ) = q·δ − C(δ)` and the bid that realizes it.
///
/// Users solve this unconstrained one-dimensional problem each market
/// iteration (Section III-D, "Scalability").
///
/// ```
/// use mpr_core::bidding::best_response;
/// use mpr_core::{Price, QuadraticCost};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// // G = qδ − 2δ² peaks at δ* = q/4.
/// let r = best_response(&QuadraticCost::new(2.0, 1.0), Price::new(1.0))?;
/// assert!((r.delta - 0.25).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`MarketError::InvalidParameter`] on a non-finite or negative
/// price, or when the cost model's `delta_max` is not positive.
pub fn best_response<C: CostModel + ?Sized>(
    cost: &C,
    price: Price,
) -> Result<BestResponse, MarketError> {
    let q = price.get();
    if !q.is_finite() || q < 0.0 {
        return Err(MarketError::InvalidParameter {
            name: "price",
            value: q,
            constraint: "must be finite and >= 0",
        });
    }
    let delta_max = cost.delta_max();
    if !delta_max.is_finite() || delta_max <= 0.0 {
        return Err(MarketError::InvalidParameter {
            name: "delta_max",
            value: delta_max,
            constraint: "cost model must allow a positive reduction",
        });
    }
    let (delta, net_gain) = numeric::maximize(0.0, delta_max, GRID, |d| q * d - cost.cost(d))?;
    // Never supply at a loss: δ = 0 always achieves G = 0.
    let (delta, net_gain) = if net_gain < 0.0 {
        (0.0, 0.0)
    } else {
        (delta, net_gain)
    };
    let bid = (q * (delta_max - delta)).max(0.0);
    Ok(BestResponse {
        delta,
        bid,
        net_gain,
    })
}

/// Net market gain (Eqn. 7) of a user holding `supply` when the market
/// clears at `price`: payoff `q'·δ(q')` minus the cost `C(δ(q'))`.
#[must_use]
pub fn net_gain<C: CostModel + ?Sized>(cost: &C, supply: &SupplyFunction, price: Price) -> f64 {
    let delta = supply.supply(price);
    price.get() * delta - cost.cost(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{LinearCost, PowerLawCost, QuadraticCost};
    use proptest::prelude::*;

    #[test]
    fn cooperative_bid_linear_cost_closed_form() {
        // C(δ) = s·δ → unit cost s. b = max (Δ−δ)·s = Δ·s at δ → 0.
        let cost = LinearCost::new(2.0, 0.5);
        let b = cooperative_bid(&cost).unwrap();
        assert!((b - 1.0).abs() < 1e-3, "b = {b}");
    }

    #[test]
    fn cooperative_bid_quadratic_closed_form() {
        // unit cost αδ → (Δ−δ)·αδ maximized at δ = Δ/2 → b = αΔ²/4.
        let cost = QuadraticCost::new(4.0, 1.0);
        let b = cooperative_bid(&cost).unwrap();
        assert!((b - 1.0).abs() < 1e-6, "b = {b}");
    }

    #[test]
    fn cooperative_gain_is_nonnegative_across_prices() {
        let cost = PowerLawCost::new(3.0, 2.3, 0.7);
        let supply = StaticStrategy::Cooperative.supply_for(&cost).unwrap();
        for i in 1..200 {
            let q = 0.05 * f64::from(i);
            let g = net_gain(&cost, &supply, Price::new(q));
            assert!(g >= -1e-9, "negative gain {g} at price {q}");
        }
    }

    #[test]
    fn deficient_bid_can_lose_money() {
        let cost = QuadraticCost::new(4.0, 1.0);
        let supply = StaticStrategy::Deficient { factor: 0.2 }
            .supply_for(&cost)
            .unwrap();
        let lost =
            (1..200).any(|i| net_gain(&cost, &supply, Price::new(0.02 * f64::from(i))) < -1e-9);
        assert!(lost, "a strongly deficient bid should lose at some price");
    }

    #[test]
    fn conservative_supplies_less_than_cooperative() {
        let cost = QuadraticCost::new(4.0, 1.0);
        let coop = StaticStrategy::Cooperative.supply_for(&cost).unwrap();
        let cons = StaticStrategy::Conservative { factor: 2.0 }
            .supply_for(&cost)
            .unwrap();
        for i in 1..50 {
            let q = Price::new(0.1 * f64::from(i));
            assert!(cons.supply(q) <= coop.supply(q) + 1e-12);
        }
    }

    #[test]
    fn strategy_factor_validation() {
        let cost = LinearCost::new(1.0, 0.5);
        assert!(StaticStrategy::Conservative { factor: 0.5 }
            .supply_for(&cost)
            .is_err());
        assert!(StaticStrategy::Deficient { factor: 1.5 }
            .supply_for(&cost)
            .is_err());
        assert!(StaticStrategy::Deficient { factor: 0.0 }
            .supply_for(&cost)
            .is_err());
    }

    #[test]
    fn best_response_quadratic_closed_form() {
        // G = qδ − αδ²; δ* = q/(2α) when interior.
        let cost = QuadraticCost::new(2.0, 1.0);
        let r = best_response(&cost, Price::new(1.0)).unwrap();
        assert!((r.delta - 0.25).abs() < 1e-6, "delta = {}", r.delta);
        assert!((r.net_gain - (1.0 * 0.25 - 2.0 * 0.0625)).abs() < 1e-9);
        assert!((r.bid - 1.0 * (1.0 - 0.25)).abs() < 1e-6);
    }

    #[test]
    fn best_response_saturates_at_delta_max() {
        let cost = QuadraticCost::new(0.1, 0.5);
        let r = best_response(&cost, Price::new(10.0)).unwrap();
        assert!((r.delta - 0.5).abs() < 1e-9);
        assert!(r.bid.abs() < 1e-6);
    }

    #[test]
    fn best_response_zero_price_supplies_nothing() {
        let cost = QuadraticCost::new(1.0, 1.0);
        let r = best_response(&cost, Price::ZERO).unwrap();
        assert_eq!(r.delta, 0.0);
        assert_eq!(r.net_gain, 0.0);
    }

    #[test]
    fn best_response_rejects_bad_price() {
        let cost = QuadraticCost::new(1.0, 1.0);
        assert!(best_response(&cost, Price::new(f64::NAN)).is_err());
        assert!(best_response(&cost, Price::new(-1.0)).is_err());
    }

    #[test]
    fn cooperative_bid_rejects_zero_delta_max() {
        let cost = LinearCost::new(1.0, 0.0);
        assert!(cooperative_bid(&cost).is_err());
    }

    proptest! {
        /// The best response never yields a negative net gain, and its bid
        /// reproduces δ* through the supply function.
        #[test]
        fn best_response_consistency(
            alpha in 0.1f64..10.0,
            exponent in 1.1f64..3.0,
            delta_max in 0.1f64..2.0,
            price in 0.0f64..20.0,
        ) {
            let cost = PowerLawCost::new(alpha, exponent, delta_max);
            let r = best_response(&cost, Price::new(price)).unwrap();
            prop_assert!(r.net_gain >= -1e-9);
            prop_assert!(r.delta >= 0.0 && r.delta <= delta_max + 1e-9);
            if price > 0.0 {
                let s = SupplyFunction::new(delta_max, r.bid).unwrap();
                let at = s.supply(Price::new(price));
                prop_assert!((at - r.delta).abs() < 1e-6,
                    "supply({price}) = {at} but delta = {}", r.delta);
            }
        }

        /// Cooperative bidding guarantees non-negative gain at every price —
        /// the paper's "users always receive more rewards than the cost".
        #[test]
        fn cooperative_never_loses(
            alpha in 0.1f64..10.0,
            exponent in 1.0f64..3.0,
            delta_max in 0.1f64..2.0,
            price in 0.001f64..50.0,
        ) {
            let cost = PowerLawCost::new(alpha, exponent, delta_max);
            let supply = StaticStrategy::Cooperative.supply_for(&cost).unwrap();
            prop_assert!(net_gain(&cost, &supply, Price::new(price)) >= -1e-6);
        }
    }
}
