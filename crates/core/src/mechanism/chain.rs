//! Graceful degradation as mechanism composition.
//!
//! A [`FallbackChain`] strings any number of [`Mechanism`]s together: each
//! stage is tried in order, and the first whose [`Clearing`] is both
//! *accepted* (the mechanism vouches for it) and *meets the target* wins.
//! The last stage's clearing is returned unconditionally — a chain ending
//! in [`EqlCappingMechanism`](crate::mechanism::EqlCappingMechanism) can
//! therefore only fall short on physically unattainable targets.
//!
//! Bids observed by an earlier stage (e.g. the live bids a
//! [`ResilientInteractiveMechanism`](crate::mechanism::ResilientInteractiveMechanism)
//! collected before diverging) are patched into the [`MarketInstance`]
//! handed to later stages, so a static re-clear sees the freshest
//! information available.

use crate::market::faults::ChainLevel;
use crate::mechanism::{
    Clearing, Diagnostics, InstanceView, MarketInstance, Mechanism, MechanismError,
};
use crate::units::Watts;

/// An ordered ladder of mechanisms with progressively weaker guarantees.
pub struct FallbackChain<'a> {
    stages: Vec<(ChainLevel, Box<dyn Mechanism + 'a>)>,
}

impl std::fmt::Debug for FallbackChain<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.stages.iter().map(|(_, m)| m.name()).collect();
        f.debug_struct("FallbackChain")
            .field("stages", &names)
            .finish()
    }
}

impl<'a> FallbackChain<'a> {
    /// Creates an empty chain; add stages with [`FallbackChain::stage`].
    #[must_use]
    pub fn new() -> Self {
        Self { stages: Vec::new() }
    }

    /// Appends a stage at the given degradation level.
    #[must_use]
    pub fn stage(mut self, level: ChainLevel, mechanism: impl Mechanism + 'a) -> Self {
        self.stages.push((level, Box::new(mechanism)));
        self
    }

    /// Number of stages in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` when the chain has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Default for FallbackChain<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl Mechanism for FallbackChain<'_> {
    fn name(&self) -> &'static str {
        "CHAIN"
    }

    fn prepare(&mut self, view: &InstanceView<'_>) -> Result<(), MechanismError> {
        view.ensure_clearable()?;
        for (_, stage) in &mut self.stages {
            stage.prepare(view)?;
        }
        Ok(())
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        if self.stages.is_empty() {
            return Err(MechanismError::DegenerateInstance {
                reason: "the fallback chain has no stages",
            });
        }
        // The working window, re-patched (as a standalone instance of the
        // view's rows) whenever a stage reports fresher bids than the
        // caller supplied.
        let mut patched: Option<MarketInstance> = None;
        // Diagnostics of the first stage that produced *any* clearing — the
        // primary mechanism's story (iterations, quarantines, price trace)
        // is what callers want to see even after a fallback.
        let mut primary: Option<Diagnostics> = None;
        let mut last_err: Option<MechanismError> = None;
        let total = self.stages.len();
        for (idx, (level, stage)) in self.stages.iter_mut().enumerate() {
            let is_last = idx + 1 == total;
            let result = match &patched {
                Some(p) => stage.clear_view(&p.view(), target),
                None => stage.clear_view(view, target),
            };
            match result {
                Ok(mut clearing) => {
                    let accepted = clearing.diagnostics().accepted && clearing.met_target();
                    if primary.is_none() {
                        primary = Some(clearing.diagnostics().clone());
                    }
                    if accepted || is_last {
                        let d = clearing.diagnostics_mut();
                        if let Some(p) = primary {
                            d.iterations = p.iterations;
                            d.converged = p.converged;
                            d.diverged = p.diverged;
                            d.retries = p.retries;
                            d.quarantined = p.quarantined;
                            if d.price_trace.is_empty() {
                                d.price_trace = p.price_trace;
                            }
                            if d.transport.is_none() {
                                d.transport = p.transport;
                            }
                        }
                        d.chain_level = Some(*level);
                        d.levels_tried = idx + 1;
                        return Ok(clearing);
                    }
                    // Not good enough: carry the freshest bids forward.
                    if let Some(bids) = &clearing.diagnostics().observed_bids {
                        let next = match &patched {
                            Some(p) => p.with_bids(bids),
                            None => view.with_bids(bids),
                        };
                        patched = Some(next);
                    }
                }
                Err(e) => {
                    if is_last {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
            }
        }
        // Unreachable in practice (the last stage always returns above);
        // surface the most recent error rather than panicking.
        Err(last_err.unwrap_or(MechanismError::DegenerateInstance {
            reason: "the fallback chain produced no clearing",
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::market::faults::ResilientConfig;
    use crate::market::interactive::NetGainAgent;
    use crate::mechanism::{
        EqlCappingMechanism, MclrMechanism, ParticipantSpec, ResilientInteractiveMechanism,
    };
    use crate::units::Price;

    fn cooperative_instance() -> MarketInstance {
        (0..4)
            .map(|id| ParticipantSpec::new(id, 2.0, Watts::new(125.0)).with_bid(0.5))
            .collect()
    }

    #[test]
    fn first_stage_wins_when_it_meets_the_target() {
        let mut chain = FallbackChain::new()
            .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
            .stage(ChainLevel::EqlCapping, EqlCappingMechanism);
        let c = chain
            .clear(&cooperative_instance(), Watts::new(400.0))
            .unwrap();
        assert!(c.met_target());
        assert_eq!(
            c.diagnostics().chain_level,
            Some(ChainLevel::StaticFallback)
        );
        assert_eq!(c.diagnostics().levels_tried, 1);
        assert!(c.price() > Price::ZERO);
    }

    #[test]
    fn falls_through_to_capping_on_hostile_bids() {
        // Bids so high the static market's price ceiling cannot clear the
        // target; the terminal capping stage must take over.
        let hostile: MarketInstance = (0..4)
            .map(|id| ParticipantSpec::new(id, 2.0, Watts::new(125.0)).with_bid(1e9))
            .collect();
        let mut chain = FallbackChain::new()
            .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
            .stage(ChainLevel::EqlCapping, EqlCappingMechanism);
        let c = chain.clear(&hostile, Watts::new(999.5)).unwrap();
        assert!(c.met_target());
        assert_eq!(c.diagnostics().chain_level, Some(ChainLevel::EqlCapping));
        assert_eq!(c.diagnostics().levels_tried, 2);
    }

    #[test]
    fn resilient_chain_recovers_with_observed_bids() {
        let mut level0 = ResilientInteractiveMechanism::new(ResilientConfig::default());
        for (i, a) in [1.0, 2.0, 4.0].iter().enumerate() {
            level0.register(
                Box::new(NetGainAgent::new(
                    i as u64,
                    QuadraticCost::new(*a, 2.0),
                    Watts::new(125.0),
                )),
                Some(0.4),
            );
        }
        let inst = level0.instance();
        let mut chain = FallbackChain::new()
            .stage(ChainLevel::Interactive, level0)
            .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
            .stage(ChainLevel::EqlCapping, EqlCappingMechanism);
        let c = chain.clear(&inst, Watts::new(300.0)).unwrap();
        assert!(c.met_target());
        assert_eq!(c.diagnostics().chain_level, Some(ChainLevel::Interactive));
    }

    #[test]
    fn empty_chain_and_degenerate_instance_error() {
        let mut chain = FallbackChain::new();
        let inst = cooperative_instance();
        assert!(matches!(
            chain.clear(&inst, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
        let mut chain = FallbackChain::new().stage(ChainLevel::EqlCapping, EqlCappingMechanism);
        let empty = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            chain.clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }
}
