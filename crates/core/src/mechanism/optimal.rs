//! OPT (the social-optimum baseline) on the unified [`Mechanism`]
//! interface.

use crate::cost::CostModel;
use crate::error::MarketError;
use crate::mechanism::{Clearing, Diagnostics, InstanceView, Mechanism, MechanismError};
use crate::opt::{self, OptJob, OptMethod};
use crate::units::{Price, Watts};

/// The clairvoyant baseline (Section III-C): minimizes `Σ C_m(δ_m)` subject
/// to meeting the target, assuming the manager can read every private cost
/// curve.
///
/// Rows without a cost model cannot be optimized over and sit out.
///
/// OPT is an allocator, not a market: no prices are paid, so every
/// participant price in the resulting [`Clearing`] is zero.
#[derive(Debug, Clone, Default)]
pub struct OptMechanism {
    method: OptMethod,
    strict: bool,
}

impl OptMechanism {
    /// Strict variant: infeasible targets are errors.
    #[must_use]
    pub fn strict(method: OptMethod) -> Self {
        Self {
            method,
            strict: true,
        }
    }

    /// Best-effort variant: on an infeasible target every cost-bearing row
    /// is capped at its `Δ_m` (the simulator's forced-capping response).
    #[must_use]
    pub fn best_effort(method: OptMethod) -> Self {
        Self {
            method,
            strict: false,
        }
    }
}

impl Mechanism for OptMechanism {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        // Positional map: view row index -> OptJob. Borrows the Arc'd cost
        // models straight from the SoA columns (no per-solver clones).
        let rows: Vec<(usize, OptJob<'_>)> = view
            .ids()
            .iter()
            .zip(view.costs())
            .zip(view.watts_per_unit_slice())
            .enumerate()
            .filter_map(|(row, ((id, cost), wpu))| {
                let cost = cost.as_ref()?;
                Some((row, OptJob::new(*id, cost.as_ref(), Watts::new(*wpu))))
            })
            .collect();
        if rows.is_empty() {
            return Err(MechanismError::Market(MarketError::NoParticipants));
        }
        let jobs: Vec<OptJob<'_>> = rows.iter().map(|(_, j)| *j).collect();
        match opt::solve(&jobs, target, self.method) {
            Ok(sol) => {
                let mut reductions = vec![0.0; view.len()];
                for ((row, _), (_, delta)) in rows.iter().zip(&sol.reductions) {
                    if let Some(slot) = reductions.get_mut(*row) {
                        *slot = *delta;
                    }
                }
                Ok(Clearing::build(
                    view,
                    target,
                    Price::ZERO,
                    reductions,
                    None,
                    None,
                    Diagnostics::default(),
                ))
            }
            Err(e) if self.strict => Err(MechanismError::Market(e)),
            Err(_) => {
                // Forced capping: every cost-bearing row gives its maximum.
                let reductions: Vec<f64> = view
                    .costs()
                    .iter()
                    .map(|cost| cost.as_ref().map_or(0.0, |c| c.delta_max()))
                    .collect();
                let diagnostics = Diagnostics {
                    accepted: false,
                    capped_at_delta_max: true,
                    ..Diagnostics::default()
                };
                Ok(Clearing::build(
                    view,
                    target,
                    Price::ZERO,
                    reductions,
                    None,
                    None,
                    diagnostics,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::mechanism::{MarketInstance, ParticipantSpec};
    use std::sync::Arc;

    fn instance(alphas: &[f64]) -> MarketInstance {
        alphas
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                ParticipantSpec::new(i as u64, 1.0, Watts::new(125.0))
                    .with_cost(Arc::new(QuadraticCost::new(a, 1.0)))
            })
            .collect()
    }

    #[test]
    fn matches_direct_opt_solve() {
        let alphas = [1.0, 2.0, 4.0];
        let inst = instance(&alphas);
        let mut mech = OptMechanism::strict(OptMethod::Auto);
        let c = mech.clear(&inst, Watts::new(150.0)).unwrap();
        assert!(c.met_target());

        let costs: Vec<QuadraticCost> =
            alphas.iter().map(|&a| QuadraticCost::new(a, 1.0)).collect();
        let jobs: Vec<OptJob<'_>> = costs
            .iter()
            .enumerate()
            .map(|(i, cst)| OptJob::new(i as u64, cst, Watts::new(125.0)))
            .collect();
        let sol = opt::solve(&jobs, Watts::new(150.0), OptMethod::Auto).unwrap();
        for (mine, (_, theirs)) in c.reductions().iter().zip(&sol.reductions) {
            assert!((mine - theirs).abs() < 1e-9);
        }
        // An allocator pays nothing.
        assert_eq!(c.total_payment_rate().get(), 0.0);
    }

    #[test]
    fn strict_errors_best_effort_caps() {
        let inst = instance(&[1.0]);
        let target = Watts::new(1e6);
        assert!(matches!(
            OptMechanism::strict(OptMethod::Auto).clear(&inst, target),
            Err(MechanismError::Market(MarketError::Infeasible { .. }))
        ));
        let c = OptMechanism::best_effort(OptMethod::Auto)
            .clear(&inst, target)
            .unwrap();
        assert!(c.diagnostics().capped_at_delta_max);
        assert!(!c.met_target());
        assert!((c.reductions()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_instances_error() {
        let empty = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            OptMechanism::default().clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }
}
