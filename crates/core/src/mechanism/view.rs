//! Borrowed, index-mapped windows over a [`MarketInstance`].
//!
//! An [`InstanceView`] is what every [`Mechanism`](crate::mechanism::Mechanism)
//! actually clears. The full view borrows the parent's SoA columns
//! directly; a subset view gathers its rows **once** into contiguous
//! columns (cost models shared via `Arc`) and keeps the row map back to
//! the parent, so per-subtree markets stay cache-friendly and their
//! [`Clearing`](crate::mechanism::Clearing)s can be folded back into
//! parent row order deterministically
//! ([`Clearing::merge`](crate::mechanism::Clearing::merge)).
//!
//! The identity partition is free and exact: selecting every row in order
//! collapses to the borrowed full view, so a one-group
//! [`MarketInstance::partition_by`] clears bit-identically to the flat
//! instance — the invariant the federated equivalence proptests pin down.

use std::sync::Arc;

use crate::cost::CostModel;
use crate::mechanism::{MarketInstance, MechanismError};
use crate::participant::JobId;
use crate::units::Watts;

/// Identifies one partition group (e.g. a rack-level subtree market) in
/// [`MarketInstance::partition_by`].
pub type GroupId = u32;

/// A window over a subset of a [`MarketInstance`]'s rows (possibly all of
/// them), presenting the same contiguous-column API the owned instance
/// has.
///
/// Row `i` of the view maps to parent row [`InstanceView::parent_row`]`(i)`;
/// every per-row slice of a [`Clearing`](crate::mechanism::Clearing)
/// produced from the view is positional in *view* order.
#[derive(Clone)]
pub struct InstanceView<'a> {
    source: &'a MarketInstance,
    /// `None` for the identity (full) view; otherwise view row → parent
    /// row, paired with the gathered sub-instance in `gathered`.
    rows: Option<Arc<[u32]>>,
    gathered: Option<MarketInstance>,
    group: Option<GroupId>,
}

impl std::fmt::Debug for InstanceView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceView")
            .field("rows", &self.len())
            .field("of", &self.source.len())
            .field("full", &self.is_full())
            .field("group", &self.group)
            .finish()
    }
}

impl<'a> InstanceView<'a> {
    /// The identity view: every parent row, borrowed (no gather).
    #[must_use]
    pub fn full(source: &'a MarketInstance) -> Self {
        Self {
            source,
            rows: None,
            gathered: None,
            group: None,
        }
    }

    /// A subset view over the given parent rows. Out-of-range indices are
    /// dropped; a selection naming every parent row in ascending order
    /// collapses to the full view.
    pub(crate) fn subset(source: &'a MarketInstance, rows: &[u32], group: Option<GroupId>) -> Self {
        let n = source.len();
        let in_range: Vec<u32> = rows.iter().copied().filter(|&r| (r as usize) < n).collect();
        let identity =
            in_range.len() == n && in_range.iter().enumerate().all(|(i, &r)| i == r as usize);
        if identity {
            return Self {
                group,
                ..Self::full(source)
            };
        }
        let gathered = source.gather(&in_range);
        Self {
            source,
            rows: Some(in_range.into()),
            gathered: Some(gathered),
            group,
        }
    }

    /// The columns backing this view: the parent for the full view, the
    /// gathered sub-instance for subsets.
    fn cols(&self) -> &MarketInstance {
        self.gathered.as_ref().unwrap_or(self.source)
    }

    /// The parent instance this view windows into.
    #[must_use]
    pub fn parent(&self) -> &'a MarketInstance {
        self.source
    }

    /// `true` when the view covers every parent row in order (no gather,
    /// no index mapping).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.rows.is_none()
    }

    /// The partition group this view was produced for, if any.
    #[must_use]
    pub fn group(&self) -> Option<GroupId> {
        self.group
    }

    /// Parent row index of view row `i` (identity for the full view;
    /// out-of-range reads as `i` itself).
    #[must_use]
    pub fn parent_row(&self, i: usize) -> usize {
        match &self.rows {
            None => i,
            Some(rows) => rows.get(i).map_or(i, |&r| r as usize),
        }
    }

    /// Number of rows in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cols().len()
    }

    /// `true` when the view has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cols().is_empty()
    }

    /// Job ids, in view-row order.
    #[must_use]
    pub fn ids(&self) -> &[JobId] {
        self.cols().ids()
    }

    /// Maximum reductions `Δ_m` (cores), in view-row order.
    #[must_use]
    pub fn deltas(&self) -> &[f64] {
        self.cols().deltas()
    }

    /// Static bids `b_m` (NaN where unsupplied), in view-row order.
    #[must_use]
    pub fn bids(&self) -> &[f64] {
        self.cols().bids()
    }

    /// Watts per unit of reduction, in view-row order.
    #[must_use]
    pub fn watts_per_unit_slice(&self) -> &[f64] {
        self.cols().watts_per_unit_slice()
    }

    /// Core counts, in view-row order.
    #[must_use]
    pub fn cores(&self) -> &[f64] {
        self.cols().cores()
    }

    /// Cost models, in view-row order.
    #[must_use]
    pub fn costs(&self) -> &[Option<Arc<dyn CostModel>>] {
        self.cols().costs()
    }

    /// The finite bid of view row `i`, if one was supplied.
    #[must_use]
    pub fn bid(&self, i: usize) -> Option<f64> {
        self.cols().bid(i)
    }

    /// Whether view row `i` was built with a bid (finite or not).
    #[must_use]
    pub fn bid_supplied(&self, i: usize) -> bool {
        self.cols().bid_supplied(i)
    }

    /// Instance-identity token for `prepare`-time caching. The full view
    /// shares the parent's token; a gathered subset is a distinct
    /// instance with its own token.
    #[must_use]
    pub fn token(&self) -> u64 {
        self.cols().token()
    }

    /// Maximum attainable power reduction over the view's rows.
    #[must_use]
    pub fn attainable_watts(&self) -> Watts {
        self.cols().attainable_watts()
    }

    /// Power drawn through the view's cores (the EQL pool).
    #[must_use]
    pub fn core_capacity_watts(&self) -> Watts {
        self.cols().core_capacity_watts()
    }

    /// Degeneracy check scoped to the view's rows: empty, or bids were
    /// supplied but every one in the window is non-finite.
    ///
    /// # Errors
    ///
    /// [`MechanismError::DegenerateInstance`] with the offending condition.
    pub fn ensure_clearable(&self) -> Result<(), MechanismError> {
        self.cols().ensure_clearable()
    }

    /// A standalone instance of this view's rows with every bid replaced
    /// (positional in view order) — how a
    /// [`FallbackChain`](crate::mechanism::FallbackChain) re-clears a
    /// window over fresher bids.
    #[must_use]
    pub fn with_bids(&self, bids: &[f64]) -> MarketInstance {
        self.cols().with_bids(bids)
    }

    /// Materializes the view as an owned sub-instance (fresh token).
    #[must_use]
    pub fn to_instance(&self) -> MarketInstance {
        match &self.gathered {
            Some(g) => g.clone(),
            None => self.source.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::mechanism::ParticipantSpec;

    fn instance() -> MarketInstance {
        vec![
            ParticipantSpec::new(10, 1.0, Watts::new(100.0)).with_bid(0.2),
            ParticipantSpec::new(11, 2.0, Watts::new(125.0)),
            ParticipantSpec::new(12, 0.5, Watts::new(50.0))
                .with_bid(f64::NAN)
                .with_cores(8.0),
            ParticipantSpec::new(13, 4.0, Watts::new(75.0))
                .with_cost(Arc::new(QuadraticCost::new(1.0, 1.0))),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn full_view_borrows_and_shares_the_token() {
        let inst = instance();
        let v = inst.view();
        assert!(v.is_full());
        assert_eq!(v.len(), 4);
        assert_eq!(v.ids(), inst.ids());
        assert_eq!(v.token(), inst.token());
        assert_eq!(v.parent_row(2), 2);
        assert!(v.ensure_clearable().is_ok());
    }

    #[test]
    fn identity_selection_collapses_to_the_full_view() {
        let inst = instance();
        let v = inst.select(&[0, 1, 2, 3]);
        assert!(v.is_full());
        assert_eq!(v.token(), inst.token());
    }

    #[test]
    fn subset_view_gathers_rows_and_maps_back() {
        let inst = instance();
        let v = inst.select(&[3, 0]);
        assert!(!v.is_full());
        assert_eq!(v.len(), 2);
        assert_eq!(v.ids(), &[13, 10]);
        assert_eq!(v.parent_row(0), 3);
        assert_eq!(v.parent_row(1), 0);
        assert_eq!(v.deltas(), &[4.0, 1.0]);
        assert_eq!(v.bid(1), Some(0.2));
        assert!(v.costs()[0].is_some());
        assert_ne!(v.token(), inst.token());
        assert!((v.attainable_watts().get() - (4.0 * 75.0 + 100.0)).abs() < 1e-12);
    }

    #[test]
    fn subset_degeneracy_is_scoped_to_the_window() {
        let inst = instance();
        // Row 2's supplied bid is NaN: alone it is degenerate ...
        assert!(matches!(
            inst.select(&[2]).ensure_clearable(),
            Err(MechanismError::DegenerateInstance { .. })
        ));
        // ... rows without bids are not ...
        assert!(inst.select(&[1, 3]).ensure_clearable().is_ok());
        // ... and a finite bid rescues the NaN row.
        assert!(inst.select(&[0, 2]).ensure_clearable().is_ok());
        // Empty selection is degenerate.
        assert!(matches!(
            inst.select(&[]).ensure_clearable(),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }

    #[test]
    fn out_of_range_rows_are_dropped() {
        let inst = instance();
        let v = inst.select(&[1, 99]);
        assert_eq!(v.len(), 1);
        assert_eq!(v.ids(), &[11]);
    }

    #[test]
    fn partition_by_orders_groups_and_keeps_row_order() {
        let inst = instance();
        let views = inst.partition_by(&[2, 0, 2, 0]);
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].group(), Some(0));
        assert_eq!(views[0].ids(), &[11, 13]);
        assert_eq!(views[1].group(), Some(2));
        assert_eq!(views[1].ids(), &[10, 12]);
    }

    #[test]
    fn one_group_partition_is_the_identity() {
        let inst = instance();
        let views = inst.partition_by(&[7, 7, 7, 7]);
        assert_eq!(views.len(), 1);
        assert!(views[0].is_full());
        assert_eq!(views[0].group(), Some(7));
        assert_eq!(views[0].token(), inst.token());
    }

    #[test]
    fn short_group_vector_drops_the_tail() {
        let inst = instance();
        let views = inst.partition_by(&[1, 1]);
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].ids(), &[10, 11]);
    }

    #[test]
    fn view_with_bids_patches_the_window() {
        let inst = instance();
        let patched = inst.select(&[3, 1]).with_bids(&[0.9, 0.8]);
        assert_eq!(patched.ids(), &[13, 11]);
        assert_eq!(patched.bid(0), Some(0.9));
        assert_eq!(patched.bid(1), Some(0.8));
    }
}
