//! The unified mechanism abstraction (DESIGN.md §11).
//!
//! The paper compares several clearing schemes on the *same* overload
//! instance — MClr/MPR-STAT (Section III-B), the iterative MPR-INT game,
//! and the OPT/EQL/VCG baselines (Sections III-C/D, Fig. 4/10, Table 1).
//! This module gives them one interface:
//!
//! * [`MarketInstance`] — a struct-of-arrays snapshot of the overload
//!   (contiguous `Δ_m`, `b_m`, watts-per-unit, cores, cost curves), built
//!   once per overload and shared by every solver.
//! * [`InstanceView`] — a borrowed, index-mapped window over those columns:
//!   the full instance, a row subset ([`MarketInstance::select`]), or one
//!   group of a [`MarketInstance::partition_by`] split. Solvers clear
//!   views; per-view clearings fold back into parent row order with
//!   [`Clearing::merge`].
//! * [`Mechanism`] — `prepare`/`clear_view` over an `InstanceView` (with
//!   `clear` sugar for the full instance), returning a uniform
//!   [`Clearing`] (price, per-participant reductions and payments,
//!   residual shortfall, diagnostics) or a typed [`MechanismError`].
//! * The implementations: [`MclrMechanism`] (MPR-STAT),
//!   [`InteractiveMechanism`] (MPR-INT), [`OptMechanism`], [`EqlMechanism`],
//!   [`VcgMechanism`], [`TransportedInteractiveMechanism`] (MPR-INT over an
//!   asynchronous deadline-bounded [`Transport`](crate::market::transport::Transport)),
//!   and [`FallbackChain`] — the generic degradation chain
//!   [`ResilientInteractiveMechanism`] → MPR-STAT → [`EqlCappingMechanism`]
//!   that powers `crate::ResilientInteractiveMarket`.
//!
//! The simulator, CLI, benches, and experiment binaries drive clearing
//! exclusively through this API (`mpr-lint` rule L5 enforces the layering).

mod auction;
mod chain;
mod equal;
mod instance;
mod interactive;
mod optimal;
mod resilient;
mod stat;
mod transported;
mod view;

pub use auction::VcgMechanism;
pub use chain::FallbackChain;
pub use equal::{EqlCappingMechanism, EqlMechanism};
pub use instance::{MarketInstance, ParticipantSpec};
pub use interactive::InteractiveMechanism;
pub use optimal::OptMechanism;
pub use resilient::ResilientInteractiveMechanism;
pub use stat::MclrMechanism;
pub use transported::TransportedInteractiveMechanism;
pub use view::{GroupId, InstanceView};

use crate::error::MarketError;
use crate::market::faults::{ChainLevel, Quarantine};
use crate::market::transport::TransportDiagnostics;
use crate::market::Allocation;
use crate::participant::JobId;
use crate::units::{CoreHours, Price, Watts};

/// Errors shared by every mechanism.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MechanismError {
    /// The instance cannot be cleared by *any* mechanism: it is empty, or
    /// bids were supplied but all of them are non-finite. Callers should
    /// treat this as "nothing to do / reject the input", never as a
    /// zero-reduction success.
    DegenerateInstance {
        /// The degeneracy that was detected.
        reason: &'static str,
    },
    /// An iterative exchange hit its round cap with the price trajectory
    /// *oscillating* (sign-alternating deltas above tolerance) instead of
    /// settling. Taking the last announced price would ship a bogus
    /// clearing; callers should degrade to a static mechanism instead.
    NonConvergent {
        /// Rounds executed before the cap.
        rounds: usize,
        /// The last announced price, for diagnostics only.
        last_price: f64,
    },
    /// A market-level failure from the underlying solver (infeasible
    /// target, agent fault, numeric breakdown, ...).
    Market(MarketError),
}

impl From<MarketError> for MechanismError {
    fn from(e: MarketError) -> Self {
        MechanismError::Market(e)
    }
}

impl std::fmt::Display for MechanismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismError::DegenerateInstance { reason } => {
                write!(f, "degenerate market instance: {reason}")
            }
            MechanismError::NonConvergent { rounds, last_price } => write!(
                f,
                "price oscillating after {rounds} rounds (last announced {last_price}); \
                 refusing to clear at an arbitrary point of the oscillation"
            ),
            MechanismError::Market(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MechanismError::Market(e) => Some(e),
            MechanismError::DegenerateInstance { .. } | MechanismError::NonConvergent { .. } => {
                None
            }
        }
    }
}

/// Iteration and degradation counters attached to every [`Clearing`].
///
/// Single-shot mechanisms (MPR-STAT, OPT, EQL, VCG) leave most fields at
/// their defaults; the interactive game and the fallback chain fill them in.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostics {
    /// Market rounds executed (1 for single-shot mechanisms).
    pub iterations: usize,
    /// Whether an iterative price exchange converged within tolerance.
    pub converged: bool,
    /// Whether the convergence watchdog declared the price trajectory
    /// divergent.
    pub diverged: bool,
    /// Agent response retries consumed (resilient mechanisms only).
    pub retries: usize,
    /// Participants quarantined for defaulting mid-negotiation.
    pub quarantined: Vec<Quarantine>,
    /// Price trajectory over the rounds (iterative mechanisms only).
    pub price_trace: Vec<f64>,
    /// Participants pushed past their feasible `Δ_m` (EQL only).
    pub violations: usize,
    /// The mechanism could not meet the target and fell back to capping
    /// every participant at its maximum reduction.
    pub capped_at_delta_max: bool,
    /// Whether the mechanism itself considers this clearing good. A
    /// [`FallbackChain`] only stops at a stage whose clearing is accepted
    /// *and* meets the target.
    pub accepted: bool,
    /// Which degradation level produced the clearing (chains only).
    pub chain_level: Option<ChainLevel>,
    /// How many chain stages ran before one was accepted (1 outside
    /// chains).
    pub levels_tried: usize,
    /// Per-row effective bids observed during the clearing (last-known or
    /// registered-fallback). A chain patches these into the instance before
    /// trying its next stage.
    pub observed_bids: Option<Vec<f64>>,
    /// Message-layer counters when the clearing ran over an asynchronous
    /// [`Transport`](crate::market::transport::Transport).
    pub transport: Option<TransportDiagnostics>,
}

impl Default for Diagnostics {
    fn default() -> Self {
        Self {
            iterations: 1,
            converged: true,
            diverged: false,
            retries: 0,
            quarantined: Vec::new(),
            price_trace: Vec::new(),
            violations: 0,
            capped_at_delta_max: false,
            accepted: true,
            chain_level: None,
            levels_tried: 1,
            observed_bids: None,
            transport: None,
        }
    }
}

impl Diagnostics {
    /// Folds two per-view diagnostics into one merged account (used by
    /// [`Clearing::merge`]): counters add, convergence flags conjoin,
    /// degradation flags disjoin, quarantines concatenate in fold order,
    /// and the chain level keeps the deepest degradation seen. Per-view
    /// price traces, observed bids, and transport counters do not compose
    /// across disjoint row windows and are dropped.
    #[must_use]
    pub fn fold(mut acc: Self, other: &Self) -> Self {
        acc.iterations += other.iterations;
        acc.converged &= other.converged;
        acc.diverged |= other.diverged;
        acc.retries += other.retries;
        acc.quarantined.extend(other.quarantined.iter().cloned());
        acc.price_trace = Vec::new();
        acc.violations += other.violations;
        acc.capped_at_delta_max |= other.capped_at_delta_max;
        acc.accepted &= other.accepted;
        acc.chain_level = match (acc.chain_level, other.chain_level) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        acc.levels_tried = acc.levels_tried.max(other.levels_tried);
        acc.observed_bids = None;
        acc.transport = None;
        acc
    }
}

/// The uniform result of clearing a [`MarketInstance`].
///
/// Per-participant data is dense and positional: index `i` in every slice
/// refers to row `i` of the instance the clearing was produced from.
#[derive(Debug, Clone, PartialEq)]
pub struct Clearing {
    price: Price,
    target: Watts,
    ids: Vec<JobId>,
    reductions: Vec<f64>,
    power_w: Vec<f64>,
    prices: Vec<f64>,
    payments: Vec<f64>,
    residual: Watts,
    diagnostics: Diagnostics,
}

impl Clearing {
    /// Assembles a clearing for the rows of `view`.
    ///
    /// `reductions` is positional (row `i` of the view); shorter vectors
    /// are zero-padded, longer ones truncated. `prices` defaults to the
    /// uniform clearing `price`; `payments` (core-hours per hour) defaults
    /// to `price_i · reduction_i`.
    #[must_use]
    pub fn build(
        view: &InstanceView<'_>,
        target: Watts,
        price: Price,
        reductions: Vec<f64>,
        prices: Option<Vec<f64>>,
        payments: Option<Vec<f64>>,
        diagnostics: Diagnostics,
    ) -> Self {
        let n = view.len();
        let mut reductions = reductions;
        reductions.resize(n, 0.0);
        reductions.truncate(n);
        let power_w: Vec<f64> = reductions
            .iter()
            .zip(view.watts_per_unit_slice())
            .map(|(r, w)| r * w)
            .collect();
        let mut prices = prices.unwrap_or_else(|| vec![price.get(); n]);
        prices.resize(n, price.get());
        prices.truncate(n);
        let mut payments = payments
            .unwrap_or_else(|| prices.iter().zip(&reductions).map(|(p, r)| p * r).collect());
        payments.resize(n, 0.0);
        payments.truncate(n);
        let delivered: f64 = power_w.iter().sum();
        // Met and residual are mutually exclusive by construction: within
        // tolerance the residual is exactly zero, otherwise it is the
        // strictly positive shortfall.
        let residual = if delivered >= target.get() * (1.0 - 1e-6) {
            Watts::ZERO
        } else {
            Watts::new(target.get() - delivered)
        };
        Self {
            price,
            target,
            ids: view.ids().to_vec(),
            reductions,
            power_w,
            prices,
            payments,
            residual,
            diagnostics,
        }
    }

    /// Folds per-view clearings back into the parent instance's row order:
    /// the deterministic merge step of a
    /// [`MarketInstance::partition_by`] round.
    ///
    /// Reductions and payments scatter-add through each view's row map
    /// (partitions are disjoint, so adds are plain writes there);
    /// per-participant prices scatter with last-writer-wins in part order.
    /// The headline price is the maximum part price — the binding subtree
    /// market. Diagnostics fold part-by-part in the given (deterministic)
    /// order. A single full-cover part whose target matches is returned
    /// verbatim, making the identity partition's merge bit-identical to
    /// the flat clearing, diagnostics included.
    #[must_use]
    pub fn merge(
        instance: &MarketInstance,
        target: Watts,
        parts: &[(InstanceView<'_>, Clearing)],
    ) -> Self {
        if let [(view, clearing)] = parts {
            if view.is_full() && clearing.target_watts() == target {
                return clearing.clone();
            }
        }
        let n = instance.len();
        let mut reductions = vec![0.0; n];
        let mut prices = vec![0.0; n];
        let mut payments = vec![0.0; n];
        let mut folded: Option<Diagnostics> = None;
        let mut price = Price::ZERO;
        for (view, clearing) in parts {
            for (j, ((r, q), pay)) in clearing
                .reductions()
                .iter()
                .zip(clearing.participant_prices())
                .zip(clearing.payment_rates())
                .enumerate()
            {
                let row = view.parent_row(j);
                let (Some(rs), Some(qs), Some(ps)) = (
                    reductions.get_mut(row),
                    prices.get_mut(row),
                    payments.get_mut(row),
                ) else {
                    continue;
                };
                *rs += r;
                *qs = *q;
                *ps += pay;
            }
            if clearing.price() > price {
                price = clearing.price();
            }
            let d = clearing.diagnostics();
            folded = Some(match folded {
                None => d.clone(),
                Some(acc) => Diagnostics::fold(acc, d),
            });
        }
        let diagnostics = folded.unwrap_or_default();
        Clearing::build(
            &instance.view(),
            target,
            price,
            reductions,
            Some(prices),
            Some(payments),
            diagnostics,
        )
    }

    /// The headline clearing price `q'` in core-hours per watt (zero for
    /// mechanisms that do not price uniformly, e.g. VCG and forced
    /// capping).
    #[must_use]
    pub fn price(&self) -> Price {
        self.price
    }

    /// The power-reduction target this clearing was solved for.
    #[must_use]
    pub fn target_watts(&self) -> Watts {
        self.target
    }

    /// Number of participants (instance rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the clearing covers no participants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Job ids, in instance-row order.
    #[must_use]
    pub fn ids(&self) -> &[JobId] {
        &self.ids
    }

    /// Per-row resource reductions `δ_m` in cores.
    #[must_use]
    pub fn reductions(&self) -> &[f64] {
        &self.reductions
    }

    /// Per-row power reductions in watts.
    #[must_use]
    pub fn power_reductions_w(&self) -> &[f64] {
        &self.power_w
    }

    /// Per-row unit prices in core-hours per watt (uniform for
    /// price-clearing mechanisms, per-participant for VCG).
    #[must_use]
    pub fn participant_prices(&self) -> &[f64] {
        &self.prices
    }

    /// Per-row payment rates in core-hours per hour of capping.
    #[must_use]
    pub fn payment_rates(&self) -> &[f64] {
        &self.payments
    }

    /// Power reduction of row `i`.
    #[must_use]
    pub fn power_reduction(&self, i: usize) -> Watts {
        Watts::new(self.power_w.get(i).copied().unwrap_or(0.0))
    }

    /// Payment rate of row `i`, in core-hours per hour of capping.
    #[must_use]
    pub fn payment(&self, i: usize) -> CoreHours {
        CoreHours::new(self.payments.get(i).copied().unwrap_or(0.0))
    }

    /// Total resource reduction across all rows, in cores.
    #[must_use]
    pub fn total_reduction(&self) -> f64 {
        self.reductions.iter().sum()
    }

    /// Total power reduction across all rows.
    #[must_use]
    pub fn total_power_reduction(&self) -> Watts {
        Watts::new(self.power_w.iter().sum())
    }

    /// Total payment rate `Σ q'_m · δ_m`, in core-hours per hour.
    #[must_use]
    pub fn total_payment_rate(&self) -> CoreHours {
        CoreHours::new(self.payments.iter().sum())
    }

    /// Unmet portion of the target. Exactly zero when
    /// [`Clearing::met_target`] holds, strictly positive otherwise.
    #[must_use]
    pub fn residual(&self) -> Watts {
        self.residual
    }

    /// Whether the clearing met its target (within numerical tolerance).
    #[must_use]
    pub fn met_target(&self) -> bool {
        self.residual == Watts::ZERO
    }

    /// Iteration/degradation counters.
    #[must_use]
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// Market rounds executed (shorthand for `diagnostics().iterations`).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.diagnostics.iterations
    }

    pub(crate) fn diagnostics_mut(&mut self) -> &mut Diagnostics {
        &mut self.diagnostics
    }

    /// Converts the dense clearing into per-job [`Allocation`]s (the legacy
    /// market outcome shape).
    #[must_use]
    pub fn to_allocations(&self) -> Vec<Allocation> {
        self.ids
            .iter()
            .zip(&self.reductions)
            .zip(&self.power_w)
            .zip(&self.prices)
            .map(|(((id, r), pw), p)| Allocation {
                id: *id,
                reduction: *r,
                power_reduction: *pw,
                price: *p,
            })
            .collect()
    }

    /// Converts into the legacy [`market::Clearing`](crate::market::Clearing)
    /// shape, for analysis helpers that predate the mechanism layer (e.g.
    /// [`analysis::evaluate`](crate::analysis::evaluate)).
    #[must_use]
    pub fn to_market_clearing(&self) -> crate::market::Clearing {
        crate::market::Clearing::new(
            self.price,
            self.target,
            self.to_allocations(),
            self.diagnostics.iterations,
        )
    }
}

/// One clearing scheme over a borrowed [`InstanceView`] window of a
/// shared [`MarketInstance`].
///
/// `clear_view` takes `&mut self` because several mechanisms are stateful:
/// the interactive game owns bidding agents, resilient variants carry
/// quarantine state across clearings, and chains own their stages.
/// Clearing the whole instance is the identity window —
/// [`Mechanism::clear`] is provided sugar for
/// `clear_view(&instance.view(), target)`.
pub trait Mechanism: Send {
    /// Short scheme name for dispatch tables and reports (e.g.
    /// `"MPR-STAT"`).
    fn name(&self) -> &'static str;

    /// Validates and (optionally) pre-processes a view before clearing —
    /// the hook where index structures for batched/parallel clearing
    /// belong.
    ///
    /// # Errors
    ///
    /// [`MechanismError::DegenerateInstance`] when the view is empty or
    /// all bids supplied within it are non-finite.
    fn prepare(&mut self, view: &InstanceView<'_>) -> Result<(), MechanismError> {
        view.ensure_clearable()
    }

    /// Clears the view's rows for a power-reduction target. Every
    /// per-participant slice of the resulting [`Clearing`] is positional
    /// in *view* row order.
    ///
    /// # Errors
    ///
    /// * [`MechanismError::DegenerateInstance`] per [`Mechanism::prepare`].
    /// * [`MechanismError::Market`] for solver-level failures (strict
    ///   mechanisms propagate infeasibility; best-effort variants return a
    ///   capped [`Clearing`] with a positive residual instead).
    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError>;

    /// Clears the whole instance (the identity window).
    ///
    /// # Errors
    ///
    /// As [`Mechanism::clear_view`].
    fn clear(
        &mut self,
        instance: &MarketInstance,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        self.clear_view(&instance.view(), target)
    }
}

impl<M: Mechanism + ?Sized> Mechanism for &mut M {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn prepare(&mut self, view: &InstanceView<'_>) -> Result<(), MechanismError> {
        (**self).prepare(view)
    }
    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        (**self).clear_view(view, target)
    }
    fn clear(
        &mut self,
        instance: &MarketInstance,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        (**self).clear(instance, target)
    }
}

impl<M: Mechanism + ?Sized> Mechanism for Box<M> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn prepare(&mut self, view: &InstanceView<'_>) -> Result<(), MechanismError> {
        (**self).prepare(view)
    }
    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        (**self).clear_view(view, target)
    }
    fn clear(
        &mut self,
        instance: &MarketInstance,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        (**self).clear(instance, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> MarketInstance {
        (0..2)
            .map(|id| ParticipantSpec::new(id, 1.0, Watts::new(125.0)).with_bid(0.2))
            .collect()
    }

    #[test]
    fn residual_and_met_target_are_mutually_exclusive() {
        let inst = small_instance();
        let met = Clearing::build(
            &inst.view(),
            Watts::new(250.0),
            Price::new(0.5),
            vec![1.0, 1.0],
            None,
            None,
            Diagnostics::default(),
        );
        assert!(met.met_target());
        assert_eq!(met.residual(), Watts::ZERO);

        let short = Clearing::build(
            &inst.view(),
            Watts::new(250.0),
            Price::new(0.5),
            vec![0.5, 0.5],
            None,
            None,
            Diagnostics::default(),
        );
        assert!(!short.met_target());
        assert!(short.residual().get() > 0.0);
        assert!((short.residual().get() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn payments_default_to_price_times_reduction() {
        let inst = small_instance();
        let c = Clearing::build(
            &inst.view(),
            Watts::new(100.0),
            Price::new(0.4),
            vec![0.5, 1.0],
            None,
            None,
            Diagnostics::default(),
        );
        assert!((c.payment(0).get() - 0.2).abs() < 1e-12);
        assert!((c.payment(1).get() - 0.4).abs() < 1e-12);
        assert!((c.total_payment_rate().get() - 0.6).abs() < 1e-12);
        assert!((c.power_reduction(1).get() - 125.0).abs() < 1e-12);
        // Out-of-range rows read as zero instead of panicking.
        assert_eq!(c.payment(99), CoreHours::ZERO);
    }

    #[test]
    fn reduction_vectors_are_normalized_to_instance_length() {
        let inst = small_instance();
        let c = Clearing::build(
            &inst.view(),
            Watts::new(10.0),
            Price::new(0.1),
            vec![1.0],
            None,
            None,
            Diagnostics::default(),
        );
        assert_eq!(c.reductions().len(), 2);
        assert_eq!(c.reductions()[1], 0.0);
        let allocs = c.to_allocations();
        assert_eq!(allocs.len(), 2);
        assert_eq!(allocs[0].id, 0);
        assert!((allocs[0].power_reduction - 125.0).abs() < 1e-12);
    }

    #[test]
    fn negative_target_is_met_with_zero_residual() {
        let inst = small_instance();
        let c = Clearing::build(
            &inst.view(),
            Watts::new(-5.0),
            Price::ZERO,
            vec![0.0, 0.0],
            None,
            None,
            Diagnostics::default(),
        );
        assert!(c.met_target());
        assert_eq!(c.residual(), Watts::ZERO);
    }

    #[test]
    fn merge_of_the_identity_partition_is_the_flat_clearing_verbatim() {
        let inst = small_instance();
        let target = Watts::new(200.0);
        let mut mech = MclrMechanism::best_effort();
        let flat = mech.clear(&inst, target).unwrap();
        let views = inst.partition_by(&[5, 5]);
        let parts: Vec<(InstanceView<'_>, Clearing)> = views
            .into_iter()
            .map(|v| {
                let c = mech.clear_view(&v, target).unwrap();
                (v, c)
            })
            .collect();
        let merged = Clearing::merge(&inst, target, &parts);
        assert_eq!(merged.reductions(), flat.reductions());
        assert_eq!(merged.participant_prices(), flat.participant_prices());
        assert_eq!(merged.payment_rates(), flat.payment_rates());
        assert_eq!(merged.price(), flat.price());
        assert_eq!(merged.diagnostics(), flat.diagnostics());
    }

    #[test]
    fn merge_scatters_disjoint_parts_back_into_parent_order() {
        let inst: MarketInstance = (0..4)
            .map(|id| ParticipantSpec::new(id, 1.0 + id as f64, Watts::new(100.0)).with_bid(0.2))
            .collect();
        let views = inst.partition_by(&[1, 0, 1, 0]);
        let parts: Vec<(InstanceView<'_>, Clearing)> = views
            .into_iter()
            .map(|v| {
                let reductions: Vec<f64> = v.deltas().to_vec();
                let c = Clearing::build(
                    &v,
                    Watts::new(50.0),
                    Price::new(0.1 * (1.0 + f64::from(v.group().unwrap_or(0)))),
                    reductions,
                    None,
                    None,
                    Diagnostics::default(),
                );
                (v, c)
            })
            .collect();
        let merged = Clearing::merge(&inst, Watts::new(100.0), &parts);
        // Every row got its own delta back, in parent order.
        assert_eq!(merged.reductions(), &[1.0, 2.0, 3.0, 4.0]);
        // Headline price is the binding (maximum) part price.
        assert!((merged.price().get() - 0.2).abs() < 1e-12);
        // Per-row prices came from each row's own subtree market.
        assert!((merged.participant_prices()[0] - 0.2).abs() < 1e-12);
        assert!((merged.participant_prices()[1] - 0.1).abs() < 1e-12);
        assert_eq!(merged.target_watts(), Watts::new(100.0));
    }
}
