//! MPR-INT over an asynchronous, deadline-bounded message [`Transport`]
//! (DESIGN.md §12).
//!
//! Each round the manager broadcasts a
//! [`PriceAnnounce`](crate::market::transport::PriceAnnounce) to every
//! live agent endpoint and collects
//! [`BidReply`](crate::market::transport::BidReply)s until the round
//! deadline, retransmitting to silent agents on a capped
//! exponential-backoff schedule with jitter. Replies are deduplicated by
//! `(agent, round, msg_id)`; late and duplicate replies are counted and
//! dropped. When the deadline expires the round clears with **last-known
//! bids** (straggler policy), and an agent that misses
//! [`TransportConfig::quarantine_after_misses`] consecutive rounds is
//! quarantined exactly like a defaulting agent in the PR-1 resilient
//! exchange. Over a [`PerfectTransport`](crate::market::transport::PerfectTransport)
//! the exchange is bit-for-bit identical to the synchronous
//! [`InteractiveMarket`](crate::market::interactive::InteractiveMarket).
//!
//! Like [`ResilientInteractiveMechanism`](crate::mechanism::ResilientInteractiveMechanism),
//! this is a chain level 0: transport faults never become errors — a failed
//! exchange returns an **unaccepted** [`Clearing`] carrying observed bids
//! for the next [`FallbackChain`](crate::mechanism::FallbackChain) stage.

use crate::error::MarketError;
use crate::market::faults::{ConvergenceWatchdog, FaultRng, Quarantine, ResilientConfig};
use crate::market::interactive::BiddingAgent;
use crate::market::transport::{
    BidReply, PriceAnnounce, Tick, Transport, TransportConfig, TransportDiagnostics, TransportError,
};
use crate::mclr;
use crate::mechanism::resilient::{
    slots_instance, slots_observed_bids, slots_survivor_participants, slots_survivor_reductions,
    AgentSlot,
};
use crate::mechanism::{
    Clearing, Diagnostics, InstanceView, MarketInstance, Mechanism, MechanismError,
};
use crate::units::{Price, Watts};

/// Per-slot state of one collection round.
#[derive(Debug, Clone)]
struct RoundState {
    /// The slot was broadcast to this round.
    live: bool,
    /// Still waiting for a valid reply.
    pending: bool,
    /// Announcement ids sent this round (dedup universe).
    sent: Vec<u64>,
    /// Announcement attempts made.
    attempts: usize,
    /// Virtual time of the next retransmit.
    retry_at: Tick,
}

impl RoundState {
    fn idle() -> Self {
        Self {
            live: false,
            pending: false,
            sent: Vec::new(),
            attempts: 0,
            retry_at: Tick::MAX,
        }
    }
}

/// The deadline-bounded interactive exchange over an abstract [`Transport`].
///
/// The mechanism owns its agents (quarantine and miss-streak state persist
/// across clearings) and its channel (virtual time is monotone across
/// clearings, so late replies from a previous clearing surface — and are
/// discarded — deterministically).
pub struct TransportedInteractiveMechanism<T: Transport> {
    slots: Vec<AgentSlot>,
    /// Consecutive missed rounds per slot (straggler → quarantine policy).
    miss_streak: Vec<usize>,
    /// Terminal endpoint crash observed for the slot, if any.
    crashed: Vec<Option<MarketError>>,
    /// Idempotency cache: the bid already computed for `(round)`, so
    /// retransmits and duplicate deliveries never re-invoke the agent.
    answered: Vec<Option<(usize, f64)>>,
    config: ResilientConfig,
    transport_config: TransportConfig,
    transport: T,
    /// The exchange's virtual clock, monotone over the mechanism's life.
    now: Tick,
    msg_seq: u64,
    jitter: FaultRng,
}

impl<T: Transport> std::fmt::Debug for TransportedInteractiveMechanism<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransportedInteractiveMechanism")
            .field("agents", &self.slots.len())
            .field("transport", &self.transport.name())
            .field("config", &self.config)
            .field("transport_config", &self.transport_config)
            .finish()
    }
}

impl<T: Transport> TransportedInteractiveMechanism<T> {
    /// Creates an empty mechanism over `transport`.
    #[must_use]
    pub fn new(config: ResilientConfig, transport_config: TransportConfig, transport: T) -> Self {
        Self {
            slots: Vec::new(),
            miss_streak: Vec::new(),
            crashed: Vec::new(),
            answered: Vec::new(),
            config,
            transport_config,
            transport,
            now: 0,
            msg_seq: 0,
            jitter: FaultRng::new(transport_config.jitter_seed),
        }
    }

    /// Registers an agent endpoint together with its submission-time
    /// cooperative bid (ignored unless finite and non-negative).
    pub fn register(&mut self, agent: Box<dyn BiddingAgent>, fallback_bid: Option<f64>) {
        self.slots.push(AgentSlot::new(agent, fallback_bid));
        self.miss_streak.push(0);
        self.crashed.push(None);
        self.answered.push(None);
    }

    /// Number of registered agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no agents are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The resilient (exchange) configuration in use.
    #[must_use]
    pub fn config(&self) -> ResilientConfig {
        self.config
    }

    /// The deadline/retry/quarantine policy in use.
    #[must_use]
    pub fn transport_config(&self) -> TransportConfig {
        self.transport_config
    }

    /// The underlying channel (for its counters).
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Builds the [`MarketInstance`] matching the registered agents, in
    /// registration order (bids are the registered fallback bids).
    #[must_use]
    pub fn instance(&self) -> MarketInstance {
        slots_instance(&self.slots)
    }

    /// Runs one deadline-bounded collection round: broadcast, gather until
    /// the deadline (retransmitting on the backoff schedule), then apply the
    /// straggler/quarantine policy. Returns `false` when no live agents
    /// remain.
    #[allow(clippy::too_many_lines)]
    fn run_round(
        &mut self,
        round: usize,
        announced: Price,
        quarantined: &mut Vec<Quarantine>,
        diag: &mut TransportDiagnostics,
    ) -> bool {
        let retry = self.transport_config.retry;
        let deadline = self
            .now
            .saturating_add(self.transport_config.deadline_ticks);
        let mut rs: Vec<RoundState> = (0..self.slots.len()).map(|_| RoundState::idle()).collect();
        let mut outstanding = 0usize;

        // Broadcast.
        for (i, ((slot, st), crash)) in self
            .slots
            .iter()
            .zip(rs.iter_mut())
            .zip(self.crashed.iter())
            .enumerate()
        {
            if slot.quarantined || crash.is_some() {
                continue;
            }
            self.msg_seq += 1;
            let id = self.msg_seq;
            self.transport.send(
                i,
                PriceAnnounce {
                    round,
                    msg_id: id,
                    price: announced,
                    attempt: 1,
                },
                self.now,
            );
            diag.announces += 1;
            st.live = true;
            st.pending = true;
            st.sent.push(id);
            st.attempts = 1;
            st.retry_at = if retry.max_attempts > 1 {
                self.now.saturating_add(retry.backoff(1, &mut self.jitter))
            } else {
                Tick::MAX
            };
            outstanding += 1;
        }
        if outstanding == 0 {
            return false;
        }

        // Deadline-bounded collection, jumping the virtual clock between
        // events (next in-flight delivery, next retransmit, the deadline).
        while outstanding > 0 {
            let mut next = deadline;
            for st in rs.iter().filter(|s| s.pending) {
                if st.attempts < retry.max_attempts {
                    next = next.min(st.retry_at);
                }
            }
            if let Some(due) = self.transport.next_due() {
                next = next.min(due);
            }
            self.now = next.max(self.now);

            // Deliver everything due; endpoints answer from their
            // idempotency cache so an agent computes at most one bid per
            // round no matter how often the announcement arrives.
            let slots = &mut self.slots;
            let answered = &mut self.answered;
            let crashed = &mut self.crashed;
            let invalid = &mut diag.invalid_replies;
            let errors = &mut diag.errors;
            let replies = self.transport.advance(self.now, &mut |i, msg| {
                let slot = slots.get_mut(i)?;
                if let Some((r, bid)) = answered.get(i).copied().flatten() {
                    if r == msg.round {
                        return Some(BidReply {
                            agent: slot.agent.job_id(),
                            round: msg.round,
                            in_reply_to: msg.msg_id,
                            bid,
                        });
                    }
                }
                match slot.agent.respond(msg.price.get()) {
                    Ok(bid) if bid.is_finite() => {
                        let bid = bid.max(0.0);
                        if let Some(cache) = answered.get_mut(i) {
                            *cache = Some((msg.round, bid));
                        }
                        Some(BidReply {
                            agent: slot.agent.job_id(),
                            round: msg.round,
                            in_reply_to: msg.msg_id,
                            bid,
                        })
                    }
                    Ok(_) => {
                        *invalid += 1;
                        errors.push(TransportError::InvalidReply {
                            agent: slot.agent.job_id(),
                            round: msg.round,
                        });
                        None
                    }
                    Err(err @ MarketError::AgentCrashed { .. }) => {
                        if let Some(c) = crashed.get_mut(i) {
                            if c.is_none() {
                                *c = Some(err);
                            }
                        }
                        None
                    }
                    Err(_) => None,
                }
            });
            for (i, reply) in replies {
                match rs.get_mut(i) {
                    Some(st)
                        if st.pending
                            && reply.round == round
                            && st.sent.contains(&reply.in_reply_to) =>
                    {
                        st.pending = false;
                        outstanding -= 1;
                        diag.replies_accepted += 1;
                        if let Some(slot) = self.slots.get_mut(i) {
                            slot.last_bid = Some(reply.bid);
                        }
                    }
                    Some(st) if !st.pending && st.live && reply.round == round => {
                        diag.duplicates_ignored += 1;
                    }
                    _ => diag.late_replies_ignored += 1,
                }
            }
            if outstanding == 0 || self.now >= deadline {
                break;
            }

            // Retransmit to silent agents whose backoff expired.
            for (i, st) in rs.iter_mut().enumerate() {
                if !st.pending || st.attempts >= retry.max_attempts || st.retry_at > self.now {
                    continue;
                }
                st.attempts += 1;
                self.msg_seq += 1;
                let id = self.msg_seq;
                self.transport.send(
                    i,
                    PriceAnnounce {
                        round,
                        msg_id: id,
                        price: announced,
                        attempt: st.attempts,
                    },
                    self.now,
                );
                st.sent.push(id);
                diag.retransmits += 1;
                st.retry_at = self
                    .now
                    .saturating_add(retry.backoff(st.attempts, &mut self.jitter));
            }
        }

        // Round close: straggler and quarantine policy.
        for (((st, slot), streak), crash) in rs
            .iter()
            .zip(self.slots.iter_mut())
            .zip(self.miss_streak.iter_mut())
            .zip(self.crashed.iter())
        {
            if !st.live {
                continue;
            }
            if !st.pending {
                *streak = 0;
                continue;
            }
            diag.straggler_rounds += 1;
            *streak += 1;
            let id = slot.agent.job_id();
            if let Some(err) = crash {
                slot.quarantined = true;
                diag.errors
                    .push(TransportError::EndpointCrashed { agent: id, round });
                quarantined.push(Quarantine {
                    id,
                    round,
                    error: err.clone(),
                });
            } else if *streak >= self.transport_config.quarantine_after_misses.max(1) {
                slot.quarantined = true;
                diag.deadline_quarantines += 1;
                let terr = TransportError::DeadlineExpired {
                    agent: id,
                    round,
                    attempts: st.attempts,
                };
                diag.errors.push(terr.clone());
                quarantined.push(Quarantine {
                    id,
                    round,
                    error: terr.into(),
                });
            }
        }
        true
    }
}

impl<T: Transport> Mechanism for TransportedInteractiveMechanism<T> {
    fn name(&self) -> &'static str {
        "MPR-INT-NET"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        if self.slots.is_empty() {
            return Err(MechanismError::DegenerateInstance {
                reason: "no agents are registered with the transported exchange",
            });
        }
        // Row layout must match the registered agents; fall back to our own
        // view when a caller hands us a foreign window.
        let own;
        let own_view;
        let layout: &InstanceView<'_> = if view.len() == self.slots.len() {
            view
        } else {
            own = self.instance();
            own_view = own.view();
            &own_view
        };
        let target_watts = target.get();
        if target_watts <= 0.0 {
            let diagnostics = Diagnostics {
                iterations: 0,
                price_trace: vec![0.0],
                observed_bids: Some(slots_observed_bids(&self.slots)),
                ..Diagnostics::default()
            };
            return Ok(Clearing::build(
                layout,
                Watts::new(target_watts.max(0.0)),
                Price::ZERO,
                vec![0.0; layout.len()],
                None,
                None,
                diagnostics,
            ));
        }

        let cfg = self.config;
        let icfg = cfg.interactive;
        let mut price = icfg.initial_price.max(1e-9);
        let mut trace = vec![price];
        let mut watchdog = ConvergenceWatchdog::new(cfg.watchdog_window, cfg.divergence_min_change);
        let mut quarantined: Vec<Quarantine> = Vec::new();
        let mut converged = false;
        let mut diverged = false;
        let mut rounds = 0usize;
        let mut tdiag = TransportDiagnostics::default();
        let started_at = self.now;
        // Fresh per-round bid caches for this clearing.
        for cache in &mut self.answered {
            *cache = None;
        }

        'rounds: for round in 1..=icfg.max_iterations {
            rounds = round;
            if !self.run_round(round, Price::new(price), &mut quarantined, &mut tdiag) {
                break 'rounds;
            }
            let participants = slots_survivor_participants(&self.slots);
            if participants.is_empty() {
                break 'rounds;
            }
            let sol = mclr::clear_best_effort(&participants, target);
            let next = (1.0 - icfg.damping) * price + icfg.damping * sol.price.get();
            let rel_change = (next - price).abs() / price.abs().max(1e-9);
            price = next;
            trace.push(price);
            if rel_change <= icfg.tolerance {
                converged = true;
                break 'rounds;
            }
            if watchdog.observe(rel_change) {
                diverged = true;
                break 'rounds;
            }
        }

        // Final solve: replace the damped announcement with the price that
        // actually clears the surviving supplies.
        let survivors = slots_survivor_participants(&self.slots);
        let healthy = converged && !diverged && !survivors.is_empty();
        let (clearing_price, reductions) = if healthy {
            let sol = mclr::clear_best_effort(&survivors, target);
            (sol.price, slots_survivor_reductions(&self.slots, sol.price))
        } else {
            // Nothing usable from the exchange; the chain's next stage
            // re-clears from the observed bids.
            (Price::ZERO, vec![0.0; self.slots.len()])
        };

        tdiag.rounds = rounds;
        tdiag.virtual_ticks = self.now.saturating_sub(started_at);
        tdiag.channel = self.transport.stats();
        let diagnostics = Diagnostics {
            iterations: rounds,
            converged,
            diverged,
            retries: tdiag.retransmits,
            quarantined,
            price_trace: trace,
            accepted: healthy,
            observed_bids: Some(slots_observed_bids(&self.slots)),
            transport: Some(tdiag),
            ..Diagnostics::default()
        };
        Ok(Clearing::build(
            layout,
            target,
            clearing_price,
            reductions,
            None,
            None,
            diagnostics,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::market::interactive::{InteractiveConfig, NetGainAgent};
    use crate::market::transport::{NetFaultConfig, PerfectTransport, SimNet, TransportStats};

    fn rational(id: u64, alpha: f64) -> NetGainAgent<QuadraticCost> {
        NetGainAgent::new(id, QuadraticCost::new(alpha, 1.0), Watts::new(125.0))
    }

    fn mech_with<T: Transport>(transport: T) -> TransportedInteractiveMechanism<T> {
        let mut m = TransportedInteractiveMechanism::new(
            ResilientConfig::default(),
            TransportConfig::default(),
            transport,
        );
        for (i, a) in [1.0, 2.0, 4.0].iter().enumerate() {
            m.register(Box::new(rational(i as u64, *a)), Some(0.2));
        }
        m
    }

    #[test]
    fn perfect_transport_matches_the_synchronous_market_bit_for_bit() {
        let mut net = mech_with(PerfectTransport::new());
        let inst = net.instance();
        let c_net = net.clear(&inst, Watts::new(150.0)).unwrap();

        let mut sync = crate::market::interactive::InteractiveMarket::new(
            (0..3)
                .map(|i| Box::new(rational(i as u64, [1.0, 2.0, 4.0][i])) as Box<dyn BiddingAgent>)
                .collect(),
            InteractiveConfig::default(),
        );
        let out = sync.clear(Watts::new(150.0)).unwrap();

        assert_eq!(c_net.price(), out.clearing.price());
        assert_eq!(c_net.iterations(), out.clearing.iterations());
        assert_eq!(c_net.diagnostics().price_trace, out.price_trace);
        for (row, alloc) in c_net.reductions().iter().zip(out.clearing.allocations()) {
            assert_eq!(*row, alloc.reduction, "reductions must be identical");
        }
        let t = c_net.diagnostics().transport.as_ref().unwrap();
        assert_eq!(t.virtual_ticks, 0, "perfect transport never advances time");
        assert_eq!(t.retransmits, 0);
        assert_eq!(t.straggler_rounds, 0);
        assert_eq!(t.channel.dropped, 0);
    }

    #[test]
    fn total_blackout_aborts_round_one_unaccepted() {
        // With every message dropped no agent ever bids, so the exchange
        // has no survivors after round 1 and aborts — the chain's next
        // stage re-clears from the registered cooperative bids.
        let mut m = TransportedInteractiveMechanism::new(
            ResilientConfig::default(),
            TransportConfig::default(),
            SimNet::new(NetFaultConfig::lossy(1.0), 3),
        );
        for (i, a) in [1.0, 2.0].iter().enumerate() {
            m.register(Box::new(rational(i as u64, *a)), Some(0.2));
        }
        let inst = m.instance();
        let c = m.clear(&inst, Watts::new(100.0)).unwrap();
        assert!(!c.diagnostics().accepted);
        assert_eq!(c.price(), Price::ZERO);
        let t = c.diagnostics().transport.as_ref().unwrap();
        assert_eq!(t.rounds, 1);
        assert_eq!(t.straggler_rounds, 2);
        assert!(t.retransmits > 0, "backoff schedule must have fired");
        assert!(t.channel.dropped > 0);
        // Observed bids fall back to the cooperative registration bids, so
        // a chain can still recover.
        assert_eq!(
            c.diagnostics().observed_bids.as_deref(),
            Some(&[0.2, 0.2][..])
        );
    }

    /// Wraps [`PerfectTransport`] but black-holes every announcement to one
    /// agent — a deterministic single-endpoint outage.
    struct BlackholeTo {
        inner: PerfectTransport,
        victim: usize,
        eaten: usize,
    }

    impl Transport for BlackholeTo {
        fn name(&self) -> &'static str {
            "blackhole"
        }
        fn send(&mut self, to: usize, msg: PriceAnnounce, now: Tick) {
            if to == self.victim {
                self.eaten += 1;
            } else {
                self.inner.send(to, msg, now);
            }
        }
        fn advance(
            &mut self,
            now: Tick,
            endpoint: &mut dyn FnMut(usize, &PriceAnnounce) -> Option<BidReply>,
        ) -> Vec<(usize, BidReply)> {
            self.inner.advance(now, endpoint)
        }
        fn next_due(&self) -> Option<Tick> {
            self.inner.next_due()
        }
        fn stats(&self) -> TransportStats {
            let mut s = self.inner.stats();
            s.dropped += self.eaten;
            s
        }
    }

    #[test]
    fn silent_agent_is_quarantined_after_k_misses_and_exchange_recovers() {
        let mut m = TransportedInteractiveMechanism::new(
            ResilientConfig::default(),
            TransportConfig {
                quarantine_after_misses: 2,
                ..TransportConfig::default()
            },
            BlackholeTo {
                inner: PerfectTransport::new(),
                victim: 2,
                eaten: 0,
            },
        );
        for (i, a) in [1.0, 2.0, 4.0].iter().enumerate() {
            m.register(Box::new(rational(i as u64, *a)), Some(0.2));
        }
        let inst = m.instance();
        let c = m.clear(&inst, Watts::new(150.0)).unwrap();
        // The two responsive agents carry the clearing.
        assert!(c.diagnostics().accepted, "diag: {:?}", c.diagnostics());
        assert!(c.met_target());
        assert_eq!(c.diagnostics().quarantined.len(), 1);
        assert_eq!(c.diagnostics().quarantined.first().map(|q| q.id), Some(2));
        assert!(matches!(
            c.diagnostics().quarantined.first().map(|q| &q.error),
            Some(MarketError::AgentTimeout { job: 2, .. })
        ));
        let t = c.diagnostics().transport.as_ref().unwrap();
        assert_eq!(t.deadline_quarantines, 1);
        assert_eq!(t.straggler_rounds, 2, "quarantined on the 2nd miss");
        assert!(t.retransmits > 0);
        // The quarantined row supplies nothing.
        assert_eq!(c.reductions().get(2), Some(&0.0));
    }

    #[test]
    fn light_loss_converges_with_retransmits() {
        let mut m = TransportedInteractiveMechanism::new(
            ResilientConfig::default(),
            TransportConfig::default(),
            SimNet::new(NetFaultConfig::lossy(0.2), 11),
        );
        for (i, a) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            m.register(Box::new(rational(i as u64, *a)), Some(0.2));
        }
        let inst = m.instance();
        let c = m.clear(&inst, Watts::new(200.0)).unwrap();
        assert!(c.diagnostics().accepted, "diag: {:?}", c.diagnostics());
        assert!(c.met_target());
        let t = c.diagnostics().transport.as_ref().unwrap();
        assert!(t.channel.dropped > 0, "20% drop must lose something");
        assert!(t.virtual_ticks > 0);
    }

    #[test]
    fn foreign_instance_falls_back_to_own_layout() {
        let mut m = mech_with(PerfectTransport::new());
        let foreign = MarketInstance::from_specs(std::iter::empty());
        // Degenerate foreign instance: cleared against own layout instead.
        let c = m.clear(&foreign, Watts::new(150.0)).unwrap();
        assert_eq!(c.len(), 3);
        assert!(c.met_target());
    }

    #[test]
    fn empty_mechanism_is_degenerate_and_zero_target_clears_empty() {
        let mut empty: TransportedInteractiveMechanism<PerfectTransport> =
            TransportedInteractiveMechanism::new(
                ResilientConfig::default(),
                TransportConfig::default(),
                PerfectTransport::new(),
            );
        let inst = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            empty.clear(&inst, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));

        let mut m = mech_with(PerfectTransport::new());
        let inst = m.instance();
        let c = m.clear(&inst, Watts::ZERO).unwrap();
        assert!(c.met_target());
        assert_eq!(c.price(), Price::ZERO);
    }
}
