//! MPR-INT on the unified [`Mechanism`] interface.

use std::collections::BTreeMap;

use crate::cost::CostModel;
use crate::error::MarketError;
use crate::market::interactive::{
    is_oscillating, BiddingAgent, InteractiveConfig, InteractiveMarket, NetGainAgent,
};
use crate::mechanism::{Clearing, Diagnostics, InstanceView, Mechanism, MechanismError};
use crate::units::{Price, Watts};

/// The interactive market (Section III-B): rational [`NetGainAgent`]s are
/// spun up from the instance's cost models and the iterative price/bid
/// exchange runs to convergence.
///
/// Rows without a cost model cannot bid and sit the clearing out.
///
/// * **strict** — propagates [`MarketError::Infeasible`] (the CLI's
///   behaviour).
/// * **best-effort** — an infeasible target caps every cost-bearing row at
///   its `Δ_m`, priced at the row's own unit cost (break-even compensation;
///   the simulator's behaviour).
#[derive(Debug, Clone)]
pub struct InteractiveMechanism {
    config: InteractiveConfig,
    strict: bool,
}

impl InteractiveMechanism {
    /// Strict variant: infeasible targets are errors.
    #[must_use]
    pub fn strict(config: InteractiveConfig) -> Self {
        Self {
            config,
            strict: true,
        }
    }

    /// Best-effort variant: infeasible targets cap at `Δ_m`.
    #[must_use]
    pub fn best_effort(config: InteractiveConfig) -> Self {
        Self {
            config,
            strict: false,
        }
    }

    /// The interactive-market configuration in use.
    #[must_use]
    pub fn config(&self) -> InteractiveConfig {
        self.config
    }

    fn agents(view: &InstanceView<'_>) -> Vec<Box<dyn BiddingAgent>> {
        view.ids()
            .iter()
            .zip(view.costs())
            .zip(view.watts_per_unit_slice())
            .filter_map(|((id, cost), wpu)| {
                let cost = cost.clone()?;
                Some(Box::new(NetGainAgent::new(*id, cost, Watts::new(*wpu)))
                    as Box<dyn BiddingAgent>)
            })
            .collect()
    }

    /// The capped fallback: every cost-bearing row reduces by its full
    /// `Δ_m` and is paid its own marginal unit cost at that point.
    fn capped(view: &InstanceView<'_>, target: Watts) -> Clearing {
        let mut reductions = Vec::with_capacity(view.len());
        let mut prices = Vec::with_capacity(view.len());
        for cost in view.costs() {
            match cost {
                Some(c) => {
                    let delta = c.delta_max();
                    reductions.push(delta);
                    prices.push(c.unit_cost(delta));
                }
                None => {
                    reductions.push(0.0);
                    prices.push(0.0);
                }
            }
        }
        let diagnostics = Diagnostics {
            iterations: 0,
            converged: false,
            accepted: false,
            capped_at_delta_max: true,
            ..Diagnostics::default()
        };
        Clearing::build(
            view,
            target,
            Price::ZERO,
            reductions,
            Some(prices),
            None,
            diagnostics,
        )
    }
}

impl Mechanism for InteractiveMechanism {
    fn name(&self) -> &'static str {
        "MPR-INT"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        let agents = Self::agents(view);
        if agents.is_empty() {
            return Err(MechanismError::Market(MarketError::NoParticipants));
        }
        let mut market = InteractiveMarket::new(agents, self.config);
        match market.clear(target) {
            Ok(outcome) => {
                // The round-cap safeguard takes the last announced price —
                // sound when the trajectory stalled short of tolerance, but
                // a bogus clearing when it is *cycling*. Surface the cycle
                // as a typed error so a FallbackChain degrades to a static
                // mechanism instead of shipping an arbitrary cycle point.
                if !outcome.converged
                    && is_oscillating(
                        &outcome.price_trace,
                        self.config.tolerance,
                        self.config.oscillation_window,
                    )
                {
                    return Err(MechanismError::NonConvergent {
                        rounds: outcome.clearing.iterations(),
                        last_price: outcome.clearing.price().get(),
                    });
                }
                let by_id: BTreeMap<u64, f64> = outcome
                    .clearing
                    .allocations()
                    .iter()
                    .map(|a| (a.id, a.reduction))
                    .collect();
                let reductions: Vec<f64> = view
                    .ids()
                    .iter()
                    .map(|id| by_id.get(id).copied().unwrap_or(0.0))
                    .collect();
                let diagnostics = Diagnostics {
                    iterations: outcome.clearing.iterations(),
                    converged: outcome.converged,
                    accepted: outcome.converged,
                    price_trace: outcome.price_trace,
                    ..Diagnostics::default()
                };
                Ok(Clearing::build(
                    view,
                    target,
                    outcome.clearing.price(),
                    reductions,
                    None,
                    None,
                    diagnostics,
                ))
            }
            Err(e @ MarketError::Infeasible { .. }) => {
                if self.strict {
                    Err(MechanismError::Market(e))
                } else {
                    Ok(Self::capped(view, target))
                }
            }
            Err(e) => Err(MechanismError::Market(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::mechanism::{MarketInstance, ParticipantSpec};
    use std::sync::Arc;

    fn instance(alphas: &[f64]) -> MarketInstance {
        alphas
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                ParticipantSpec::new(i as u64, 1.0, Watts::new(125.0))
                    .with_cost(Arc::new(QuadraticCost::new(a, 1.0)))
            })
            .collect()
    }

    #[test]
    fn converges_and_orders_by_sensitivity() {
        let inst = instance(&[1.0, 2.0, 4.0]);
        let mut mech = InteractiveMechanism::strict(InteractiveConfig::default());
        let c = mech.clear(&inst, Watts::new(150.0)).unwrap();
        assert!(c.diagnostics().converged);
        assert!(c.met_target());
        assert!(c.iterations() > 0);
        assert!(!c.diagnostics().price_trace.is_empty());
        let r = c.reductions();
        assert!(r[0] > r[1] && r[1] > r[2]);
    }

    #[test]
    fn strict_propagates_infeasible_best_effort_caps() {
        let inst = instance(&[1.0]);
        let target = Watts::new(1000.0); // attainable is 125 W
        let mut strict = InteractiveMechanism::strict(InteractiveConfig::default());
        assert!(matches!(
            strict.clear(&inst, target),
            Err(MechanismError::Market(MarketError::Infeasible { .. }))
        ));

        let mut soft = InteractiveMechanism::best_effort(InteractiveConfig::default());
        let c = soft.clear(&inst, target).unwrap();
        assert!(c.diagnostics().capped_at_delta_max);
        assert!(!c.diagnostics().accepted);
        assert!(!c.met_target());
        assert!(c.residual().get() > 0.0);
        assert!((c.reductions()[0] - 1.0).abs() < 1e-12);
        // Paid at own unit cost, not at a market price.
        assert!(c.participant_prices()[0] > 0.0);
        assert_eq!(c.price(), Price::ZERO);
    }

    /// Piecewise-linear cost with a kink at `δ = 0.75`: the best response
    /// is bang-bang (supply nothing below unit cost 1.6, supply 0.75 above
    /// it), which drives the undamped exchange into a perfect
    /// `1.0 ↔ 2.0` price 2-cycle for a 62.5 W target.
    struct KinkedCost;

    impl crate::cost::CostModel for KinkedCost {
        fn cost(&self, delta: f64) -> f64 {
            let d = delta.max(0.0);
            if d <= 0.75 {
                1.6 * d
            } else {
                1.2 + 10.0 * (d - 0.75)
            }
        }
        fn delta_max(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn oscillating_exchange_is_a_typed_error_not_a_bogus_clearing() {
        let inst: MarketInstance = std::iter::once(
            ParticipantSpec::new(0, 1.0, Watts::new(125.0)).with_cost(Arc::new(KinkedCost)),
        )
        .collect();
        let mut mech = InteractiveMechanism::best_effort(InteractiveConfig {
            max_iterations: 12,
            ..InteractiveConfig::default()
        });
        match mech.clear(&inst, Watts::new(62.5)) {
            Err(MechanismError::NonConvergent { rounds, last_price }) => {
                assert_eq!(rounds, 12);
                assert!(last_price > 0.0);
            }
            other => panic!("expected NonConvergent, got {other:?}"),
        }
        // The same cap on a merely *slow* (monotone) trajectory still
        // returns the last price: quadratic costs starved of rounds.
        let slow = instance(&[1.0, 2.0, 4.0]);
        let mut capped = InteractiveMechanism::best_effort(InteractiveConfig {
            max_iterations: 2,
            tolerance: 0.0,
            ..InteractiveConfig::default()
        });
        let c = capped.clear(&slow, Watts::new(150.0)).unwrap();
        assert!(!c.diagnostics().converged);
        assert!(c.price() > Price::ZERO);
    }

    #[test]
    fn degenerate_instances_error() {
        let mut mech = InteractiveMechanism::best_effort(InteractiveConfig::default());
        let empty = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            mech.clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
        // Cost-less instance: no agents can be built.
        let costless: MarketInstance = (0..2)
            .map(|id| ParticipantSpec::new(id, 1.0, Watts::new(125.0)))
            .collect();
        assert!(matches!(
            mech.clear(&costless, Watts::new(10.0)),
            Err(MechanismError::Market(MarketError::NoParticipants))
        ));
    }
}
