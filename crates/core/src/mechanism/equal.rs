//! EQL (uniform capping) on the unified [`Mechanism`] interface.

use crate::eql::{self, EqlJob};
use crate::error::MarketError;
use crate::mechanism::{Clearing, Diagnostics, InstanceView, Mechanism, MechanismError};
use crate::units::{Price, Watts};

/// The cost-oblivious baseline (Section III-C): every job loses the same
/// fraction of its *cores*, regardless of sensitivity. Jobs pushed past
/// their feasible `Δ_m` are counted in
/// [`Diagnostics::violations`](crate::mechanism::Diagnostics).
///
/// On an infeasible target (even stopping every core cannot reach it) the
/// mechanism caps at fraction 1 — every core stopped — and reports the
/// positive residual.
#[derive(Debug, Clone, Default)]
pub struct EqlMechanism;

impl Mechanism for EqlMechanism {
    fn name(&self) -> &'static str {
        "EQL"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        let jobs: Vec<EqlJob> = view
            .ids()
            .iter()
            .zip(view.cores())
            .zip(view.deltas())
            .zip(view.watts_per_unit_slice())
            .map(|(((id, cores), delta), wpu)| EqlJob {
                id: *id,
                cores: *cores,
                delta_max: *delta,
                watts_per_unit: *wpu,
            })
            .collect();
        match eql::reduce(&jobs, target) {
            Ok(outcome) => {
                let reductions: Vec<f64> = outcome.reductions.iter().map(|(_, d)| *d).collect();
                let diagnostics = Diagnostics {
                    violations: outcome.violations.len(),
                    accepted: outcome.is_feasible(),
                    ..Diagnostics::default()
                };
                Ok(Clearing::build(
                    view,
                    target,
                    Price::ZERO,
                    reductions,
                    None,
                    None,
                    diagnostics,
                ))
            }
            Err(MarketError::Infeasible { .. }) => {
                // Fraction 1: stop every core.
                let diagnostics = Diagnostics {
                    accepted: false,
                    capped_at_delta_max: true,
                    ..Diagnostics::default()
                };
                Ok(Clearing::build(
                    view,
                    target,
                    Price::ZERO,
                    view.cores().to_vec(),
                    None,
                    None,
                    diagnostics,
                ))
            }
            Err(e) => Err(MechanismError::Market(e)),
        }
    }
}

/// The degradation chain's terminal stage: uniform capping over `Δ_m`
/// (not cores), the fraction chosen so any physically attainable target is
/// met exactly. Pays nothing — this is manager-side forced capping.
#[derive(Debug, Clone, Default)]
pub struct EqlCappingMechanism;

impl Mechanism for EqlCappingMechanism {
    fn name(&self) -> &'static str {
        "EQL-CAP"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        let attainable = view.attainable_watts().get();
        let fraction = if attainable > 0.0 {
            (target.get() / attainable).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let reductions: Vec<f64> = view.deltas().iter().map(|d| fraction * d).collect();
        Ok(Clearing::build(
            view,
            target,
            Price::ZERO,
            reductions,
            None,
            None,
            Diagnostics::default(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{MarketInstance, ParticipantSpec};

    fn instance() -> MarketInstance {
        vec![
            ParticipantSpec::new(0, 7.0, Watts::new(125.0)).with_cores(10.0),
            ParticipantSpec::new(1, 21.0, Watts::new(125.0)).with_cores(30.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn uniform_fraction_over_cores() {
        let mut mech = EqlMechanism;
        let c = mech.clear(&instance(), Watts::new(1000.0)).unwrap();
        // fraction = 1000 / (40 * 125) = 0.2
        assert!((c.reductions()[0] - 2.0).abs() < 1e-9);
        assert!((c.reductions()[1] - 6.0).abs() < 1e-9);
        assert!(c.met_target());
        assert_eq!(c.diagnostics().violations, 0);
        assert_eq!(c.total_payment_rate().get(), 0.0);
    }

    #[test]
    fn violations_are_counted() {
        let mut mech = EqlMechanism;
        // fraction = 4000/5000 = 0.8 -> reductions 8 > 7 and 24 > 21.
        let c = mech.clear(&instance(), Watts::new(4000.0)).unwrap();
        assert_eq!(c.diagnostics().violations, 2);
        assert!(!c.diagnostics().accepted);
    }

    #[test]
    fn infeasible_target_caps_every_core() {
        let mut mech = EqlMechanism;
        let c = mech.clear(&instance(), Watts::new(1e6)).unwrap();
        assert!(c.diagnostics().capped_at_delta_max);
        assert!((c.reductions()[0] - 10.0).abs() < 1e-12);
        assert!((c.reductions()[1] - 30.0).abs() < 1e-12);
        assert!(!c.met_target());
        assert!(c.residual().get() > 0.0);
    }

    #[test]
    fn capping_meets_any_attainable_target_exactly() {
        let mut mech = EqlCappingMechanism;
        // attainable = (7 + 21) * 125 = 3500 W
        let c = mech.clear(&instance(), Watts::new(1750.0)).unwrap();
        assert!(c.met_target());
        assert!((c.total_power_reduction().get() - 1750.0).abs() < 1e-9);
        assert_eq!(c.price(), Price::ZERO);
        // Uniform fraction of delta_max, not cores.
        assert!((c.reductions()[0] - 3.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_instances_error() {
        let empty = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            EqlMechanism.clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
        assert!(matches!(
            EqlCappingMechanism.clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
        let nan: MarketInstance = (0..2)
            .map(|id| ParticipantSpec::new(id, 1.0, Watts::new(125.0)).with_bid(f64::NAN))
            .collect();
        assert!(matches!(
            EqlMechanism.clear(&nan, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }
}
