//! The fault-tolerant interactive exchange as a chain-composable
//! [`Mechanism`].
//!
//! This is level 0 of the degradation chain behind
//! [`crate::ResilientInteractiveMarket`]: the damped MPR-INT price/bid
//! exchange hardened with a per-round retry budget, quarantine, and the
//! convergence watchdog (PR-1 semantics, ported verbatim). It never turns
//! agent faults into errors — a failed exchange is returned as an
//! **unaccepted** [`Clearing`] carrying the observed last-known/cooperative
//! bids, which a [`FallbackChain`](crate::mechanism::FallbackChain) patches
//! into the instance for its next stage.

use crate::error::MarketError;
use crate::market::faults::{ConvergenceWatchdog, Quarantine, ResilientConfig};
use crate::market::interactive::BiddingAgent;
use crate::mclr;
use crate::mechanism::{
    Clearing, Diagnostics, InstanceView, MarketInstance, Mechanism, MechanismError, ParticipantSpec,
};
use crate::participant::Participant;
use crate::supply::SupplyFunction;
use crate::units::{Price, Watts};

/// Per-agent book-keeping shared by the resilient (synchronous) and the
/// transported (message-passing) interactive mechanisms.
pub(crate) struct AgentSlot {
    pub(crate) agent: Box<dyn BiddingAgent>,
    /// Registered submission-time (cooperative) bid, used at fallback
    /// levels when no live bid was ever observed.
    pub(crate) fallback_bid: Option<f64>,
    /// Most recent valid bid observed from the live exchange.
    pub(crate) last_bid: Option<f64>,
    pub(crate) quarantined: bool,
}

impl AgentSlot {
    /// Creates a fresh slot; non-finite or negative fallback bids are
    /// discarded.
    pub(crate) fn new(agent: Box<dyn BiddingAgent>, fallback_bid: Option<f64>) -> Self {
        Self {
            agent,
            fallback_bid: fallback_bid.filter(|b| b.is_finite() && *b >= 0.0),
            last_bid: None,
            quarantined: false,
        }
    }
}

/// The [`MarketInstance`] matching `slots`, in registration order (bids are
/// the registered fallback bids).
pub(crate) fn slots_instance(slots: &[AgentSlot]) -> MarketInstance {
    slots
        .iter()
        .map(|s| {
            let spec = ParticipantSpec::new(
                s.agent.job_id(),
                s.agent.delta_max(),
                Watts::new(s.agent.watts_per_unit()),
            );
            match s.fallback_bid {
                Some(b) => spec.with_bid(b),
                None => spec,
            }
        })
        .collect()
}

/// Participants for the surviving (non-quarantined) slots with a live bid.
pub(crate) fn slots_survivor_participants(slots: &[AgentSlot]) -> Vec<Participant> {
    slots
        .iter()
        .filter(|s| !s.quarantined)
        .filter_map(|s| {
            let bid = s.last_bid?;
            let supply = SupplyFunction::new(s.agent.delta_max(), bid).ok()?;
            Some(Participant::new(
                s.agent.job_id(),
                supply,
                Watts::new(s.agent.watts_per_unit()),
            ))
        })
        .collect()
}

/// Every slot's effective bid — last live, else registered cooperative,
/// else 0 (manager-side forced capping still supplies) — in slot order.
pub(crate) fn slots_observed_bids(slots: &[AgentSlot]) -> Vec<f64> {
    slots
        .iter()
        .map(|s| s.last_bid.or(s.fallback_bid).unwrap_or(0.0))
        .collect()
}

/// Per-slot reductions at `price` from each survivor's live bid
/// (quarantined and never-bid slots supply nothing).
pub(crate) fn slots_survivor_reductions(slots: &[AgentSlot], price: Price) -> Vec<f64> {
    slots
        .iter()
        .map(|s| {
            if s.quarantined {
                return 0.0;
            }
            s.last_bid
                .and_then(|b| SupplyFunction::new(s.agent.delta_max(), b).ok())
                .map_or(0.0, |supply| supply.supply(price))
        })
        .collect()
}

/// Fault-tolerant MPR-INT over registered bidding agents.
///
/// The mechanism owns its agents, so quarantine state persists across
/// clearings. The [`MarketInstance`] passed to `clear` must list the
/// registered jobs in registration order (use
/// [`ResilientInteractiveMechanism::instance`]); the mechanism reads agent
/// state authoritatively from its slots and uses the instance only for the
/// clearing's row layout.
pub struct ResilientInteractiveMechanism {
    slots: Vec<AgentSlot>,
    config: ResilientConfig,
}

impl std::fmt::Debug for ResilientInteractiveMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientInteractiveMechanism")
            .field("agents", &self.slots.len())
            .field("config", &self.config)
            .finish()
    }
}

impl ResilientInteractiveMechanism {
    /// Creates an empty mechanism.
    #[must_use]
    pub fn new(config: ResilientConfig) -> Self {
        Self {
            slots: Vec::new(),
            config,
        }
    }

    /// Registers an agent together with its submission-time cooperative
    /// bid (ignored unless finite and non-negative).
    pub fn register(&mut self, agent: Box<dyn BiddingAgent>, fallback_bid: Option<f64>) {
        self.slots.push(AgentSlot::new(agent, fallback_bid));
    }

    /// Number of registered agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no agents are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The resilient configuration in use.
    #[must_use]
    pub fn config(&self) -> ResilientConfig {
        self.config
    }

    /// Builds the [`MarketInstance`] matching the registered agents, in
    /// registration order (bids are the registered fallback bids).
    #[must_use]
    pub fn instance(&self) -> MarketInstance {
        slots_instance(&self.slots)
    }

    /// Participants for the surviving (non-quarantined) agents with a live
    /// bid.
    fn survivor_participants(&self) -> Vec<Participant> {
        slots_survivor_participants(&self.slots)
    }

    /// Every slot's effective bid — last live, else registered cooperative,
    /// else 0 (manager-side forced capping still supplies) — in slot order.
    fn observed_bids(&self) -> Vec<f64> {
        slots_observed_bids(&self.slots)
    }

    /// Per-slot reductions at `price` from each survivor's live bid
    /// (quarantined and never-bid slots supply nothing).
    fn survivor_reductions(&self, price: Price) -> Vec<f64> {
        slots_survivor_reductions(&self.slots, price)
    }
}

impl Mechanism for ResilientInteractiveMechanism {
    fn name(&self) -> &'static str {
        "MPR-INT-RESILIENT"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        if self.slots.is_empty() {
            return Err(MechanismError::DegenerateInstance {
                reason: "no agents are registered with the resilient exchange",
            });
        }
        // Row layout must match the registered agents; fall back to our own
        // view when a caller hands us a foreign window.
        let own;
        let own_view;
        let layout: &InstanceView<'_> = if view.len() == self.slots.len() {
            view
        } else {
            own = self.instance();
            own_view = own.view();
            &own_view
        };
        let target_watts = target.get();
        if target_watts <= 0.0 {
            let diagnostics = Diagnostics {
                iterations: 0,
                price_trace: vec![0.0],
                observed_bids: Some(self.observed_bids()),
                ..Diagnostics::default()
            };
            return Ok(Clearing::build(
                layout,
                Watts::new(target_watts.max(0.0)),
                Price::ZERO,
                vec![0.0; layout.len()],
                None,
                None,
                diagnostics,
            ));
        }

        let cfg = self.config;
        let icfg = cfg.interactive;
        let mut price = icfg.initial_price.max(1e-9);
        let mut trace = vec![price];
        let mut watchdog = ConvergenceWatchdog::new(cfg.watchdog_window, cfg.divergence_min_change);
        let mut quarantined: Vec<Quarantine> = Vec::new();
        let mut retries = 0usize;
        let mut converged = false;
        let mut diverged = false;
        let mut rounds = 0usize;

        // The interactive exchange over responsive agents (PR-1 semantics:
        // bounded retries per round, terminal crashes skip the budget, the
        // watchdog aborts oscillation).
        'rounds: for round in 1..=icfg.max_iterations {
            rounds = round;
            for slot in self.slots.iter_mut().filter(|s| !s.quarantined) {
                let mut attempts = 0usize;
                loop {
                    match slot.agent.respond(price) {
                        Ok(bid) if bid.is_finite() => {
                            slot.last_bid = Some(bid.max(0.0));
                            break;
                        }
                        Ok(garbage) => {
                            attempts += 1;
                            if attempts > cfg.max_retries {
                                slot.quarantined = true;
                                quarantined.push(Quarantine {
                                    id: slot.agent.job_id(),
                                    round,
                                    error: MarketError::InvalidParameter {
                                        name: "bid",
                                        value: garbage,
                                        constraint: "agent returned a non-finite bid",
                                    },
                                });
                                break;
                            }
                            retries += 1;
                        }
                        Err(err @ MarketError::AgentCrashed { .. }) => {
                            slot.quarantined = true;
                            quarantined.push(Quarantine {
                                id: slot.agent.job_id(),
                                round,
                                error: err,
                            });
                            break;
                        }
                        Err(err) => {
                            attempts += 1;
                            if attempts > cfg.max_retries {
                                slot.quarantined = true;
                                quarantined.push(Quarantine {
                                    id: slot.agent.job_id(),
                                    round,
                                    error: err,
                                });
                                break;
                            }
                            retries += 1;
                        }
                    }
                }
            }

            let participants = self.survivor_participants();
            if participants.is_empty() {
                break 'rounds;
            }
            let sol = mclr::clear_best_effort(&participants, target);
            let next = (1.0 - icfg.damping) * price + icfg.damping * sol.price.get();
            let rel_change = (next - price).abs() / price.abs().max(1e-9);
            price = next;
            trace.push(price);
            if rel_change <= icfg.tolerance {
                converged = true;
                break 'rounds;
            }
            if watchdog.observe(rel_change) {
                diverged = true;
                break 'rounds;
            }
        }

        // Final solve: replace the damped announcement with the price that
        // actually clears the surviving supplies.
        let survivors = self.survivor_participants();
        let healthy = converged && !diverged && !survivors.is_empty();
        let (clearing_price, reductions) = if healthy {
            let sol = mclr::clear_best_effort(&survivors, target);
            (sol.price, self.survivor_reductions(sol.price))
        } else {
            // Nothing usable from the exchange; the chain's next stage
            // re-clears from the observed bids.
            (Price::ZERO, vec![0.0; self.slots.len()])
        };

        let diagnostics = Diagnostics {
            iterations: rounds,
            converged,
            diverged,
            retries,
            quarantined,
            price_trace: trace,
            accepted: healthy,
            observed_bids: Some(self.observed_bids()),
            ..Diagnostics::default()
        };
        Ok(Clearing::build(
            layout,
            target,
            clearing_price,
            reductions,
            None,
            None,
            diagnostics,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::market::faults::CrashAgent;
    use crate::market::interactive::NetGainAgent;

    fn rational(id: u64, alpha: f64) -> NetGainAgent<QuadraticCost> {
        NetGainAgent::new(id, QuadraticCost::new(alpha, 1.0), Watts::new(125.0))
    }

    #[test]
    fn clean_exchange_is_accepted_and_meets_target() {
        let mut mech = ResilientInteractiveMechanism::new(ResilientConfig::default());
        for (i, a) in [1.0, 2.0, 4.0].iter().enumerate() {
            mech.register(Box::new(rational(i as u64, *a)), Some(0.2));
        }
        let inst = mech.instance();
        let c = mech.clear(&inst, Watts::new(150.0)).unwrap();
        assert!(c.diagnostics().accepted);
        assert!(c.diagnostics().converged);
        assert!(c.met_target());
        assert!(c.diagnostics().quarantined.is_empty());
        assert_eq!(c.diagnostics().observed_bids.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn crashing_agent_is_quarantined_but_exchange_recovers() {
        let mut mech = ResilientInteractiveMechanism::new(ResilientConfig::default());
        mech.register(Box::new(rational(0, 1.0)), None);
        mech.register(Box::new(rational(1, 2.0)), None);
        mech.register(Box::new(CrashAgent::new(rational(2, 1.0), 1)), Some(0.3));
        let inst = mech.instance();
        let c = mech.clear(&inst, Watts::new(100.0)).unwrap();
        assert_eq!(c.diagnostics().quarantined.len(), 1);
        assert_eq!(c.diagnostics().quarantined[0].id, 2);
        // Quarantined row supplies nothing at the interactive level.
        assert_eq!(c.reductions()[2], 0.0);
        assert!(c.diagnostics().accepted);
        assert!(c.met_target());
    }

    #[test]
    fn empty_mechanism_is_degenerate() {
        let mut mech = ResilientInteractiveMechanism::new(ResilientConfig::default());
        let inst = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            mech.clear(&inst, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }
}
