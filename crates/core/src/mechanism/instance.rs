//! The shared struct-of-arrays market instance.
//!
//! Every clearing scheme in the paper — MClr/MPR-STAT, MPR-INT, OPT, EQL,
//! VCG — solves the *same* overload instance: a set of jobs, each with a
//! maximum reduction `Δ_m`, an optional static bid `b_m`, a watts-per-unit
//! conversion, a core count, and (for the cost-aware schemes) a private
//! cost curve. [`MarketInstance`] materializes that instance **once per
//! overload** as contiguous parallel arrays, so solvers read straight from
//! slices instead of each re-cloning its own `Vec<Participant>` — the
//! single seam later PRs need for batched/parallel/sharded clearing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::CostModel;
use crate::mechanism::view::{GroupId, InstanceView};
use crate::mechanism::MechanismError;
use crate::participant::{JobId, Participant};
use crate::units::Watts;

/// Monotonic instance-identity counter; lets mechanisms cache per-instance
/// state (`prepare`) and detect staleness without hashing array contents.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// One participant's row of the instance, in builder form.
///
/// ```
/// use std::sync::Arc;
/// use mpr_core::mechanism::{MarketInstance, ParticipantSpec};
/// use mpr_core::{QuadraticCost, Watts};
///
/// let instance: MarketInstance = (0..4)
///     .map(|id| {
///         ParticipantSpec::new(id, 1.0, Watts::new(125.0))
///             .with_bid(0.2)
///             .with_cost(Arc::new(QuadraticCost::new(1.0, 1.0)))
///     })
///     .collect();
/// assert_eq!(instance.len(), 4);
/// ```
#[derive(Clone)]
pub struct ParticipantSpec {
    id: JobId,
    delta_max: f64,
    watts_per_unit: f64,
    bid: Option<f64>,
    cores: Option<f64>,
    cost: Option<Arc<dyn CostModel>>,
}

impl std::fmt::Debug for ParticipantSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParticipantSpec")
            .field("id", &self.id)
            .field("delta_max", &self.delta_max)
            .field("watts_per_unit", &self.watts_per_unit)
            .field("bid", &self.bid)
            .field("cores", &self.cores)
            .field("has_cost", &self.cost.is_some())
            .finish()
    }
}

impl ParticipantSpec {
    /// Creates a spec for job `id` with maximum reduction `delta_max`
    /// (cores) and the job's power yield per unit of reduction.
    #[must_use]
    pub fn new(id: JobId, delta_max: f64, watts_per_unit: Watts) -> Self {
        Self {
            id,
            delta_max,
            watts_per_unit: watts_per_unit.get(),
            bid: None,
            cores: None,
            cost: None,
        }
    }

    /// Sets the static bid `b_m` (Eqn. 3). Bid-driven mechanisms
    /// (MPR-STAT and the static fallback) ignore rows without one.
    #[must_use]
    pub fn with_bid(mut self, bid: f64) -> Self {
        self.bid = Some(bid);
        self
    }

    /// Sets the job's core count (EQL reduces a fraction of *cores*, not of
    /// `Δ_m`). Defaults to `delta_max` when unset.
    #[must_use]
    pub fn with_cores(mut self, cores: f64) -> Self {
        self.cores = Some(cores);
        self
    }

    /// Attaches the job's private cost model (used by MPR-INT agents, OPT,
    /// and VCG).
    #[must_use]
    pub fn with_cost(mut self, cost: Arc<dyn CostModel>) -> Self {
        self.cost = Some(cost);
        self
    }
}

impl From<&Participant> for ParticipantSpec {
    fn from(p: &Participant) -> Self {
        ParticipantSpec::new(p.id, p.supply.delta_max(), Watts::new(p.watts_per_unit))
            .with_bid(p.supply.bid())
    }
}

/// A struct-of-arrays snapshot of one overload instance, shared by every
/// mechanism (see the module docs).
///
/// Rows keep their build order; the index of a row is the participant's
/// position in every per-participant slice of a [`Clearing`]
/// (`crate::mechanism::Clearing`).
#[derive(Clone)]
pub struct MarketInstance {
    ids: Vec<JobId>,
    delta_max: Vec<f64>,
    bids: Vec<f64>,
    watts_per_unit: Vec<f64>,
    cores: Vec<f64>,
    costs: Vec<Option<Arc<dyn CostModel>>>,
    /// Per-row "a bid was supplied at build time" mask. The bids column
    /// stores NaN both for "no bid" and for a supplied-but-NaN bid, so
    /// subset views need this mask to recompute their own degeneracy
    /// counters.
    supplied: Vec<bool>,
    bids_supplied: usize,
    finite_bids: usize,
    token: u64,
}

impl std::fmt::Debug for MarketInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MarketInstance")
            .field("participants", &self.ids.len())
            .field("bids_supplied", &self.bids_supplied)
            .field("finite_bids", &self.finite_bids)
            .field("token", &self.token)
            .finish()
    }
}

impl MarketInstance {
    /// Builds an instance from participant specs (also available through
    /// `collect()`).
    #[must_use]
    pub fn from_specs<I: IntoIterator<Item = ParticipantSpec>>(specs: I) -> Self {
        specs.into_iter().collect()
    }

    /// Number of participants (rows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the instance has no participants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Job ids, in row order.
    #[must_use]
    pub fn ids(&self) -> &[JobId] {
        &self.ids
    }

    /// Maximum reductions `Δ_m` (cores), in row order.
    #[must_use]
    pub fn deltas(&self) -> &[f64] {
        &self.delta_max
    }

    /// Static bids `b_m`, in row order. Rows built without a bid hold NaN;
    /// use [`MarketInstance::bid`] for the checked view.
    #[must_use]
    pub fn bids(&self) -> &[f64] {
        &self.bids
    }

    /// Watts of power reduction per unit of resource reduction, in row
    /// order.
    #[must_use]
    pub fn watts_per_unit_slice(&self) -> &[f64] {
        &self.watts_per_unit
    }

    /// Core counts, in row order (defaulted to `Δ_m` where unspecified).
    #[must_use]
    pub fn cores(&self) -> &[f64] {
        &self.cores
    }

    /// Cost models, in row order (`None` for bid-only rows).
    #[must_use]
    pub fn costs(&self) -> &[Option<Arc<dyn CostModel>>] {
        &self.costs
    }

    /// The finite bid of row `i`, if one was supplied.
    #[must_use]
    pub fn bid(&self, i: usize) -> Option<f64> {
        self.bids.get(i).copied().filter(|b| b.is_finite())
    }

    /// Identity token for `prepare`-time caching; changes whenever a new
    /// instance (including a [`MarketInstance::with_bids`] patch) is built.
    #[must_use]
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Maximum attainable power reduction `Σ Δ_m · watts_per_unit`.
    #[must_use]
    pub fn attainable_watts(&self) -> Watts {
        Watts::new(
            self.delta_max
                .iter()
                .zip(&self.watts_per_unit)
                .map(|(d, w)| d * w)
                .sum(),
        )
    }

    /// Power drawn through the cores `Σ cores · watts_per_unit` — the pool
    /// EQL's uniform fraction is taken from.
    #[must_use]
    pub fn core_capacity_watts(&self) -> Watts {
        Watts::new(
            self.cores
                .iter()
                .zip(&self.watts_per_unit)
                .map(|(c, w)| c * w)
                .sum(),
        )
    }

    /// A copy of this instance with every bid replaced (used by fallback
    /// chains to re-clear over last-known bids). Cost models are shared via
    /// `Arc`, so the patch is cheap. Missing entries keep rows bid-less;
    /// extra entries are ignored.
    #[must_use]
    pub fn with_bids(&self, bids: &[f64]) -> MarketInstance {
        let mut patched = self.clone();
        let n = self.ids.len();
        patched.bids = bids.iter().copied().take(n).collect();
        patched.bids.resize(n, f64::NAN);
        patched.bids_supplied = bids.len().min(n);
        patched.supplied = (0..n).map(|i| i < patched.bids_supplied).collect();
        patched.finite_bids = patched.bids.iter().filter(|b| b.is_finite()).count();
        patched.token = NEXT_TOKEN.fetch_add(1, Ordering::SeqCst);
        patched
    }

    /// Whether row `i` was built with a bid (finite or not) — the checked
    /// companion of the NaN-encoded [`MarketInstance::bids`] column.
    #[must_use]
    pub fn bid_supplied(&self, i: usize) -> bool {
        self.supplied.get(i).copied().unwrap_or(false)
    }

    /// A borrowed full-width [`InstanceView`] over this instance — what
    /// every [`Mechanism`](crate::mechanism::Mechanism) clears.
    #[must_use]
    pub fn view(&self) -> InstanceView<'_> {
        InstanceView::full(self)
    }

    /// An index-mapped window over a subset of rows (parent row indices,
    /// ascending order not required but preserved). Out-of-range indices
    /// are dropped. A selection covering every row in order collapses to
    /// the borrowed full view — bit-identical to clearing the instance
    /// directly.
    #[must_use]
    pub fn select(&self, rows: &[u32]) -> InstanceView<'_> {
        InstanceView::subset(self, rows, None)
    }

    /// Partitions the instance into per-group subtree views.
    ///
    /// `groups[i]` names the group of row `i`; rows beyond `groups.len()`
    /// belong to no group and are dropped. Views come back sorted by
    /// ascending [`GroupId`], each with its rows in parent order. When a
    /// single group covers every row the lone view is the borrowed full
    /// view (the identity partition), so a one-group partition clears
    /// bit-identically to the flat instance.
    #[must_use]
    pub fn partition_by(&self, groups: &[GroupId]) -> Vec<InstanceView<'_>> {
        let mut by_group: std::collections::BTreeMap<GroupId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (row, &g) in groups.iter().enumerate().take(self.len()) {
            if let Ok(idx) = u32::try_from(row) {
                by_group.entry(g).or_default().push(idx);
            }
        }
        by_group
            .into_iter()
            .map(|(g, rows)| InstanceView::subset(self, &rows, Some(g)))
            .collect()
    }

    /// Materializes the given parent rows as a standalone sub-instance
    /// (fresh token, per-subset degeneracy counters). Cost models are
    /// shared via `Arc`; out-of-range rows are skipped.
    #[must_use]
    pub(crate) fn gather(&self, rows: &[u32]) -> MarketInstance {
        let mut out = MarketInstance {
            ids: Vec::with_capacity(rows.len()),
            delta_max: Vec::with_capacity(rows.len()),
            bids: Vec::with_capacity(rows.len()),
            watts_per_unit: Vec::with_capacity(rows.len()),
            cores: Vec::with_capacity(rows.len()),
            costs: Vec::with_capacity(rows.len()),
            supplied: Vec::with_capacity(rows.len()),
            bids_supplied: 0,
            finite_bids: 0,
            token: NEXT_TOKEN.fetch_add(1, Ordering::SeqCst),
        };
        for &r in rows {
            let i = r as usize;
            let (Some(id), Some(delta), Some(bid), Some(wpu), Some(cores), Some(cost)) = (
                self.ids.get(i),
                self.delta_max.get(i),
                self.bids.get(i),
                self.watts_per_unit.get(i),
                self.cores.get(i),
                self.costs.get(i),
            ) else {
                continue;
            };
            out.ids.push(*id);
            out.delta_max.push(*delta);
            out.bids.push(*bid);
            out.watts_per_unit.push(*wpu);
            out.cores.push(*cores);
            out.costs.push(cost.clone());
            let was_supplied = self.bid_supplied(i);
            out.supplied.push(was_supplied);
            if was_supplied {
                out.bids_supplied += 1;
                if bid.is_finite() {
                    out.finite_bids += 1;
                }
            }
        }
        out
    }

    /// Rejects instances no mechanism can meaningfully clear: no
    /// participants at all, or bids were supplied but every one is
    /// non-finite (an all-NaN bid vector would otherwise clear as a silent
    /// zero-reduction success).
    ///
    /// # Errors
    ///
    /// [`MechanismError::DegenerateInstance`] with the offending condition.
    pub fn ensure_clearable(&self) -> Result<(), MechanismError> {
        if self.ids.is_empty() {
            return Err(MechanismError::DegenerateInstance {
                reason: "instance has no participants",
            });
        }
        if self.bids_supplied > 0 && self.finite_bids == 0 {
            return Err(MechanismError::DegenerateInstance {
                reason: "every supplied bid is non-finite",
            });
        }
        Ok(())
    }
}

impl FromIterator<ParticipantSpec> for MarketInstance {
    fn from_iter<I: IntoIterator<Item = ParticipantSpec>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let hint = iter.size_hint().0;
        let mut ids = Vec::with_capacity(hint);
        let mut delta_max = Vec::with_capacity(hint);
        let mut bids = Vec::with_capacity(hint);
        let mut watts_per_unit = Vec::with_capacity(hint);
        let mut cores = Vec::with_capacity(hint);
        let mut costs = Vec::with_capacity(hint);
        let mut supplied = Vec::with_capacity(hint);
        let mut bids_supplied = 0;
        let mut finite_bids = 0;
        for spec in iter {
            ids.push(spec.id);
            delta_max.push(spec.delta_max);
            watts_per_unit.push(spec.watts_per_unit);
            cores.push(spec.cores.unwrap_or(spec.delta_max));
            costs.push(spec.cost);
            supplied.push(spec.bid.is_some());
            match spec.bid {
                Some(b) => {
                    bids_supplied += 1;
                    if b.is_finite() {
                        finite_bids += 1;
                    }
                    bids.push(b);
                }
                None => bids.push(f64::NAN),
            }
        }
        MarketInstance {
            ids,
            delta_max,
            bids,
            watts_per_unit,
            cores,
            costs,
            supplied,
            bids_supplied,
            finite_bids,
            token: NEXT_TOKEN.fetch_add(1, Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::supply::SupplyFunction;

    #[test]
    fn arrays_stay_parallel_and_defaults_apply() {
        let inst: MarketInstance = vec![
            ParticipantSpec::new(0, 1.0, Watts::new(125.0)).with_bid(0.2),
            ParticipantSpec::new(1, 2.0, Watts::new(100.0)).with_cores(16.0),
            ParticipantSpec::new(2, 0.5, Watts::new(50.0))
                .with_cost(Arc::new(QuadraticCost::new(1.0, 1.0))),
        ]
        .into_iter()
        .collect();
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.ids(), &[0, 1, 2]);
        assert_eq!(inst.deltas(), &[1.0, 2.0, 0.5]);
        // Unset cores default to delta_max.
        assert_eq!(inst.cores(), &[1.0, 16.0, 0.5]);
        assert_eq!(inst.bid(0), Some(0.2));
        assert_eq!(inst.bid(1), None);
        assert!(inst.costs()[2].is_some());
        assert!((inst.attainable_watts().get() - (125.0 + 200.0 + 25.0)).abs() < 1e-12);
        assert!((inst.core_capacity_watts().get() - (125.0 + 1600.0 + 25.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_is_degenerate() {
        let inst = MarketInstance::from_specs(std::iter::empty());
        assert!(inst.is_empty());
        assert!(matches!(
            inst.ensure_clearable(),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }

    #[test]
    fn all_nan_bids_are_degenerate_but_bidless_rows_are_not() {
        let nan_bids: MarketInstance = (0..3)
            .map(|id| ParticipantSpec::new(id, 1.0, Watts::new(125.0)).with_bid(f64::NAN))
            .collect();
        assert!(matches!(
            nan_bids.ensure_clearable(),
            Err(MechanismError::DegenerateInstance { .. })
        ));

        // OPT/EQL instances carry no bids at all: clearable.
        let bidless: MarketInstance = (0..3)
            .map(|id| ParticipantSpec::new(id, 1.0, Watts::new(125.0)))
            .collect();
        assert!(bidless.ensure_clearable().is_ok());

        // One finite bid among NaNs: clearable (the NaN rows just sit out).
        let mixed: MarketInstance = vec![
            ParticipantSpec::new(0, 1.0, Watts::new(125.0)).with_bid(f64::NAN),
            ParticipantSpec::new(1, 1.0, Watts::new(125.0)).with_bid(0.3),
        ]
        .into_iter()
        .collect();
        assert!(mixed.ensure_clearable().is_ok());
    }

    #[test]
    fn with_bids_patches_and_changes_token() {
        let inst: MarketInstance = (0..3)
            .map(|id| ParticipantSpec::new(id, 1.0, Watts::new(125.0)))
            .collect();
        let old_token = inst.token();
        let patched = inst.with_bids(&[0.1, 0.2, 0.3]);
        assert_ne!(patched.token(), old_token);
        assert_eq!(patched.bid(2), Some(0.3));
        assert!(patched.ensure_clearable().is_ok());
        // Short patch leaves the tail bid-less.
        let short = inst.with_bids(&[0.5]);
        assert_eq!(short.bid(0), Some(0.5));
        assert_eq!(short.bid(2), None);
    }

    #[test]
    fn spec_from_participant_carries_the_bid() {
        let p = Participant::new(7, SupplyFunction::new(2.0, 0.4).unwrap(), Watts::new(125.0));
        let inst: MarketInstance = [ParticipantSpec::from(&p)].into_iter().collect();
        assert_eq!(inst.ids(), &[7]);
        assert_eq!(inst.bid(0), Some(0.4));
        assert_eq!(inst.deltas(), &[2.0]);
    }
}
