//! MPR-STAT / MClr on the unified [`Mechanism`] interface.

use crate::mclr;
use crate::mechanism::{Clearing, Diagnostics, InstanceView, Mechanism, MechanismError};
use crate::participant::Participant;
use crate::supply::SupplyFunction;
use crate::units::Watts;

/// The static market (Section III-B): one MClr solve over the instance's
/// standing bids.
///
/// Rows without a finite bid sit the clearing out (their reduction is 0).
///
/// * **strict** — propagates [`crate::MarketError::Infeasible`] /
///   [`crate::MarketError::NoParticipants`], for callers that must know the
///   target was unreachable (the CLI, experiments that measure
///   feasibility).
/// * **best-effort** — on an infeasible target clears at the bounded price
///   ceiling instead, extracting almost all of `Σ Δ_m` (the simulator's
///   behaviour: the manager force-caps the remainder).
#[derive(Debug, Clone, Default)]
pub struct MclrMechanism {
    strict: bool,
}

impl MclrMechanism {
    /// Strict variant: infeasible targets are errors.
    #[must_use]
    pub fn strict() -> Self {
        Self { strict: true }
    }

    /// Best-effort variant: infeasible targets clear at the price ceiling.
    #[must_use]
    pub fn best_effort() -> Self {
        Self { strict: false }
    }

    /// Materializes the view's bid-bearing rows as MClr participants.
    /// This is the single point where the SoA columns meet the
    /// array-of-structs solver; rows with a non-finite bid or an unusable
    /// `Δ_m` are skipped.
    fn participants(view: &InstanceView<'_>) -> Vec<Participant> {
        view.ids()
            .iter()
            .zip(view.deltas())
            .zip(view.bids())
            .zip(view.watts_per_unit_slice())
            .filter_map(|(((id, delta), bid), wpu)| {
                if !bid.is_finite() {
                    return None;
                }
                let supply = SupplyFunction::new(*delta, bid.max(0.0)).ok()?;
                Some(Participant::new(*id, supply, Watts::new(*wpu)))
            })
            .collect()
    }
}

impl Mechanism for MclrMechanism {
    fn name(&self) -> &'static str {
        "MPR-STAT"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        let participants = Self::participants(view);
        if participants.is_empty() {
            return Err(MechanismError::Market(
                crate::error::MarketError::NoParticipants,
            ));
        }
        let (sol, accepted) = if self.strict {
            (mclr::solve(&participants, target)?, true)
        } else {
            let sol = mclr::clear_best_effort(&participants, target);
            (sol, true)
        };
        // Read reductions straight off the SoA arrays at the clearing
        // price: δ_m(q') = [Δ_m − b_m/q']⁺, zero for bid-less rows.
        let price = sol.price;
        let reductions: Vec<f64> = view
            .deltas()
            .iter()
            .zip(view.bids())
            .map(|(delta, bid)| {
                if !bid.is_finite() || !delta.is_finite() || price.get() <= 0.0 {
                    0.0
                } else {
                    (delta - bid.max(0.0) / price.get()).max(0.0)
                }
            })
            .collect();
        let diagnostics = Diagnostics {
            accepted,
            ..Diagnostics::default()
        };
        Ok(Clearing::build(
            view,
            target,
            price,
            reductions,
            None,
            None,
            diagnostics,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::{MarketInstance, ParticipantSpec};

    fn instance(bids: &[f64]) -> MarketInstance {
        bids.iter()
            .enumerate()
            .map(|(i, &b)| ParticipantSpec::new(i as u64, 1.0, Watts::new(125.0)).with_bid(b))
            .collect()
    }

    #[test]
    fn matches_static_market_clearing() {
        use crate::market::static_market::StaticMarket;
        let inst = instance(&[0.2, 0.5, 0.1]);
        let mut mech = MclrMechanism::strict();
        let c = mech.clear(&inst, Watts::new(200.0)).unwrap();

        let legacy = StaticMarket::new(MclrMechanism::participants(&inst.view()))
            .clear(Watts::new(200.0))
            .unwrap();
        assert!((c.price().get() - legacy.price().get()).abs() < 1e-9);
        for (mine, theirs) in c.reductions().iter().zip(legacy.allocations()) {
            assert!((mine - theirs.reduction).abs() < 1e-9);
        }
        assert!(c.met_target());
        assert_eq!(c.residual(), Watts::ZERO);
    }

    #[test]
    fn strict_propagates_infeasible() {
        let inst = instance(&[0.2]);
        let mut mech = MclrMechanism::strict();
        let err = mech.clear(&inst, Watts::new(1e6)).unwrap_err();
        assert!(matches!(
            err,
            MechanismError::Market(crate::MarketError::Infeasible { .. })
        ));
    }

    #[test]
    fn best_effort_caps_at_price_ceiling() {
        let inst = instance(&[0.2]);
        let mut mech = MclrMechanism::best_effort();
        let c = mech.clear(&inst, Watts::new(1e6)).unwrap();
        assert!(!c.met_target());
        assert!(c.residual().get() > 0.0);
        assert!(c.total_power_reduction().get() >= 125.0 * (1.0 - 2e-3));
        assert!(c.price().get() <= 1000.0 * 0.2 + 1e-9);
    }

    #[test]
    fn empty_and_all_nan_instances_are_degenerate() {
        let mut mech = MclrMechanism::best_effort();
        let empty = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            mech.clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
        let nan = instance(&[f64::NAN, f64::NAN]);
        assert!(matches!(
            mech.clear(&nan, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }

    #[test]
    fn nan_bid_rows_sit_out_of_a_mixed_clearing() {
        let inst = instance(&[f64::NAN, 0.2]);
        let mut mech = MclrMechanism::strict();
        let c = mech.clear(&inst, Watts::new(100.0)).unwrap();
        assert_eq!(c.reductions()[0], 0.0);
        assert!(c.reductions()[1] > 0.0);
        assert!(c.met_target());
    }
}
