//! VCG (truthful pivot auction) on the unified [`Mechanism`] interface.

use crate::cost::CostModel;
use crate::error::MarketError;
use crate::mechanism::{Clearing, Diagnostics, InstanceView, Mechanism, MechanismError};
use crate::opt::{OptJob, OptMethod};
use crate::units::{Price, Watts};
use crate::vcg;

/// The incentive-compatible baseline (Section III-D): allocates like OPT
/// and pays each contributing job its pivot payment, making truthful cost
/// reporting a dominant strategy.
///
/// Payments are per-participant, not a uniform price: the headline
/// [`Clearing::price`](crate::mechanism::Clearing::price) is zero and each
/// row's effective unit price is `payment / reduction`. Exact VCG runs one
/// OPT solve per contributing job (O(M²) work overall) — budget
/// accordingly at large M.
///
/// * **strict** — propagates [`MarketError::Infeasible`] (including the
///   monopolist case where removing a contributor makes the target
///   unreachable).
/// * **best-effort** — on any solve failure caps every cost-bearing row at
///   its `Δ_m`, paid at its own unit cost.
#[derive(Debug, Clone, Default)]
pub struct VcgMechanism {
    method: OptMethod,
    strict: bool,
}

impl VcgMechanism {
    /// Strict variant: infeasible targets (and monopolist pivots) are
    /// errors.
    #[must_use]
    pub fn strict(method: OptMethod) -> Self {
        Self {
            method,
            strict: true,
        }
    }

    /// Best-effort variant: solve failures cap at `Δ_m`.
    #[must_use]
    pub fn best_effort(method: OptMethod) -> Self {
        Self {
            method,
            strict: false,
        }
    }
}

impl Mechanism for VcgMechanism {
    fn name(&self) -> &'static str {
        "VCG"
    }

    fn clear_view(
        &mut self,
        view: &InstanceView<'_>,
        target: Watts,
    ) -> Result<Clearing, MechanismError> {
        view.ensure_clearable()?;
        let rows: Vec<usize> = view
            .costs()
            .iter()
            .enumerate()
            .filter_map(|(row, cost)| cost.as_ref().map(|_| row))
            .collect();
        if rows.is_empty() {
            return Err(MechanismError::Market(MarketError::NoParticipants));
        }
        let jobs: Vec<OptJob<'_>> = rows
            .iter()
            .filter_map(|&row| {
                let id = view.ids().get(row)?;
                let cost = view.costs().get(row)?.as_ref()?;
                let wpu = view.watts_per_unit_slice().get(row)?;
                Some(OptJob::new(*id, cost.as_ref(), Watts::new(*wpu)))
            })
            .collect();
        match vcg::auction(&jobs, target, self.method) {
            Ok(outcome) => {
                let mut reductions = vec![0.0; view.len()];
                let mut prices = vec![0.0; view.len()];
                let mut payments = vec![0.0; view.len()];
                for (row, award) in rows.iter().zip(&outcome.awards) {
                    if let Some(slot) = reductions.get_mut(*row) {
                        *slot = award.reduction;
                    }
                    if let Some(slot) = payments.get_mut(*row) {
                        *slot = award.payment;
                    }
                    if let Some(slot) = prices.get_mut(*row) {
                        *slot = if award.reduction > 1e-12 {
                            award.payment / award.reduction
                        } else {
                            0.0
                        };
                    }
                }
                Ok(Clearing::build(
                    view,
                    target,
                    Price::ZERO,
                    reductions,
                    Some(prices),
                    Some(payments),
                    Diagnostics::default(),
                ))
            }
            Err(e) if self.strict => Err(MechanismError::Market(e)),
            Err(_) => {
                let mut reductions = vec![0.0; view.len()];
                let mut prices = vec![0.0; view.len()];
                for (row, cost) in view.costs().iter().enumerate() {
                    if let Some(c) = cost {
                        let delta = c.delta_max();
                        if let Some(slot) = reductions.get_mut(row) {
                            *slot = delta;
                        }
                        if let Some(slot) = prices.get_mut(row) {
                            *slot = c.unit_cost(delta);
                        }
                    }
                }
                let diagnostics = Diagnostics {
                    accepted: false,
                    capped_at_delta_max: true,
                    ..Diagnostics::default()
                };
                Ok(Clearing::build(
                    view,
                    target,
                    Price::ZERO,
                    reductions,
                    Some(prices),
                    None,
                    diagnostics,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::QuadraticCost;
    use crate::mechanism::{MarketInstance, ParticipantSpec};
    use std::sync::Arc;

    fn instance(alphas: &[f64]) -> MarketInstance {
        alphas
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                ParticipantSpec::new(i as u64, 1.0, Watts::new(125.0))
                    .with_cost(Arc::new(QuadraticCost::new(a, 1.0)))
            })
            .collect()
    }

    #[test]
    fn matches_direct_auction_and_pays_at_least_cost() {
        let alphas = [1.0, 2.0, 4.0];
        let inst = instance(&alphas);
        let mut mech = VcgMechanism::strict(OptMethod::Auto);
        let c = mech.clear(&inst, Watts::new(150.0)).unwrap();
        assert!(c.met_target());

        let costs: Vec<QuadraticCost> =
            alphas.iter().map(|&a| QuadraticCost::new(a, 1.0)).collect();
        let jobs: Vec<OptJob<'_>> = costs
            .iter()
            .enumerate()
            .map(|(i, cst)| OptJob::new(i as u64, cst, Watts::new(125.0)))
            .collect();
        let direct = vcg::auction(&jobs, Watts::new(150.0), OptMethod::Auto).unwrap();
        for ((mine_r, mine_p), award) in c
            .reductions()
            .iter()
            .zip(c.payment_rates())
            .zip(&direct.awards)
        {
            assert!((mine_r - award.reduction).abs() < 1e-9);
            assert!((mine_p - award.payment).abs() < 1e-9);
            // Individual rationality: payment covers incurred cost.
            assert!(*mine_p >= award.cost - 1e-9);
        }
    }

    #[test]
    fn strict_errors_best_effort_caps() {
        let inst = instance(&[1.0]);
        let target = Watts::new(1e6);
        assert!(matches!(
            VcgMechanism::strict(OptMethod::Auto).clear(&inst, target),
            Err(MechanismError::Market(MarketError::Infeasible { .. }))
        ));
        let c = VcgMechanism::best_effort(OptMethod::Auto)
            .clear(&inst, target)
            .unwrap();
        assert!(c.diagnostics().capped_at_delta_max);
        assert!(!c.met_target());
    }

    #[test]
    fn degenerate_instances_error() {
        let empty = MarketInstance::from_specs(std::iter::empty());
        assert!(matches!(
            VcgMechanism::default().clear(&empty, Watts::new(10.0)),
            Err(MechanismError::DegenerateInstance { .. })
        ));
    }
}
