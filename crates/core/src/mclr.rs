//! The MClr (Market Clearing) problem of Eqns. (4)–(5): find the cheapest
//! price at which the aggregate supplied power reduction meets the target.
//!
//! Because MClr has a single optimization variable `q` and the aggregate
//! payoff is monotone in `q`, the optimum is
//! `q' = min { q : Σ_m P(δ_m(q)) = P(t) − C }`, solvable by bisection
//! (Section III-D, "Scalability"). This module implements exactly that.

use crate::error::MarketError;
use crate::numeric;
use crate::participant::Participant;

/// Absolute floor for the clearing-price search bracket.
const PRICE_EPS: f64 = 1e-12;

/// Result of solving MClr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MclrSolution {
    /// The market clearing price `q'`.
    pub price: f64,
    /// Aggregate power reduction supplied at `q'`, in watts.
    pub power: f64,
}

/// Aggregate power reduction supplied by `participants` at `price`, in watts.
#[must_use]
pub fn aggregate_power(participants: &[Participant], price: f64) -> f64 {
    participants.iter().map(|p| p.power_at(price)).sum()
}

/// Maximum aggregate power reduction attainable (every job at its `Δ`).
#[must_use]
pub fn attainable_power(participants: &[Participant]) -> f64 {
    participants.iter().map(Participant::max_power).sum()
}

/// Solves MClr: the minimum price `q'` such that the aggregate supplied
/// power reduction is at least `target_watts`.
///
/// A non-positive target clears trivially at price 0 with no reductions.
///
/// ```
/// use mpr_core::mclr;
/// use mpr_core::{Participant, SupplyFunction};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// // δ(q) = 1 − 0.5/q at 125 W per unit: 62.5 W requires δ = 0.5 → q' = 1.
/// let ps = [Participant::new(0, SupplyFunction::new(1.0, 0.5)?, 125.0)];
/// let sol = mclr::solve(&ps, 62.5)?;
/// assert!((sol.price - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`MarketError::NoParticipants`] if the market is empty and the target
///   is positive.
/// * [`MarketError::Infeasible`] if even the maximal supplies fall short of
///   the target; callers that prefer best-effort capping should catch this
///   and use [`clear_best_effort`].
pub fn solve(participants: &[Participant], target_watts: f64) -> Result<MclrSolution, MarketError> {
    if target_watts <= 0.0 {
        return Ok(MclrSolution {
            price: 0.0,
            power: 0.0,
        });
    }
    if participants.is_empty() {
        return Err(MarketError::NoParticipants);
    }
    let attainable = attainable_power(participants);
    // Tolerance: supplies only reach Δ in the limit q → ∞, so accept targets
    // within a hair of the attainable maximum and clear them at a large price.
    if attainable < target_watts * (1.0 - 1e-9) {
        return Err(MarketError::Infeasible {
            target_watts,
            attainable_watts: attainable,
        });
    }

    // Find an upper bracket by doubling from the largest activation price.
    let mut hi = participants
        .iter()
        .filter_map(|p| p.supply.activation_price())
        .fold(PRICE_EPS, f64::max)
        .max(PRICE_EPS)
        * 2.0;
    let mut doubles = 0;
    while aggregate_power(participants, hi) < target_watts {
        hi *= 2.0;
        doubles += 1;
        if doubles > 2000 {
            // Target equals the attainable supremum: every participant must
            // deliver (numerically) all of Δ.
            return Ok(MclrSolution {
                price: hi,
                power: aggregate_power(participants, hi),
            });
        }
    }

    let price = numeric::bisect_threshold(PRICE_EPS, hi, target_watts, 1e-12, |q| {
        aggregate_power(participants, q)
    })?;
    Ok(MclrSolution {
        price,
        power: aggregate_power(participants, price),
    })
}

/// Precomputed index over a fixed set of bids for *exact, closed-form*
/// market clearing in `O(log M)` per overload.
///
/// With hyperbolic supplies the aggregate power reduction over the set of
/// participants active at price `q` (those with activation price
/// `b_i/Δ_i ≤ q`) is
///
/// ```text
/// P(q) = Σ wᵢ·(Δᵢ − bᵢ/q) = A_k − B_k / q
/// ```
///
/// where `A_k = Σ wᵢΔᵢ` and `B_k = Σ wᵢbᵢ` over the `k` cheapest
/// activation prices. Sorting once by activation price and keeping prefix
/// sums of `A` and `B` turns clearing into a binary search over segments
/// plus one division — no bisection, no tolerance. This is how a production
/// deployment would clear MPR-STAT markets at 100 kHz.
#[derive(Debug, Clone)]
pub struct ClearingIndex {
    /// Activation prices, ascending.
    activations: Vec<f64>,
    /// Prefix sums of `w·Δ` in activation order (entry `k` covers the
    /// first `k` participants).
    prefix_a: Vec<f64>,
    /// Prefix sums of `w·b` in activation order.
    prefix_b: Vec<f64>,
}

impl ClearingIndex {
    /// Builds the index over a set of participants.
    #[must_use]
    pub fn new(participants: &[Participant]) -> Self {
        let mut order: Vec<usize> = (0..participants.len()).collect();
        let activation = |p: &Participant| p.supply.activation_price().unwrap_or(f64::INFINITY);
        order.sort_by(|&a, &b| {
            activation(&participants[a])
                .partial_cmp(&activation(&participants[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut activations = Vec::with_capacity(order.len());
        let mut prefix_a = vec![0.0f64];
        let mut prefix_b = vec![0.0f64];
        for &i in &order {
            let p = &participants[i];
            activations.push(activation(p));
            prefix_a.push(prefix_a.last().unwrap() + p.watts_per_unit * p.supply.delta_max());
            prefix_b.push(prefix_b.last().unwrap() + p.watts_per_unit * p.supply.bid());
        }
        Self {
            activations,
            prefix_a,
            prefix_b,
        }
    }

    /// Aggregate power reduction at price `q`, in watts (closed form).
    #[must_use]
    pub fn power_at(&self, q: f64) -> f64 {
        if q <= 0.0 {
            return 0.0;
        }
        // Number of participants with activation price <= q.
        let k = self.activations.partition_point(|&a| a <= q);
        (self.prefix_a[k] - self.prefix_b[k] / q).max(0.0)
    }

    /// Solves MClr exactly: the minimal price meeting `target_watts`.
    ///
    /// # Errors
    ///
    /// Mirrors [`solve`]: [`MarketError::NoParticipants`] and
    /// [`MarketError::Infeasible`].
    pub fn clear(&self, target_watts: f64) -> Result<MclrSolution, MarketError> {
        if target_watts <= 0.0 {
            return Ok(MclrSolution {
                price: 0.0,
                power: 0.0,
            });
        }
        let n = self.activations.len();
        if n == 0 {
            return Err(MarketError::NoParticipants);
        }
        let attainable = self.prefix_a[n];
        if attainable < target_watts * (1.0 - 1e-9) {
            return Err(MarketError::Infeasible {
                target_watts,
                attainable_watts: attainable,
            });
        }
        // Binary search for the first segment whose right-endpoint power
        // meets the target. Segment k spans [activations[k-1],
        // activations[k]) with k participants active; the final segment is
        // unbounded above.
        let segment_end_power = |k: usize| -> f64 {
            if k >= n {
                f64::INFINITY
            } else {
                // Just below activations[k], k participants are active.
                let q = self.activations[k];
                self.prefix_a[k] - self.prefix_b[k] / q
            }
        };
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if segment_end_power(mid + 1) >= target_watts {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // Within segment `lo` (participants 0..=lo active): solve
        // A − B/q = target → q = B / (A − target).
        let k = lo + 1;
        let (a, b) = (self.prefix_a[k], self.prefix_b[k]);
        let price = if a > target_watts {
            (b / (a - target_watts))
                .max(self.activations[lo])
                .max(PRICE_EPS)
        } else if b == 0.0 {
            // Zero-bid segment: full supply at any price past activation.
            self.activations[lo].max(PRICE_EPS)
        } else {
            // Target only attainable in the limit within this (final)
            // segment: fall back to a large price.
            (b / (a * 1e-9).max(f64::MIN_POSITIVE)).max(self.activations[lo])
        };
        Ok(MclrSolution {
            price,
            power: self.power_at(price),
        })
    }
}

/// Generic MClr over arbitrary [`Supply`](crate::supply::Supply) curves —
/// `items` pairs each curve with its watts-per-unit conversion. Used by the
/// supply-function ablation to clear linear-supply markets with the same
/// bisection machinery.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_supplies<S: crate::supply::Supply>(
    items: &[(S, f64)],
    target_watts: f64,
) -> Result<MclrSolution, MarketError> {
    if target_watts <= 0.0 {
        return Ok(MclrSolution {
            price: 0.0,
            power: 0.0,
        });
    }
    if items.is_empty() {
        return Err(MarketError::NoParticipants);
    }
    let power_at = |q: f64| -> f64 { items.iter().map(|(s, w)| s.supply(q) * w).sum() };
    let attainable: f64 = items.iter().map(|(s, w)| s.delta_max() * w).sum();
    if attainable < target_watts * (1.0 - 1e-9) {
        return Err(MarketError::Infeasible {
            target_watts,
            attainable_watts: attainable,
        });
    }
    let mut hi = 1.0;
    let mut doubles = 0;
    while power_at(hi) < target_watts {
        hi *= 2.0;
        doubles += 1;
        if doubles > 2000 {
            break;
        }
    }
    let price = numeric::bisect_threshold(PRICE_EPS, hi, target_watts, 1e-12, power_at)?;
    Ok(MclrSolution {
        price,
        power: power_at(price),
    })
}

/// Factor applied to the highest activation price to form the manager's
/// price ceiling in best-effort clearings. At the ceiling every supply is
/// within 0.1 % of its Δ, so raising the price further buys (almost)
/// nothing while the payoff `q·δ` grows without bound.
const PRICE_CEILING_FACTOR: f64 = 1000.0;

/// Best-effort variant of [`solve`] with a price ceiling: when the target
/// is infeasible — or only reachable at an absurd price because it sits
/// within a hair of the attainable maximum — the market clears at the
/// ceiling (1000× the highest activation price), extracting essentially
/// every participant's Δ. The manager covers any remaining shortfall with
/// direct, market-bypassing power capping (Section III-F, "Malicious
/// users"), which the simulator models as escalation.
#[must_use]
pub fn clear_best_effort(participants: &[Participant], target_watts: f64) -> MclrSolution {
    let max_activation = participants
        .iter()
        .filter_map(|p| p.supply.activation_price())
        .fold(0.0f64, f64::max);
    let ceiling = (PRICE_CEILING_FACTOR * max_activation).max(1.0);
    match solve(participants, target_watts) {
        Ok(sol) if sol.price <= ceiling => sol,
        _ => MclrSolution {
            price: ceiling,
            power: aggregate_power(participants, ceiling),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::SupplyFunction;
    use proptest::prelude::*;

    fn job(id: u64, delta: f64, bid: f64) -> Participant {
        Participant::new(id, SupplyFunction::new(delta, bid).unwrap(), 125.0)
    }

    #[test]
    fn trivial_target_clears_at_zero() {
        let ps = vec![job(0, 1.0, 0.5)];
        let sol = solve(&ps, 0.0).unwrap();
        assert_eq!(sol.price, 0.0);
        assert_eq!(sol.power, 0.0);
        assert_eq!(solve(&ps, -5.0).unwrap().price, 0.0);
    }

    #[test]
    fn empty_market_with_positive_target_errs() {
        assert_eq!(solve(&[], 10.0), Err(MarketError::NoParticipants));
    }

    #[test]
    fn infeasible_target_errs_with_attainable() {
        let ps = vec![job(0, 1.0, 0.1)]; // max 125 W
        match solve(&ps, 500.0) {
            Err(MarketError::Infeasible {
                target_watts,
                attainable_watts,
            }) => {
                assert_eq!(target_watts, 500.0);
                assert!((attainable_watts - 125.0).abs() < 1e-9);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn single_job_price_matches_closed_form() {
        // δ(q) = 1 − 0.5/q; want 125·δ = 62.5 → δ = 0.5 → q = 1.0.
        let ps = vec![job(0, 1.0, 0.5)];
        let sol = solve(&ps, 62.5).unwrap();
        assert!((sol.price - 1.0).abs() < 1e-6, "price = {}", sol.price);
        assert!(sol.power >= 62.5 * (1.0 - 1e-9));
    }

    #[test]
    fn cheaper_supplier_activates_first() {
        // Job 1 activates at q = 0.1, job 2 at q = 1.0. A small target should
        // clear below job 2's activation price: only job 1 reduces.
        let ps = vec![job(1, 1.0, 0.1), job(2, 1.0, 1.0)];
        let sol = solve(&ps, 30.0).unwrap();
        assert!(sol.price < 1.0);
        assert_eq!(ps[1].supply.supply(sol.price), 0.0);
        assert!(ps[0].supply.supply(sol.price) > 0.0);
    }

    #[test]
    fn near_attainable_target_clears_at_high_price() {
        let ps = vec![job(0, 1.0, 0.5)];
        let attainable = attainable_power(&ps);
        let sol = solve(&ps, attainable * (1.0 - 1e-10)).unwrap();
        assert!(sol.power >= attainable * (1.0 - 1e-6));
    }

    #[test]
    fn best_effort_caps_everyone_when_infeasible() {
        let ps = vec![job(0, 1.0, 0.1), job(1, 2.0, 0.3)];
        let sol = clear_best_effort(&ps, 1e9);
        let attainable = attainable_power(&ps);
        // The price ceiling extracts every Δ to within 0.1 %.
        assert!(sol.power >= attainable * (1.0 - 2e-3));
        // ...at a bounded price: 1000× the highest activation price.
        assert!(sol.price <= 1000.0 * 0.3 + 1e-9, "price = {}", sol.price);
    }

    #[test]
    fn best_effort_caps_absurd_feasible_prices_too() {
        // Target within 1e-12 of the attainable max: the exact clearing
        // price would be astronomical; the ceiling bounds it.
        let ps = vec![job(0, 1.0, 0.5)];
        let attainable = attainable_power(&ps);
        let sol = clear_best_effort(&ps, attainable * (1.0 - 1e-12));
        assert!(sol.price <= 1000.0 * 0.5 + 1e-9);
        assert!(sol.power >= attainable * (1.0 - 2e-3));
    }

    #[test]
    fn best_effort_matches_solve_when_feasible() {
        let ps = vec![job(0, 1.0, 0.5)];
        let a = solve(&ps, 62.5).unwrap();
        let b = clear_best_effort(&ps, 62.5);
        assert!((a.price - b.price).abs() < 1e-12);
    }

    #[test]
    fn zero_bids_clear_at_epsilon_price() {
        let ps = vec![job(0, 1.0, 0.0), job(1, 1.0, 0.0)];
        let sol = solve(&ps, 200.0).unwrap();
        assert!(sol.price <= 1e-6, "price = {}", sol.price);
        assert!(sol.power >= 200.0 * (1.0 - 1e-9));
    }

    #[test]
    fn index_matches_bisection_on_simple_market() {
        let ps = vec![job(0, 1.0, 0.2), job(1, 2.0, 0.5), job(2, 0.5, 0.1)];
        let idx = ClearingIndex::new(&ps);
        for target in [10.0, 50.0, 150.0, 300.0, 430.0] {
            let a = solve(&ps, target).unwrap();
            let b = idx.clear(target).unwrap();
            assert!(
                (a.price - b.price).abs() < 1e-6 * a.price.max(1.0),
                "target {target}: bisection {} vs closed form {}",
                a.price,
                b.price
            );
            assert!(b.power >= target * (1.0 - 1e-9));
        }
    }

    #[test]
    fn index_error_cases_mirror_solve() {
        let idx = ClearingIndex::new(&[]);
        assert!(matches!(idx.clear(1.0), Err(MarketError::NoParticipants)));
        assert_eq!(idx.clear(0.0).unwrap().price, 0.0);
        let idx = ClearingIndex::new(&[job(0, 1.0, 0.2)]);
        assert!(matches!(
            idx.clear(1e6),
            Err(MarketError::Infeasible { .. })
        ));
    }

    #[test]
    fn index_handles_zero_bids() {
        let ps = vec![job(0, 1.0, 0.0), job(1, 1.0, 0.0)];
        let idx = ClearingIndex::new(&ps);
        let sol = idx.clear(200.0).unwrap();
        assert!(sol.power >= 200.0 * (1.0 - 1e-9));
        assert!(sol.price <= 1e-6);
    }

    #[test]
    fn generic_solve_matches_specialized_for_hyperbolic_supplies() {
        let ps = vec![job(0, 1.0, 0.2), job(1, 2.0, 0.5)];
        let items: Vec<(crate::supply::SupplyFunction, f64)> =
            ps.iter().map(|p| (p.supply, p.watts_per_unit)).collect();
        let a = solve(&ps, 150.0).unwrap();
        let b = solve_supplies(&items, 150.0).unwrap();
        assert!((a.price - b.price).abs() < 1e-9);
        assert!((a.power - b.power).abs() < 1e-6);
    }

    #[test]
    fn generic_solve_clears_linear_supplies() {
        use crate::supply::{LinearSupply, Supply};
        let items = vec![
            (LinearSupply::new(1.0, 1.0).unwrap(), 125.0),
            (LinearSupply::new(1.0, 2.0).unwrap(), 125.0),
        ];
        // At price q: supply = q + q/2 (pre-saturation); want 93.75 W
        // = 0.75 cores → q = 0.5.
        let sol = solve_supplies(&items, 93.75).unwrap();
        assert!((sol.price - 0.5).abs() < 1e-6, "price = {}", sol.price);
        assert!((items[0].0.supply(sol.price) - 0.5).abs() < 1e-6);
        // Errors mirror the specialized solver.
        assert!(matches!(
            solve_supplies(&items, 1e9),
            Err(MarketError::Infeasible { .. })
        ));
        let empty: Vec<(LinearSupply, f64)> = Vec::new();
        assert!(matches!(
            solve_supplies(&empty, 1.0),
            Err(MarketError::NoParticipants)
        ));
        assert_eq!(solve_supplies(&items, 0.0).unwrap().price, 0.0);
    }

    proptest! {
        /// The closed-form index clears identically to bisection on random
        /// markets.
        #[test]
        fn index_equals_bisection(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
            frac in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let target = frac * attainable_power(&ps);
            prop_assume!(target > 0.0);
            let a = solve(&ps, target).unwrap();
            let b = ClearingIndex::new(&ps).clear(target).unwrap();
            prop_assert!(
                (a.price - b.price).abs() < 1e-6 * a.price.max(1.0),
                "bisection {} vs closed form {}", a.price, b.price
            );
            prop_assert!(b.power >= target * (1.0 - 1e-6));
        }

        /// The clearing price is minimal: slightly below it the market
        /// under-delivers; at it, the target is met.
        #[test]
        fn clearing_price_is_minimal(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..20),
            frac in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let target = frac * attainable_power(&ps);
            prop_assume!(target > 0.0);
            let sol = solve(&ps, target).unwrap();
            prop_assert!(sol.power >= target * (1.0 - 1e-6));
            let below = aggregate_power(&ps, sol.price * (1.0 - 1e-6));
            prop_assert!(below <= target * (1.0 + 1e-6),
                "price not minimal: below={below} target={target}");
        }

        /// Feasible targets are met from above but not overshot: the
        /// aggregate supply is continuous in the price, so bisection lands
        /// within a tight band around the target.
        #[test]
        fn cleared_power_meets_target_within_tolerance(
            bids in proptest::collection::vec((0.01f64..2.0, 0.01f64..1.0), 1..30),
            frac in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let target = frac * attainable_power(&ps);
            prop_assume!(target > 0.0);
            let sol = solve(&ps, target).unwrap();
            prop_assert!(
                sol.power >= target * (1.0 - 1e-6),
                "under-delivered: {} < {target}", sol.power
            );
            prop_assert!(
                sol.power <= target * 1.01 + 1e-3,
                "overshot the minimal clearing: {} vs {target}", sol.power
            );
        }

        /// The clearing price and the cleared power are monotone in the
        /// target: shedding more watts can never get cheaper.
        #[test]
        fn clearing_is_monotone_in_target(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
            frac_lo in 0.05f64..0.95,
            frac_hi in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let attainable = attainable_power(&ps);
            let (lo, hi) = if frac_lo <= frac_hi {
                (frac_lo, frac_hi)
            } else {
                (frac_hi, frac_lo)
            };
            let (t_lo, t_hi) = (lo * attainable, hi * attainable);
            prop_assume!(t_lo > 0.0);
            let a = solve(&ps, t_lo).unwrap();
            let b = solve(&ps, t_hi).unwrap();
            prop_assert!(
                a.price <= b.price * (1.0 + 1e-9) + 1e-9,
                "price not monotone: {} @ {t_lo} vs {} @ {t_hi}", a.price, b.price
            );
            prop_assert!(
                a.power <= b.power + 1e-6,
                "power not monotone: {} vs {}", a.power, b.power
            );
        }

        /// Best-effort clearing never pays above the price ceiling and,
        /// for infeasible targets, extracts (essentially) every Δ.
        #[test]
        fn best_effort_is_bounded_by_the_ceiling(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let attainable = attainable_power(&ps);
            let max_activation = ps
                .iter()
                .filter_map(|p| p.supply.activation_price())
                .fold(0.0f64, f64::max);
            let ceiling = (1000.0 * max_activation).max(1.0);
            let sol = clear_best_effort(&ps, attainable * 2.0);
            prop_assert!(sol.price <= ceiling * (1.0 + 1e-12));
            prop_assert!(
                sol.power >= attainable * (1.0 - 2e-3),
                "ceiling must extract ~all supply: {} of {attainable}", sol.power
            );
        }
    }
}
