//! The MClr (Market Clearing) problem of Eqns. (4)–(5): find the cheapest
//! price at which the aggregate supplied power reduction meets the target.
//!
//! Because MClr has a single optimization variable `q` and the aggregate
//! payoff is monotone in `q`, the optimum is
//! `q' = min { q : Σ_m P(δ_m(q)) = P(t) − C }`, solvable by bisection
//! (Section III-D, "Scalability"). This module implements exactly that.

use crate::error::MarketError;
use crate::numeric;
use crate::participant::Participant;
use crate::units::{Price, Watts};

/// Absolute floor for the clearing-price search bracket.
const PRICE_EPS: f64 = 1e-12;

/// Result of solving MClr.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MclrSolution {
    /// The market clearing price `q'`.
    pub price: Price,
    /// Aggregate power reduction supplied at `q'`.
    pub power: Watts,
}

impl MclrSolution {
    const ZERO: Self = Self {
        price: Price::ZERO,
        power: Watts::ZERO,
    };
}

/// Aggregate power reduction supplied by `participants` at `price`.
#[must_use]
pub fn aggregate_power(participants: &[Participant], price: Price) -> Watts {
    participants.iter().map(|p| p.power_at(price)).sum()
}

/// Maximum aggregate power reduction attainable (every job at its `Δ`).
#[must_use]
pub fn attainable_power(participants: &[Participant]) -> Watts {
    participants.iter().map(Participant::max_power).sum()
}

/// Solves MClr: the minimum price `q'` such that the aggregate supplied
/// power reduction is at least `target`.
///
/// A non-positive target clears trivially at price 0 with no reductions.
///
/// ```
/// use mpr_core::mclr;
/// use mpr_core::{Participant, SupplyFunction, Watts};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// // δ(q) = 1 − 0.5/q at 125 W per unit: 62.5 W requires δ = 0.5 → q' = 1.
/// let ps = [Participant::new(0, SupplyFunction::new(1.0, 0.5)?, Watts::new(125.0))];
/// let sol = mclr::solve(&ps, Watts::new(62.5))?;
/// assert!((sol.price.get() - 1.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`MarketError::NoParticipants`] if the market is empty and the target
///   is positive.
/// * [`MarketError::Infeasible`] if even the maximal supplies fall short of
///   the target; callers that prefer best-effort capping should catch this
///   and use [`clear_best_effort`].
pub fn solve(participants: &[Participant], target: Watts) -> Result<MclrSolution, MarketError> {
    if target <= Watts::ZERO {
        return Ok(MclrSolution::ZERO);
    }
    if participants.is_empty() {
        return Err(MarketError::NoParticipants);
    }
    let attainable = attainable_power(participants);
    // Tolerance: supplies only reach Δ in the limit q → ∞, so accept targets
    // within a hair of the attainable maximum and clear them at a large price.
    if attainable < target * (1.0 - 1e-9) {
        return Err(MarketError::Infeasible {
            target_watts: target.get(),
            attainable_watts: attainable.get(),
        });
    }

    // Find an upper bracket by doubling from the largest activation price.
    let mut hi = participants
        .iter()
        .filter_map(|p| p.supply.activation_price())
        .fold(PRICE_EPS, |m, a| m.max(a.get()))
        .max(PRICE_EPS)
        * 2.0;
    let mut doubles = 0;
    while aggregate_power(participants, Price::new(hi)) < target {
        hi *= 2.0;
        doubles += 1;
        if doubles > 2000 {
            // Target equals the attainable supremum: every participant must
            // deliver (numerically) all of Δ.
            return Ok(MclrSolution {
                price: Price::new(hi),
                power: aggregate_power(participants, Price::new(hi)),
            });
        }
    }

    let q = numeric::bisect_threshold(PRICE_EPS, hi, target.get(), 1e-12, |q| {
        aggregate_power(participants, Price::new(q)).get()
    })?;
    Ok(MclrSolution {
        price: Price::new(q),
        power: aggregate_power(participants, Price::new(q)),
    })
}

/// Precomputed index over a fixed set of bids for *exact, closed-form*
/// market clearing in `O(log M)` per overload.
///
/// With hyperbolic supplies the aggregate power reduction over the set of
/// participants active at price `q` (those with activation price
/// `b_i/Δ_i ≤ q`) is
///
/// ```text
/// P(q) = Σ wᵢ·(Δᵢ − bᵢ/q) = A_k − B_k / q
/// ```
///
/// where `A_k = Σ wᵢΔᵢ` and `B_k = Σ wᵢbᵢ` over the `k` cheapest
/// activation prices. Sorting once by activation price and keeping prefix
/// sums of `A` and `B` turns clearing into a binary search over segments
/// plus one division — no bisection, no tolerance. This is how a production
/// deployment would clear MPR-STAT markets at 100 kHz.
#[derive(Debug, Clone)]
pub struct ClearingIndex {
    /// Activation prices, ascending.
    activations: Vec<f64>,
    /// Prefix sums of `w·Δ` in activation order (entry `k` covers the
    /// first `k` participants).
    prefix_a: Vec<f64>,
    /// Prefix sums of `w·b` in activation order.
    prefix_b: Vec<f64>,
}

impl ClearingIndex {
    /// Builds the index over a set of participants.
    #[must_use]
    pub fn new(participants: &[Participant]) -> Self {
        // Sort (activation, participant) pairs directly — no index
        // round-trip, no NaN-hostile comparator (`new` validated the bids,
        // and a missing activation maps to +∞ which `total_cmp` orders
        // last).
        let mut entries: Vec<(f64, &Participant)> = participants
            .iter()
            .map(|p| {
                let act = p
                    .supply
                    .activation_price()
                    .map_or(f64::INFINITY, Price::get);
                (act, p)
            })
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut activations = Vec::with_capacity(entries.len());
        let mut prefix_a = Vec::with_capacity(entries.len() + 1);
        let mut prefix_b = Vec::with_capacity(entries.len() + 1);
        let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
        prefix_a.push(sum_a);
        prefix_b.push(sum_b);
        for (act, p) in entries {
            activations.push(act);
            sum_a += p.watts_per_unit * p.supply.delta_max();
            sum_b += p.watts_per_unit * p.supply.bid();
            prefix_a.push(sum_a);
            prefix_b.push(sum_b);
        }
        Self {
            activations,
            prefix_a,
            prefix_b,
        }
    }

    /// Aggregate power reduction at price `q` (closed form).
    #[must_use]
    pub fn power_at(&self, price: Price) -> Watts {
        let q = price.get();
        if q <= 0.0 {
            return Watts::ZERO;
        }
        // Number of participants with activation price <= q.
        let k = self.activations.partition_point(|&a| a <= q);
        let a = self.prefix_a.get(k).copied().unwrap_or(0.0);
        let b = self.prefix_b.get(k).copied().unwrap_or(0.0);
        Watts::new((a - b / q).max(0.0))
    }

    /// Solves MClr exactly: the minimal price meeting `target`.
    ///
    /// # Errors
    ///
    /// Mirrors [`solve`]: [`MarketError::NoParticipants`] and
    /// [`MarketError::Infeasible`].
    pub fn clear(&self, target: Watts) -> Result<MclrSolution, MarketError> {
        if target <= Watts::ZERO {
            return Ok(MclrSolution::ZERO);
        }
        let n = self.activations.len();
        if n == 0 {
            return Err(MarketError::NoParticipants);
        }
        let target_watts = target.get();
        let attainable = self.prefix_a.get(n).copied().unwrap_or(0.0);
        if attainable < target_watts * (1.0 - 1e-9) {
            return Err(MarketError::Infeasible {
                target_watts,
                attainable_watts: attainable,
            });
        }
        // Binary search for the first segment whose right-endpoint power
        // meets the target. Segment k spans [activations[k-1],
        // activations[k]) with k participants active; the final segment is
        // unbounded above.
        let segment_end_power = |k: usize| -> f64 {
            // Just below activations[k], k participants are active.
            match self.activations.get(k) {
                None => f64::INFINITY,
                Some(&q) => {
                    let a = self.prefix_a.get(k).copied().unwrap_or(0.0);
                    let b = self.prefix_b.get(k).copied().unwrap_or(0.0);
                    a - b / q
                }
            }
        };
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if segment_end_power(mid + 1) >= target_watts {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        // Within segment `lo` (participants 0..=lo active): solve
        // A − B/q = target → q = B / (A − target).
        let k = lo + 1;
        let a = self.prefix_a.get(k).copied().unwrap_or(0.0);
        let b = self.prefix_b.get(k).copied().unwrap_or(0.0);
        let activation_lo = self.activations.get(lo).copied().unwrap_or(0.0);
        let price = if a > target_watts {
            (b / (a - target_watts)).max(activation_lo).max(PRICE_EPS)
        } else if b <= 0.0 {
            // Zero-bid segment (prefix sums are non-negative): full supply
            // at any price past activation.
            activation_lo.max(PRICE_EPS)
        } else {
            // Target only attainable in the limit within this (final)
            // segment: fall back to a large price.
            (b / (a * 1e-9).max(f64::MIN_POSITIVE)).max(activation_lo)
        };
        let price = Price::new(price);
        Ok(MclrSolution {
            price,
            power: self.power_at(price),
        })
    }
}

/// Generic MClr over arbitrary [`Supply`](crate::supply::Supply) curves —
/// `items` pairs each curve with its watts-per-unit conversion. Used by the
/// supply-function ablation to clear linear-supply markets with the same
/// bisection machinery.
///
/// # Errors
///
/// Same contract as [`solve`].
pub fn solve_supplies<S: crate::supply::Supply>(
    items: &[(S, f64)],
    target: Watts,
) -> Result<MclrSolution, MarketError> {
    if target <= Watts::ZERO {
        return Ok(MclrSolution::ZERO);
    }
    if items.is_empty() {
        return Err(MarketError::NoParticipants);
    }
    let target_watts = target.get();
    let power_at = |q: f64| -> f64 { items.iter().map(|(s, w)| s.supply(q) * w).sum() };
    let attainable: f64 = items.iter().map(|(s, w)| s.delta_max() * w).sum();
    if attainable < target_watts * (1.0 - 1e-9) {
        return Err(MarketError::Infeasible {
            target_watts,
            attainable_watts: attainable,
        });
    }
    let mut hi = 1.0;
    let mut doubles = 0;
    while power_at(hi) < target_watts {
        hi *= 2.0;
        doubles += 1;
        if doubles > 2000 {
            break;
        }
    }
    let q = numeric::bisect_threshold(PRICE_EPS, hi, target_watts, 1e-12, power_at)?;
    Ok(MclrSolution {
        price: Price::new(q),
        power: Watts::new(power_at(q)),
    })
}

/// Factor applied to the highest activation price to form the manager's
/// price ceiling in best-effort clearings. At the ceiling every supply is
/// within 0.1 % of its Δ, so raising the price further buys (almost)
/// nothing while the payoff `q·δ` grows without bound.
const PRICE_CEILING_FACTOR: f64 = 1000.0;

/// Best-effort variant of [`solve`] with a price ceiling: when the target
/// is infeasible — or only reachable at an absurd price because it sits
/// within a hair of the attainable maximum — the market clears at the
/// ceiling (1000× the highest activation price), extracting essentially
/// every participant's Δ. The manager covers any remaining shortfall with
/// direct, market-bypassing power capping (Section III-F, "Malicious
/// users"), which the simulator models as escalation.
#[must_use]
pub fn clear_best_effort(participants: &[Participant], target: Watts) -> MclrSolution {
    let max_activation = participants
        .iter()
        .filter_map(|p| p.supply.activation_price())
        .fold(0.0f64, |m, a| m.max(a.get()));
    let ceiling = Price::new((PRICE_CEILING_FACTOR * max_activation).max(1.0));
    match solve(participants, target) {
        Ok(sol) if sol.price <= ceiling => sol,
        _ => MclrSolution {
            price: ceiling,
            power: aggregate_power(participants, ceiling),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::SupplyFunction;
    use proptest::prelude::*;

    fn job(id: u64, delta: f64, bid: f64) -> Participant {
        Participant::new(
            id,
            SupplyFunction::new(delta, bid).unwrap(),
            Watts::new(125.0),
        )
    }

    fn w(x: f64) -> Watts {
        Watts::new(x)
    }

    #[test]
    fn trivial_target_clears_at_zero() {
        let ps = vec![job(0, 1.0, 0.5)];
        let sol = solve(&ps, w(0.0)).unwrap();
        assert_eq!(sol.price, Price::ZERO);
        assert_eq!(sol.power, Watts::ZERO);
        assert_eq!(solve(&ps, w(-5.0)).unwrap().price, Price::ZERO);
    }

    #[test]
    fn empty_market_with_positive_target_errs() {
        assert_eq!(solve(&[], w(10.0)), Err(MarketError::NoParticipants));
    }

    #[test]
    fn infeasible_target_errs_with_attainable() {
        let ps = vec![job(0, 1.0, 0.1)]; // max 125 W
        match solve(&ps, w(500.0)) {
            Err(MarketError::Infeasible {
                target_watts,
                attainable_watts,
            }) => {
                assert_eq!(target_watts, 500.0);
                assert!((attainable_watts - 125.0).abs() < 1e-9);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn single_job_price_matches_closed_form() {
        // δ(q) = 1 − 0.5/q; want 125·δ = 62.5 → δ = 0.5 → q = 1.0.
        let ps = vec![job(0, 1.0, 0.5)];
        let sol = solve(&ps, w(62.5)).unwrap();
        assert!(
            (sol.price.get() - 1.0).abs() < 1e-6,
            "price = {}",
            sol.price
        );
        assert!(sol.power >= w(62.5) * (1.0 - 1e-9));
    }

    #[test]
    fn cheaper_supplier_activates_first() {
        // Job 1 activates at q = 0.1, job 2 at q = 1.0. A small target should
        // clear below job 2's activation price: only job 1 reduces.
        let ps = vec![job(1, 1.0, 0.1), job(2, 1.0, 1.0)];
        let sol = solve(&ps, w(30.0)).unwrap();
        assert!(sol.price.get() < 1.0);
        assert_eq!(ps[1].supply.supply(sol.price), 0.0);
        assert!(ps[0].supply.supply(sol.price) > 0.0);
    }

    #[test]
    fn near_attainable_target_clears_at_high_price() {
        let ps = vec![job(0, 1.0, 0.5)];
        let attainable = attainable_power(&ps);
        let sol = solve(&ps, attainable * (1.0 - 1e-10)).unwrap();
        assert!(sol.power >= attainable * (1.0 - 1e-6));
    }

    #[test]
    fn best_effort_caps_everyone_when_infeasible() {
        let ps = vec![job(0, 1.0, 0.1), job(1, 2.0, 0.3)];
        let sol = clear_best_effort(&ps, w(1e9));
        let attainable = attainable_power(&ps);
        // The price ceiling extracts every Δ to within 0.1 %.
        assert!(sol.power >= attainable * (1.0 - 2e-3));
        // ...at a bounded price: 1000× the highest activation price.
        assert!(
            sol.price.get() <= 1000.0 * 0.3 + 1e-9,
            "price = {}",
            sol.price
        );
    }

    #[test]
    fn best_effort_caps_absurd_feasible_prices_too() {
        // Target within 1e-12 of the attainable max: the exact clearing
        // price would be astronomical; the ceiling bounds it.
        let ps = vec![job(0, 1.0, 0.5)];
        let attainable = attainable_power(&ps);
        let sol = clear_best_effort(&ps, attainable * (1.0 - 1e-12));
        assert!(sol.price.get() <= 1000.0 * 0.5 + 1e-9);
        assert!(sol.power >= attainable * (1.0 - 2e-3));
    }

    #[test]
    fn best_effort_matches_solve_when_feasible() {
        let ps = vec![job(0, 1.0, 0.5)];
        let a = solve(&ps, w(62.5)).unwrap();
        let b = clear_best_effort(&ps, w(62.5));
        assert!((a.price.get() - b.price.get()).abs() < 1e-12);
    }

    #[test]
    fn zero_bids_clear_at_epsilon_price() {
        let ps = vec![job(0, 1.0, 0.0), job(1, 1.0, 0.0)];
        let sol = solve(&ps, w(200.0)).unwrap();
        assert!(sol.price.get() <= 1e-6, "price = {}", sol.price);
        assert!(sol.power >= w(200.0) * (1.0 - 1e-9));
    }

    #[test]
    fn index_matches_bisection_on_simple_market() {
        let ps = vec![job(0, 1.0, 0.2), job(1, 2.0, 0.5), job(2, 0.5, 0.1)];
        let idx = ClearingIndex::new(&ps);
        for target in [10.0, 50.0, 150.0, 300.0, 430.0] {
            let a = solve(&ps, w(target)).unwrap();
            let b = idx.clear(w(target)).unwrap();
            assert!(
                (a.price.get() - b.price.get()).abs() < 1e-6 * a.price.get().max(1.0),
                "target {target}: bisection {} vs closed form {}",
                a.price,
                b.price
            );
            assert!(b.power >= w(target) * (1.0 - 1e-9));
        }
    }

    #[test]
    fn index_error_cases_mirror_solve() {
        let idx = ClearingIndex::new(&[]);
        assert!(matches!(
            idx.clear(w(1.0)),
            Err(MarketError::NoParticipants)
        ));
        assert_eq!(idx.clear(w(0.0)).unwrap().price, Price::ZERO);
        let idx = ClearingIndex::new(&[job(0, 1.0, 0.2)]);
        assert!(matches!(
            idx.clear(w(1e6)),
            Err(MarketError::Infeasible { .. })
        ));
    }

    #[test]
    fn index_handles_zero_bids() {
        let ps = vec![job(0, 1.0, 0.0), job(1, 1.0, 0.0)];
        let idx = ClearingIndex::new(&ps);
        let sol = idx.clear(w(200.0)).unwrap();
        assert!(sol.power >= w(200.0) * (1.0 - 1e-9));
        assert!(sol.price.get() <= 1e-6);
    }

    #[test]
    fn index_survives_nan_poisoned_activation_order() {
        // A NaN watts_per_unit must not panic the index build (the old
        // `partial_cmp().unwrap()` comparator did); the poisoned entry
        // sorts deterministically via `total_cmp` instead.
        let mut ps = vec![job(0, 1.0, 0.2), job(1, 2.0, 0.5)];
        ps.push(Participant::new(
            2,
            SupplyFunction::new(1.0, 0.3).unwrap(),
            Watts::new(f64::NAN),
        ));
        let idx = ClearingIndex::new(&ps);
        // Clearing still answers (the NaN propagates into the power sums,
        // but building and querying the index is panic-free).
        let _ = idx.clear(w(50.0));
        let _ = idx.power_at(Price::new(1.0));
    }

    #[test]
    fn generic_solve_matches_specialized_for_hyperbolic_supplies() {
        let ps = vec![job(0, 1.0, 0.2), job(1, 2.0, 0.5)];
        let items: Vec<(crate::supply::SupplyFunction, f64)> =
            ps.iter().map(|p| (p.supply, p.watts_per_unit)).collect();
        let a = solve(&ps, w(150.0)).unwrap();
        let b = solve_supplies(&items, w(150.0)).unwrap();
        assert!((a.price.get() - b.price.get()).abs() < 1e-9);
        assert!((a.power.get() - b.power.get()).abs() < 1e-6);
    }

    #[test]
    fn generic_solve_clears_linear_supplies() {
        use crate::supply::{LinearSupply, Supply};
        let items = vec![
            (LinearSupply::new(1.0, 1.0).unwrap(), 125.0),
            (LinearSupply::new(1.0, 2.0).unwrap(), 125.0),
        ];
        // At price q: supply = q + q/2 (pre-saturation); want 93.75 W
        // = 0.75 cores → q = 0.5.
        let sol = solve_supplies(&items, w(93.75)).unwrap();
        assert!(
            (sol.price.get() - 0.5).abs() < 1e-6,
            "price = {}",
            sol.price
        );
        assert!((items[0].0.supply(sol.price.get()) - 0.5).abs() < 1e-6);
        // Errors mirror the specialized solver.
        assert!(matches!(
            solve_supplies(&items, w(1e9)),
            Err(MarketError::Infeasible { .. })
        ));
        let empty: Vec<(LinearSupply, f64)> = Vec::new();
        assert!(matches!(
            solve_supplies(&empty, w(1.0)),
            Err(MarketError::NoParticipants)
        ));
        assert_eq!(solve_supplies(&items, w(0.0)).unwrap().price, Price::ZERO);
    }

    proptest! {
        /// The closed-form index clears identically to bisection on random
        /// markets.
        #[test]
        fn index_equals_bisection(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
            frac in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let target = attainable_power(&ps) * frac;
            prop_assume!(target > Watts::ZERO);
            let a = solve(&ps, target).unwrap();
            let b = ClearingIndex::new(&ps).clear(target).unwrap();
            prop_assert!(
                (a.price.get() - b.price.get()).abs() < 1e-6 * a.price.get().max(1.0),
                "bisection {} vs closed form {}", a.price, b.price
            );
            prop_assert!(b.power >= target * (1.0 - 1e-6));
        }

        /// The clearing price is minimal: slightly below it the market
        /// under-delivers; at it, the target is met.
        #[test]
        fn clearing_price_is_minimal(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..20),
            frac in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let target = attainable_power(&ps) * frac;
            prop_assume!(target > Watts::ZERO);
            let sol = solve(&ps, target).unwrap();
            prop_assert!(sol.power >= target * (1.0 - 1e-6));
            let below = aggregate_power(&ps, sol.price * (1.0 - 1e-6));
            prop_assert!(below <= target * (1.0 + 1e-6),
                "price not minimal: below={below} target={target}");
        }

        /// Feasible targets are met from above but not overshot: the
        /// aggregate supply is continuous in the price, so bisection lands
        /// within a tight band around the target.
        #[test]
        fn cleared_power_meets_target_within_tolerance(
            bids in proptest::collection::vec((0.01f64..2.0, 0.01f64..1.0), 1..30),
            frac in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let target = attainable_power(&ps) * frac;
            prop_assume!(target > Watts::ZERO);
            let sol = solve(&ps, target).unwrap();
            prop_assert!(
                sol.power >= target * (1.0 - 1e-6),
                "under-delivered: {} < {target}", sol.power
            );
            prop_assert!(
                sol.power.get() <= target.get() * 1.01 + 1e-3,
                "overshot the minimal clearing: {} vs {target}", sol.power
            );
        }

        /// The clearing price and the cleared power are monotone in the
        /// target: shedding more watts can never get cheaper.
        #[test]
        fn clearing_is_monotone_in_target(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
            frac_lo in 0.05f64..0.95,
            frac_hi in 0.05f64..0.95,
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let attainable = attainable_power(&ps);
            let (lo, hi) = if frac_lo <= frac_hi {
                (frac_lo, frac_hi)
            } else {
                (frac_hi, frac_lo)
            };
            let (t_lo, t_hi) = (attainable * lo, attainable * hi);
            prop_assume!(t_lo > Watts::ZERO);
            let a = solve(&ps, t_lo).unwrap();
            let b = solve(&ps, t_hi).unwrap();
            prop_assert!(
                a.price.get() <= b.price.get() * (1.0 + 1e-9) + 1e-9,
                "price not monotone: {} @ {t_lo} vs {} @ {t_hi}", a.price, b.price
            );
            prop_assert!(
                a.power.get() <= b.power.get() + 1e-6,
                "power not monotone: {} vs {}", a.power, b.power
            );
        }

        /// Best-effort clearing never pays above the price ceiling and,
        /// for infeasible targets, extracts (essentially) every Δ.
        #[test]
        fn best_effort_is_bounded_by_the_ceiling(
            bids in proptest::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..30),
        ) {
            let ps: Vec<Participant> = bids
                .iter()
                .enumerate()
                .map(|(i, (delta, bid))| job(i as u64, *delta, *bid))
                .collect();
            let attainable = attainable_power(&ps);
            let max_activation = ps
                .iter()
                .filter_map(|p| p.supply.activation_price())
                .fold(0.0f64, |m, a| m.max(a.get()));
            let ceiling = (1000.0 * max_activation).max(1.0);
            let sol = clear_best_effort(&ps, attainable * 2.0);
            prop_assert!(sol.price.get() <= ceiling * (1.0 + 1e-12));
            prop_assert!(
                sol.power >= attainable * (1.0 - 2e-3),
                "ceiling must extract ~all supply: {} of {attainable}", sol.power
            );
        }
    }
}
