//! Small numeric toolbox: bisection root/threshold search, golden-section
//! maximization and grid scans.
//!
//! These routines are deliberately dependency-free and deterministic; every
//! solver in this crate (MClr bisection, water-filling, best-response
//! maximization) is built on them.

use crate::error::MarketError;

/// Relative tolerance used by default across the crate's solvers.
pub const DEFAULT_REL_TOL: f64 = 1e-10;

/// Maximum bisection iterations; 200 halvings shrink any practical bracket
/// below `f64` resolution.
const MAX_BISECT_ITERS: usize = 200;

/// Finds the smallest `x` in `[lo, hi]` such that `f(x) >= threshold`,
/// assuming `f` is non-decreasing.
///
/// This is the primitive behind MClr's clearing-price search: the aggregate
/// power reduction is monotone in the price, so the cheapest feasible price
/// is the threshold point. The threshold is a bare `f64` by design: this
/// toolbox is unit-agnostic (callers bisect over watts, prices, or plain
/// ratios alike).
///
/// # Errors
///
/// Returns [`MarketError::Numeric`] if the bracket is invalid or `f` is not
/// finite at the bracket ends, and [`MarketError::Infeasible`] is *not*
/// raised here — callers must check `f(hi) >= threshold` beforehand; if it
/// is not, `hi` is returned.
pub fn bisect_threshold<F>(
    mut lo: f64,
    mut hi: f64,
    threshold: f64,
    rel_tol: f64,
    f: F,
) -> Result<f64, MarketError>
where
    F: Fn(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(MarketError::Numeric("invalid bisection bracket"));
    }
    if f(lo) >= threshold {
        return Ok(lo);
    }
    if f(hi) < threshold {
        return Ok(hi);
    }
    for _ in 0..MAX_BISECT_ITERS {
        let mid = 0.5 * (lo + hi);
        if f(mid) >= threshold {
            hi = mid;
        } else {
            lo = mid;
        }
        if (hi - lo) <= rel_tol * hi.abs().max(1.0) {
            break;
        }
    }
    Ok(hi)
}

/// Maximizes `f` over `[lo, hi]` with a coarse grid scan followed by
/// golden-section refinement around the best grid cell.
///
/// Returns `(x_best, f(x_best))`. The grid scan makes the routine robust to
/// multi-modal objectives (e.g. net gain under non-convex cost models); the
/// golden-section pass then polishes to ~1e-10 relative accuracy.
///
/// # Errors
///
/// Returns [`MarketError::Numeric`] when the bracket is invalid.
pub fn maximize<F>(lo: f64, hi: f64, grid: usize, f: F) -> Result<(f64, f64), MarketError>
where
    F: Fn(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(MarketError::Numeric("invalid maximization bracket"));
    }
    if hi - lo <= f64::EPSILON * lo.abs().max(1.0) {
        return Ok((lo, f(lo)));
    }
    let n = grid.max(3);
    let step = (hi - lo) / n as f64;
    let mut best_i = 0usize;
    let mut best_v = f64::NEG_INFINITY;
    for i in 0..=n {
        let x = lo + step * i as f64;
        let v = f(x);
        // Ties break toward larger x so bang-bang objectives prefer the
        // full-supply corner, matching the paper's cooperative spirit.
        if v >= best_v {
            best_v = v;
            best_i = i;
        }
    }
    let a = lo + step * best_i.saturating_sub(1) as f64;
    let b = (lo + step * (best_i + 1) as f64).min(hi);
    let (x, v) = golden_section_max(a, b, &f);
    if v >= best_v {
        Ok((x, v))
    } else {
        Ok((lo + step * best_i as f64, best_v))
    }
}

/// Golden-section search for the maximum of a unimodal `f` on `[a, b]`.
fn golden_section_max<F>(mut a: f64, mut b: f64, f: &F) -> (f64, f64)
where
    F: Fn(f64) -> f64,
{
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..120 {
        if (b - a).abs() <= DEFAULT_REL_TOL * b.abs().max(1.0) {
            break;
        }
        if fc >= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

/// Numerically estimates the derivative of `f` at `x` with central
/// differences, falling back to one-sided differences at domain edges.
pub fn derivative<F>(f: &F, x: f64, lo: f64, hi: f64) -> f64
where
    F: Fn(f64) -> f64,
{
    let h = 1e-6 * (hi - lo).abs().max(1e-6);
    let a = (x - h).max(lo);
    let b = (x + h).min(hi);
    if b - a <= 0.0 {
        return 0.0;
    }
    (f(b) - f(a)) / (b - a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_finds_minimal_feasible_point() {
        // f(x) = x^2 is non-decreasing on [0, 10]; smallest x with x^2 >= 9 is 3.
        let x = bisect_threshold(0.0, 10.0, 9.0, 1e-12, |x| x * x).unwrap();
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn threshold_returns_lo_when_already_satisfied() {
        let x = bisect_threshold(2.0, 10.0, 1.0, 1e-12, |x| x).unwrap();
        assert_eq!(x, 2.0);
    }

    #[test]
    fn threshold_returns_hi_when_unreachable() {
        let x = bisect_threshold(0.0, 1.0, 100.0, 1e-12, |x| x).unwrap();
        assert_eq!(x, 1.0);
    }

    #[test]
    fn threshold_rejects_bad_bracket() {
        assert!(bisect_threshold(1.0, 0.0, 0.0, 1e-12, |x| x).is_err());
        assert!(bisect_threshold(f64::NAN, 1.0, 0.0, 1e-12, |x| x).is_err());
    }

    #[test]
    fn maximize_quadratic() {
        // max of -(x-2)^2 + 5 at x = 2.
        let (x, v) = maximize(0.0, 10.0, 64, |x| -(x - 2.0).powi(2) + 5.0).unwrap();
        assert!((x - 2.0).abs() < 1e-6);
        assert!((v - 5.0).abs() < 1e-9);
    }

    #[test]
    fn maximize_prefers_larger_x_on_ties() {
        // Constant function: tie-break should land in the upper region.
        let (x, _) = maximize(0.0, 1.0, 16, |_| 1.0).unwrap();
        assert!(x > 0.8, "x = {x}");
    }

    #[test]
    fn maximize_handles_bang_bang_objective() {
        // Convex objective: maximum at a boundary.
        let (x, _) = maximize(0.0, 1.0, 64, |x| (x - 0.5).powi(2)).unwrap();
        assert!(!(0.01..=0.99).contains(&x));
    }

    #[test]
    fn maximize_degenerate_interval() {
        let (x, v) = maximize(3.0, 3.0, 8, |x| x).unwrap();
        assert_eq!(x, 3.0);
        assert_eq!(v, 3.0);
    }

    #[test]
    fn derivative_of_square() {
        let f = |x: f64| x * x;
        let d = derivative(&f, 2.0, 0.0, 10.0);
        assert!((d - 4.0).abs() < 1e-4);
    }

    #[test]
    fn derivative_at_edges_uses_one_sided() {
        let f = |x: f64| 3.0 * x;
        assert!((derivative(&f, 0.0, 0.0, 1.0) - 3.0).abs() < 1e-4);
        assert!((derivative(&f, 1.0, 0.0, 1.0) - 3.0).abs() < 1e-4);
    }
}
