//! Error types for market construction and clearing.

use core::fmt;

/// Errors produced by MPR market operations.
///
/// Every fallible public function in this crate returns `Result<_,
/// MarketError>`. The type is `Send + Sync + 'static` and implements
/// [`std::error::Error`] so it composes with standard error handling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MarketError {
    /// A supply function or bid parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter (e.g. `"delta_max"`).
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
    /// The market has no participants but a positive reduction was requested.
    NoParticipants,
    /// Even with every participant supplying its maximum reduction, the
    /// power-reduction target cannot be met.
    Infeasible {
        /// Requested power reduction in watts.
        target_watts: f64,
        /// Maximum attainable power reduction in watts.
        attainable_watts: f64,
    },
    /// The interactive market failed to converge within its iteration limit.
    NoConvergence {
        /// Number of iterations performed.
        iterations: usize,
        /// Price reached when the limit was hit.
        last_price: f64,
    },
    /// A numeric routine (bisection, golden-section search) was given an
    /// invalid bracket or produced a non-finite value.
    Numeric(&'static str),
    /// A bidding agent failed to answer a price announcement before the
    /// round deadline (even after the market's bounded retries).
    AgentTimeout {
        /// The job whose agent missed the deadline.
        job: u64,
        /// The 1-based market round in which the deadline expired.
        round: usize,
    },
    /// A bidding agent failed permanently mid-negotiation and will never
    /// answer again.
    AgentCrashed {
        /// The job whose agent crashed.
        job: u64,
        /// The 1-based market round in which the crash was observed.
        round: usize,
    },
    /// The interactive price trajectory oscillated or diverged: the
    /// convergence watchdog observed a full window of rounds with no
    /// contraction in the relative price change.
    Diverged {
        /// Rounds executed before divergence was declared.
        rounds: usize,
        /// Price reached when divergence was declared.
        last_price: f64,
    },
}

impl fmt::Display for MarketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarketError::InvalidParameter {
                name,
                value,
                constraint,
            } => {
                write!(f, "invalid parameter {name}={value}: {constraint}")
            }
            MarketError::NoParticipants => {
                write!(f, "market has no participants but reduction was requested")
            }
            MarketError::Infeasible {
                target_watts,
                attainable_watts,
            } => write!(
                f,
                "power reduction target {target_watts} W exceeds attainable {attainable_watts} W"
            ),
            MarketError::NoConvergence {
                iterations,
                last_price,
            } => write!(
                f,
                "interactive market did not converge after {iterations} iterations (last price {last_price})"
            ),
            MarketError::Numeric(what) => write!(f, "numeric failure: {what}"),
            MarketError::AgentTimeout { job, round } => {
                write!(f, "agent for job {job} timed out in round {round}")
            }
            MarketError::AgentCrashed { job, round } => {
                write!(f, "agent for job {job} crashed in round {round}")
            }
            MarketError::Diverged { rounds, last_price } => write!(
                f,
                "interactive market price diverged after {rounds} rounds (last price {last_price})"
            ),
        }
    }
}

impl std::error::Error for MarketError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<MarketError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MarketError::Infeasible {
            target_watts: 100.0,
            attainable_watts: 50.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("50"));
        assert!(msg.starts_with(char::is_lowercase));

        let e = MarketError::InvalidParameter {
            name: "bid",
            value: -1.0,
            constraint: "must be non-negative",
        };
        assert!(e.to_string().contains("bid"));
    }

    #[test]
    fn errors_compare_equal_by_value() {
        assert_eq!(MarketError::NoParticipants, MarketError::NoParticipants);
        assert_ne!(
            MarketError::NoParticipants,
            MarketError::Numeric("bad bracket")
        );
    }
}
