//! Welfare analysis of market outcomes.
//!
//! The theory behind MPR's supply function (Johari & Tsitsiklis 2011;
//! Section III-B, "Rationale") guarantees bounded efficiency loss at the
//! Nash equilibrium. This module measures exactly that on concrete
//! outcomes: the **efficiency ratio** (optimal cost over realized cost, 1.0
//! = socially optimal) and the surplus split between users and the
//! manager's payoff.

use crate::cost::CostModel;
use crate::error::MarketError;
use crate::market::Clearing;
use crate::opt::{self, OptJob, OptMethod};
use crate::units::Watts;

/// Welfare decomposition of one clearing against the true cost models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Welfare {
    /// Total true cost incurred by the clearing's allocation.
    pub realized_cost: f64,
    /// The socially optimal (OPT) cost for the same delivered power.
    pub optimal_cost: f64,
    /// Manager's total payoff `Σ q'·δ_m` per unit time.
    pub payment: f64,
    /// Users' aggregate net gain (payment − realized cost).
    pub user_surplus: f64,
}

impl Welfare {
    /// Efficiency of the allocation: `optimal_cost / realized_cost`, in
    /// `(0, 1]` (1 means the market found the social optimum). `None` when
    /// no cost was incurred.
    #[must_use]
    pub fn efficiency(&self) -> Option<f64> {
        (self.realized_cost > 1e-12).then(|| (self.optimal_cost / self.realized_cost).min(1.0))
    }

    /// The manager's overpayment relative to the realized cost — what
    /// user-in-the-loop convenience costs her.
    #[must_use]
    pub fn overpayment(&self) -> f64 {
        self.payment - self.realized_cost
    }
}

/// Evaluates a clearing's welfare against the participants' *true* cost
/// models, given in the clearing's allocation order.
///
/// # Errors
///
/// Returns [`MarketError::InvalidParameter`] when the cost-model count
/// disagrees with the allocation count, and propagates OPT solver errors.
pub fn evaluate<C: CostModel>(
    clearing: &Clearing,
    true_costs: &[C],
    watts_per_unit: &[f64],
) -> Result<Welfare, MarketError> {
    if true_costs.len() != clearing.allocations().len() || watts_per_unit.len() != true_costs.len()
    {
        return Err(MarketError::InvalidParameter {
            name: "true_costs",
            value: true_costs.len() as f64,
            constraint: "must match the clearing's allocation count",
        });
    }
    let realized_cost: f64 = clearing
        .allocations()
        .iter()
        .zip(true_costs)
        .map(|(a, c)| c.cost(a.reduction))
        .sum();
    let payment = clearing.total_reward_rate();
    let delivered = clearing.total_power_reduction();
    let optimal_cost = if delivered.get() > 1e-12 {
        let jobs: Vec<OptJob<'_>> = true_costs
            .iter()
            .zip(watts_per_unit)
            .enumerate()
            .map(|(i, (c, &w))| OptJob::new(i as u64, c, Watts::new(w)))
            .collect();
        opt::solve(&jobs, delivered, OptMethod::Auto)?.total_cost
    } else {
        0.0
    };
    Ok(Welfare {
        realized_cost,
        optimal_cost,
        payment,
        user_surplus: payment - realized_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidding::StaticStrategy;
    use crate::cost::QuadraticCost;
    use crate::market::interactive::{InteractiveConfig, InteractiveMarket, NetGainAgent};
    use crate::market::static_market::StaticMarket;
    use crate::participant::Participant;

    fn costs() -> Vec<QuadraticCost> {
        [1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&a| QuadraticCost::new(a, 1.0))
            .collect()
    }

    #[test]
    fn interactive_market_is_near_optimal() {
        let cs = costs();
        let agents: Vec<Box<dyn crate::market::interactive::BiddingAgent>> = cs
            .iter()
            .enumerate()
            .map(|(i, c)| Box::new(NetGainAgent::new(i as u64, *c, Watts::new(125.0))) as _)
            .collect();
        let mut m = InteractiveMarket::new(agents, InteractiveConfig::default());
        let out = m.clear(Watts::new(250.0)).unwrap();
        let w = vec![125.0; cs.len()];
        let welfare = evaluate(&out.clearing, &cs, &w).unwrap();
        let eff = welfare.efficiency().unwrap();
        assert!(eff > 0.9, "MPR-INT efficiency {eff} should be near 1");
        assert!(welfare.user_surplus >= -1e-9, "users never lose");
    }

    #[test]
    fn static_market_efficiency_is_lower_but_positive() {
        let cs = costs();
        let market: StaticMarket = cs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                Participant::new(
                    i as u64,
                    StaticStrategy::Cooperative.supply_for(c).unwrap(),
                    Watts::new(125.0),
                )
            })
            .collect();
        let clearing = market.clear(Watts::new(250.0)).unwrap();
        let w = vec![125.0; cs.len()];
        let welfare = evaluate(&clearing, &cs, &w).unwrap();
        let eff = welfare.efficiency().unwrap();
        assert!(eff > 0.3 && eff <= 1.0, "efficiency {eff}");
        assert!(welfare.payment >= welfare.realized_cost - 1e-9);
        assert!(welfare.overpayment() >= -1e-9);
    }

    #[test]
    fn mismatched_lengths_error() {
        let cs = costs();
        let market: StaticMarket = cs
            .iter()
            .enumerate()
            .map(|(i, c)| {
                Participant::new(
                    i as u64,
                    StaticStrategy::Cooperative.supply_for(c).unwrap(),
                    Watts::new(125.0),
                )
            })
            .collect();
        let clearing = market.clear(Watts::new(100.0)).unwrap();
        let err = evaluate(&clearing, &cs[..2], &[125.0, 125.0]).unwrap_err();
        assert!(matches!(err, MarketError::InvalidParameter { .. }));
    }

    #[test]
    fn empty_clearing_has_no_efficiency() {
        let clearing = Clearing::new(crate::units::Price::ZERO, Watts::ZERO, Vec::new(), 1);
        let welfare = evaluate::<QuadraticCost>(&clearing, &[], &[]).unwrap();
        assert_eq!(welfare.efficiency(), None);
        assert_eq!(welfare.user_surplus, 0.0);
    }
}
