//! Supply curves: the paper's parameterized supply function of Eqn. (3),
//! `δ(q) = [Δ − b/q]⁺`, plus the linear alternative it is contrasted with.

use crate::error::MarketError;
use crate::units::Price;

/// A price-to-supply curve: how much resource reduction a participant
/// offers at a unit price. Implemented by the paper's hyperbolic
/// [`SupplyFunction`] and by [`LinearSupply`]; generic market clearing
/// ([`crate::mclr::solve_supplies`]) works over any implementation that is
/// non-decreasing in the price.
pub trait Supply {
    /// Resource reduction supplied at unit price `price`.
    fn supply(&self, price: f64) -> f64;

    /// The supply's saturation level `Δ`.
    fn delta_max(&self) -> f64;
}

/// A user's supply of resource reduction as a function of the unit price.
///
/// For a job `m` the user provides two parameters (Section III-B):
///
/// * `Δ` ([`delta_max`](Self::delta_max)) — the maximum resource reduction
///   the job can tolerate, dictated by the application's behaviour (e.g.
///   `Δ = 0.7` cores per core for XSBench);
/// * `b` ([`bid`](Self::bid)) — the bidding parameter expressing the user's
///   affinity for reduction: larger bids demand higher prices before
///   supplying the same reduction.
///
/// The supplied reduction at price `q > 0` is `δ(q) = max(0, Δ − b/q)`;
/// the `[·]⁺` clamp guarantees no job is ever asked to *increase* its
/// resources.
///
/// ```
/// use mpr_core::{Price, SupplyFunction};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// let s = SupplyFunction::new(0.7, 0.1)?;
/// assert_eq!(s.supply(Price::ZERO), 0.0);    // free reductions are not supplied
/// assert!((s.supply(Price::new(0.2)) - 0.2).abs() < 1e-12);
/// assert!((s.supply(Price::new(f64::INFINITY)) - 0.7).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SupplyFunction {
    delta_max: f64,
    bid: f64,
}

impl SupplyFunction {
    /// Creates a supply function with maximum reduction `delta_max` and
    /// bidding parameter `bid`.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidParameter`] when `delta_max` is not a
    /// non-negative finite number or `bid` is not a non-negative finite
    /// number. (`bid = 0` is legal: it supplies `Δ` at any positive price.)
    pub fn new(delta_max: f64, bid: f64) -> Result<Self, MarketError> {
        if !delta_max.is_finite() || delta_max < 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "delta_max",
                value: delta_max,
                constraint: "must be finite and >= 0",
            });
        }
        if !bid.is_finite() || bid < 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "bid",
                value: bid,
                constraint: "must be finite and >= 0",
            });
        }
        Ok(Self { delta_max, bid })
    }

    /// The maximum resource reduction `Δ` this supply can ever provide.
    #[must_use]
    pub fn delta_max(&self) -> f64 {
        self.delta_max
    }

    /// The bidding parameter `b`.
    #[must_use]
    pub fn bid(&self) -> f64 {
        self.bid
    }

    /// Returns a copy with the bidding parameter replaced — used by
    /// interactive-market agents that re-bid every round.
    #[must_use]
    pub fn with_bid(&self, bid: f64) -> Self {
        Self {
            delta_max: self.delta_max,
            bid: bid.max(0.0),
        }
    }

    /// Supplied resource reduction `δ(q) = [Δ − b/q]⁺` at unit price `q`.
    ///
    /// At `q <= 0` the supply is zero (no reduction is given away for free),
    /// except for the degenerate `b = 0` bid which supplies `Δ` at any
    /// positive price.
    #[must_use]
    pub fn supply(&self, price: Price) -> f64 {
        let q = price.get();
        if q <= 0.0 {
            return 0.0;
        }
        (self.delta_max - self.bid / q).max(0.0)
    }

    /// The price at which this supply starts to be positive: `b / Δ`.
    ///
    /// Returns `None` for the degenerate `Δ = 0` supply which never
    /// activates.
    #[must_use]
    pub fn activation_price(&self) -> Option<Price> {
        if self.delta_max <= 0.0 {
            None
        } else {
            Some(Price::new(self.bid / self.delta_max))
        }
    }

    /// Inverse of the supply function: the minimum price at which at least
    /// `delta` is supplied, or `None` when `delta > Δ` (never supplied).
    ///
    /// For `delta <= 0` this is the activation price.
    #[must_use]
    pub fn price_for(&self, delta: f64) -> Option<Price> {
        if delta > self.delta_max {
            return None;
        }
        if self.bid <= 0.0 {
            // Any positive price supplies Δ (`new` validated `b >= 0`).
            return Some(Price::ZERO);
        }
        let remaining = self.delta_max - delta.max(0.0);
        if remaining <= 0.0 {
            // Exactly Δ requested: only reached in the limit q → ∞.
            return if delta <= self.delta_max {
                Some(Price::new(f64::INFINITY))
            } else {
                None
            };
        }
        Some(Price::new(self.bid / remaining))
    }
}

impl Supply for SupplyFunction {
    fn supply(&self, price: f64) -> f64 {
        SupplyFunction::supply(self, Price::new(price))
    }
    fn delta_max(&self) -> f64 {
        SupplyFunction::delta_max(self)
    }
}

/// The linear supply function `δ(q) = min(q/β, Δ)` of Li et al. ("Demand
/// response using linear supply function bidding"), the form the paper's
/// Section III-B contrasts its choice against: it lacks the hyperbolic
/// curve's diminishing-returns shape, so it under-prices shallow
/// reductions of convex-cost users.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearSupply {
    delta_max: f64,
    beta: f64,
}

impl LinearSupply {
    /// Creates a linear supply with slope `1/beta` saturating at
    /// `delta_max`.
    ///
    /// # Errors
    ///
    /// Returns [`MarketError::InvalidParameter`] when `delta_max` is not a
    /// non-negative finite number or `beta` is not positive and finite.
    pub fn new(delta_max: f64, beta: f64) -> Result<Self, MarketError> {
        if !delta_max.is_finite() || delta_max < 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "delta_max",
                value: delta_max,
                constraint: "must be finite and >= 0",
            });
        }
        if !beta.is_finite() || beta <= 0.0 {
            return Err(MarketError::InvalidParameter {
                name: "beta",
                value: beta,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { delta_max, beta })
    }

    /// The price coefficient `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Supply for LinearSupply {
    fn supply(&self, price: f64) -> f64 {
        (price.max(0.0) / self.beta).min(self.delta_max)
    }
    fn delta_max(&self) -> f64 {
        self.delta_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_supply_shape() {
        let s = LinearSupply::new(0.7, 2.0).unwrap();
        assert_eq!(Supply::supply(&s, 0.0), 0.0);
        assert!((Supply::supply(&s, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(Supply::supply(&s, 100.0), 0.7);
        assert_eq!(Supply::delta_max(&s), 0.7);
        assert_eq!(s.beta(), 2.0);
        assert_eq!(Supply::supply(&s, -1.0), 0.0);
    }

    #[test]
    fn linear_supply_validation() {
        assert!(LinearSupply::new(-1.0, 1.0).is_err());
        assert!(LinearSupply::new(1.0, 0.0).is_err());
        assert!(LinearSupply::new(1.0, f64::NAN).is_err());
    }

    #[test]
    fn hyperbolic_implements_supply_trait() {
        let s = SupplyFunction::new(0.7, 0.14).unwrap();
        let dynamic: &dyn Supply = &s;
        assert!((dynamic.supply(0.4) - (0.7 - 0.14 / 0.4)).abs() < 1e-12);
        assert_eq!(dynamic.delta_max(), 0.7);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(SupplyFunction::new(-1.0, 0.1).is_err());
        assert!(SupplyFunction::new(f64::NAN, 0.1).is_err());
        assert!(SupplyFunction::new(0.7, -0.1).is_err());
        assert!(SupplyFunction::new(0.7, f64::INFINITY).is_err());
        assert!(SupplyFunction::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn supply_matches_paper_formula() {
        let s = SupplyFunction::new(0.7, 0.14).unwrap();
        // At the activation price the supply is exactly zero.
        let act = s.activation_price().unwrap();
        assert!((act.get() - 0.2).abs() < 1e-12);
        assert_eq!(s.supply(act), 0.0);
        // Above it, Δ − b/q.
        assert!((s.supply(Price::new(0.4)) - (0.7 - 0.14 / 0.4)).abs() < 1e-12);
    }

    #[test]
    fn zero_bid_supplies_everything_at_any_positive_price() {
        let s = SupplyFunction::new(0.5, 0.0).unwrap();
        assert_eq!(s.supply(Price::new(1e-9)), 0.5);
        assert_eq!(s.supply(Price::ZERO), 0.0);
        assert_eq!(s.price_for(0.5), Some(Price::ZERO));
    }

    #[test]
    fn price_for_is_inverse_of_supply() {
        let s = SupplyFunction::new(0.7, 0.1).unwrap();
        for delta in [0.0, 0.1, 0.3, 0.699] {
            let q = s.price_for(delta).unwrap();
            assert!(
                (s.supply(q) - delta).abs() < 1e-9,
                "delta={delta} q={q} supply={}",
                s.supply(q)
            );
        }
        assert_eq!(s.price_for(0.71), None);
        assert_eq!(s.price_for(0.7), Some(Price::new(f64::INFINITY)));
    }

    #[test]
    fn with_bid_clamps_negative_to_zero() {
        let s = SupplyFunction::new(0.7, 0.1).unwrap().with_bid(-5.0);
        assert_eq!(s.bid(), 0.0);
    }

    #[test]
    fn zero_delta_never_activates() {
        let s = SupplyFunction::new(0.0, 0.3).unwrap();
        assert_eq!(s.activation_price(), None);
        assert_eq!(s.supply(Price::new(1e12)), 0.0);
    }

    proptest! {
        /// Supply is non-negative, bounded by Δ, and non-decreasing in price.
        #[test]
        fn supply_is_monotone_and_bounded(
            delta_max in 0.0f64..10.0,
            bid in 0.0f64..10.0,
            q1 in 0.0f64..100.0,
            dq in 0.0f64..100.0,
        ) {
            let s = SupplyFunction::new(delta_max, bid).unwrap();
            let a = s.supply(Price::new(q1));
            let b = s.supply(Price::new(q1 + dq));
            prop_assert!(a >= 0.0);
            prop_assert!(b <= delta_max + 1e-12);
            prop_assert!(b + 1e-12 >= a, "supply must be non-decreasing: {a} then {b}");
        }

        /// A higher bid never supplies more at the same price (Fig. 2).
        #[test]
        fn higher_bid_supplies_less(
            delta_max in 0.1f64..10.0,
            bid in 0.0f64..5.0,
            extra in 0.001f64..5.0,
            q in 0.001f64..50.0,
        ) {
            let low = SupplyFunction::new(delta_max, bid).unwrap();
            let high = SupplyFunction::new(delta_max, bid + extra).unwrap();
            prop_assert!(high.supply(Price::new(q)) <= low.supply(Price::new(q)) + 1e-12);
        }
    }
}
