//! Market participants: one active job offering resource reduction.

use crate::supply::SupplyFunction;
use crate::units::{Price, Watts};

/// Identifier of a job participating in the market.
pub type JobId = u64;

/// One active job taking part in an MPR market instance.
///
/// Besides its [`SupplyFunction`], a participant carries
/// `watts_per_unit` — the power saved per unit of resource reduction.
/// The HPC manager knows this conversion reliably from the adopted power
/// capping technique (Section III-A: "determining power reduction for
/// resource reduction is straightforward"); in the paper's power model it is
/// simply the per-core dynamic power, 125 W.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Participant {
    /// The job this participant represents.
    pub id: JobId,
    /// The job's current supply function.
    pub supply: SupplyFunction,
    /// Power reduction (watts) obtained per unit of resource reduction.
    pub watts_per_unit: f64,
}

impl Participant {
    /// Creates a participant for job `id`.
    #[must_use]
    pub fn new(id: JobId, supply: SupplyFunction, watts_per_unit: Watts) -> Self {
        Self {
            id,
            supply,
            watts_per_unit: watts_per_unit.get(),
        }
    }

    /// Power reduction this participant supplies at price `q`.
    #[must_use]
    pub fn power_at(&self, price: Price) -> Watts {
        Watts::new(self.supply.supply(price) * self.watts_per_unit)
    }

    /// Maximum power reduction this participant can ever supply.
    #[must_use]
    pub fn max_power(&self) -> Watts {
        Watts::new(self.supply.delta_max() * self.watts_per_unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_supply_times_conversion() {
        let p = Participant::new(7, SupplyFunction::new(2.0, 0.5).unwrap(), Watts::new(125.0));
        assert_eq!(p.id, 7);
        assert_eq!(p.max_power(), Watts::new(250.0));
        let q = Price::new(1.0);
        assert!((p.power_at(q).get() - (2.0 - 0.5) * 125.0).abs() < 1e-9);
        assert_eq!(p.power_at(Price::ZERO), Watts::ZERO);
    }
}
