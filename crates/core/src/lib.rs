//! # mpr-core — Market-based Power Reduction for oversubscribed HPC systems
//!
//! This crate implements the core contribution of *"Market Mechanism-Based
//! User-in-the-Loop Scalable Power Oversubscription for HPC Systems"*
//! (HPCA 2023): a supply-function bidding market — **MPR** — through which
//! HPC users sell resource reduction of their running jobs to the HPC
//! manager during a power overload, in exchange for core-hour rewards.
//!
//! The building blocks map one-to-one onto the paper:
//!
//! * [`SupplyFunction`] — the parameterized supply `δ(q) = [Δ − b/q]⁺`
//!   (Eqn. 3) through which a user expresses how much resource it is willing
//!   to shed at a given unit price `q`.
//! * [`CostModel`] — the user-perceived cost of performance loss
//!   `C(δ)` (Eqn. 6) with linear, quadratic, logarithmic-fit and power-law
//!   implementations.
//! * [`bidding`] — the user-side strategies: the *cooperative* /
//!   *conservative* / *deficient* static bids of Fig. 4(a) and the net-gain
//!   maximizing best response of Fig. 4(b) (Eqn. 7).
//! * [`StaticMarket`] (MPR-STAT) — one-shot market clearing from bids fixed
//!   at job-submission time, solved by bisection on the **MClr** problem
//!   (Eqns. 4–5).
//! * [`InteractiveMarket`] (MPR-INT) — the iterative price/bid exchange that
//!   converges to a Nash equilibrium with socially optimal cost.
//! * [`opt`] — the centralized **OPT** benchmark (Eqns. 1–2) minimizing total
//!   performance-loss cost subject to the power-reduction constraint.
//! * [`eql`] — the performance-oblivious **EQL** benchmark that slows every
//!   core down uniformly.
//! * [`mechanism`] — the unified [`Mechanism`](mechanism::Mechanism)
//!   interface: every solver above, ported onto one
//!   `clear(&MarketInstance, target) -> Clearing` contract over a shared
//!   structure-of-arrays [`MarketInstance`](mechanism::MarketInstance),
//!   plus the composable
//!   [`FallbackChain`](mechanism::FallbackChain) degradation ladder.
//!
//! # Quick example
//!
//! Clear a static market over three jobs that must jointly shed 500 W:
//!
//! ```
//! use mpr_core::{Participant, StaticMarket, SupplyFunction, Watts};
//!
//! # fn main() -> Result<(), mpr_core::MarketError> {
//! let market = StaticMarket::new(vec![
//!     Participant::new(0, SupplyFunction::new(4.0, 0.8)?, Watts::new(125.0)),
//!     Participant::new(1, SupplyFunction::new(8.0, 0.4)?, Watts::new(125.0)),
//!     Participant::new(2, SupplyFunction::new(2.0, 2.0)?, Watts::new(125.0)),
//! ]);
//! let clearing = market.clear(Watts::new(500.0))?;
//! assert!(clearing.total_power_reduction() >= Watts::new(500.0 * 0.999));
//! for a in clearing.allocations() {
//!     println!("job {} sheds {:.3} cores, reward {:.3} core-hours/h",
//!              a.id, a.reduction, a.reward_rate());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bidding;
pub mod cost;
pub mod eql;
pub mod error;
pub mod market;
pub mod mclr;
pub mod mechanism;
pub mod numeric;
pub mod opt;
pub mod participant;
pub mod supply;
pub mod units;
pub mod vcg;

/// Convenience re-exports for downstream users: `use mpr_core::prelude::*`
/// pulls in everything a typical market integration touches.
pub mod prelude {
    pub use crate::bidding::{best_response, cooperative_bid, net_gain, StaticStrategy};
    pub use crate::cost::{CostModel, LinearCost, PowerLawCost, QuadraticCost, ScaledCost};
    pub use crate::error::MarketError;
    pub use crate::market::faults::{
        ByzantineAgent, ChainLevel, CrashAgent, ResilientConfig, ResilientInteractiveMarket,
        ResilientOutcome, StaleAgent, UnresponsiveAgent,
    };
    pub use crate::market::interactive::{
        is_oscillating, BiddingAgent, InteractiveConfig, InteractiveMarket, NetGainAgent,
    };
    pub use crate::market::static_market::StaticMarket;
    pub use crate::market::transport::{
        NetFaultConfig, PerfectTransport, RetryPolicy, SimNet, Transport, TransportConfig,
        TransportDiagnostics, TransportError,
    };
    pub use crate::market::{Allocation, Clearing};
    pub use crate::mechanism::{
        EqlCappingMechanism, EqlMechanism, FallbackChain, InteractiveMechanism, MarketInstance,
        MclrMechanism, Mechanism, MechanismError, OptMechanism, ParticipantSpec,
        ResilientInteractiveMechanism, TransportedInteractiveMechanism, VcgMechanism,
    };
    pub use crate::participant::Participant;
    pub use crate::supply::{LinearSupply, Supply, SupplyFunction};
    pub use crate::units::{CoreHours, Cores, Price, Watts};
}

pub use cost::{CostModel, LinearCost, LogFitCost, PowerLawCost, QuadraticCost, ScaledCost};
pub use error::MarketError;
pub use market::faults::{
    ByzantineAgent, ChainLevel, ConvergenceWatchdog, CrashAgent, FaultRng, Quarantine,
    ResilientConfig, ResilientInteractiveMarket, ResilientOutcome, StaleAgent, UnresponsiveAgent,
};
pub use market::interactive::{
    is_oscillating, BiddingAgent, InteractiveConfig, InteractiveMarket, NetGainAgent,
};
pub use market::payment::{PaymentKey, PaymentLog};
pub use market::static_market::StaticMarket;
pub use market::transport::{
    NetFaultConfig, PerfectTransport, RetryPolicy, SimNet, Tick, Transport, TransportConfig,
    TransportDiagnostics, TransportError, TransportStats,
};
pub use market::{Allocation, Clearing};
pub use mclr::ClearingIndex;
pub use mechanism::{
    EqlCappingMechanism, EqlMechanism, FallbackChain, InteractiveMechanism, MarketInstance,
    MclrMechanism, Mechanism, MechanismError, OptMechanism, ParticipantSpec,
    ResilientInteractiveMechanism, TransportedInteractiveMechanism, VcgMechanism,
};
pub use opt::OptMethod;
pub use participant::Participant;
pub use supply::{LinearSupply, Supply, SupplyFunction};
pub use units::{CoreHours, Cores, Price, Watts};
