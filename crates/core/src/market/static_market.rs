//! MPR-STAT: the static market (Section III-B).
//!
//! Bidding parameters `(Δ_m, b_m)` are supplied once, at job-submission
//! time. When an overload occurs the HPC manager plugs the already-received
//! bids into MClr, finds the clearing price with a single bisection, and
//! reads off every job's reduction — no user interaction on the critical
//! path, which is what makes MPR-STAT clear 30,000-job markets in well under
//! a second (Fig. 10(a)).

use crate::error::MarketError;
use crate::market::{Allocation, Clearing};
use crate::mclr;
use crate::participant::Participant;
use crate::units::{Price, Watts};

/// The static MPR market over a set of active jobs.
///
/// ```
/// use mpr_core::{Participant, StaticMarket, SupplyFunction, Watts};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// let market = StaticMarket::new(vec![
///     Participant::new(0, SupplyFunction::new(1.0, 0.2)?, Watts::new(125.0)),
///     Participant::new(1, SupplyFunction::new(1.0, 0.8)?, Watts::new(125.0)),
/// ]);
/// let clearing = market.clear(Watts::new(100.0))?;
/// // The cheaper supplier (lower bid) reduces more.
/// let a = clearing.allocations();
/// assert!(a[0].reduction > a[1].reduction);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticMarket {
    participants: Vec<Participant>,
}

impl StaticMarket {
    /// Creates a market over the given active jobs.
    #[must_use]
    pub fn new(participants: Vec<Participant>) -> Self {
        Self { participants }
    }

    /// The registered participants.
    #[must_use]
    pub fn participants(&self) -> &[Participant] {
        &self.participants
    }

    /// Adds a participant (e.g. a newly started job registering its bid).
    pub fn register(&mut self, participant: Participant) {
        self.participants.push(participant);
    }

    /// Removes the participant for a completed job, returning it if present.
    pub fn deregister(&mut self, id: u64) -> Option<Participant> {
        let idx = self.participants.iter().position(|p| p.id == id)?;
        Some(self.participants.swap_remove(idx))
    }

    /// Clears the market for a power-reduction target, returning the
    /// clearing price and per-job reductions.
    ///
    /// # Errors
    ///
    /// Propagates [`MarketError::NoParticipants`] and
    /// [`MarketError::Infeasible`] from the MClr solve.
    pub fn clear(&self, target: Watts) -> Result<Clearing, MarketError> {
        let sol = mclr::solve(&self.participants, target)?;
        Ok(self.allocate(sol, target))
    }

    /// Best-effort clearing: on an infeasible target every job is capped at
    /// its maximum reduction instead of failing (the manager then falls back
    /// to direct capping for the remainder).
    #[must_use]
    pub fn clear_best_effort(&self, target: Watts) -> Clearing {
        if self.participants.is_empty() || target.get() <= 0.0 {
            let clamped = Watts::new(target.get().max(0.0));
            return Clearing::new(Price::ZERO, clamped, Vec::new(), 1);
        }
        let sol = mclr::clear_best_effort(&self.participants, target);
        self.allocate(sol, target)
    }

    fn allocate(&self, sol: mclr::MclrSolution, target: Watts) -> Clearing {
        let allocations = self
            .participants
            .iter()
            .map(|p| {
                let reduction = p.supply.supply(sol.price);
                Allocation {
                    id: p.id,
                    reduction,
                    power_reduction: reduction * p.watts_per_unit,
                    price: sol.price.get(),
                }
            })
            .collect();
        let clamped = Watts::new(target.get().max(0.0));
        Clearing::new(sol.price, clamped, allocations, 1)
    }
}

impl FromIterator<Participant> for StaticMarket {
    fn from_iter<I: IntoIterator<Item = Participant>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<Participant> for StaticMarket {
    fn extend<I: IntoIterator<Item = Participant>>(&mut self, iter: I) {
        self.participants.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::SupplyFunction;
    use proptest::prelude::*;

    fn job(id: u64, delta: f64, bid: f64) -> Participant {
        Participant::new(
            id,
            SupplyFunction::new(delta, bid).unwrap(),
            Watts::new(125.0),
        )
    }

    #[test]
    fn clearing_meets_target() {
        let m = StaticMarket::new(vec![job(0, 1.0, 0.2), job(1, 2.0, 0.5), job(2, 0.5, 0.1)]);
        let c = m.clear(Watts::new(200.0)).unwrap();
        assert!(c.met_target());
        assert!(c.total_power_reduction().get() >= 200.0 * (1.0 - 1e-9));
        assert_eq!(c.allocations().len(), 3);
        assert_eq!(c.iterations(), 1);
    }

    #[test]
    fn lower_bids_reduce_more() {
        let m = StaticMarket::new(vec![job(0, 1.0, 0.1), job(1, 1.0, 0.4)]);
        let c = m.clear(Watts::new(100.0)).unwrap();
        let a = c.allocations();
        assert!(a[0].reduction > a[1].reduction);
    }

    #[test]
    fn register_and_deregister() {
        let mut m = StaticMarket::default();
        m.register(job(0, 1.0, 0.2));
        m.register(job(1, 1.0, 0.3));
        assert_eq!(m.participants().len(), 2);
        let removed = m.deregister(0).unwrap();
        assert_eq!(removed.id, 0);
        assert_eq!(m.participants().len(), 1);
        assert!(m.deregister(42).is_none());
    }

    #[test]
    fn best_effort_on_infeasible_target() {
        let m = StaticMarket::new(vec![job(0, 1.0, 0.2)]);
        let c = m.clear_best_effort(Watts::new(1e6));
        assert!(!c.met_target());
        // The price ceiling extracts Δ to within 0.1 %, at a bounded price.
        assert!(c.total_power_reduction().get() >= 125.0 * (1.0 - 2e-3));
        assert!(c.price().get() <= 1000.0 * 0.2 + 1e-9);
    }

    #[test]
    fn best_effort_empty_market() {
        let m = StaticMarket::default();
        let c = m.clear_best_effort(Watts::new(100.0));
        assert_eq!(c.total_reduction(), 0.0);
        assert!(!c.met_target());
    }

    #[test]
    fn zero_target_is_free() {
        let m = StaticMarket::new(vec![job(0, 1.0, 0.2)]);
        let c = m.clear(Watts::ZERO).unwrap();
        assert_eq!(c.price(), Price::ZERO);
        assert_eq!(c.total_reduction(), 0.0);
        assert!(c.met_target());
    }

    #[test]
    fn collects_from_iterator() {
        let m: StaticMarket = (0..5).map(|i| job(i, 1.0, 0.2)).collect();
        assert_eq!(m.participants().len(), 5);
        let mut m2 = StaticMarket::default();
        m2.extend((0..3).map(|i| job(i, 1.0, 0.1)));
        assert_eq!(m2.participants().len(), 3);
    }

    proptest! {
        /// Every allocation respects its job's Δ and the reward is the
        /// price times the reduction.
        #[test]
        fn allocations_respect_delta_max(
            jobs in proptest::collection::vec((0.1f64..3.0, 0.0f64..1.0), 1..30),
            frac in 0.1f64..0.9,
        ) {
            let ps: Vec<Participant> = jobs
                .iter()
                .enumerate()
                .map(|(i, (d, b))| job(i as u64, *d, *b))
                .collect();
            let attainable: Watts = ps.iter().map(Participant::max_power).sum();
            let m = StaticMarket::new(ps.clone());
            let c = m.clear(attainable * frac).unwrap();
            for (a, p) in c.allocations().iter().zip(&ps) {
                prop_assert!(a.reduction >= 0.0);
                prop_assert!(a.reduction <= p.supply.delta_max() + 1e-9);
                prop_assert!((a.reward_rate() - c.price().get() * a.reduction).abs() < 1e-9);
            }
        }
    }
}
