//! MPR-INT: the interactive market (Section III-B).
//!
//! The HPC manager declares an initial clearing price; users respond with
//! bids maximizing their net gain at that price; the manager re-solves MClr
//! and announces the updated price. The exchange repeats until the price
//! converges — a Nash equilibrium whose allocation matches the social
//! optimum OPT (Johari & Tsitsiklis 2011; Section III-D).

use crate::bidding;
use crate::cost::CostModel;
use crate::error::MarketError;
use crate::market::{Allocation, Clearing};
use crate::mclr;
use crate::participant::{JobId, Participant};
use crate::supply::SupplyFunction;
use crate::units::{Price, Watts};

/// A user-side software agent that answers price announcements with bids.
///
/// The paper notes such agents are "relatively straightforward as they
/// require lightweight computation to find the optimum bid" — see
/// [`NetGainAgent`] for the rational implementation. The trait is public so
/// simulations can inject non-rational or faulty agents.
pub trait BiddingAgent: Send {
    /// The job this agent bids for.
    fn job_id(&self) -> JobId;

    /// Power reduction per unit of resource reduction, in watts.
    fn watts_per_unit(&self) -> f64;

    /// The job's maximum resource reduction `Δ`.
    fn delta_max(&self) -> f64;

    /// Responds to an announced price with a bidding parameter `b`.
    ///
    /// # Errors
    ///
    /// Implementations may fail on invalid prices or internal numeric
    /// problems; the market aborts the round and propagates the error.
    fn respond(&mut self, price: f64) -> Result<f64, MarketError>;
}

impl<T: BiddingAgent + ?Sized> BiddingAgent for Box<T> {
    fn job_id(&self) -> JobId {
        (**self).job_id()
    }
    fn watts_per_unit(&self) -> f64 {
        (**self).watts_per_unit()
    }
    fn delta_max(&self) -> f64 {
        (**self).delta_max()
    }
    fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
        (**self).respond(price)
    }
}

/// The rational agent: best-responds by maximizing the net gain
/// `G = q·δ(q) − C(δ(q))` of Eqn. (7) at every announced price.
#[derive(Debug, Clone)]
pub struct NetGainAgent<C> {
    id: JobId,
    cost: C,
    watts_per_unit: f64,
}

impl<C: CostModel> NetGainAgent<C> {
    /// Creates a rational agent for job `id` with the user's private cost
    /// model.
    #[must_use]
    pub fn new(id: JobId, cost: C, watts_per_unit: Watts) -> Self {
        Self {
            id,
            cost,
            watts_per_unit: watts_per_unit.get(),
        }
    }

    /// The agent's private cost model.
    #[must_use]
    pub fn cost(&self) -> &C {
        &self.cost
    }
}

impl<C: CostModel + Send> BiddingAgent for NetGainAgent<C> {
    fn job_id(&self) -> JobId {
        self.id
    }
    fn watts_per_unit(&self) -> f64 {
        self.watts_per_unit
    }
    fn delta_max(&self) -> f64 {
        self.cost.delta_max()
    }
    fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
        Ok(bidding::best_response(&self.cost, Price::new(price))?.bid)
    }
}

/// Tuning knobs for the interactive market.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractiveConfig {
    /// Price announced in the first round, `q'_0`.
    pub initial_price: f64,
    /// Convergence threshold: relative change in clearing price between
    /// consecutive rounds below which the market is considered cleared.
    pub tolerance: f64,
    /// Hard cap on rounds; the manager takes the last price as clearing
    /// price when hit (the paper's fixed-timeout safeguard).
    pub max_iterations: usize,
    /// Damping `γ ∈ (0, 1]` applied to price updates:
    /// `q_{k+1} = (1−γ)·q_k + γ·q_solved`. `1.0` is the undamped exchange;
    /// smaller values stabilize bang-bang best responses under non-convex
    /// cost models.
    pub damping: f64,
    /// Trailing window (in price deltas) inspected by [`is_oscillating`]
    /// when the round cap fires: the cap-time price is only trusted if the
    /// last `oscillation_window` deltas do **not** form a sign-alternating
    /// above-tolerance oscillation.
    pub oscillation_window: usize,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        Self {
            initial_price: 0.5,
            tolerance: 1e-6,
            max_iterations: 100,
            damping: 1.0,
            oscillation_window: 6,
        }
    }
}

/// Whether the tail of a price trace is *oscillating* rather than settling:
/// over the last `window` consecutive deltas, every relative change exceeds
/// `rel_tolerance` **and** the deltas strictly alternate in sign.
///
/// This distinguishes a limit cycle (e.g. bang-bang best responses flipping
/// between two prices) from slow monotone convergence: a manager hitting its
/// round cap may honestly take the last announced price in the second case,
/// but in the first case that price is an arbitrary point of the cycle and
/// the clearing should be rejected instead. Returns `false` whenever the
/// trace is shorter than `window + 1` points or `window < 2`.
#[must_use]
pub fn is_oscillating(trace: &[f64], rel_tolerance: f64, window: usize) -> bool {
    if window < 2 || trace.len() < window + 1 {
        return false;
    }
    let tail = trace.split_at(trace.len() - (window + 1)).1;
    let mut prev_delta: Option<f64> = None;
    for pair in tail.windows(2) {
        let (Some(a), Some(b)) = (pair.first(), pair.get(1)) else {
            return false;
        };
        let delta = b - a;
        let rel = delta.abs() / a.abs().max(1e-9);
        if !rel.is_finite() || rel <= rel_tolerance.max(0.0) {
            return false;
        }
        if let Some(p) = prev_delta {
            if p * delta >= 0.0 {
                return false;
            }
        }
        prev_delta = Some(delta);
    }
    true
}

/// Outcome of an interactive clearing, bundling the final [`Clearing`] with
/// convergence diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct InteractiveOutcome {
    /// The final clearing (price, allocations).
    pub clearing: Clearing,
    /// Whether the price converged within tolerance (as opposed to the
    /// iteration cap firing).
    pub converged: bool,
    /// Price trajectory over the rounds, including the final price.
    pub price_trace: Vec<f64>,
}

/// The interactive MPR market over a set of bidding agents.
pub struct InteractiveMarket {
    agents: Vec<Box<dyn BiddingAgent>>,
    config: InteractiveConfig,
}

impl std::fmt::Debug for InteractiveMarket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InteractiveMarket")
            .field("agents", &self.agents.len())
            .field("config", &self.config)
            .finish()
    }
}

impl InteractiveMarket {
    /// Creates an interactive market with the given agents and
    /// configuration.
    #[must_use]
    pub fn new(agents: Vec<Box<dyn BiddingAgent>>, config: InteractiveConfig) -> Self {
        Self { agents, config }
    }

    /// Number of registered agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.agents.len()
    }

    /// `true` when no agents are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.agents.is_empty()
    }

    /// Runs the iterative price/bid exchange for a power-reduction target.
    ///
    /// # Errors
    ///
    /// * [`MarketError::NoParticipants`] on an empty market with a positive
    ///   target.
    /// * [`MarketError::Infeasible`] when `Σ Δ_m · watts_per_unit` cannot
    ///   cover the target (feasibility does not depend on the bids).
    /// * Any error raised by an agent's [`BiddingAgent::respond`].
    pub fn clear(&mut self, target: Watts) -> Result<InteractiveOutcome, MarketError> {
        let target_watts = target.get();
        if target_watts <= 0.0 {
            let clamped = Watts::new(target_watts.max(0.0));
            return Ok(InteractiveOutcome {
                clearing: Clearing::new(Price::ZERO, clamped, Vec::new(), 0),
                converged: true,
                price_trace: vec![0.0],
            });
        }
        if self.agents.is_empty() {
            return Err(MarketError::NoParticipants);
        }
        let attainable: f64 = self
            .agents
            .iter()
            .map(|a| a.delta_max() * a.watts_per_unit())
            .sum();
        if attainable < target_watts * (1.0 - 1e-9) {
            return Err(MarketError::Infeasible {
                target_watts,
                attainable_watts: attainable,
            });
        }

        let mut price = self.config.initial_price.max(1e-9);
        let mut trace = vec![price];
        let mut converged = false;
        let mut participants: Vec<Participant> = Vec::with_capacity(self.agents.len());
        let mut iterations = 0;

        for _ in 0..self.config.max_iterations {
            iterations += 1;
            participants.clear();
            for agent in &mut self.agents {
                let bid = agent.respond(price)?;
                if !bid.is_finite() {
                    // A NaN would otherwise slip through `max(0.0)` as a
                    // zero bid — maximal supply for a garbage response.
                    return Err(MarketError::InvalidParameter {
                        name: "bid",
                        value: bid,
                        constraint: "agent returned a non-finite bid",
                    });
                }
                participants.push(Participant::new(
                    agent.job_id(),
                    SupplyFunction::new(agent.delta_max(), bid.max(0.0))?,
                    Watts::new(agent.watts_per_unit()),
                ));
            }
            let sol = mclr::clear_best_effort(&participants, target);
            let next = (1.0 - self.config.damping) * price + self.config.damping * sol.price.get();
            let rel_change = (next - price).abs() / price.abs().max(1e-9);
            price = next;
            trace.push(price);
            if rel_change <= self.config.tolerance {
                converged = true;
                break;
            }
        }

        // Final clearing with the last bids: one more MClr solve guarantees
        // the damped/announced price is replaced by one that actually meets
        // the target with these supplies.
        let final_sol = mclr::clear_best_effort(&participants, target);
        let clearing_price = final_sol.price;
        let allocations: Vec<Allocation> = participants
            .iter()
            .map(|p| {
                let reduction = p.supply.supply(clearing_price);
                Allocation {
                    id: p.id,
                    reduction,
                    power_reduction: reduction * p.watts_per_unit,
                    price: clearing_price.get(),
                }
            })
            .collect();
        Ok(InteractiveOutcome {
            clearing: Clearing::new(clearing_price, target, allocations, iterations),
            converged,
            price_trace: trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{PowerLawCost, QuadraticCost};
    use crate::opt;

    fn quad_agents(alphas: &[f64]) -> Vec<Box<dyn BiddingAgent>> {
        alphas
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                Box::new(NetGainAgent::new(
                    i as u64,
                    QuadraticCost::new(a, 1.0),
                    Watts::new(125.0),
                )) as Box<dyn BiddingAgent>
            })
            .collect()
    }

    #[test]
    fn converges_on_quadratic_costs() {
        let mut m =
            InteractiveMarket::new(quad_agents(&[1.0, 2.0, 4.0]), InteractiveConfig::default());
        let out = m.clear(Watts::new(150.0)).unwrap();
        assert!(out.converged, "price trace: {:?}", out.price_trace);
        assert!(out.clearing.met_target());
        // More sensitive (higher α) jobs reduce less.
        let a = out.clearing.allocations();
        assert!(a[0].reduction > a[1].reduction);
        assert!(a[1].reduction > a[2].reduction);
    }

    #[test]
    fn equilibrium_matches_opt_for_convex_costs() {
        // At the Nash equilibrium the interactive market's total cost should
        // be close to OPT's (the paper's headline property).
        let costs: Vec<QuadraticCost> = [1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|&a| QuadraticCost::new(a, 1.0))
            .collect();
        let agents: Vec<Box<dyn BiddingAgent>> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| Box::new(NetGainAgent::new(i as u64, *c, Watts::new(125.0))) as _)
            .collect();
        let mut m = InteractiveMarket::new(agents, InteractiveConfig::default());
        let out = m.clear(Watts::new(250.0)).unwrap();

        let jobs: Vec<opt::OptJob<'_>> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| opt::OptJob::new(i as u64, c, Watts::new(125.0)))
            .collect();
        let optimal = opt::solve(&jobs, Watts::new(250.0), opt::OptMethod::Auto).unwrap();

        let int_cost: f64 = out
            .clearing
            .allocations()
            .iter()
            .zip(&costs)
            .map(|(a, c)| {
                use crate::cost::CostModel;
                c.cost(a.reduction)
            })
            .sum();
        assert!(
            int_cost <= optimal.total_cost * 1.10 + 1e-9,
            "interactive {int_cost} vs OPT {}",
            optimal.total_cost
        );
    }

    #[test]
    fn zero_target_clears_immediately() {
        let mut m = InteractiveMarket::new(quad_agents(&[1.0]), InteractiveConfig::default());
        let out = m.clear(Watts::ZERO).unwrap();
        assert!(out.converged);
        assert_eq!(out.clearing.price(), Price::ZERO);
    }

    #[test]
    fn empty_market_errs() {
        let mut m = InteractiveMarket::new(Vec::new(), InteractiveConfig::default());
        assert_eq!(
            m.clear(Watts::new(10.0)).unwrap_err(),
            MarketError::NoParticipants
        );
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn infeasible_target_errs() {
        let mut m = InteractiveMarket::new(quad_agents(&[1.0]), InteractiveConfig::default());
        // One job, Δ = 1, 125 W/unit → attainable 125 W.
        let err = m.clear(Watts::new(1000.0)).unwrap_err();
        assert!(matches!(err, MarketError::Infeasible { .. }));
    }

    #[test]
    fn iteration_cap_returns_last_price() {
        let mut m = InteractiveMarket::new(
            quad_agents(&[1.0, 3.0]),
            InteractiveConfig {
                max_iterations: 2,
                tolerance: 0.0, // never converges by tolerance
                ..InteractiveConfig::default()
            },
        );
        let out = m.clear(Watts::new(100.0)).unwrap();
        assert!(!out.converged);
        assert_eq!(out.clearing.iterations(), 2);
        assert!(out.clearing.price() > Price::ZERO);
    }

    #[test]
    fn oscillation_detector_flags_alternating_tails_only() {
        // A settled 2-cycle: deltas alternate sign and stay large.
        let cycle = [0.5, 1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.0];
        assert!(is_oscillating(&cycle, 1e-6, 6));
        // Monotone stall: above tolerance but never alternating — the
        // cap-time price is still trustworthy.
        let stall = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7];
        assert!(!is_oscillating(&stall, 1e-6, 6));
        // Damped ringing that fell below tolerance is convergence, not
        // oscillation.
        let ringing = [
            2.0, 1.0, 1.5, 1.25, 1.250_01, 1.249_99, 1.250_001, 1.249_999,
        ];
        assert!(!is_oscillating(&ringing, 1e-3, 6));
        // Too short a trace, or a degenerate window, never triggers.
        assert!(!is_oscillating(&[1.0, 2.0, 1.0], 1e-6, 6));
        assert!(!is_oscillating(&cycle, 1e-6, 1));
        assert!(!is_oscillating(&[], 1e-6, 6));
    }

    #[test]
    fn damping_still_converges() {
        let mut m = InteractiveMarket::new(
            quad_agents(&[1.0, 2.0, 4.0]),
            InteractiveConfig {
                damping: 0.5,
                ..InteractiveConfig::default()
            },
        );
        let out = m.clear(Watts::new(150.0)).unwrap();
        assert!(out.converged);
        assert!(out.clearing.met_target());
    }

    #[test]
    fn iteration_count_stays_flat_with_more_agents() {
        // Fig. 10(b): iterations barely grow with the number of jobs.
        let mut iters = Vec::new();
        for n in [10usize, 100, 1000] {
            let alphas: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
            let mut m = InteractiveMarket::new(quad_agents(&alphas), InteractiveConfig::default());
            let attainable = 125.0 * n as f64;
            let out = m.clear(Watts::new(0.3 * attainable)).unwrap();
            assert!(out.converged);
            iters.push(out.clearing.iterations());
        }
        let max = *iters.iter().max().unwrap();
        let min = *iters.iter().min().unwrap();
        assert!(
            max <= min.saturating_mul(3).max(min + 10),
            "iterations grew too fast: {iters:?}"
        );
    }

    /// An agent whose communication fails after a few rounds.
    struct FlakyAgent {
        inner: NetGainAgent<QuadraticCost>,
        rounds_before_failure: usize,
        round: usize,
    }

    impl BiddingAgent for FlakyAgent {
        fn job_id(&self) -> u64 {
            self.inner.job_id()
        }
        fn watts_per_unit(&self) -> f64 {
            self.inner.watts_per_unit()
        }
        fn delta_max(&self) -> f64 {
            self.inner.delta_max()
        }
        fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
            self.round += 1;
            if self.round > self.rounds_before_failure {
                return Err(MarketError::Numeric("agent lost connectivity"));
            }
            self.inner.respond(price)
        }
    }

    #[test]
    fn agent_failure_aborts_the_round_with_an_error() {
        let mut agents = quad_agents(&[1.0, 2.0]);
        agents.push(Box::new(FlakyAgent {
            inner: NetGainAgent::new(99, QuadraticCost::new(3.0, 1.0), Watts::new(125.0)),
            rounds_before_failure: 2,
            round: 0,
        }));
        let mut m = InteractiveMarket::new(agents, InteractiveConfig::default());
        let err = m.clear(Watts::new(200.0)).unwrap_err();
        assert_eq!(err, MarketError::Numeric("agent lost connectivity"));
    }

    /// A hostile agent that bids NaN/∞-adjacent garbage must not poison
    /// the clearing: with_bid clamps negatives, and SupplyFunction::new
    /// rejects non-finite bids.
    struct GarbageAgent;
    impl BiddingAgent for GarbageAgent {
        fn job_id(&self) -> u64 {
            7
        }
        fn watts_per_unit(&self) -> f64 {
            125.0
        }
        fn delta_max(&self) -> f64 {
            1.0
        }
        fn respond(&mut self, _price: f64) -> Result<f64, MarketError> {
            Ok(f64::NAN)
        }
    }

    #[test]
    fn non_finite_bids_are_rejected_not_propagated() {
        let mut agents = quad_agents(&[1.0]);
        agents.push(Box::new(GarbageAgent));
        let mut m = InteractiveMarket::new(agents, InteractiveConfig::default());
        let err = m.clear(Watts::new(150.0)).unwrap_err();
        assert!(matches!(err, MarketError::InvalidParameter { .. }));
    }

    #[test]
    fn power_law_costs_converge() {
        let agents: Vec<Box<dyn BiddingAgent>> = (0..5)
            .map(|i| {
                Box::new(NetGainAgent::new(
                    i as u64,
                    PowerLawCost::new(1.0 + i as f64, 2.2, 0.7),
                    Watts::new(125.0),
                )) as _
            })
            .collect();
        let mut m = InteractiveMarket::new(agents, InteractiveConfig::default());
        let out = m.clear(Watts::new(200.0)).unwrap();
        assert!(out.clearing.met_target());
    }
}
