//! Deadline-bounded asynchronous bid transport for MPR-INT (DESIGN.md §12).
//!
//! The paper's interactive market is a message exchange between the HPC
//! manager and remote user agents: each round the manager broadcasts a
//! [`PriceAnnounce`] and collects [`BidReply`]s until a deadline. In a real
//! deployment that channel is lossy, laggy and reordered, so the runtime is
//! built over an abstract [`Transport`] with two implementations:
//!
//! * [`PerfectTransport`] — in-process, zero-latency, lossless. The
//!   exchange over it is bit-for-bit identical to the synchronous
//!   [`InteractiveMarket`](crate::market::interactive::InteractiveMarket).
//! * [`SimNet`] — a FoundationDB-style deterministic network simulator in
//!   **virtual time** (integer [`Tick`]s, never the wall clock): every
//!   drop/delay/duplicate/reorder/partition fault is drawn from a seeded
//!   `ChaCha8Rng`, so a run replays exactly from `(config, seed)`.
//!
//! The manager-side round loop (see
//! [`TransportedInteractiveMechanism`](crate::mechanism::TransportedInteractiveMechanism))
//! adds per-agent retransmits with capped exponential backoff plus jitter
//! ([`RetryPolicy`]), idempotent dedup of duplicate and late replies keyed
//! by `(agent, round, msg_id)`, and a straggler policy: after the deadline
//! the round clears with last-known bids, and agents missing
//! [`TransportConfig::quarantine_after_misses`] consecutive rounds are
//! quarantined (PR-1 semantics).

use std::collections::BTreeMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::error::MarketError;
use crate::market::faults::FaultRng;
use crate::participant::JobId;
use crate::units::Price;

/// Virtual time, in abstract ticks. One tick is "one scheduling quantum" of
/// the simulated network — no relation to the wall clock (lint rule L4).
pub type Tick = u64;

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// The manager → agent broadcast opening (or re-opening) a round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceAnnounce {
    /// Market round this announcement belongs to (1-based).
    pub round: usize,
    /// Globally unique message id; every retransmit gets a fresh one so
    /// replies can be attributed to `(agent, round, msg_id)` exactly.
    pub msg_id: u64,
    /// The announced clearing-price candidate.
    pub price: Price,
    /// Delivery attempt for this round, 1-based (1 = original send).
    pub attempt: usize,
}

/// The agent → manager response to a [`PriceAnnounce`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidReply {
    /// The replying agent's job id.
    pub agent: JobId,
    /// Round the reply answers.
    pub round: usize,
    /// `msg_id` of the announcement being answered (dedup key).
    pub in_reply_to: u64,
    /// The bid parameter `b` (finite, non-negative by construction).
    pub bid: f64,
}

// ---------------------------------------------------------------------------
// The transport abstraction
// ---------------------------------------------------------------------------

/// Channel-level message counters, accumulated over a transport's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Messages handed to the channel (both directions).
    pub sent: usize,
    /// Messages delivered to a receiver.
    pub delivered: usize,
    /// Messages lost to drop faults or partitions.
    pub dropped: usize,
    /// Extra copies created by duplication faults.
    pub duplicated: usize,
}

/// An asynchronous, possibly faulty channel between the manager and its
/// agent endpoints.
///
/// The manager owns virtual time: it calls [`Transport::send`] to enqueue
/// announcements and [`Transport::advance`] to move the clock forward,
/// delivering every message due by then. Agent endpoints are driven *by the
/// transport* through the `endpoint` callback (delivery order is the
/// channel's business, not the caller's), and their replies travel back
/// through the same faulty channel.
pub trait Transport: Send {
    /// Short channel name for diagnostics (e.g. `"perfect"`, `"simnet"`).
    fn name(&self) -> &'static str;

    /// Enqueues an announcement for agent endpoint `to` at virtual time
    /// `now`.
    fn send(&mut self, to: usize, msg: PriceAnnounce, now: Tick);

    /// Advances virtual time to `now`, delivering every in-flight message
    /// due by then. Announcements are handed to `endpoint(agent_index,
    /// &msg)`; a returned reply is sent back through the channel (subject
    /// to the same faults) and, once it arrives, is included — tagged with
    /// the agent index — in the returned batch, in delivery order.
    fn advance(
        &mut self,
        now: Tick,
        endpoint: &mut dyn FnMut(usize, &PriceAnnounce) -> Option<BidReply>,
    ) -> Vec<(usize, BidReply)>;

    /// Virtual due-time of the earliest in-flight message, `None` when the
    /// channel is idle. The manager uses it to jump the clock between
    /// events instead of ticking.
    fn next_due(&self) -> Option<Tick>;

    /// Message counters since construction.
    fn stats(&self) -> TransportStats;
}

// ---------------------------------------------------------------------------
// PerfectTransport
// ---------------------------------------------------------------------------

/// The ideal in-process channel: zero latency, lossless, FIFO.
///
/// Every message sent is delivered by the next [`Transport::advance`] call
/// regardless of the clock, so the exchange degenerates to the synchronous
/// round loop of the plain interactive market — bit for bit.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    inbox: Vec<(usize, PriceAnnounce)>,
    stats: TransportStats,
}

impl PerfectTransport {
    /// Creates an idle perfect channel.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for PerfectTransport {
    fn name(&self) -> &'static str {
        "perfect"
    }

    fn send(&mut self, to: usize, msg: PriceAnnounce, _now: Tick) {
        self.stats.sent += 1;
        self.inbox.push((to, msg));
    }

    fn advance(
        &mut self,
        _now: Tick,
        endpoint: &mut dyn FnMut(usize, &PriceAnnounce) -> Option<BidReply>,
    ) -> Vec<(usize, BidReply)> {
        let mut out = Vec::with_capacity(self.inbox.len());
        for (to, msg) in self.inbox.drain(..) {
            self.stats.delivered += 1;
            if let Some(reply) = endpoint(to, &msg) {
                self.stats.sent += 1;
                self.stats.delivered += 1;
                out.push((to, reply));
            }
        }
        out
    }

    fn next_due(&self) -> Option<Tick> {
        if self.inbox.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// SimNet
// ---------------------------------------------------------------------------

/// Fault mix of a [`SimNet`] channel. All probabilities are per message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultConfig {
    /// Probability a message is silently lost.
    pub drop_prob: f64,
    /// Probability a message is delivered twice (independent delays, so
    /// duplication also reorders).
    pub duplicate_prob: f64,
    /// Minimum per-hop latency, ticks.
    pub min_delay_ticks: Tick,
    /// Maximum per-hop latency, ticks. Latency jitter in
    /// `[min, max]` is what reorders messages.
    pub max_delay_ticks: Tick,
    /// Probability, per announcement, that the destination agent drops
    /// into a partition (both directions black-holed).
    pub partition_prob: f64,
    /// How long a partition lasts, ticks.
    pub partition_ticks: Tick,
}

impl Default for NetFaultConfig {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            min_delay_ticks: 1,
            max_delay_ticks: 1,
            partition_prob: 0.0,
            partition_ticks: 64,
        }
    }
}

impl NetFaultConfig {
    /// A lossy channel: messages dropped with probability `p`, unit
    /// latency otherwise.
    #[must_use]
    pub fn lossy(p: f64) -> Self {
        Self {
            drop_prob: p.clamp(0.0, 1.0),
            ..Self::default()
        }
    }

    /// `true` when the channel can lose messages (drops or partitions).
    #[must_use]
    pub fn is_lossy(&self) -> bool {
        self.drop_prob > 0.0 || self.partition_prob > 0.0
    }
}

/// One in-flight message.
#[derive(Debug, Clone)]
enum Flight {
    Announce { to: usize, msg: PriceAnnounce },
    Reply { from: usize, msg: BidReply },
}

/// A deterministic virtual-time network simulator.
///
/// Every fault decision (drop, latency draw, duplication, partition onset)
/// is taken at send time from one seeded `ChaCha8Rng`, and in-flight
/// messages live in a `BTreeMap` keyed by `(due_tick, sequence)` — so a
/// `SimNet` run is a pure function of `(NetFaultConfig, seed)` and the
/// caller's send schedule. No wall clock anywhere (lint rule L4).
#[derive(Debug)]
pub struct SimNet {
    cfg: NetFaultConfig,
    rng: ChaCha8Rng,
    queue: BTreeMap<(Tick, u64), Flight>,
    seq: u64,
    partitioned_until: Vec<Tick>,
    stats: TransportStats,
}

impl SimNet {
    /// Creates a simulated network with the given fault mix and seed.
    #[must_use]
    pub fn new(cfg: NetFaultConfig, seed: u64) -> Self {
        Self {
            cfg,
            rng: ChaCha8Rng::seed_from_u64(seed),
            queue: BTreeMap::new(),
            seq: 0,
            partitioned_until: Vec::new(),
            stats: TransportStats::default(),
        }
    }

    /// The fault mix in force.
    #[must_use]
    pub fn config(&self) -> NetFaultConfig {
        self.cfg
    }

    fn partition_end(&self, agent: usize) -> Tick {
        self.partitioned_until.get(agent).copied().unwrap_or(0)
    }

    fn set_partition_end(&mut self, agent: usize, until: Tick) {
        if self.partitioned_until.len() <= agent {
            self.partitioned_until.resize(agent + 1, 0);
        }
        if let Some(slot) = self.partitioned_until.get_mut(agent) {
            *slot = until;
        }
    }

    fn delay(&mut self) -> Tick {
        let lo = self.cfg.min_delay_ticks.min(self.cfg.max_delay_ticks);
        let hi = self.cfg.min_delay_ticks.max(self.cfg.max_delay_ticks);
        if lo == hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    fn enqueue(&mut self, due: Tick, flight: Flight) {
        self.seq += 1;
        self.queue.insert((due, self.seq), flight);
    }

    /// Runs the fault pipeline for one message addressed to / sent by
    /// `agent` and enqueues the surviving copies.
    fn submit(&mut self, agent: usize, now: Tick, flight: Flight, may_partition: bool) {
        self.stats.sent += 1;
        if now < self.partition_end(agent) {
            self.stats.dropped += 1;
            return;
        }
        if may_partition && self.cfg.partition_prob > 0.0 {
            let u: f64 = self.rng.gen();
            if u < self.cfg.partition_prob {
                let until = now.saturating_add(self.cfg.partition_ticks.max(1));
                self.set_partition_end(agent, until);
                self.stats.dropped += 1;
                return;
            }
        }
        if self.cfg.drop_prob > 0.0 {
            let u: f64 = self.rng.gen();
            if u < self.cfg.drop_prob {
                self.stats.dropped += 1;
                return;
            }
        }
        let due = now.saturating_add(self.delay());
        if self.cfg.duplicate_prob > 0.0 {
            let u: f64 = self.rng.gen();
            if u < self.cfg.duplicate_prob {
                let dup_due = now.saturating_add(self.delay());
                self.stats.duplicated += 1;
                self.enqueue(dup_due, flight.clone());
            }
        }
        self.enqueue(due, flight);
    }
}

impl Transport for SimNet {
    fn name(&self) -> &'static str {
        "simnet"
    }

    fn send(&mut self, to: usize, msg: PriceAnnounce, now: Tick) {
        self.submit(to, now, Flight::Announce { to, msg }, true);
    }

    fn advance(
        &mut self,
        now: Tick,
        endpoint: &mut dyn FnMut(usize, &PriceAnnounce) -> Option<BidReply>,
    ) -> Vec<(usize, BidReply)> {
        let mut out = Vec::new();
        // Replies generated during delivery may themselves fall due within
        // `now`; loop until nothing due remains.
        while let Some((&key, _)) = self.queue.range(..=(now, u64::MAX)).next() {
            let Some(flight) = self.queue.remove(&key) else {
                break;
            };
            let (at, _) = key;
            match flight {
                Flight::Announce { to, msg } => {
                    // A partition that started after this message was sent
                    // still black-holes it on arrival.
                    if at < self.partition_end(to) {
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    if let Some(reply) = endpoint(to, &msg) {
                        self.submit(
                            to,
                            at,
                            Flight::Reply {
                                from: to,
                                msg: reply,
                            },
                            false,
                        );
                    }
                }
                Flight::Reply { from, msg } => {
                    if at < self.partition_end(from) {
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    out.push((from, msg));
                }
            }
        }
        out
    }

    fn next_due(&self) -> Option<Tick> {
        self.queue.keys().next().map(|&(due, _)| due)
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

// ---------------------------------------------------------------------------
// Manager-side policy types
// ---------------------------------------------------------------------------

/// Retransmit schedule: capped exponential backoff plus uniform jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Announcement attempts per agent per round (1 = no retransmits).
    pub max_attempts: usize,
    /// Backoff before the first retransmit, ticks.
    pub base_ticks: Tick,
    /// Cap on the exponential backoff, ticks.
    pub cap_ticks: Tick,
    /// Maximum uniform jitter added to each backoff, ticks.
    pub jitter_ticks: Tick,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_ticks: 2,
            cap_ticks: 8,
            jitter_ticks: 1,
        }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt + 1` (i.e. after the `attempt`-th
    /// send), in ticks: `min(cap, base · 2^(attempt−1))` plus a jitter draw
    /// in `[0, jitter_ticks]`.
    #[must_use]
    pub fn backoff(&self, attempt: usize, jitter: &mut FaultRng) -> Tick {
        let shift = attempt.saturating_sub(1).min(32) as u32;
        let exp = self
            .base_ticks
            .max(1)
            .saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX))
            .min(self.cap_ticks.max(1));
        let j = if self.jitter_ticks == 0 {
            0
        } else {
            jitter.next_u64() % (self.jitter_ticks + 1)
        };
        exp.saturating_add(j)
    }
}

/// Deadline, retry and quarantine policy of the transported exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Per-round reply deadline, ticks. After it expires the round clears
    /// with last-known bids (straggler policy).
    pub deadline_ticks: Tick,
    /// Retransmit schedule within a round.
    pub retry: RetryPolicy,
    /// Consecutive missed rounds before an agent is quarantined.
    pub quarantine_after_misses: usize,
    /// Seed of the manager's (deterministic) backoff-jitter stream.
    pub jitter_seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            deadline_ticks: 16,
            retry: RetryPolicy::default(),
            quarantine_after_misses: 3,
            jitter_seed: 0x6d70_7221,
        }
    }
}

// ---------------------------------------------------------------------------
// Typed transport errors and diagnostics
// ---------------------------------------------------------------------------

/// What went wrong on the wire, per agent — surfaced through
/// [`Diagnostics`](crate::mechanism::Diagnostics) and convertible into the
/// [`MarketError`] a quarantine records.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransportError {
    /// No valid reply arrived before the round deadline, across all
    /// retransmit attempts.
    DeadlineExpired {
        /// The silent agent.
        agent: JobId,
        /// Round whose deadline expired.
        round: usize,
        /// Announcement attempts made that round.
        attempts: usize,
    },
    /// The agent endpoint crashed terminally while answering.
    EndpointCrashed {
        /// The crashed agent.
        agent: JobId,
        /// Round the crash surfaced in.
        round: usize,
    },
    /// The agent answered with a non-finite bid; the reply was discarded.
    InvalidReply {
        /// The misbehaving agent.
        agent: JobId,
        /// Round of the garbage reply.
        round: usize,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::DeadlineExpired {
                agent,
                round,
                attempts,
            } => write!(
                f,
                "agent {agent} missed the round-{round} deadline after {attempts} attempt(s)"
            ),
            TransportError::EndpointCrashed { agent, round } => {
                write!(f, "agent {agent} endpoint crashed in round {round}")
            }
            TransportError::InvalidReply { agent, round } => {
                write!(f, "agent {agent} sent a non-finite bid in round {round}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<TransportError> for MarketError {
    fn from(e: TransportError) -> Self {
        match e {
            TransportError::DeadlineExpired { agent, round, .. } => {
                MarketError::AgentTimeout { job: agent, round }
            }
            TransportError::EndpointCrashed { agent, round } => {
                MarketError::AgentCrashed { job: agent, round }
            }
            TransportError::InvalidReply { agent: _, round: _ } => MarketError::InvalidParameter {
                name: "bid",
                value: f64::NAN,
                constraint: "agent replied with a non-finite bid",
            },
        }
    }
}

/// Message-level counters of one transported clearing, attached to its
/// [`Diagnostics`](crate::mechanism::Diagnostics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TransportDiagnostics {
    /// Rounds the exchange ran.
    pub rounds: usize,
    /// Original price announcements broadcast.
    pub announces: usize,
    /// Retransmitted announcements (backoff schedule).
    pub retransmits: usize,
    /// Replies accepted into the clearing.
    pub replies_accepted: usize,
    /// Duplicate replies discarded by the `(agent, round, msg_id)` dedup.
    pub duplicates_ignored: usize,
    /// Replies for past rounds (or unknown msg ids) discarded.
    pub late_replies_ignored: usize,
    /// Non-finite bids discarded at the endpoint.
    pub invalid_replies: usize,
    /// Agent-rounds that ended as stragglers (deadline expired, last-known
    /// bid used).
    pub straggler_rounds: usize,
    /// Agents quarantined for missing consecutive deadlines.
    pub deadline_quarantines: usize,
    /// Virtual ticks the exchange consumed.
    pub virtual_ticks: Tick,
    /// Typed per-agent transport failures (quarantine causes).
    pub errors: Vec<TransportError>,
    /// Channel-level counters from the [`Transport`].
    pub channel: TransportStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce(round: usize, msg_id: u64) -> PriceAnnounce {
        PriceAnnounce {
            round,
            msg_id,
            price: Price::new(0.5),
            attempt: 1,
        }
    }

    fn echo(agent: usize, msg: &PriceAnnounce) -> Option<BidReply> {
        Some(BidReply {
            agent: agent as u64,
            round: msg.round,
            in_reply_to: msg.msg_id,
            bid: 0.25,
        })
    }

    #[test]
    fn perfect_transport_is_lossless_and_immediate() {
        let mut t = PerfectTransport::new();
        for i in 0..4 {
            t.send(i, announce(1, i as u64 + 1), 0);
        }
        assert_eq!(t.next_due(), Some(0));
        let replies = t.advance(0, &mut echo);
        assert_eq!(replies.len(), 4);
        assert_eq!(t.next_due(), None);
        let s = t.stats();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.duplicated, 0);
        assert_eq!(s.delivered, 8); // 4 announces + 4 replies
    }

    #[test]
    fn simnet_is_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let cfg = NetFaultConfig {
                drop_prob: 0.3,
                duplicate_prob: 0.2,
                min_delay_ticks: 1,
                max_delay_ticks: 5,
                partition_prob: 0.05,
                partition_ticks: 8,
            };
            let mut net = SimNet::new(cfg, seed);
            let mut got = Vec::new();
            for round in 1..=5usize {
                let now = (round as Tick - 1) * 10;
                for i in 0..8 {
                    net.send(i, announce(round, (round * 100 + i) as u64), now);
                }
                got.extend(net.advance(now + 9, &mut echo));
            }
            (got, net.stats())
        };
        let (a, sa) = run(42);
        let (b, sb) = run(42);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run(43);
        assert_ne!(a, c, "different seeds should fault differently");
    }

    #[test]
    fn lossless_simnet_delivers_everything_within_max_delay() {
        let cfg = NetFaultConfig {
            min_delay_ticks: 1,
            max_delay_ticks: 4,
            duplicate_prob: 0.5,
            ..NetFaultConfig::default()
        };
        let mut net = SimNet::new(cfg, 7);
        for i in 0..10 {
            net.send(i, announce(1, i as u64 + 1), 0);
        }
        // Announce (≤4) + reply (≤4) round trip completes by tick 8.
        let replies = net.advance(8, &mut echo);
        // Dedup is the manager's job: with duplication the channel may
        // deliver more than 10 replies, never fewer.
        assert!(replies.len() >= 10, "only {} replies", replies.len());
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn partitioned_agent_is_black_holed_for_the_duration() {
        let cfg = NetFaultConfig {
            partition_prob: 1.0, // first announce partitions the agent
            partition_ticks: 10,
            ..NetFaultConfig::default()
        };
        let mut net = SimNet::new(cfg, 1);
        net.send(0, announce(1, 1), 0);
        assert!(net.advance(5, &mut echo).is_empty());
        assert_eq!(net.stats().dropped, 1);
        // After the partition lifts the agent is reachable again — but the
        // partition draw applies to the fresh announce too, so use a net
        // with the fault disabled to check recovery.
        let mut calm = SimNet::new(NetFaultConfig::default(), 1);
        calm.send(0, announce(2, 2), 20);
        assert_eq!(calm.advance(25, &mut echo).len(), 1);
    }

    #[test]
    fn retry_backoff_is_capped_and_jittered() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_ticks: 2,
            cap_ticks: 8,
            jitter_ticks: 0,
        };
        let mut rng = FaultRng::new(9);
        assert_eq!(p.backoff(1, &mut rng), 2);
        assert_eq!(p.backoff(2, &mut rng), 4);
        assert_eq!(p.backoff(3, &mut rng), 8);
        assert_eq!(p.backoff(4, &mut rng), 8, "capped");
        assert_eq!(p.backoff(64, &mut rng), 8, "huge attempts stay capped");

        let jittery = RetryPolicy {
            jitter_ticks: 3,
            ..p
        };
        let mut rng = FaultRng::new(9);
        for _ in 0..32 {
            let b = jittery.backoff(1, &mut rng);
            assert!((2..=5).contains(&b), "backoff {b} outside [2, 5]");
        }
    }

    #[test]
    fn transport_errors_convert_to_market_errors() {
        let e = TransportError::DeadlineExpired {
            agent: 7,
            round: 3,
            attempts: 3,
        };
        assert_eq!(
            MarketError::from(e.clone()),
            MarketError::AgentTimeout { job: 7, round: 3 }
        );
        assert!(e.to_string().contains("deadline"));
        let c = TransportError::EndpointCrashed { agent: 1, round: 2 };
        assert_eq!(
            MarketError::from(c),
            MarketError::AgentCrashed { job: 1, round: 2 }
        );
        let i = TransportError::InvalidReply { agent: 1, round: 2 };
        assert!(matches!(
            MarketError::from(i),
            MarketError::InvalidParameter { .. }
        ));
    }
}
