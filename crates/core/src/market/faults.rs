//! Fault injection and graceful degradation for the interactive market.
//!
//! MPR-INT (Section III-B) assumes every user agent answers every price
//! announcement, yet overloads are time-critical: a stalled or misbehaving
//! bidder must never leave `P(t) > C` standing (Section III-E). This module
//! provides both halves of the robustness story:
//!
//! * **Fault injection** — composable adapters wrapping any
//!   [`BiddingAgent`]: [`UnresponsiveAgent`] (misses round deadlines),
//!   [`StaleAgent`] (replays an old bid), [`CrashAgent`] (fails permanently
//!   mid-negotiation) and [`ByzantineAgent`] (over/under-bids by a factor,
//!   optionally oscillating). All are deterministic given their seeds, so
//!   simulations reproduce bit-for-bit.
//! * **Graceful degradation** — [`ResilientInteractiveMarket`], an
//!   MPR-INT driver that bounds each round with a retry budget (the
//!   synchronous stand-in for a response deadline with backoff), quarantines
//!   defaulting participants and re-clears MClr over the survivors, detects
//!   price oscillation with a convergence watchdog, and walks an explicit
//!   degradation chain:
//!
//!   1. **MPR-INT** over the responsive agents;
//!   2. **MPR-STAT** over *all* agents, pricing quarantined jobs at their
//!      last-known or registered cooperative bid (bid 0 — manager-side
//!      forced capping — when neither exists);
//!   3. **EQL**-style uniform capping, the terminal guarantee: every job is
//!      reduced by the same fraction of its `Δ`, so any physically
//!      attainable reduction target `P(t) − 0.99·C` is met exactly.

use crate::error::MarketError;
use crate::market::interactive::{BiddingAgent, InteractiveConfig};
use crate::market::Clearing;
use crate::mechanism::{
    EqlCappingMechanism, FallbackChain, MclrMechanism, Mechanism, MechanismError,
    ResilientInteractiveMechanism,
};
use crate::participant::JobId;
use crate::units::{Price, Watts};

// ---------------------------------------------------------------------------
// Deterministic seeding
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, dependency-free deterministic generator used to seed
/// fault behaviour. Not cryptographic; statistical quality is ample for
/// picking fault phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Faulty-agent adapters
// ---------------------------------------------------------------------------

/// An agent that stops answering after a number of successful rounds: every
/// later [`respond`](BiddingAgent::respond) returns
/// [`MarketError::AgentTimeout`], modelling a user whose client misses the
/// round deadline indefinitely (network partition, dead session).
///
/// `healthy_rounds = 0` makes the agent unresponsive from the first
/// announcement.
#[derive(Debug)]
pub struct UnresponsiveAgent<A> {
    inner: A,
    healthy_rounds: usize,
    round: usize,
}

impl<A: BiddingAgent> UnresponsiveAgent<A> {
    /// Wraps `inner`, answering the first `healthy_rounds` announcements
    /// normally and timing out forever after.
    #[must_use]
    pub fn new(inner: A, healthy_rounds: usize) -> Self {
        Self {
            inner,
            healthy_rounds,
            round: 0,
        }
    }
}

impl<A: BiddingAgent> BiddingAgent for UnresponsiveAgent<A> {
    fn job_id(&self) -> JobId {
        self.inner.job_id()
    }
    fn watts_per_unit(&self) -> f64 {
        self.inner.watts_per_unit()
    }
    fn delta_max(&self) -> f64 {
        self.inner.delta_max()
    }
    fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
        self.round += 1;
        if self.round > self.healthy_rounds {
            return Err(MarketError::AgentTimeout {
                job: self.inner.job_id(),
                round: self.round,
            });
        }
        self.inner.respond(price)
    }
}

/// An agent whose state froze: after `fresh_rounds` live answers it replays
/// its most recent bid forever, regardless of the announced price (stuck
/// client-side cache, wedged event loop that still ACKs).
///
/// Staleness is not an error — the market sees a syntactically valid bid —
/// which is precisely why it needs the convergence watchdog rather than the
/// retry path.
#[derive(Debug)]
pub struct StaleAgent<A> {
    inner: A,
    fresh_rounds: usize,
    round: usize,
    last_bid: Option<f64>,
}

impl<A: BiddingAgent> StaleAgent<A> {
    /// Wraps `inner`, answering live for `fresh_rounds` rounds and replaying
    /// the last live bid afterwards. With `fresh_rounds = 0` the agent
    /// replays an initial zero bid (it never computed anything).
    #[must_use]
    pub fn new(inner: A, fresh_rounds: usize) -> Self {
        Self {
            inner,
            fresh_rounds,
            round: 0,
            last_bid: None,
        }
    }
}

impl<A: BiddingAgent> BiddingAgent for StaleAgent<A> {
    fn job_id(&self) -> JobId {
        self.inner.job_id()
    }
    fn watts_per_unit(&self) -> f64 {
        self.inner.watts_per_unit()
    }
    fn delta_max(&self) -> f64 {
        self.inner.delta_max()
    }
    fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
        self.round += 1;
        if self.round <= self.fresh_rounds {
            let bid = self.inner.respond(price)?;
            self.last_bid = Some(bid);
            return Ok(bid);
        }
        Ok(self.last_bid.unwrap_or(0.0))
    }
}

/// An agent that fails permanently after a number of rounds: every
/// [`respond`](BiddingAgent::respond) from then on returns
/// [`MarketError::AgentCrashed`]. Unlike [`UnresponsiveAgent`] the error is
/// terminal by contract — retrying is futile — so resilient drivers
/// quarantine the job without spending the retry budget.
#[derive(Debug)]
pub struct CrashAgent<A> {
    inner: A,
    healthy_rounds: usize,
    round: usize,
}

impl<A: BiddingAgent> CrashAgent<A> {
    /// Wraps `inner`, crashing permanently after `healthy_rounds` rounds.
    #[must_use]
    pub fn new(inner: A, healthy_rounds: usize) -> Self {
        Self {
            inner,
            healthy_rounds,
            round: 0,
        }
    }
}

impl<A: BiddingAgent> BiddingAgent for CrashAgent<A> {
    fn job_id(&self) -> JobId {
        self.inner.job_id()
    }
    fn watts_per_unit(&self) -> f64 {
        self.inner.watts_per_unit()
    }
    fn delta_max(&self) -> f64 {
        self.inner.delta_max()
    }
    fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
        self.round += 1;
        if self.round > self.healthy_rounds {
            return Err(MarketError::AgentCrashed {
                job: self.inner.job_id(),
                round: self.round,
            });
        }
        self.inner.respond(price)
    }
}

/// A non-rational agent that distorts its true best response by a factor,
/// either constantly or alternating over/under each round (the oscillating
/// variant destabilizes the price exchange and is the canonical watchdog
/// trigger). The starting phase of the oscillation is drawn from the seed,
/// so fleets of byzantine agents do not bid in lockstep.
#[derive(Debug)]
pub struct ByzantineAgent<A> {
    inner: A,
    factor: f64,
    oscillate: bool,
    over: bool,
}

impl<A: BiddingAgent> ByzantineAgent<A> {
    /// Wraps `inner`, multiplying every bid by `factor` (must be positive
    /// and finite; values are clamped into `[1e-6, 1e6]`).
    ///
    /// With `oscillate = true` the agent alternates between `factor` and
    /// `1/factor` each round; the seed picks which comes first.
    #[must_use]
    pub fn new(inner: A, factor: f64, oscillate: bool, seed: u64) -> Self {
        let factor = if factor.is_finite() && factor > 0.0 {
            factor.clamp(1e-6, 1e6)
        } else {
            1.0
        };
        let over = FaultRng::new(seed).next_u64() & 1 == 0;
        Self {
            inner,
            factor,
            oscillate,
            over,
        }
    }
}

impl<A: BiddingAgent> BiddingAgent for ByzantineAgent<A> {
    fn job_id(&self) -> JobId {
        self.inner.job_id()
    }
    fn watts_per_unit(&self) -> f64 {
        self.inner.watts_per_unit()
    }
    fn delta_max(&self) -> f64 {
        self.inner.delta_max()
    }
    fn respond(&mut self, price: f64) -> Result<f64, MarketError> {
        let honest = self.inner.respond(price)?;
        let f = if self.over {
            self.factor
        } else {
            1.0 / self.factor
        };
        if self.oscillate {
            self.over = !self.over;
        }
        Ok(honest * f)
    }
}

// ---------------------------------------------------------------------------
// Convergence watchdog
// ---------------------------------------------------------------------------

/// Sliding-window divergence detector over the relative price change per
/// round.
///
/// Divergence is declared when a full window of rounds all moved by at
/// least `min_change` *and* the oscillation is not contracting (the mean
/// change over the newer half of the window is at least 80 % of the older
/// half's). A healthy exchange contracts geometrically, so its window never
/// satisfies both conditions; a byzantine-driven oscillation holds its
/// amplitude and trips the watchdog within one window of rounds.
#[derive(Debug, Clone)]
pub struct ConvergenceWatchdog {
    window: Vec<f64>,
    capacity: usize,
    min_change: f64,
}

impl ConvergenceWatchdog {
    /// Creates a watchdog over the last `window` rounds, ignoring relative
    /// changes below `min_change` (those count as converging).
    #[must_use]
    pub fn new(window: usize, min_change: f64) -> Self {
        Self {
            window: Vec::with_capacity(window.max(2)),
            capacity: window.max(2),
            min_change: min_change.max(0.0),
        }
    }

    /// Records one round's relative price change; returns `true` when the
    /// trajectory is diverging.
    pub fn observe(&mut self, rel_change: f64) -> bool {
        if self.window.len() == self.capacity {
            self.window.remove(0);
        }
        self.window.push(rel_change.abs());
        if self.window.len() < self.capacity {
            return false;
        }
        if self.window.iter().any(|&c| c < self.min_change) {
            return false;
        }
        let half = self.capacity / 2;
        let (old_half, new_half) = self.window.split_at(half);
        let older: f64 = old_half.iter().sum::<f64>() / half as f64;
        let newer: f64 = new_half.iter().sum::<f64>() / (self.capacity - half) as f64;
        newer >= 0.8 * older
    }
}

// ---------------------------------------------------------------------------
// The resilient market
// ---------------------------------------------------------------------------

/// How far down the degradation chain a clearing had to go.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChainLevel {
    /// The interactive exchange converged over the responsive agents and
    /// met the target — the clean case.
    Interactive,
    /// Interactive failed (quarantine losses, divergence, or an unmet
    /// target); one static MClr solve over last-known/cooperative bids met
    /// the target.
    StaticFallback,
    /// Even the static solve under-delivered; uniform forced capping was
    /// applied. Meets any physically attainable target exactly.
    EqlCapping,
}

impl std::fmt::Display for ChainLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainLevel::Interactive => write!(f, "MPR-INT"),
            ChainLevel::StaticFallback => write!(f, "MPR-STAT"),
            ChainLevel::EqlCapping => write!(f, "EQL"),
        }
    }
}

/// Why a participant was quarantined.
#[derive(Debug, Clone, PartialEq)]
pub struct Quarantine {
    /// The quarantined job.
    pub id: JobId,
    /// The 1-based round in which the participant defaulted.
    pub round: usize,
    /// The error that exhausted the retry budget.
    pub error: MarketError,
}

/// Tuning knobs for [`ResilientInteractiveMarket`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientConfig {
    /// The underlying interactive-market configuration.
    pub interactive: InteractiveConfig,
    /// Retries granted per agent per round before quarantine. Each retry
    /// models one deadline extension with backoff; crashes
    /// ([`MarketError::AgentCrashed`]) skip the budget — they are terminal
    /// by contract.
    pub max_retries: usize,
    /// Watchdog window length in rounds.
    pub watchdog_window: usize,
    /// Relative price change below which a round counts as converging for
    /// the watchdog (distinct from — and much larger than — the clearing
    /// `tolerance`).
    pub divergence_min_change: f64,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        Self {
            interactive: InteractiveConfig::default(),
            max_retries: 2,
            watchdog_window: 8,
            divergence_min_change: 0.05,
        }
    }
}

/// Outcome of a resilient clearing: the final [`Clearing`] plus the full
/// degradation diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientOutcome {
    /// The final clearing (price, allocations). Quarantined jobs appear
    /// with the reduction imposed by whichever chain level produced the
    /// clearing (zero at [`ChainLevel::Interactive`]).
    pub clearing: Clearing,
    /// The chain level that produced the clearing.
    pub chain_level: ChainLevel,
    /// Whether the interactive phase converged within tolerance.
    pub converged: bool,
    /// Whether the watchdog aborted the interactive phase.
    pub diverged: bool,
    /// Participants quarantined during the interactive phase, in
    /// quarantine order.
    pub quarantined: Vec<Quarantine>,
    /// Total retry attempts spent across all rounds and agents.
    pub retries: usize,
    /// Target watts left uncovered after the final chain level (positive
    /// only when the target exceeds the system's physical capability).
    pub residual_watts: f64,
    /// Price trajectory of the interactive phase, including the initial
    /// announcement.
    pub price_trace: Vec<f64>,
}

impl ResilientOutcome {
    /// `true` when the clearing had to leave the clean interactive level.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.chain_level > ChainLevel::Interactive
    }

    /// Ids of the quarantined jobs.
    #[must_use]
    pub fn quarantined_ids(&self) -> Vec<JobId> {
        self.quarantined.iter().map(|q| q.id).collect()
    }
}

/// An MPR-INT driver that survives unresponsive, crashing, stale and
/// byzantine participants.
///
/// See the [module docs](self) for the degradation chain. Since the
/// mechanism unification this type is a thin facade: level 0 is a
/// [`ResilientInteractiveMechanism`] and the walk down the chain is a
/// [`FallbackChain`] over the unified
/// [`Mechanism`](crate::mechanism::Mechanism) interface, terminated by
/// [`EqlCappingMechanism`](crate::mechanism::EqlCappingMechanism). The
/// behaviour — retry budgets, quarantine, the convergence watchdog, the
/// three-level degradation — is unchanged. The happy path is behaviourally
/// identical to [`InteractiveMarket`]
/// (`crate::market::interactive::InteractiveMarket`): same damped price
/// exchange, same convergence rule, one extra watchdog that never fires on
/// a contracting trajectory.
pub struct ResilientInteractiveMarket {
    level0: ResilientInteractiveMechanism,
}

impl std::fmt::Debug for ResilientInteractiveMarket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientInteractiveMarket")
            .field("agents", &self.level0.len())
            .field("config", &self.level0.config())
            .finish()
    }
}

impl ResilientInteractiveMarket {
    /// Creates an empty resilient market.
    #[must_use]
    pub fn new(config: ResilientConfig) -> Self {
        Self {
            level0: ResilientInteractiveMechanism::new(config),
        }
    }

    /// Creates a resilient market over agents with no registered static
    /// bids (quarantined jobs then fall back to their last live bid, or to
    /// forced capping).
    #[must_use]
    pub fn from_agents(agents: Vec<Box<dyn BiddingAgent>>, config: ResilientConfig) -> Self {
        let mut m = Self::new(config);
        for a in agents {
            m.register(a, None);
        }
        m
    }

    /// Registers an agent together with its submission-time cooperative
    /// bid, the preferred price source should the agent default before ever
    /// bidding live.
    pub fn register(&mut self, agent: Box<dyn BiddingAgent>, fallback_bid: Option<f64>) {
        self.level0.register(agent, fallback_bid);
    }

    /// Number of registered agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.level0.len()
    }

    /// `true` when no agents are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.level0.is_empty()
    }

    /// Clears the market for a power-reduction target, walking the
    /// degradation chain as far as needed.
    ///
    /// Unlike the plain interactive market this never fails on agent
    /// faults, divergence, or infeasible targets: an unattainable target is
    /// answered with every job capped at `Δ` and the shortfall reported in
    /// [`ResilientOutcome::residual_watts`].
    ///
    /// # Errors
    ///
    /// [`MarketError::NoParticipants`] on an empty market with a positive
    /// target — the one failure no fallback can absorb.
    pub fn clear(&mut self, target: Watts) -> Result<ResilientOutcome, MarketError> {
        let target_watts = target.get();
        if target_watts <= 0.0 {
            let clamped = Watts::new(target_watts.max(0.0));
            return Ok(ResilientOutcome {
                clearing: Clearing::new(Price::ZERO, clamped, Vec::new(), 0),
                chain_level: ChainLevel::Interactive,
                converged: true,
                diverged: false,
                quarantined: Vec::new(),
                retries: 0,
                residual_watts: 0.0,
                price_trace: vec![0.0],
            });
        }
        if self.level0.is_empty() {
            return Err(MarketError::NoParticipants);
        }

        // The SoA instance is built once per clearing; the chain patches
        // live bids into it as stages hand over.
        let instance = self.level0.instance();
        let mut chain = FallbackChain::new()
            .stage(ChainLevel::Interactive, &mut self.level0)
            .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
            .stage(ChainLevel::EqlCapping, EqlCappingMechanism);
        let cleared = chain.clear(&instance, target).map_err(|e| match e {
            MechanismError::DegenerateInstance { .. } => MarketError::NoParticipants,
            MechanismError::Market(m) => m,
            // The resilient chain never surfaces a bare oscillation error
            // (level 0 degrades instead), but map it defensively.
            MechanismError::NonConvergent { rounds, last_price } => {
                MarketError::Diverged { rounds, last_price }
            }
        })?;

        let diagnostics = cleared.diagnostics();
        let clearing = Clearing::new(
            cleared.price(),
            target,
            cleared.to_allocations(),
            diagnostics.iterations,
        );
        Ok(ResilientOutcome {
            clearing,
            chain_level: diagnostics.chain_level.unwrap_or(ChainLevel::Interactive),
            converged: diagnostics.converged,
            diverged: diagnostics.diverged,
            quarantined: diagnostics.quarantined.clone(),
            retries: diagnostics.retries,
            residual_watts: cleared.residual().get(),
            price_trace: diagnostics.price_trace.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bidding::cooperative_bid;
    use crate::cost::QuadraticCost;
    use crate::market::interactive::NetGainAgent;

    const WPU: f64 = 125.0;

    fn rational(id: JobId, alpha: f64) -> NetGainAgent<QuadraticCost> {
        NetGainAgent::new(id, QuadraticCost::new(alpha, 1.0), Watts::new(WPU))
    }

    fn resilient_over(agents: Vec<Box<dyn BiddingAgent>>) -> ResilientInteractiveMarket {
        ResilientInteractiveMarket::from_agents(agents, ResilientConfig::default())
    }

    #[test]
    fn fault_rng_is_deterministic_and_uniformish() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        let xs: Vec<f64> = (0..100).map(|_| a.next_f64()).collect();
        let ys: Vec<f64> = (0..100).map(|_| b.next_f64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn healthy_agents_clear_at_interactive_level() {
        let agents: Vec<Box<dyn BiddingAgent>> = (0..4)
            .map(|i| Box::new(rational(i, 1.0 + i as f64)) as _)
            .collect();
        let mut m = resilient_over(agents);
        let out = m.clear(Watts::new(200.0)).unwrap();
        assert_eq!(out.chain_level, ChainLevel::Interactive);
        assert!(out.converged && !out.diverged);
        assert!(out.quarantined.is_empty());
        assert!(!out.is_degraded());
        assert_eq!(out.retries, 0);
        assert!(out.clearing.met_target());
        assert_eq!(out.clearing.allocations().len(), 4);
    }

    #[test]
    fn zero_target_and_empty_market_edge_cases() {
        let mut m = resilient_over(vec![Box::new(rational(0, 1.0))]);
        let out = m.clear(Watts::ZERO).unwrap();
        assert!(out.converged);
        assert_eq!(out.clearing.price(), Price::ZERO);

        let mut empty = ResilientInteractiveMarket::new(ResilientConfig::default());
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert_eq!(
            empty.clear(Watts::new(10.0)).unwrap_err(),
            MarketError::NoParticipants
        );
    }

    #[test]
    fn unresponsive_agents_are_quarantined_with_timeout_errors() {
        let mut agents: Vec<Box<dyn BiddingAgent>> = (0..6)
            .map(|i| Box::new(rational(i, 1.0 + i as f64)) as _)
            .collect();
        agents.push(Box::new(UnresponsiveAgent::new(rational(6, 1.0), 0)));
        let mut m = resilient_over(agents);
        // Target within the survivors' capability.
        let out = m.clear(Watts::new(300.0)).unwrap();
        assert_eq!(out.quarantined_ids(), vec![6]);
        assert!(matches!(
            out.quarantined[0].error,
            MarketError::AgentTimeout { job: 6, .. }
        ));
        // Two retries were burned before quarantine.
        assert_eq!(out.retries, 2);
        assert!(out.clearing.met_target());
        assert_eq!(out.chain_level, ChainLevel::Interactive);
        // The quarantined job contributes nothing at the interactive level.
        let q = out
            .clearing
            .allocations()
            .iter()
            .find(|a| a.id == 6)
            .unwrap();
        assert_eq!(q.reduction, 0.0);
    }

    #[test]
    fn crashes_skip_the_retry_budget() {
        let mut agents: Vec<Box<dyn BiddingAgent>> =
            vec![Box::new(rational(0, 1.0)), Box::new(rational(1, 2.0))];
        agents.push(Box::new(CrashAgent::new(rational(2, 1.0), 1)));
        let mut m = resilient_over(agents);
        let out = m.clear(Watts::new(150.0)).unwrap();
        assert_eq!(out.quarantined_ids(), vec![2]);
        assert!(matches!(
            out.quarantined[0].error,
            MarketError::AgentCrashed { job: 2, round: 2 }
        ));
        assert_eq!(out.retries, 0, "crashes must not burn retries");
        assert!(out.clearing.met_target());
    }

    #[test]
    fn fallback_recovers_capacity_of_quarantined_jobs() {
        // Two rational jobs can deliver at most 2 Δ · 125 W = 250 W; the
        // target of 420 W is only attainable with the two silent jobs'
        // capacity, priced at their registered cooperative bids.
        let coop = cooperative_bid(&QuadraticCost::new(1.0, 1.0)).unwrap();
        let mut m = ResilientInteractiveMarket::new(ResilientConfig::default());
        m.register(Box::new(rational(0, 1.0)), Some(coop));
        m.register(Box::new(rational(1, 2.0)), Some(coop));
        m.register(
            Box::new(UnresponsiveAgent::new(rational(2, 1.0), 0)),
            Some(coop),
        );
        m.register(
            Box::new(UnresponsiveAgent::new(rational(3, 1.0), 0)),
            Some(coop),
        );
        let out = m.clear(Watts::new(420.0)).unwrap();
        assert_eq!(out.quarantined_ids(), vec![2, 3]);
        assert!(out.is_degraded());
        assert_eq!(out.chain_level, ChainLevel::StaticFallback);
        assert!(out.clearing.met_target(), "chain must meet the target");
        assert_eq!(out.residual_watts, 0.0);
        // Quarantined jobs now carry nonzero reductions.
        for id in [2u64, 3] {
            let a = out
                .clearing
                .allocations()
                .iter()
                .find(|a| a.id == id)
                .unwrap();
            assert!(a.reduction > 0.0, "job {id} must supply in the fallback");
        }
    }

    #[test]
    fn oscillating_byzantine_triggers_watchdog_and_falls_back() {
        let cfg = ResilientConfig {
            interactive: InteractiveConfig {
                max_iterations: 100,
                ..InteractiveConfig::default()
            },
            ..ResilientConfig::default()
        };
        let mut m = ResilientInteractiveMarket::new(cfg);
        m.register(Box::new(rational(0, 1.0)), None);
        m.register(Box::new(rational(1, 2.0)), None);
        // A large byzantine participant oscillating 8x over/under swings
        // the clearing price every round.
        let big = NetGainAgent::new(2, QuadraticCost::new(0.5, 8.0), Watts::new(WPU));
        m.register(Box::new(ByzantineAgent::new(big, 8.0, true, 7)), None);
        let out = m.clear(Watts::new(800.0)).unwrap();
        assert!(out.diverged, "watchdog must detect the oscillation");
        assert!(!out.converged);
        assert!(
            out.clearing.iterations() < 100,
            "must abort well before max_iterations, used {}",
            out.clearing.iterations()
        );
        assert!(out.is_degraded());
        assert!(
            out.clearing.met_target() || out.residual_watts == 0.0,
            "fallback must still meet the target"
        );
    }

    #[test]
    fn stale_agent_does_not_prevent_clearing() {
        let mut agents: Vec<Box<dyn BiddingAgent>> =
            vec![Box::new(rational(0, 1.0)), Box::new(rational(1, 2.0))];
        agents.push(Box::new(StaleAgent::new(rational(2, 1.5), 1)));
        let mut m = resilient_over(agents);
        let out = m.clear(Watts::new(250.0)).unwrap();
        // Staleness is silent: nobody is quarantined and the exchange still
        // settles (the stale bid is just a constant supply).
        assert!(out.quarantined.is_empty());
        assert!(out.clearing.met_target());
    }

    #[test]
    fn never_bidding_stale_agent_supplies_at_zero_bid() {
        let mut stale = StaleAgent::new(rational(0, 1.0), 0);
        assert_eq!(stale.respond(0.5).unwrap(), 0.0);
        assert_eq!(stale.respond(2.0).unwrap(), 0.0);
        assert_eq!(stale.job_id(), 0);
        assert_eq!(stale.delta_max(), 1.0);
        assert_eq!(stale.watts_per_unit(), WPU);
    }

    #[test]
    fn byzantine_constant_factor_biases_bids() {
        let mut honest = rational(0, 1.0);
        let mut byz = ByzantineAgent::new(rational(0, 1.0), 4.0, false, 3);
        let h = honest.respond(0.8).unwrap();
        let b = byz.respond(0.8).unwrap();
        assert!(
            (b - 4.0 * h).abs() < 1e-12 || (b - h / 4.0).abs() < 1e-12,
            "byzantine bid {b} must be 4x off the honest {h}"
        );
        // Constant variant keeps the same factor across rounds.
        let b2 = byz.respond(0.8).unwrap();
        assert!((b2 - b).abs() < 1e-12);
        // Degenerate factors are sanitized.
        let mut id_byz = ByzantineAgent::new(rational(1, 1.0), f64::NAN, false, 3);
        let mut honest2 = rational(1, 1.0);
        assert_eq!(id_byz.respond(0.8).unwrap(), honest2.respond(0.8).unwrap());
    }

    #[test]
    fn terminal_eql_capping_meets_barely_attainable_targets() {
        // Every agent silent with no fallback bids: the static level clears
        // at the price ceiling (bid 0 → full supply), but a target inside
        // the last 0.1 % of attainable power can still fall short there —
        // the EQL level must close it exactly.
        let mut m = ResilientInteractiveMarket::new(ResilientConfig::default());
        for i in 0..4u64 {
            m.register(
                Box::new(UnresponsiveAgent::new(rational(i, 1.0), 0)),
                Some(0.3),
            );
        }
        // Attainable: 4 jobs · Δ=1 · 125 W = 500 W. Ask for all of it.
        let out = m.clear(Watts::new(500.0)).unwrap();
        assert_eq!(out.quarantined.len(), 4);
        assert!(out.is_degraded());
        assert!(
            out.clearing.total_power_reduction().get() >= 500.0 * (1.0 - 1e-6),
            "terminal level must deliver the attainable maximum, got {}",
            out.clearing.total_power_reduction()
        );
        assert!(out.residual_watts <= 1e-6);
    }

    #[test]
    fn infeasible_target_caps_everything_and_reports_residual() {
        let mut m = resilient_over(vec![
            Box::new(rational(0, 1.0)) as Box<dyn BiddingAgent>,
            Box::new(rational(1, 1.0)),
        ]);
        // Attainable 250 W; ask for 1000 W.
        let out = m.clear(Watts::new(1000.0)).unwrap();
        assert_eq!(out.chain_level, ChainLevel::EqlCapping);
        assert!((out.clearing.total_power_reduction().get() - 250.0).abs() < 1e-6);
        assert!((out.residual_watts - 750.0).abs() < 1e-6);
        // Forced capping pays nothing.
        assert_eq!(out.clearing.price(), Price::ZERO);
    }

    #[test]
    fn watchdog_ignores_contracting_trajectories() {
        let mut w = ConvergenceWatchdog::new(6, 0.01);
        // Geometric contraction: never diverges.
        let mut change = 0.5;
        for _ in 0..30 {
            assert!(!w.observe(change));
            change *= 0.7;
        }
        // Sustained oscillation: diverges once the window fills.
        let mut w = ConvergenceWatchdog::new(6, 0.01);
        let mut fired = false;
        for _ in 0..6 {
            fired = w.observe(0.4);
        }
        assert!(
            fired,
            "constant-amplitude oscillation must trip the watchdog"
        );
    }

    #[test]
    fn chain_level_ordering_and_display() {
        assert!(ChainLevel::Interactive < ChainLevel::StaticFallback);
        assert!(ChainLevel::StaticFallback < ChainLevel::EqlCapping);
        assert_eq!(ChainLevel::Interactive.to_string(), "MPR-INT");
        assert_eq!(ChainLevel::StaticFallback.to_string(), "MPR-STAT");
        assert_eq!(ChainLevel::EqlCapping.to_string(), "EQL");
    }

    #[test]
    fn unresponsive_after_some_rounds_uses_last_known_bid_in_fallback() {
        // The agent answers round 1 then goes silent: its round-1 bid is
        // the last-known bid the static fallback prices it at.
        let coop = cooperative_bid(&QuadraticCost::new(1.0, 1.0)).unwrap();
        let mut m = ResilientInteractiveMarket::new(ResilientConfig::default());
        m.register(Box::new(rational(0, 1.0)), Some(coop));
        m.register(
            Box::new(UnresponsiveAgent::new(rational(1, 1.0), 1)),
            Some(coop),
        );
        // 240 W needs both jobs (each caps at 125 W).
        let out = m.clear(Watts::new(240.0)).unwrap();
        assert_eq!(out.quarantined_ids(), vec![1]);
        assert!(out.clearing.met_target());
        let a = out
            .clearing
            .allocations()
            .iter()
            .find(|a| a.id == 1)
            .unwrap();
        assert!(a.reduction > 0.0);
    }
}
