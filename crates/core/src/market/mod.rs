//! The two MPR market implementations and their shared outcome types.
//!
//! * [`static_market::StaticMarket`] — **MPR-STAT**: bids fixed at job
//!   submission, one bisection solve per overload. Maximum agility.
//! * [`interactive::InteractiveMarket`] — **MPR-INT**: iterative price/bid
//!   exchange converging to the socially optimal allocation.
//! * [`faults::ResilientInteractiveMarket`] — MPR-INT hardened against
//!   unresponsive/crashing/stale/byzantine agents, with an explicit
//!   MPR-INT → MPR-STAT → EQL degradation chain.
//! * [`transport`] — the deadline-bounded asynchronous message layer
//!   (PriceAnnounce/BidReply over [`transport::Transport`]) that MPR-INT
//!   runs on in a distributed deployment.

pub mod faults;
pub mod interactive;
pub mod payment;
pub mod static_market;
pub mod transport;

use crate::participant::JobId;
use crate::units::{Price, Watts};

/// The resource reduction assigned to one job by a market clearing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Allocation {
    /// The job being reduced.
    pub id: JobId,
    /// Resource reduction `δ_m(q')` in cores.
    pub reduction: f64,
    /// Power reduction in watts obtained from this job.
    pub power_reduction: f64,
    /// Clearing price the reward is paid at.
    pub price: f64,
}

impl Allocation {
    /// Reward rate `q'·δ_m` in core-hours per hour of capping.
    #[must_use]
    pub fn reward_rate(&self) -> f64 {
        self.price * self.reduction
    }
}

/// Outcome of clearing an MPR market.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Clearing {
    price: Price,
    target: Watts,
    allocations: Vec<Allocation>,
    iterations: usize,
}

impl Clearing {
    pub(crate) fn new(
        price: Price,
        target: Watts,
        allocations: Vec<Allocation>,
        iterations: usize,
    ) -> Self {
        Self {
            price,
            target,
            allocations,
            iterations,
        }
    }

    /// The market clearing price `q'`, in core-hours per watt.
    #[must_use]
    pub fn price(&self) -> Price {
        self.price
    }

    /// The power-reduction target this clearing was solved for.
    #[must_use]
    pub fn target_watts(&self) -> Watts {
        self.target
    }

    /// Per-job reductions. Jobs supplying zero still appear with
    /// `reduction == 0`.
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Number of market iterations used (1 for MPR-STAT).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total resource reduction across all jobs, in cores.
    #[must_use]
    pub fn total_reduction(&self) -> f64 {
        self.allocations.iter().map(|a| a.reduction).sum()
    }

    /// Total power reduction across all jobs.
    #[must_use]
    pub fn total_power_reduction(&self) -> Watts {
        self.allocations
            .iter()
            .map(|a| Watts::new(a.power_reduction))
            .sum()
    }

    /// Total reward payoff rate `Σ q'·δ_m`, in core-hours per hour.
    #[must_use]
    pub fn total_reward_rate(&self) -> f64 {
        self.allocations.iter().map(Allocation::reward_rate).sum()
    }

    /// Whether the clearing met its power-reduction target (within
    /// numerical tolerance).
    #[must_use]
    pub fn met_target(&self) -> bool {
        self.total_power_reduction().get() >= self.target.get() * (1.0 - 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearing_aggregates() {
        let c = Clearing::new(
            Price::new(0.5),
            Watts::new(250.0),
            vec![
                Allocation {
                    id: 0,
                    reduction: 1.0,
                    power_reduction: 125.0,
                    price: 0.5,
                },
                Allocation {
                    id: 1,
                    reduction: 1.0,
                    power_reduction: 125.0,
                    price: 0.5,
                },
            ],
            1,
        );
        assert_eq!(c.price(), Price::new(0.5));
        assert_eq!(c.total_reduction(), 2.0);
        assert_eq!(c.total_power_reduction(), Watts::new(250.0));
        assert_eq!(c.total_reward_rate(), 1.0);
        assert!(c.met_target());
        assert_eq!(c.iterations(), 1);
        assert_eq!(c.target_watts(), Watts::new(250.0));
    }

    #[test]
    fn unmet_target_detected() {
        let c = Clearing::new(
            Price::new(0.5),
            Watts::new(1000.0),
            vec![Allocation {
                id: 0,
                reduction: 1.0,
                power_reduction: 125.0,
                price: 0.5,
            }],
            1,
        );
        assert!(!c.met_target());
    }
}
