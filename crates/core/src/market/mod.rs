//! The two MPR market implementations and their shared outcome types.
//!
//! * [`static_market::StaticMarket`] — **MPR-STAT**: bids fixed at job
//!   submission, one bisection solve per overload. Maximum agility.
//! * [`interactive::InteractiveMarket`] — **MPR-INT**: iterative price/bid
//!   exchange converging to the socially optimal allocation.
//! * [`faults::ResilientInteractiveMarket`] — MPR-INT hardened against
//!   unresponsive/crashing/stale/byzantine agents, with an explicit
//!   MPR-INT → MPR-STAT → EQL degradation chain.

pub mod faults;
pub mod interactive;
pub mod static_market;

use crate::participant::JobId;

/// The resource reduction assigned to one job by a market clearing.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Allocation {
    /// The job being reduced.
    pub id: JobId,
    /// Resource reduction `δ_m(q')` in cores.
    pub reduction: f64,
    /// Power reduction in watts obtained from this job.
    pub power_reduction: f64,
    /// Clearing price the reward is paid at.
    pub price: f64,
}

impl Allocation {
    /// Reward rate `q'·δ_m` in core-hours per hour of capping.
    #[must_use]
    pub fn reward_rate(&self) -> f64 {
        self.price * self.reduction
    }
}

/// Outcome of clearing an MPR market.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Clearing {
    price: f64,
    target_watts: f64,
    allocations: Vec<Allocation>,
    iterations: usize,
}

impl Clearing {
    pub(crate) fn new(
        price: f64,
        target_watts: f64,
        allocations: Vec<Allocation>,
        iterations: usize,
    ) -> Self {
        Self {
            price,
            target_watts,
            allocations,
            iterations,
        }
    }

    /// The market clearing price `q'`.
    #[must_use]
    pub fn price(&self) -> f64 {
        self.price
    }

    /// The power-reduction target this clearing was solved for, in watts.
    #[must_use]
    pub fn target_watts(&self) -> f64 {
        self.target_watts
    }

    /// Per-job reductions. Jobs supplying zero still appear with
    /// `reduction == 0`.
    #[must_use]
    pub fn allocations(&self) -> &[Allocation] {
        &self.allocations
    }

    /// Number of market iterations used (1 for MPR-STAT).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Total resource reduction across all jobs, in cores.
    #[must_use]
    pub fn total_reduction(&self) -> f64 {
        self.allocations.iter().map(|a| a.reduction).sum()
    }

    /// Total power reduction across all jobs, in watts.
    #[must_use]
    pub fn total_power_reduction(&self) -> f64 {
        self.allocations.iter().map(|a| a.power_reduction).sum()
    }

    /// Total reward payoff rate `Σ q'·δ_m`, in core-hours per hour.
    #[must_use]
    pub fn total_reward_rate(&self) -> f64 {
        self.allocations.iter().map(Allocation::reward_rate).sum()
    }

    /// Whether the clearing met its power-reduction target (within
    /// numerical tolerance).
    #[must_use]
    pub fn met_target(&self) -> bool {
        self.total_power_reduction() >= self.target_watts * (1.0 - 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearing_aggregates() {
        let c = Clearing::new(
            0.5,
            250.0,
            vec![
                Allocation {
                    id: 0,
                    reduction: 1.0,
                    power_reduction: 125.0,
                    price: 0.5,
                },
                Allocation {
                    id: 1,
                    reduction: 1.0,
                    power_reduction: 125.0,
                    price: 0.5,
                },
            ],
            1,
        );
        assert_eq!(c.price(), 0.5);
        assert_eq!(c.total_reduction(), 2.0);
        assert_eq!(c.total_power_reduction(), 250.0);
        assert_eq!(c.total_reward_rate(), 1.0);
        assert!(c.met_target());
        assert_eq!(c.iterations(), 1);
        assert_eq!(c.target_watts(), 250.0);
    }

    #[test]
    fn unmet_target_detected() {
        let c = Clearing::new(
            0.5,
            1000.0,
            vec![Allocation {
                id: 0,
                reduction: 1.0,
                power_reduction: 125.0,
                price: 0.5,
            }],
            1,
        );
        assert!(!c.met_target());
    }
}
