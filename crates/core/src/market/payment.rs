//! Exactly-once payment accounting for the durable market ledger.
//!
//! The manager pays users in core-hours for reductions they accept
//! (Section III-D). When payments are journaled to a write-ahead ledger
//! and the manager can crash and replay, the same payment can be *seen*
//! twice — once from the surviving journal and once recomputed during
//! replay — but it must be *applied* exactly once. [`PaymentLog`] enforces
//! that with an idempotency key: one payment per `(slot, participant)` per
//! run, duplicates counted and suppressed.
//!
//! Amounts are accumulated in arrival order, so a log fed the same
//! payments in the same order always reaches a bit-identical total — the
//! property the simulator's recovery-equivalence tests assert.

use std::collections::BTreeMap;

use crate::units::CoreHours;

/// Idempotency key of one payment: a participant is paid at most once per
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PaymentKey {
    /// Simulation slot the payment belongs to.
    pub slot: u64,
    /// Paid participant (the engine uses the trace job index).
    pub participant: u64,
}

/// Exactly-once payment ledger: applies each [`PaymentKey`] once,
/// suppresses and counts duplicates, and keeps a deterministic running
/// total.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PaymentLog {
    applied: BTreeMap<PaymentKey, f64>,
    total_core_hours: f64,
    duplicates_suppressed: u64,
    conflicting_duplicates: u64,
}

impl PaymentLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a payment. Returns `true` when the key was fresh (the
    /// amount entered the total) and `false` for a suppressed duplicate.
    ///
    /// A duplicate whose amount differs from the first application is
    /// counted separately in [`conflicting_duplicates`]
    /// (PaymentLog::conflicting_duplicates) — replay recomputing a
    /// *different* amount for a journaled payment is a divergence signal,
    /// not a benign retransmit.
    pub fn apply(&mut self, key: PaymentKey, amount: CoreHours) -> bool {
        let amount = amount.get();
        match self.applied.get(&key) {
            Some(first) => {
                self.duplicates_suppressed += 1;
                if (first - amount).abs() > f64::EPSILON * first.abs().max(1.0) {
                    self.conflicting_duplicates += 1;
                }
                false
            }
            None => {
                self.applied.insert(key, amount);
                self.total_core_hours += amount;
                true
            }
        }
    }

    /// Sum of all applied (unique) payments, in arrival order.
    #[must_use]
    pub fn total(&self) -> CoreHours {
        CoreHours::new(self.total_core_hours)
    }

    /// Number of unique payments applied.
    #[must_use]
    pub fn payments(&self) -> u64 {
        self.applied.len() as u64
    }

    /// Duplicates suppressed (same key seen again).
    #[must_use]
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// Duplicates whose amount disagreed with the first application —
    /// evidence of replay divergence.
    #[must_use]
    pub fn conflicting_duplicates(&self) -> u64 {
        self.conflicting_duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(slot: u64, participant: u64) -> PaymentKey {
        PaymentKey { slot, participant }
    }

    #[test]
    fn fresh_payments_accumulate_in_order() {
        let mut log = PaymentLog::new();
        assert!(log.apply(key(0, 1), CoreHours::new(1.5)));
        assert!(log.apply(key(0, 2), CoreHours::new(2.5)));
        assert!(log.apply(key(1, 1), CoreHours::new(0.25)));
        assert_eq!(log.payments(), 3);
        assert_eq!(log.total().get(), 1.5 + 2.5 + 0.25);
        assert_eq!(log.duplicates_suppressed(), 0);
    }

    #[test]
    fn duplicate_keys_are_suppressed_exactly_once_semantics() {
        let mut log = PaymentLog::new();
        assert!(log.apply(key(3, 7), CoreHours::new(4.0)));
        assert!(!log.apply(key(3, 7), CoreHours::new(4.0)));
        assert!(!log.apply(key(3, 7), CoreHours::new(4.0)));
        assert_eq!(log.total().get(), 4.0);
        assert_eq!(log.payments(), 1);
        assert_eq!(log.duplicates_suppressed(), 2);
        assert_eq!(log.conflicting_duplicates(), 0);
    }

    #[test]
    fn conflicting_amounts_are_flagged() {
        let mut log = PaymentLog::new();
        log.apply(key(1, 1), CoreHours::new(2.0));
        log.apply(key(1, 1), CoreHours::new(3.0));
        assert_eq!(log.duplicates_suppressed(), 1);
        assert_eq!(log.conflicting_duplicates(), 1);
        assert_eq!(log.total().get(), 2.0, "first application wins");
    }

    #[test]
    fn total_is_order_deterministic() {
        // Same payments in the same order twice -> bit-identical totals.
        let amounts = [0.1, 0.37, 1e-9, 123.456, 0.2];
        let run = || {
            let mut log = PaymentLog::new();
            for (i, &a) in amounts.iter().enumerate() {
                log.apply(key(i as u64, 0), CoreHours::new(a));
            }
            log.total().get()
        };
        assert_eq!(run().to_bits(), run().to_bits());
    }
}
