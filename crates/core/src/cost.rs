//! User-perceived cost of performance loss, `C(δ)` (Section III-C).
//!
//! The paper measures cost as the *extra execution* (additional core-hours)
//! needed to finish a job after its resources were reduced, optionally scaled
//! by a user coefficient `α ≥ 1` (Eqn. 6). This module defines the
//! [`CostModel`] abstraction plus the analytic families used in the paper's
//! evaluation: linear, quadratic, power-law and the logarithmic fit
//! `cost = a·log(b·x) − a` of Section IV-B. Table-driven costs derived from
//! measured application profiles live in the `mpr-apps` crate.

use std::sync::Arc;

use crate::numeric;

/// The cost of performance loss incurred by a job when `delta` units of
/// resource are reduced for one unit of time.
///
/// Units follow the paper: both `delta` and the returned cost are measured
/// in cores (equivalently, core-hours per hour of capping), so the *unit
/// cost* `C(δ)/δ` — the bidding reference of Fig. 4 — is dimensionless.
///
/// Implementations must be non-decreasing on `[0, delta_max]` with
/// `cost(0) == 0`; the market's incentive-compatibility arguments
/// (Section III-D) additionally assume monotone cost.
pub trait CostModel: Send + Sync {
    /// Cost of reducing `delta` resources. `delta` is clamped by callers to
    /// `[0, delta_max]`; implementations should extrapolate gracefully
    /// beyond it (EQL may push jobs past their profiled range).
    fn cost(&self, delta: f64) -> f64;

    /// The largest resource reduction this job can meaningfully supply
    /// (the `Δ` of its supply function).
    fn delta_max(&self) -> f64;

    /// Cost per unit of resource reduction, `C(δ)/δ` — the reference curve
    /// a user bids against (Fig. 4). Defined as the limit slope at `δ → 0`.
    fn unit_cost(&self, delta: f64) -> f64 {
        if delta > 1e-12 {
            self.cost(delta) / delta
        } else {
            let eps = 1e-9 * self.delta_max().max(1e-9);
            self.cost(eps) / eps
        }
    }

    /// Marginal cost `C'(δ)`, estimated numerically by default.
    fn marginal(&self, delta: f64) -> f64 {
        let hi = self.delta_max().max(delta);
        numeric::derivative(&|x| self.cost(x), delta, 0.0, hi)
    }
}

impl<T: CostModel + ?Sized> CostModel for &T {
    fn cost(&self, delta: f64) -> f64 {
        (**self).cost(delta)
    }
    fn delta_max(&self) -> f64 {
        (**self).delta_max()
    }
    fn unit_cost(&self, delta: f64) -> f64 {
        (**self).unit_cost(delta)
    }
    fn marginal(&self, delta: f64) -> f64 {
        (**self).marginal(delta)
    }
}

impl<T: CostModel + ?Sized> CostModel for Arc<T> {
    fn cost(&self, delta: f64) -> f64 {
        (**self).cost(delta)
    }
    fn delta_max(&self) -> f64 {
        (**self).delta_max()
    }
    fn unit_cost(&self, delta: f64) -> f64 {
        (**self).unit_cost(delta)
    }
    fn marginal(&self, delta: f64) -> f64 {
        (**self).marginal(delta)
    }
}

impl<T: CostModel + ?Sized> CostModel for Box<T> {
    fn cost(&self, delta: f64) -> f64 {
        (**self).cost(delta)
    }
    fn delta_max(&self) -> f64 {
        (**self).delta_max()
    }
    fn unit_cost(&self, delta: f64) -> f64 {
        (**self).unit_cost(delta)
    }
    fn marginal(&self, delta: f64) -> f64 {
        (**self).marginal(delta)
    }
}

/// Linear cost `C(δ) = slope · δ`: constant unit cost.
///
/// ```
/// use mpr_core::{CostModel, LinearCost};
/// let c = LinearCost::new(2.0, 0.7);
/// assert_eq!(c.cost(0.5), 1.0);
/// assert_eq!(c.unit_cost(0.5), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearCost {
    slope: f64,
    delta_max: f64,
}

impl LinearCost {
    /// Creates a linear cost with the given slope and maximum reduction.
    #[must_use]
    pub fn new(slope: f64, delta_max: f64) -> Self {
        Self { slope, delta_max }
    }
}

impl CostModel for LinearCost {
    fn cost(&self, delta: f64) -> f64 {
        self.slope * delta.max(0.0)
    }
    fn delta_max(&self) -> f64 {
        self.delta_max
    }
    fn marginal(&self, _delta: f64) -> f64 {
        self.slope
    }
}

/// Quadratic cost `C(δ) = alpha · δ²` — the "quadratic cost" alternative of
/// Section III-C, where the perceived cost grows with the square of the
/// performance loss.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuadraticCost {
    alpha: f64,
    delta_max: f64,
}

impl QuadraticCost {
    /// Creates a quadratic cost with coefficient `alpha`.
    #[must_use]
    pub fn new(alpha: f64, delta_max: f64) -> Self {
        Self { alpha, delta_max }
    }
}

impl CostModel for QuadraticCost {
    fn cost(&self, delta: f64) -> f64 {
        let d = delta.max(0.0);
        self.alpha * d * d
    }
    fn delta_max(&self) -> f64 {
        self.delta_max
    }
    fn marginal(&self, delta: f64) -> f64 {
        2.0 * self.alpha * delta.max(0.0)
    }
}

/// Power-law cost `C(δ) = coeff · δ^exponent` with `exponent >= 1`.
///
/// This is the convex family we fit application profiles with by default;
/// it captures the super-linear growth of extra execution seen in Fig. 7(b)
/// while keeping closed-form marginals.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PowerLawCost {
    coeff: f64,
    exponent: f64,
    delta_max: f64,
}

impl PowerLawCost {
    /// Creates a power-law cost `coeff · δ^exponent`.
    #[must_use]
    pub fn new(coeff: f64, exponent: f64, delta_max: f64) -> Self {
        Self {
            coeff,
            exponent,
            delta_max,
        }
    }

    /// The exponent `p`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }
}

impl CostModel for PowerLawCost {
    fn cost(&self, delta: f64) -> f64 {
        self.coeff * delta.max(0.0).powf(self.exponent)
    }
    fn delta_max(&self) -> f64 {
        self.delta_max
    }
    fn marginal(&self, delta: f64) -> f64 {
        let d = delta.max(0.0);
        if d <= 0.0 && self.exponent < 1.0 {
            return f64::INFINITY;
        }
        self.coeff * self.exponent * d.powf(self.exponent - 1.0)
    }
}

/// The paper's logarithmic fit `cost = a · ln(b·x) − a` (Section IV-B),
/// clamped to be non-negative.
///
/// Note that the literal log form is *concave* in the reduction; the paper
/// uses it as a smoothing fit of the measured costs. We expose it faithfully
/// for the cost-model ablation; the market solvers handle it through their
/// generic numeric paths.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogFitCost {
    a: f64,
    b: f64,
    delta_max: f64,
}

impl LogFitCost {
    /// Creates the log-fit cost with parameters `a` and `b`.
    #[must_use]
    pub fn new(a: f64, b: f64, delta_max: f64) -> Self {
        Self { a, b, delta_max }
    }

    /// Model parameters `(a, b)`.
    #[must_use]
    pub fn params(&self) -> (f64, f64) {
        (self.a, self.b)
    }
}

impl CostModel for LogFitCost {
    fn cost(&self, delta: f64) -> f64 {
        let d = delta.max(0.0);
        if d <= 0.0 || self.b * d <= 0.0 {
            return 0.0;
        }
        (self.a * (self.b * d).ln() - self.a).max(0.0)
    }
    fn delta_max(&self) -> f64 {
        self.delta_max
    }
}

/// Scales a *per-core* cost model up to a job running on `cores` cores
/// (Section IV-B, "we also scale up our per-core model with the core
/// allocations of the respective HPC job").
///
/// If the per-core model tolerates reduction `Δ` with cost `c(δ)`, the job
/// tolerates `cores·Δ` with cost `cores · c(δ/cores)`: every core is slowed
/// by the same fraction and contributes the same per-core extra execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaledCost<C> {
    inner: C,
    cores: f64,
}

impl<C: CostModel> ScaledCost<C> {
    /// Wraps `inner` (a per-core model) for a job with `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is not a positive finite number.
    #[must_use]
    pub fn new(inner: C, cores: f64) -> Self {
        assert!(
            cores.is_finite() && cores > 0.0,
            "cores must be positive and finite, got {cores}"
        );
        Self { inner, cores }
    }

    /// The wrapped per-core model.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Number of cores the job occupies.
    #[must_use]
    pub fn cores(&self) -> f64 {
        self.cores
    }
}

impl<C: CostModel> CostModel for ScaledCost<C> {
    fn cost(&self, delta: f64) -> f64 {
        self.cores * self.inner.cost(delta / self.cores)
    }
    fn delta_max(&self) -> f64 {
        self.cores * self.inner.delta_max()
    }
    fn marginal(&self, delta: f64) -> f64 {
        self.inner.marginal(delta / self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_cost_basics() {
        let c = LinearCost::new(3.0, 0.5);
        assert_eq!(c.cost(0.0), 0.0);
        assert!((c.cost(0.2) - 0.6).abs() < 1e-12);
        assert_eq!(c.delta_max(), 0.5);
        assert_eq!(c.marginal(0.3), 3.0);
        assert!((c.unit_cost(0.4) - 3.0).abs() < 1e-9);
        // Negative inputs are treated as zero reduction.
        assert_eq!(c.cost(-1.0), 0.0);
    }

    #[test]
    fn quadratic_cost_grows_superlinearly() {
        let c = QuadraticCost::new(2.0, 1.0);
        assert_eq!(c.cost(0.5), 0.5);
        assert!(c.unit_cost(0.8) > c.unit_cost(0.2));
        assert!((c.marginal(0.5) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_law_matches_closed_form() {
        let c = PowerLawCost::new(1.5, 2.5, 0.7);
        let d = 0.4;
        assert!((c.cost(d) - 1.5 * d.powf(2.5)).abs() < 1e-12);
        assert!((c.marginal(d) - 1.5 * 2.5 * d.powf(1.5)).abs() < 1e-9);
        assert_eq!(c.exponent(), 2.5);
    }

    #[test]
    fn log_fit_is_clamped_nonnegative() {
        let c = LogFitCost::new(0.5, 10.0, 0.7);
        // Below x = e/b the raw formula is negative; we clamp to 0.
        assert_eq!(c.cost(0.01), 0.0);
        let x = 0.5;
        assert!((c.cost(x) - (0.5 * (10.0 * x).ln() - 0.5)).abs() < 1e-12);
        assert_eq!(c.cost(0.0), 0.0);
        assert_eq!(c.params(), (0.5, 10.0));
    }

    #[test]
    fn scaled_cost_scales_both_axes() {
        let per_core = QuadraticCost::new(1.0, 0.7);
        let job = ScaledCost::new(per_core, 10.0);
        assert!((job.delta_max() - 7.0).abs() < 1e-12);
        // Reducing 2 cores of a 10-core job = 0.2 per core on each of 10 cores.
        assert!((job.cost(2.0) - 10.0 * per_core.cost(0.2)).abs() < 1e-12);
        assert_eq!(job.cores(), 10.0);
    }

    #[test]
    #[should_panic(expected = "cores must be positive")]
    fn scaled_cost_rejects_zero_cores() {
        let _ = ScaledCost::new(LinearCost::new(1.0, 0.5), 0.0);
    }

    #[test]
    fn trait_objects_and_smart_pointers_forward() {
        let c: Box<dyn CostModel> = Box::new(LinearCost::new(2.0, 0.3));
        assert_eq!(c.cost(0.1), 0.2);
        let arc: std::sync::Arc<dyn CostModel> = std::sync::Arc::new(QuadraticCost::new(1.0, 0.5));
        assert_eq!(arc.delta_max(), 0.5);
        let r: &dyn CostModel = &LinearCost::new(1.0, 1.0);
        assert_eq!(r.unit_cost(0.5), 1.0);
    }

    #[test]
    fn default_unit_cost_near_zero_uses_limit_slope() {
        let c = LinearCost::new(4.0, 1.0);
        assert!((c.unit_cost(0.0) - 4.0).abs() < 1e-6);
    }

    proptest! {
        /// All analytic cost families are non-negative and non-decreasing.
        #[test]
        fn costs_are_monotone(
            d1 in 0.0f64..1.0,
            d2 in 0.0f64..1.0,
            coeff in 0.01f64..10.0,
        ) {
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            let models: Vec<Box<dyn CostModel>> = vec![
                Box::new(LinearCost::new(coeff, 1.0)),
                Box::new(QuadraticCost::new(coeff, 1.0)),
                Box::new(PowerLawCost::new(coeff, 2.2, 1.0)),
                Box::new(LogFitCost::new(coeff, 8.0, 1.0)),
            ];
            for m in &models {
                prop_assert!(m.cost(lo) >= 0.0);
                prop_assert!(m.cost(hi) + 1e-12 >= m.cost(lo));
            }
        }

        /// Scaling is exact: a job of k cores costs k times its per-core cost.
        #[test]
        fn scaling_identity(cores in 1.0f64..128.0, frac in 0.0f64..0.7) {
            let per_core = PowerLawCost::new(2.0, 2.0, 0.7);
            let job = ScaledCost::new(per_core, cores);
            let delta = frac * cores;
            prop_assert!((job.cost(delta) - cores * per_core.cost(frac)).abs() < 1e-9);
        }
    }
}
