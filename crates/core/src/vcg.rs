//! A VCG (Vickrey–Clarke–Groves) procurement auction for power reduction —
//! the mechanism-design alternative the paper contrasts MPR against
//! (Section VI, "Mechanism design applications").
//!
//! In the VCG auction users *reveal their private cost functions* to the
//! manager, who computes the cost-optimal allocation (OPT) and pays each
//! contributing user its **pivot payment**: the externality it imposes on
//! the rest of the system,
//!
//! ```text
//! p_m = C*₋ₘ − (C* − c_m(δ*_m))
//! ```
//!
//! where `C*` is the optimal total cost with everyone, and `C*₋ₘ` the
//! optimal cost with user `m` removed. The auction is truthful (reporting
//! the true cost function is a dominant strategy) and individually rational
//! (payments cover costs) — but it requires users to disclose their cost
//! functions, and it needs `M+1` OPT solves instead of MClr's single
//! bisection. Supply-function bidding trades a little optimality (MPR-STAT)
//! or a few interaction rounds (MPR-INT) for privacy and scalability; the
//! `ablation_vcg` experiment quantifies that trade.

use crate::error::MarketError;
use crate::opt::{self, OptJob, OptMethod};
use crate::participant::JobId;
use crate::units::Watts;

/// Outcome of a VCG procurement auction.
#[derive(Debug, Clone, PartialEq)]
pub struct VcgOutcome {
    /// Per-job `(id, reduction, payment)` in input order. Jobs with zero
    /// reduction receive zero payment.
    pub awards: Vec<VcgAward>,
    /// Total cost of the chosen (optimal) allocation.
    pub total_cost: f64,
    /// Total payment disbursed by the manager.
    pub total_payment: f64,
}

/// One job's allocation and payment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcgAward {
    /// The job.
    pub id: JobId,
    /// Resource reduction assigned, cores.
    pub reduction: f64,
    /// VCG pivot payment, in reward units (core-hours per hour).
    pub payment: f64,
    /// The job's own cost at its assigned reduction.
    pub cost: f64,
}

impl VcgOutcome {
    /// The manager's overpayment relative to the social cost
    /// (`total_payment − total_cost ≥ 0` — the price of truthfulness).
    #[must_use]
    pub fn information_rent(&self) -> f64 {
        self.total_payment - self.total_cost
    }
}

/// Runs the VCG auction for a power-reduction target over jobs with
/// *revealed* cost models.
///
/// ```
/// use mpr_core::opt::{OptJob, OptMethod};
/// use mpr_core::{vcg, QuadraticCost, Watts};
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// let costs: Vec<QuadraticCost> =
///     [1.0, 2.0, 4.0].iter().map(|&a| QuadraticCost::new(a, 1.0)).collect();
/// let jobs: Vec<OptJob<'_>> = costs
///     .iter()
///     .enumerate()
///     .map(|(i, c)| OptJob::new(i as u64, c, Watts::new(125.0)))
///     .collect();
/// let outcome = vcg::auction(&jobs, Watts::new(200.0), OptMethod::Auto)?;
/// // Individually rational: every pivot payment covers the user's cost.
/// for award in &outcome.awards {
///     assert!(award.payment >= award.cost - 1e-9);
/// }
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * Propagates [`MarketError::NoParticipants`] / [`MarketError::Infeasible`]
///   from the underlying OPT solve.
/// * Returns [`MarketError::Infeasible`] if removing any *contributing* job
///   makes the target unreachable (a monopolist supplier has unbounded
///   pivot payment).
pub fn auction(
    jobs: &[OptJob<'_>],
    target: Watts,
    method: OptMethod,
) -> Result<VcgOutcome, MarketError> {
    let full = opt::solve(jobs, target, method)?;
    let mut awards = Vec::with_capacity(jobs.len());
    let mut total_payment = 0.0;
    for ((i, job), &(id, reduction)) in jobs.iter().enumerate().zip(&full.reductions) {
        if reduction <= 1e-12 {
            awards.push(VcgAward {
                id,
                reduction: 0.0,
                payment: 0.0,
                cost: 0.0,
            });
            continue;
        }
        let own_cost = job.cost_at(reduction);
        // Others' optimal cost when m does not exist.
        let mut others: Vec<OptJob<'_>> = Vec::with_capacity(jobs.len() - 1);
        others.extend(
            jobs.iter()
                .enumerate()
                .filter(|(k, _)| *k != i)
                .map(|(_, j)| *j),
        );
        let without = opt::solve(&others, target, method)?;
        // Others' cost within the full optimum.
        let others_cost_in_full = full.total_cost - own_cost;
        let payment = (without.total_cost - others_cost_in_full).max(own_cost);
        total_payment += payment;
        awards.push(VcgAward {
            id,
            reduction,
            payment,
            cost: own_cost,
        });
    }
    Ok(VcgOutcome {
        awards,
        total_cost: full.total_cost,
        total_payment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, QuadraticCost};

    const W125: Watts = Watts::new(125.0);

    fn w(x: f64) -> Watts {
        Watts::new(x)
    }

    fn jobs(costs: &[QuadraticCost]) -> Vec<OptJob<'_>> {
        costs
            .iter()
            .enumerate()
            .map(|(i, c)| OptJob::new(i as u64, c, W125))
            .collect()
    }

    #[test]
    fn payments_cover_costs() {
        let costs: Vec<QuadraticCost> = [1.0, 2.0, 4.0]
            .iter()
            .map(|&a| QuadraticCost::new(a, 1.0))
            .collect();
        let out = auction(&jobs(&costs), w(200.0), OptMethod::Auto).unwrap();
        for award in &out.awards {
            assert!(
                award.payment >= award.cost - 1e-9,
                "individual rationality violated: pay {} < cost {}",
                award.payment,
                award.cost
            );
        }
        assert!(out.information_rent() >= -1e-9);
        assert!(out.total_payment >= out.total_cost);
    }

    #[test]
    fn zero_reduction_gets_zero_payment() {
        // One cheap job can cover the whole (small) target; the expensive
        // one is idle and unpaid.
        let cheap = QuadraticCost::new(0.01, 1.0);
        let dear = QuadraticCost::new(100.0, 1.0);
        let j = vec![OptJob::new(0, &cheap, W125), OptJob::new(1, &dear, W125)];
        let out = auction(&j, w(20.0), OptMethod::Auto).unwrap();
        let dear_award = out.awards.iter().find(|a| a.id == 1).unwrap();
        assert!(dear_award.reduction < 0.05);
        if dear_award.reduction <= 1e-12 {
            assert_eq!(dear_award.payment, 0.0);
        }
    }

    #[test]
    fn truthfulness_spot_check() {
        // Under-reporting the cost cannot increase a user's utility
        // (payment − true cost).
        let truthful = QuadraticCost::new(2.0, 1.0);
        let liar = QuadraticCost::new(1.0, 1.0); // claims to be cheaper
        let other = QuadraticCost::new(2.0, 1.0);
        let target = w(150.0);

        let honest = auction(
            &[
                OptJob::new(0, &truthful, W125),
                OptJob::new(1, &other, W125),
                OptJob::new(2, &other, W125),
            ],
            target,
            OptMethod::Auto,
        )
        .unwrap();
        let lying = auction(
            &[
                OptJob::new(0, &liar, W125),
                OptJob::new(1, &other, W125),
                OptJob::new(2, &other, W125),
            ],
            target,
            OptMethod::Auto,
        )
        .unwrap();

        let utility = |out: &VcgOutcome| {
            let a = &out.awards[0];
            // True utility uses the TRUE cost at the assigned reduction.
            a.payment - truthful.cost(a.reduction)
        };
        assert!(
            utility(&honest) >= utility(&lying) - 1e-6,
            "misreporting must not pay: honest {} vs lying {}",
            utility(&honest),
            utility(&lying)
        );
    }

    #[test]
    fn monopolist_supplier_is_infeasible() {
        // Removing the only big supplier makes the target unreachable.
        let big = QuadraticCost::new(1.0, 10.0);
        let small = QuadraticCost::new(1.0, 0.1);
        let j = vec![OptJob::new(0, &big, W125), OptJob::new(1, &small, W125)];
        // Target needs more than `small` alone can give.
        let err = auction(&j, w(500.0), OptMethod::Auto).unwrap_err();
        assert!(matches!(err, MarketError::Infeasible { .. }));
    }

    #[test]
    fn empty_and_trivial_targets() {
        assert!(matches!(
            auction(&[], w(10.0), OptMethod::Auto),
            Err(MarketError::NoParticipants)
        ));
        let c = QuadraticCost::new(1.0, 1.0);
        let j = vec![OptJob::new(0, &c, W125)];
        let out = auction(&j, Watts::ZERO, OptMethod::Auto).unwrap();
        assert_eq!(out.total_payment, 0.0);
        assert_eq!(out.total_cost, 0.0);
    }

    #[test]
    fn symmetric_jobs_pay_symmetrically() {
        let costs: Vec<QuadraticCost> = (0..4).map(|_| QuadraticCost::new(2.0, 1.0)).collect();
        let out = auction(&jobs(&costs), w(300.0), OptMethod::Auto).unwrap();
        let p0 = out.awards[0].payment;
        for a in &out.awards {
            assert!((a.payment - p0).abs() < 1e-6, "payments {:?}", out.awards);
        }
    }
}
