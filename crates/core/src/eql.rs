//! The EQL benchmark: performance-oblivious uniform slowdown.
//!
//! EQL "equally slows down all cores in the system to reduce power"
//! (Section IV-A). It ignores every job's sensitivity — the same per-core
//! reduction fraction is applied to a memory-bound job as to a compute-bound
//! one — which is exactly why it suffers the highest performance cost in the
//! paper's comparison (Fig. 9) and can even push sensitive applications past
//! their feasible operating range (Fig. 15, EQL at 20 % oversubscription).

use crate::error::MarketError;
use crate::participant::JobId;
use crate::units::Watts;

/// One job as seen by EQL: just its size. No cost model, no bids — EQL is
/// deliberately oblivious.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EqlJob {
    /// The job id.
    pub id: JobId,
    /// Number of cores the job runs on.
    pub cores: f64,
    /// The job's actual maximum feasible reduction `Δ_m` (cores). EQL does
    /// *not* respect this when choosing the uniform fraction; it is recorded
    /// so the outcome can report which jobs were pushed past their limit.
    pub delta_max: f64,
    /// Power reduction per core of reduction, in watts.
    pub watts_per_unit: f64,
}

/// Result of an EQL uniform reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct EqlOutcome {
    /// The uniform per-core reduction fraction `f ∈ [0, 1]` applied to
    /// every job.
    pub fraction: f64,
    /// Per-job reductions `(job id, f · cores)` in input order.
    pub reductions: Vec<(JobId, f64)>,
    /// Jobs whose assigned reduction exceeds their feasible `Δ_m` — these
    /// are operating outside their profiled range (runaway cost).
    pub violations: Vec<JobId>,
    /// Total power reduction in watts.
    pub total_power: f64,
}

impl EqlOutcome {
    /// `true` when no job was pushed past its feasible reduction.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Computes the EQL reduction for a power target.
///
/// The uniform fraction is `f = target / (Σ cores · watts_per_unit)`,
/// capped at 1 (cores cannot run backwards). The "bookkeeping" of logging
/// every job's new allocation is what dominates EQL's solution time at
/// scale (Fig. 10(a)).
///
/// ```
/// use mpr_core::eql::{reduce, EqlJob};
/// use mpr_core::Watts;
///
/// # fn main() -> Result<(), mpr_core::MarketError> {
/// let jobs = [
///     EqlJob { id: 0, cores: 10.0, delta_max: 7.0, watts_per_unit: 125.0 },
///     EqlJob { id: 1, cores: 30.0, delta_max: 21.0, watts_per_unit: 125.0 },
/// ];
/// let out = reduce(&jobs, Watts::new(1000.0))?;
/// assert!((out.fraction - 0.2).abs() < 1e-12); // everyone slows by 20 %
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`MarketError::NoParticipants`] for an empty job list with positive
///   target.
/// * [`MarketError::Infeasible`] when even `f = 1` (all cores stopped)
///   cannot reach the target.
pub fn reduce(jobs: &[EqlJob], target: Watts) -> Result<EqlOutcome, MarketError> {
    let target_watts = target.get();
    if target_watts <= 0.0 {
        return Ok(EqlOutcome {
            fraction: 0.0,
            reductions: jobs.iter().map(|j| (j.id, 0.0)).collect(),
            violations: Vec::new(),
            total_power: 0.0,
        });
    }
    if jobs.is_empty() {
        return Err(MarketError::NoParticipants);
    }
    let capacity: f64 = jobs.iter().map(|j| j.cores * j.watts_per_unit).sum();
    if capacity < target_watts * (1.0 - 1e-9) {
        return Err(MarketError::Infeasible {
            target_watts,
            attainable_watts: capacity,
        });
    }
    let fraction = (target_watts / capacity).min(1.0);
    let mut violations = Vec::new();
    let reductions: Vec<(JobId, f64)> = jobs
        .iter()
        .map(|j| {
            let delta = fraction * j.cores;
            if delta > j.delta_max + 1e-12 {
                violations.push(j.id);
            }
            (j.id, delta)
        })
        .collect();
    let total_power = reductions
        .iter()
        .zip(jobs)
        .map(|((_, d), j)| d * j.watts_per_unit)
        .sum();
    Ok(EqlOutcome {
        fraction,
        reductions,
        violations,
        total_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(id: u64, cores: f64, delta_max: f64) -> EqlJob {
        EqlJob {
            id,
            cores,
            delta_max,
            watts_per_unit: 125.0,
        }
    }

    #[test]
    fn uniform_fraction_reaches_target() {
        let jobs = vec![job(0, 10.0, 7.0), job(1, 30.0, 21.0)];
        let out = reduce(&jobs, Watts::new(1000.0)).unwrap();
        // f = 1000 / (40 * 125) = 0.2
        assert!((out.fraction - 0.2).abs() < 1e-12);
        assert!((out.reductions[0].1 - 2.0).abs() < 1e-12);
        assert!((out.reductions[1].1 - 6.0).abs() < 1e-12);
        assert!((out.total_power - 1000.0).abs() < 1e-9);
        assert!(out.is_feasible());
    }

    #[test]
    fn violations_reported_for_sensitive_jobs() {
        // Job 1 tolerates only 10 % reduction; a 40 % uniform cut violates it.
        let jobs = vec![job(0, 10.0, 9.0), job(1, 10.0, 1.0)];
        let out = reduce(&jobs, Watts::new(1000.0)).unwrap();
        assert!((out.fraction - 0.4).abs() < 1e-12);
        assert_eq!(out.violations, vec![1]);
        assert!(!out.is_feasible());
    }

    #[test]
    fn zero_target_no_reduction() {
        let jobs = vec![job(0, 4.0, 2.0)];
        let out = reduce(&jobs, Watts::ZERO).unwrap();
        assert_eq!(out.fraction, 0.0);
        assert!(out.is_feasible());
    }

    #[test]
    fn empty_and_overlarge_targets_err() {
        assert_eq!(
            reduce(&[], Watts::new(10.0)),
            Err(MarketError::NoParticipants)
        );
        let jobs = vec![job(0, 1.0, 0.7)];
        assert!(matches!(
            reduce(&jobs, Watts::new(1e6)),
            Err(MarketError::Infeasible { .. })
        ));
    }

    proptest! {
        /// The fraction is within [0, 1], identical for all jobs, and the
        /// power target is met exactly.
        #[test]
        fn fraction_uniform_and_exact(
            sizes in proptest::collection::vec(1.0f64..64.0, 1..20),
            frac in 0.05f64..0.95,
        ) {
            let jobs: Vec<EqlJob> = sizes
                .iter()
                .enumerate()
                .map(|(i, &c)| job(i as u64, c, 0.7 * c))
                .collect();
            let capacity: f64 = jobs.iter().map(|j| j.cores * 125.0).sum();
            let target = frac * capacity;
            let out = reduce(&jobs, Watts::new(target)).unwrap();
            prop_assert!(out.fraction >= 0.0 && out.fraction <= 1.0);
            for ((_, d), j) in out.reductions.iter().zip(&jobs) {
                prop_assert!((d / j.cores - out.fraction).abs() < 1e-9);
            }
            prop_assert!((out.total_power - target).abs() < 1e-6 * target.max(1.0));
        }
    }
}
