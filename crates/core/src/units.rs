//! Newtype wrappers for the physical quantities used throughout MPR.
//!
//! The market math itself operates on `f64` for ergonomics, but public
//! aggregate results use these newtypes so that watts, cores, core-hours and
//! prices cannot be confused ([C-NEWTYPE]).
//!
//! All four types are thin wrappers: construct them with `from`/`new`, read
//! them back with [`get`](Watts::get), and add/subtract values of the same
//! unit. Multiplying by a bare `f64` scales the quantity.
//!
//! ```
//! use mpr_core::units::{Cores, Watts};
//!
//! let per_core = Watts::new(125.0);
//! let reduction = Cores::new(4.0);
//! let saved = per_core * reduction.get();
//! assert_eq!(saved, Watts::new(500.0));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Display suffix for this unit, leading space included (e.g.
            /// `" W"`). Report and CSV emitters derive their unit tokens
            /// from this constant instead of hand-writing the strings.
            pub const SUFFIX: &'static str = $suffix;

            /// Wraps a raw value in this unit.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying value.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` if the value is finite (not NaN / infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps into `[lo, hi]`.
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Total ordering over the underlying floats (IEEE 754
            /// `totalOrder`): safe for sorting even with NaN present.
            ///
            /// ```
            #[doc = concat!("use mpr_core::units::", stringify!($name), " as U;")]
            /// let mut v = vec![U::new(2.0), U::new(f64::NAN), U::new(1.0)];
            /// v.sort_by(|a, b| a.total_cmp(b));
            /// assert_eq!(v[0], U::new(1.0));
            /// ```
            #[must_use]
            pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// Ratio of two same-unit quantities, guarded: `None` when the
            /// divisor is zero or either operand is non-finite.
            ///
            /// ```
            #[doc = concat!("use mpr_core::units::", stringify!($name), " as U;")]
            /// assert_eq!(U::new(10.0).checked_ratio(U::new(4.0)), Some(2.5));
            /// assert_eq!(U::new(10.0).checked_ratio(U::ZERO), None);
            /// assert_eq!(U::new(f64::NAN).checked_ratio(U::new(1.0)), None);
            /// ```
            #[must_use]
            pub fn checked_ratio(self, rhs: Self) -> Option<f64> {
                // lint: allow(nan-safety) exact-zero divisor guard: any nonzero value, however small, divides fine
                if !self.0.is_finite() || !rhs.0.is_finite() || rhs.0 == 0.0 {
                    return None;
                }
                Some(self.0 / rhs.0)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                // Forward width/precision flags to the inner float so
                // `{:.1}` renders as e.g. `42.0 W`, then append the suffix.
                fmt::Display::fmt(&self.0, f)?;
                f.write_str($suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two quantities of the same unit (dimensionless).
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    " W"
);
unit!(
    /// A (possibly fractional) quantity of CPU/GPU cores. A core slowed to
    /// 90 % of its nominal speed counts as 0.9 cores (Section III-A).
    Cores,
    " cores"
);
unit!(
    /// Core-hours: availability of one HPC core for one hour — the currency
    /// in which MPR rewards are paid (Section I). Displayed as `ch`, the
    /// paper's shorthand.
    CoreHours,
    " ch"
);
unit!(
    /// Market unit price `q`: reward paid per unit of shed power —
    /// core-hours per watt-slot, displayed as `ch/W` (PAPER.md Eqns. 3–7).
    /// Numerically it behaves as a scalar multiplier throughout the
    /// mechanism code (Section IV-B, "Bidding references").
    Price,
    " ch/W"
);

/// Compensation for shedding power at a clearing price: `q′ · δ_m` of
/// Eqn. (5), where the price is expressed in core-hours per watt-slot.
///
/// ```
/// use mpr_core::units::{CoreHours, Price, Watts};
///
/// let q = Price::new(0.02); // core-hours per shed watt-slot
/// let shed = Watts::new(500.0);
/// assert_eq!(q * shed, CoreHours::new(10.0));
/// assert_eq!(shed * q, CoreHours::new(10.0)); // commutes
/// ```
impl Mul<Watts> for Price {
    type Output = CoreHours;
    fn mul(self, rhs: Watts) -> CoreHours {
        CoreHours::new(self.get() * rhs.get())
    }
}

/// See [`Mul<Watts> for Price`](struct.Price.html#impl-Mul%3CWatts%3E-for-Price).
impl Mul<Price> for Watts {
    type Output = CoreHours;
    fn mul(self, rhs: Price) -> CoreHours {
        rhs * self
    }
}

impl Watts {
    /// Guarded watts-by-price division: how many watt-slots one core-hour
    /// of compensation pays for at this shed wattage — the divisor guard
    /// used when inverting Eqn. (5). `None` when the price is zero,
    /// negative or non-finite, or the wattage is non-finite.
    ///
    /// ```
    /// use mpr_core::units::{Price, Watts};
    ///
    /// assert_eq!(Watts::new(500.0).checked_div_price(Price::new(0.02)), Some(25_000.0));
    /// assert_eq!(Watts::new(500.0).checked_div_price(Price::ZERO), None);
    /// assert_eq!(Watts::new(500.0).checked_div_price(Price::new(f64::NAN)), None);
    /// ```
    #[must_use]
    // lint: raw-f64-ok dimensionless watt-slot count (W per (ch/W) is no catalogued unit)
    pub fn checked_div_price(self, price: Price) -> Option<f64> {
        if !self.is_finite() || !price.is_finite() || price.get() <= 0.0 {
            return None;
        }
        Some(self.get() / price.get())
    }
}

impl CoreHours {
    /// The shed wattage a compensation budget buys at a clearing price —
    /// the inverse of `Price * Watts`. `None` when the price is zero,
    /// negative or non-finite, or the budget is non-finite.
    ///
    /// ```
    /// use mpr_core::units::{CoreHours, Price, Watts};
    ///
    /// let budget = CoreHours::new(10.0);
    /// assert_eq!(budget.affordable_shed(Price::new(0.02)), Some(Watts::new(500.0)));
    /// assert_eq!(budget.affordable_shed(Price::ZERO), None);
    /// ```
    #[must_use]
    pub fn affordable_shed(self, price: Price) -> Option<Watts> {
        if !self.is_finite() || !price.is_finite() || price.get() <= 0.0 {
            return None;
        }
        Some(Watts::new(self.get() / price.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Watts::new(100.0);
        let b = Watts::new(25.0);
        assert_eq!(a + b, Watts::new(125.0));
        assert_eq!(a - b, Watts::new(75.0));
        assert_eq!(a * 2.0, Watts::new(200.0));
        assert_eq!(a / 4.0, Watts::new(25.0));
        assert_eq!(a / b, 4.0);
        assert_eq!(-a, Watts::new(-100.0));
    }

    #[test]
    fn assign_ops() {
        let mut w = Cores::new(1.0);
        w += Cores::new(2.0);
        assert_eq!(w, Cores::new(3.0));
        w -= Cores::new(0.5);
        assert_eq!(w, Cores::new(2.5));
    }

    #[test]
    fn sum_of_iterator() {
        let total: CoreHours = (1..=4).map(|i| CoreHours::new(f64::from(i))).sum();
        assert_eq!(total, CoreHours::new(10.0));
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Watts::new(301.8).to_string(), "301.8 W");
        assert_eq!(Cores::new(2.0).to_string(), "2 cores");
        assert_eq!(CoreHours::new(7.25).to_string(), "7.25 ch");
        assert_eq!(Price::new(0.5).to_string(), "0.5 ch/W");
    }

    #[test]
    fn display_forwards_precision_and_width() {
        // `{:.1}` must format the inner float, not silently ignore the
        // precision flag — CLI output relies on this.
        assert_eq!(format!("{:.1}", Watts::new(301.84)), "301.8 W");
        assert_eq!(format!("{:.0}", Watts::new(99.6)), "100 W");
        assert_eq!(format!("{:.2}", CoreHours::new(1.0)), "1.00 ch");
        assert_eq!(format!("{:.4}", Price::new(0.55)), "0.5500 ch/W");
    }

    #[test]
    fn suffix_constants_match_display() {
        assert_eq!(Watts::SUFFIX, " W");
        assert_eq!(CoreHours::SUFFIX, " ch");
        assert_eq!(Price::SUFFIX, " ch/W");
        let rendered = Watts::new(1.0).to_string();
        assert!(rendered.ends_with(Watts::SUFFIX));
    }

    #[test]
    fn ordering_and_clamping() {
        let lo = Price::new(0.1);
        let hi = Price::new(0.9);
        assert!(lo < hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn conversions() {
        let w: Watts = 42.0.into();
        let raw: f64 = w.into();
        assert_eq!(raw, 42.0);
        assert!(w.is_finite());
        assert!(!Watts::new(f64::NAN).is_finite());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Watts::default(), Watts::ZERO);
    }

    #[test]
    fn cross_unit_compensation() {
        let q = Price::new(0.5);
        let shed = Watts::new(40.0);
        assert_eq!(q * shed, CoreHours::new(20.0));
        assert_eq!(shed * q, CoreHours::new(20.0));
        assert_eq!((q * shed).affordable_shed(q), Some(shed));
    }

    #[test]
    fn guards_reject_degenerate_divisors() {
        assert_eq!(Watts::new(1.0).checked_div_price(Price::new(-1.0)), None);
        assert_eq!(
            CoreHours::new(1.0).affordable_shed(Price::new(f64::INFINITY)),
            None
        );
        assert_eq!(
            Watts::new(f64::INFINITY).checked_div_price(Price::new(1.0)),
            None
        );
        assert_eq!(
            Watts::new(3.0).checked_ratio(Watts::new(f64::INFINITY)),
            None
        );
    }

    #[test]
    fn total_cmp_sorts_nan_last() {
        let mut v = [
            Watts::new(f64::NAN),
            Watts::new(1.0),
            Watts::new(-2.0),
            Watts::new(0.5),
        ];
        v.sort_by(Watts::total_cmp);
        assert_eq!(v[0], Watts::new(-2.0));
        assert_eq!(v[1], Watts::new(0.5));
        assert_eq!(v[2], Watts::new(1.0));
        assert!(!v[3].is_finite());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Unit arithmetic is exactly the underlying f64 arithmetic:
            /// every op round-trips through `get()`/`new()` bit-for-bit.
            #[test]
            fn arithmetic_roundtrips_through_get_new(
                a in -1e9f64..1e9,
                b in -1e9f64..1e9,
                k in 0.001f64..1e6,
            ) {
                let (wa, wb) = (Watts::new(a), Watts::new(b));
                prop_assert_eq!((wa + wb).get(), a + b);
                prop_assert_eq!((wa - wb).get(), a - b);
                prop_assert_eq!((wa * k).get(), a * k);
                prop_assert_eq!((wa / k).get(), a / k);
                prop_assert_eq!((-wa).get(), -a);
                prop_assert_eq!(Watts::new(wa.get()), wa);
                prop_assert_eq!(CoreHours::new(a).get(), a);
                prop_assert_eq!(Price::new(b).get(), b);
                prop_assert_eq!(Cores::new(k).get(), k);
            }

            /// `Price * Watts` equals raw multiplication and inverts
            /// through `affordable_shed` up to float rounding.
            #[test]
            fn compensation_inverts(
                q in 0.001f64..100.0,
                w in 0.001f64..1e6,
            ) {
                let comp = Price::new(q) * Watts::new(w);
                prop_assert_eq!(comp.get(), q * w);
                let back = comp.affordable_shed(Price::new(q)).expect("positive price");
                prop_assert!((back.get() - w).abs() <= 1e-9 * w.abs().max(1.0));
            }

            /// The division guards accept exactly the documented domain.
            #[test]
            fn guards_match_domain(
                w in -1e6f64..1e6,
                q in -10.0f64..10.0,
            ) {
                let got = Watts::new(w).checked_div_price(Price::new(q));
                prop_assert_eq!(got.is_some(), q > 0.0);
                let ratio = Watts::new(w).checked_ratio(Watts::new(q));
                prop_assert_eq!(ratio.is_some(), q != 0.0);
            }
        }
    }
}
