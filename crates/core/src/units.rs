//! Newtype wrappers for the physical quantities used throughout MPR.
//!
//! The market math itself operates on `f64` for ergonomics, but public
//! aggregate results use these newtypes so that watts, cores, core-hours and
//! prices cannot be confused ([C-NEWTYPE]).
//!
//! All four types are thin wrappers: construct them with `from`/`new`, read
//! them back with [`get`](Watts::get), and add/subtract values of the same
//! unit. Multiplying by a bare `f64` scales the quantity.
//!
//! ```
//! use mpr_core::units::{Cores, Watts};
//!
//! let per_core = Watts::new(125.0);
//! let reduction = Cores::new(4.0);
//! let saved = per_core * reduction.get();
//! assert_eq!(saved, Watts::new(500.0));
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! unit {
    ($(#[$doc:meta])* $name:ident, $suffix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(f64);

        impl $name {
            /// Zero of this unit.
            pub const ZERO: $name = $name(0.0);

            /// Wraps a raw value in this unit.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the underlying value.
            #[must_use]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the larger of `self` and `other`.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// `true` if the value is finite (not NaN / infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }

        impl From<$name> for f64 {
            fn from(value: $name) -> f64 {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Ratio of two quantities of the same unit (dimensionless).
        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

unit!(
    /// Electrical power in watts.
    Watts,
    " W"
);
unit!(
    /// A (possibly fractional) quantity of CPU/GPU cores. A core slowed to
    /// 90 % of its nominal speed counts as 0.9 cores (Section III-A).
    Cores,
    " cores"
);
unit!(
    /// Core-hours: availability of one HPC core for one hour — the currency
    /// in which MPR rewards are paid (Section I).
    CoreHours,
    " core-hours"
);
unit!(
    /// Market unit price `q`: reward per unit of resource reduction. The
    /// paper uses cores both as the unit of cost and of reduction, making
    /// the price dimensionless (Section IV-B, "Bidding references").
    Price,
    ""
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let a = Watts::new(100.0);
        let b = Watts::new(25.0);
        assert_eq!(a + b, Watts::new(125.0));
        assert_eq!(a - b, Watts::new(75.0));
        assert_eq!(a * 2.0, Watts::new(200.0));
        assert_eq!(a / 4.0, Watts::new(25.0));
        assert_eq!(a / b, 4.0);
        assert_eq!(-a, Watts::new(-100.0));
    }

    #[test]
    fn assign_ops() {
        let mut w = Cores::new(1.0);
        w += Cores::new(2.0);
        assert_eq!(w, Cores::new(3.0));
        w -= Cores::new(0.5);
        assert_eq!(w, Cores::new(2.5));
    }

    #[test]
    fn sum_of_iterator() {
        let total: CoreHours = (1..=4).map(|i| CoreHours::new(f64::from(i))).sum();
        assert_eq!(total, CoreHours::new(10.0));
    }

    #[test]
    fn display_includes_unit_suffix() {
        assert_eq!(Watts::new(301.8).to_string(), "301.8 W");
        assert_eq!(Cores::new(2.0).to_string(), "2 cores");
        assert_eq!(Price::new(0.5).to_string(), "0.5");
    }

    #[test]
    fn ordering_and_clamping() {
        let lo = Price::new(0.1);
        let hi = Price::new(0.9);
        assert!(lo < hi);
        assert_eq!(lo.max(hi), hi);
        assert_eq!(lo.min(hi), lo);
    }

    #[test]
    fn conversions() {
        let w: Watts = 42.0.into();
        let raw: f64 = w.into();
        assert_eq!(raw, 42.0);
        assert!(w.is_finite());
        assert!(!Watts::new(f64::NAN).is_finite());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Watts::default(), Watts::ZERO);
    }
}
