//! Seeded chaos matrix for the deadline-bounded bid transport
//! (DESIGN.md §12).
//!
//! Every interactive clearing here runs over a [`SimNet`] virtual-time
//! network injecting one fault shape — drop, delay, duplication or
//! partition — at four seeds each, through the full
//! MPR-INT-NET → MPR-STAT → EQL-capping degradation chain. The invariants:
//!
//! * the chain meets every feasible power-reduction target (or reports the
//!   exact residual) under every fault shape and seed;
//! * the same seed reproduces the clearing bit-for-bit (virtual time, no
//!   wall clock anywhere);
//! * duplication and reordering *without loss* are invisible: the clearing
//!   `(price, reductions, payments)` is identical to the in-process
//!   [`PerfectTransport`] — delivery-order invariance of the idempotent
//!   manager endpoint.

use mpr_core::bidding::StaticStrategy;
use mpr_core::mechanism::Clearing;
use mpr_core::{
    ChainLevel, EqlCappingMechanism, FallbackChain, InteractiveConfig, MclrMechanism, Mechanism,
    NetFaultConfig, NetGainAgent, PerfectTransport, QuadraticCost, ResilientConfig, SimNet,
    Transport, TransportConfig, TransportedInteractiveMechanism, Watts,
};
use proptest::prelude::*;

const WATTS_PER_UNIT: f64 = 125.0;

/// Builds a transported exchange over `transport` with one cooperative
/// quadratic-cost agent per alpha (delta 1.0, so attainable reduction is
/// `alphas.len() * WATTS_PER_UNIT`).
fn mech_over<T: Transport>(
    transport: T,
    alphas: &[f64],
    transport_config: TransportConfig,
) -> TransportedInteractiveMechanism<T> {
    let mut mech = TransportedInteractiveMechanism::new(
        ResilientConfig {
            interactive: InteractiveConfig::default(),
            ..ResilientConfig::default()
        },
        transport_config,
        transport,
    );
    for (i, &alpha) in alphas.iter().enumerate() {
        let cost = QuadraticCost::new(alpha, 1.0);
        let bid = StaticStrategy::Cooperative
            .supply_for(&cost)
            .expect("quadratic costs yield valid cooperative supplies")
            .bid();
        mech.register(
            Box::new(NetGainAgent::new(
                i as u64,
                cost,
                Watts::new(WATTS_PER_UNIT),
            )),
            Some(bid),
        );
    }
    mech
}

/// Clears `target_w` through the full degradation chain with the given
/// transported exchange at level 0.
fn clear_through_chain<T: Transport + 'static>(
    level0: TransportedInteractiveMechanism<T>,
    target_w: f64,
) -> Clearing {
    let instance = level0.instance();
    let mut chain = FallbackChain::new()
        .stage(ChainLevel::Interactive, level0)
        .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
        .stage(ChainLevel::EqlCapping, EqlCappingMechanism);
    chain
        .clear(&instance, Watts::new(target_w))
        .expect("the degradation chain clears best-effort")
}

/// The fuzz matrix's four canonical fault shapes.
fn shapes() -> [(&'static str, NetFaultConfig); 4] {
    [
        (
            "drop",
            NetFaultConfig {
                drop_prob: 0.3,
                ..NetFaultConfig::default()
            },
        ),
        (
            "delay",
            NetFaultConfig {
                min_delay_ticks: 1,
                max_delay_ticks: 6,
                ..NetFaultConfig::default()
            },
        ),
        (
            "duplicate",
            NetFaultConfig {
                duplicate_prob: 0.4,
                ..NetFaultConfig::default()
            },
        ),
        (
            "partition",
            NetFaultConfig {
                partition_prob: 0.2,
                partition_ticks: 8,
                ..NetFaultConfig::default()
            },
        ),
    ]
}

const SEEDS: [u64; 4] = [1, 7, 42, 1337];

#[test]
fn chaos_matrix_meets_the_target_on_every_seed() {
    let alphas = [0.6, 1.0, 1.5, 2.2, 3.0, 0.8, 1.2, 2.6];
    let attainable = alphas.len() as f64 * WATTS_PER_UNIT;
    let target = 0.6 * attainable;
    for seed in SEEDS {
        for (name, cfg) in shapes() {
            let level0 = mech_over(SimNet::new(cfg, seed), &alphas, TransportConfig::default());
            let clearing = clear_through_chain(level0, target);
            let met = clearing.met_target();
            let residual = clearing.residual().get();
            assert!(
                met ^ (residual > 0.0),
                "{name}/{seed}: met={met} residual={residual} must be exclusive"
            );
            let delivered = clearing.total_power_reduction().get();
            assert!(
                (delivered + residual - target).abs() <= 1e-6 * target,
                "{name}/{seed}: delivered {delivered} + residual {residual} != target {target}"
            );
            // The target is feasible and every agent has a registered
            // fallback bid, so the chain's MPR-STAT stage covers any
            // transport failure: the ISSUE's resilience bar is *met*, not
            // merely accounted for.
            assert!(
                met,
                "{name}/{seed}: the degradation chain must meet the feasible \
                 target, got residual {residual}"
            );
        }
    }
}

#[test]
fn chaos_clearings_are_deterministic_per_seed() {
    let alphas = [0.7, 1.3, 2.1, 3.4];
    let target = 0.5 * alphas.len() as f64 * WATTS_PER_UNIT;
    for seed in SEEDS {
        for (name, cfg) in shapes() {
            let run = |()| {
                clear_through_chain(
                    mech_over(SimNet::new(cfg, seed), &alphas, TransportConfig::default()),
                    target,
                )
            };
            let a = run(());
            let b = run(());
            assert_eq!(a.price(), b.price(), "{name}/{seed}: price must replay");
            assert_eq!(
                a.reductions(),
                b.reductions(),
                "{name}/{seed}: reductions must replay"
            );
            assert_eq!(
                a.payment_rates(),
                b.payment_rates(),
                "{name}/{seed}: payments must replay"
            );
            let (da, db) = (a.diagnostics(), b.diagnostics());
            assert_eq!(da.retries, db.retries, "{name}/{seed}: retransmit count");
            assert_eq!(
                da.quarantined, db.quarantined,
                "{name}/{seed}: quarantine set"
            );
            assert_eq!(
                da.transport.as_ref().map(|t| t.virtual_ticks),
                db.transport.as_ref().map(|t| t.virtual_ticks),
                "{name}/{seed}: virtual clock"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Delivery-order invariance: with duplication and reordering but *no
    /// loss*, every round's accepted bid is the agent's one bid for that
    /// round (the idempotent endpoint re-replies its cached answer, the
    /// manager ignores duplicates and late replies), so the clearing is
    /// identical to the perfect in-process channel.
    #[test]
    fn duplication_and_reordering_without_loss_is_invisible(
        alphas in proptest::collection::vec(0.5f64..4.0, 2..8),
        dup in 0.0f64..0.9,
        max_delay in 1u64..5,
        seed in 0u64..u64::MAX,
        frac in 0.3f64..0.8,
    ) {
        let target = frac * alphas.len() as f64 * WATTS_PER_UNIT;
        let cfg = NetFaultConfig {
            drop_prob: 0.0,
            duplicate_prob: dup,
            min_delay_ticks: 1,
            max_delay_ticks: max_delay,
            partition_prob: 0.0,
            ..NetFaultConfig::default()
        };
        // Generous deadline: the worst no-loss round trip is
        // `2 * max_delay`, so no reply can miss it and no agent straggles.
        let tcfg = TransportConfig {
            deadline_ticks: 2 * max_delay + 4,
            ..TransportConfig::default()
        };
        let noisy = clear_through_chain(mech_over(SimNet::new(cfg, seed), &alphas, tcfg), target);
        let perfect = clear_through_chain(
            mech_over(PerfectTransport::new(), &alphas, TransportConfig::default()),
            target,
        );
        prop_assert_eq!(noisy.price(), perfect.price());
        prop_assert_eq!(noisy.reductions(), perfect.reductions());
        prop_assert_eq!(noisy.payment_rates(), perfect.payment_rates());
        prop_assert_eq!(noisy.iterations(), perfect.iterations());
        let d = noisy.diagnostics();
        prop_assert_eq!(d.quarantined.len(), 0);
        if let Some(t) = d.transport.as_ref() {
            prop_assert_eq!(t.straggler_rounds, 0);
            prop_assert_eq!(t.channel.dropped, 0);
        }
    }
}
