//! Cross-mechanism property tests over a shared [`MarketInstance`]
//! (DESIGN.md §11).
//!
//! Every mechanism clears the *same* structure-of-arrays instance, so the
//! paper's qualitative ordering becomes a checkable invariant:
//!
//! * total performance-loss cost is ordered `OPT ≤ MPR-STAT ≤ EQL`
//!   whenever all three meet the target (Fig. 10 / Table 1), and
//! * every [`Clearing`](mpr_core::mechanism::Clearing) either meets its
//!   target or carries a strictly positive residual — never both, never
//!   neither.

use std::sync::Arc;

use mpr_core::bidding::StaticStrategy;
use mpr_core::mechanism::Clearing;
use mpr_core::{
    ChainLevel, CostModel, EqlCappingMechanism, EqlMechanism, FallbackChain, InteractiveConfig,
    InteractiveMechanism, MarketInstance, MclrMechanism, Mechanism, OptMechanism, OptMethod,
    ParticipantSpec, QuadraticCost, VcgMechanism, Watts,
};
use proptest::prelude::*;

const WATTS_PER_UNIT: f64 = 125.0;

/// One synthetic job: a quadratic cost drawn from `(alpha, delta_max)`.
#[derive(Debug, Clone, Copy)]
struct JobSpec {
    alpha: f64,
    delta: f64,
}

fn job_strategy() -> impl Strategy<Value = JobSpec> {
    (0.5f64..4.0, 0.5f64..4.0).prop_map(|(alpha, delta)| JobSpec { alpha, delta })
}

/// Builds the shared instance: every row carries its cooperative standing
/// bid (for MPR-STAT), its cost model (for MPR-INT/OPT/VCG) and its core
/// count (for EQL, `cores = Δ` so the uniform slowdown always fits).
fn instance(jobs: &[JobSpec]) -> MarketInstance {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            let cost = QuadraticCost::new(j.alpha, j.delta);
            let supply = StaticStrategy::Cooperative
                .supply_for(&cost)
                .expect("generated costs are valid");
            ParticipantSpec::new(i as u64, j.delta, Watts::new(WATTS_PER_UNIT))
                .with_bid(supply.bid())
                .with_cores(j.delta)
                .with_cost(Arc::new(cost))
        })
        .collect()
}

/// Ground-truth total cost of a clearing, evaluated with the jobs' own
/// cost models (never the mechanism's internal view).
fn total_cost(jobs: &[JobSpec], clearing: &Clearing) -> f64 {
    jobs.iter()
        .zip(clearing.reductions())
        .map(|(j, &r)| QuadraticCost::new(j.alpha, j.delta).cost(r))
        .sum()
}

fn attainable(jobs: &[JobSpec]) -> f64 {
    jobs.iter().map(|j| j.delta * WATTS_PER_UNIT).sum()
}

/// Every best-effort mechanism, for the met-XOR-residual sweep.
fn all_mechanisms() -> Vec<Box<dyn Mechanism>> {
    let int_cfg = InteractiveConfig {
        max_iterations: 60,
        ..InteractiveConfig::default()
    };
    vec![
        Box::new(MclrMechanism::best_effort()),
        Box::new(InteractiveMechanism::best_effort(int_cfg)),
        Box::new(OptMechanism::best_effort(OptMethod::Auto)),
        Box::new(EqlMechanism),
        Box::new(EqlCappingMechanism),
        Box::new(VcgMechanism::best_effort(OptMethod::Auto)),
        Box::new(
            FallbackChain::new()
                .stage(
                    ChainLevel::Interactive,
                    InteractiveMechanism::best_effort(int_cfg),
                )
                .stage(ChainLevel::StaticFallback, MclrMechanism::best_effort())
                .stage(ChainLevel::EqlCapping, EqlCappingMechanism),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fig. 10's cost ordering, instance-by-instance: the centralized
    /// optimum never costs more than the static market, which never costs
    /// more than the performance-oblivious uniform slowdown.
    ///
    /// The `STAT ≤ EQL` leg holds in the oversubscription regime the paper
    /// operates in (reclaim demand ≥ half the attainable reduction, so every
    /// supply curve is active). Under light load the market deliberately
    /// concentrates reduction on the cheapest bidders — break-even supply
    /// bids are average-cost, not marginal-cost — and a quadratic cost can
    /// then favour EQL's proportional spread; see
    /// `opt_lower_bounds_every_mechanism_at_any_load` for the part that is
    /// load-independent.
    #[test]
    fn opt_stat_eql_cost_ordering(
        jobs in proptest::collection::vec(job_strategy(), 2..16),
        frac in 0.50f64..0.90,
    ) {
        let inst = instance(&jobs);
        let target = Watts::new(attainable(&jobs) * frac);

        let opt = OptMechanism::strict(OptMethod::Auto).clear(&inst, target).unwrap();
        let stat = MclrMechanism::strict().clear(&inst, target).unwrap();
        let eql = EqlMechanism.clear(&inst, target).unwrap();

        // The ordering is only claimed between clearings that met the
        // target; interior fractions make all three feasible.
        prop_assert!(opt.met_target());
        prop_assert!(stat.met_target());
        prop_assert!(eql.met_target());

        let c_opt = total_cost(&jobs, &opt);
        let c_stat = total_cost(&jobs, &stat);
        let c_eql = total_cost(&jobs, &eql);
        // Tolerance covers bisection/rootfinding slack on (near-)degenerate
        // instances where two mechanisms coincide.
        let tol = 1e-6;
        prop_assert!(
            c_opt <= c_stat * (1.0 + tol) + tol,
            "OPT {c_opt} must not exceed MPR-STAT {c_stat}"
        );
        prop_assert!(
            c_stat <= c_eql * (1.0 + tol) + tol,
            "MPR-STAT {c_stat} must not exceed EQL {c_eql}"
        );
    }

    /// The load-independent half of the ordering: OPT is the constrained
    /// cost minimizer, so *no* target-meeting mechanism can beat it at any
    /// utilization level.
    #[test]
    fn opt_lower_bounds_every_mechanism_at_any_load(
        jobs in proptest::collection::vec(job_strategy(), 2..16),
        frac in 0.05f64..0.95,
    ) {
        let inst = instance(&jobs);
        let target = Watts::new(attainable(&jobs) * frac);
        let opt = OptMechanism::strict(OptMethod::Auto).clear(&inst, target).unwrap();
        prop_assert!(opt.met_target());
        let c_opt = total_cost(&jobs, &opt);
        for (name, clearing) in [
            ("MPR-STAT", MclrMechanism::strict().clear(&inst, target).unwrap()),
            ("EQL", EqlMechanism.clear(&inst, target).unwrap()),
        ] {
            prop_assert!(clearing.met_target());
            let c = total_cost(&jobs, &clearing);
            prop_assert!(
                c_opt <= c * (1.0 + 1e-6) + 1e-6,
                "OPT {c_opt} must not exceed {name} {c}"
            );
        }
    }

    /// Every clearing from every mechanism — feasible targets, infeasible
    /// targets, capped fallbacks — meets its target XOR reports a strictly
    /// positive residual.
    #[test]
    fn every_clearing_meets_target_xor_positive_residual(
        jobs in proptest::collection::vec(job_strategy(), 1..10),
        frac in 0.10f64..1.50,
    ) {
        let inst = instance(&jobs);
        let target = Watts::new(attainable(&jobs) * frac);
        for mut mech in all_mechanisms() {
            let clearing = match mech.clear(&inst, target) {
                Ok(c) => c,
                // A bare MPR-INT may refuse an oscillating exchange rather
                // than ship an arbitrary cycle point; the FallbackChain
                // entry in this sweep covers the degradation path.
                Err(mpr_core::MechanismError::NonConvergent { .. }) => continue,
                Err(e) => panic!("{} must clear best-effort: {e}", mech.name()),
            };
            let met = clearing.met_target();
            let residual = clearing.residual().get();
            prop_assert!(
                met ^ (residual > 0.0),
                "{}: met={met} residual={residual} must be exclusive",
                mech.name()
            );
            // The residual is exactly the unmet remainder.
            let delivered = clearing.total_power_reduction().get();
            if !met {
                prop_assert!(
                    (delivered + residual - target.get()).abs() <= 1e-6 * target.get().max(1.0),
                    "{}: delivered {delivered} + residual {residual} != target {}",
                    mech.name(),
                    target.get()
                );
            }
        }
    }

    /// The interactive game is cost-ordered too when it converges:
    /// `OPT ≤ MPR-INT`, and MPR-INT tracks the optimum closely (its Nash
    /// equilibrium is socially near-optimal, Section III-C).
    #[test]
    fn interactive_tracks_the_optimum(
        jobs in proptest::collection::vec(job_strategy(), 2..10),
        frac in 0.15f64..0.70,
    ) {
        let inst = instance(&jobs);
        let target = Watts::new(attainable(&jobs) * frac);
        let opt = OptMechanism::strict(OptMethod::Auto).clear(&inst, target).unwrap();
        let int = InteractiveMechanism::strict(InteractiveConfig::default())
            .clear(&inst, target)
            .unwrap();
        prop_assume!(int.diagnostics().converged);
        prop_assert!(int.met_target());
        let c_opt = total_cost(&jobs, &opt);
        let c_int = total_cost(&jobs, &int);
        prop_assert!(
            c_opt <= c_int * (1.0 + 1e-6) + 1e-6,
            "OPT {c_opt} must not exceed MPR-INT {c_int}"
        );
        prop_assert!(
            c_int <= c_opt * 2.0 + 1e-6,
            "MPR-INT {c_int} should track OPT {c_opt}"
        );
    }
}
