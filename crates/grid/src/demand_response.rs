//! Demand-response events and schedules.

use mpr_core::Watts;

/// One demand-response obligation: during `[start, start + duration)` the
/// facility must shed `reduction` watts of grid load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrEvent {
    /// Event start, seconds from simulation origin.
    pub start_secs: f64,
    /// Event duration, seconds.
    pub duration_secs: f64,
    /// Load reduction obligation, watts.
    pub reduction: Watts,
}

impl DrEvent {
    /// Whether the event is active at `t_secs`.
    #[must_use]
    pub fn active_at(&self, t_secs: f64) -> bool {
        t_secs >= self.start_secs && t_secs < self.start_secs + self.duration_secs
    }

    /// Event end, seconds from origin.
    #[must_use]
    pub fn end_secs(&self) -> f64 {
        self.start_secs + self.duration_secs
    }
}

/// An ordered, non-overlapping schedule of demand-response events.
///
/// ```
/// use mpr_core::Watts;
/// use mpr_grid::DrSchedule;
///
/// // One 2-hour 5 kW call every weekday evening for two weeks.
/// let s = DrSchedule::weekday_evenings(14.0, 2.0, Watts::new(5000.0));
/// assert_eq!(s.events().len(), 10);
/// let monday_evening = 18.5 * 3600.0;
/// assert!(s.active_at(monday_evening).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DrSchedule {
    events: Vec<DrEvent>,
}

impl DrSchedule {
    /// Builds a schedule, sorting events by start time.
    ///
    /// # Panics
    ///
    /// Panics if two events overlap (a facility answers one DR call at a
    /// time).
    #[must_use]
    pub fn new(mut events: Vec<DrEvent>) -> Self {
        events.sort_by(|a, b| a.start_secs.total_cmp(&b.start_secs));
        for (prev, next) in events.iter().zip(events.iter().skip(1)) {
            assert!(
                next.start_secs >= prev.end_secs(),
                "demand-response events must not overlap"
            );
        }
        Self { events }
    }

    /// A typical utility program: one `duration_hours`-long event per
    /// weekday at the evening peak (18:00), shedding `reduction` watts,
    /// over `days` days.
    #[must_use]
    pub fn weekday_evenings(days: f64, duration_hours: f64, reduction: Watts) -> Self {
        let mut events = Vec::new();
        let mut day = 0.0;
        while day < days {
            // Days 5 and 6 of each week are the weekend (origin = Monday).
            let weekday = (day as u64) % 7;
            if weekday < 5 {
                events.push(DrEvent {
                    start_secs: day * 86_400.0 + 18.0 * 3600.0,
                    duration_secs: duration_hours * 3600.0,
                    reduction,
                });
            }
            day += 1.0;
        }
        Self::new(events)
    }

    /// The events, ordered by start.
    #[must_use]
    pub fn events(&self) -> &[DrEvent] {
        &self.events
    }

    /// The active event at `t_secs`, if any (binary search).
    #[must_use]
    pub fn active_at(&self, t_secs: f64) -> Option<&DrEvent> {
        let idx = self
            .events
            .partition_point(|e| e.start_secs <= t_secs)
            .checked_sub(1)?;
        let e = self.events.get(idx)?;
        e.active_at(t_secs).then_some(e)
    }

    /// Total obligated watt-hours across the schedule.
    #[must_use]
    pub fn total_obligation_wh(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.reduction.get() * e.duration_secs / 3600.0)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_window() {
        let e = DrEvent {
            start_secs: 100.0,
            duration_secs: 50.0,
            reduction: Watts::new(1000.0),
        };
        assert!(!e.active_at(99.9));
        assert!(e.active_at(100.0));
        assert!(e.active_at(149.9));
        assert!(!e.active_at(150.0));
        assert_eq!(e.end_secs(), 150.0);
    }

    #[test]
    fn schedule_lookup() {
        let s = DrSchedule::new(vec![
            DrEvent {
                start_secs: 200.0,
                duration_secs: 100.0,
                reduction: Watts::new(2.0),
            },
            DrEvent {
                start_secs: 0.0,
                duration_secs: 100.0,
                reduction: Watts::new(1.0),
            },
        ]);
        assert_eq!(s.active_at(50.0).unwrap().reduction, Watts::new(1.0));
        assert!(s.active_at(150.0).is_none());
        assert_eq!(s.active_at(250.0).unwrap().reduction, Watts::new(2.0));
        assert!(s.active_at(-10.0).is_none());
        assert_eq!(s.events().len(), 2);
    }

    #[test]
    #[should_panic(expected = "must not overlap")]
    fn overlapping_events_panic() {
        let _ = DrSchedule::new(vec![
            DrEvent {
                start_secs: 0.0,
                duration_secs: 100.0,
                reduction: Watts::new(1.0),
            },
            DrEvent {
                start_secs: 50.0,
                duration_secs: 100.0,
                reduction: Watts::new(1.0),
            },
        ]);
    }

    #[test]
    fn weekday_program_shape() {
        let s = DrSchedule::weekday_evenings(14.0, 2.0, Watts::new(5000.0));
        // Two weeks → 10 weekday events.
        assert_eq!(s.events().len(), 10);
        // 10 events × 2 h × 5 kW = 100 kWh.
        assert!((s.total_obligation_wh() - 100_000.0).abs() < 1e-6);
        // First event at Monday 18:00.
        assert_eq!(s.events()[0].start_secs, 18.0 * 3600.0);
        // No event on day 5 (Saturday).
        let saturday_evening = 5.0 * 86_400.0 + 19.0 * 3600.0;
        assert!(s.active_at(saturday_evening).is_none());
    }

    #[test]
    fn empty_schedule() {
        let s = DrSchedule::default();
        assert!(s.active_at(0.0).is_none());
        assert_eq!(s.total_obligation_wh(), 0.0);
    }
}
