//! # mpr-grid — grid interaction for user-in-the-loop HPC power management
//!
//! The paper's fourth merit (Section I): "by empowering users to influence
//! the HPC system's power consumption through the market mechanism … MPR's
//! user-in-the-loop approach can go beyond handling power oversubscription.
//! For instance, users can also assist in socially responsible HPC
//! management, such as cutting carbon emissions by doing less work with
//! 'dirty' power … and participating in demand response to improve the
//! grid's stability."
//!
//! This crate implements that extension:
//!
//! * [`CarbonIntensitySignal`] — a synthetic grid carbon-intensity signal
//!   (daily duck curve: solar midday dip, evening peak);
//! * [`DrSchedule`] / [`DrEvent`] — demand-response obligations that
//!   temporarily shrink the usable capacity;
//! * capacity policies plugging into the simulator through
//!   [`mpr_power::CapacityPolicy`]: [`DrCapacity`], [`CarbonCap`] and
//!   [`CompositePolicy`];
//! * [`CarbonAccountant`] — emissions bookkeeping over a power timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod carbon;
pub mod demand_response;
pub mod policy;

pub use accounting::CarbonAccountant;
pub use carbon::CarbonIntensitySignal;
pub use demand_response::{DrEvent, DrSchedule};
pub use policy::{CarbonCap, CompositePolicy, DrCapacity};
