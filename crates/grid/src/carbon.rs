//! Synthetic grid carbon-intensity signal.

/// Seconds per day.
const DAY: f64 = 86_400.0;

/// A deterministic carbon-intensity signal in gCO₂/kWh shaped like a
/// renewables-heavy grid's "duck curve": high overnight baseload carbon, a
/// midday solar dip, and an evening ramp peak.
///
/// ```
/// use mpr_grid::CarbonIntensitySignal;
///
/// let signal = CarbonIntensitySignal::duck_curve(400.0, 150.0, 120.0);
/// let noon = signal.intensity(12.5 * 3600.0);
/// let evening = signal.intensity(19.0 * 3600.0);
/// assert!(noon < evening);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonIntensitySignal {
    base: f64,
    solar_dip: f64,
    evening_peak: f64,
}

impl CarbonIntensitySignal {
    /// Creates a duck-curve signal: `base` gCO₂/kWh of baseload carbon, a
    /// midday reduction of up to `solar_dip`, and an evening increase of up
    /// to `evening_peak`.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or the dip exceeds the base
    /// (intensity must stay positive).
    #[must_use]
    pub fn duck_curve(base: f64, solar_dip: f64, evening_peak: f64) -> Self {
        assert!(base > 0.0 && solar_dip >= 0.0 && evening_peak >= 0.0);
        assert!(solar_dip < base, "solar dip must not exceed the base");
        Self {
            base,
            solar_dip,
            evening_peak,
        }
    }

    /// A typical mixed grid: 420 base, 180 solar dip, 130 evening peak.
    #[must_use]
    pub fn typical() -> Self {
        Self::duck_curve(420.0, 180.0, 130.0)
    }

    /// Carbon intensity at `t_secs` from midnight of day 0, gCO₂/kWh.
    #[must_use]
    pub fn intensity(&self, t_secs: f64) -> f64 {
        let hour = (t_secs.rem_euclid(DAY)) / 3600.0;
        // Solar dip: bell centred on 12:30, ~6 h wide.
        let solar = self.solar_dip * gaussian(hour, 12.5, 2.5);
        // Evening ramp peak centred on 19:30, ~3 h wide.
        let evening = self.evening_peak * gaussian(hour, 19.5, 1.5);
        (self.base - solar + evening).max(1.0)
    }

    /// Mean intensity over one day (trapezoidal, minute resolution).
    #[must_use]
    pub fn daily_mean(&self) -> f64 {
        let n = 1440;
        (0..n)
            .map(|i| self.intensity(f64::from(i) * 60.0))
            .sum::<f64>()
            / f64::from(n)
    }

    /// The threshold above which the grid is considered "dirty": the mean
    /// plus half the distance to the daily peak.
    #[must_use]
    pub fn dirty_threshold(&self) -> f64 {
        let mean = self.daily_mean();
        let peak = (0..1440)
            .map(|i| self.intensity(f64::from(i) * 60.0))
            .fold(0.0f64, f64::max);
        mean + 0.5 * (peak - mean)
    }
}

fn gaussian(x: f64, mu: f64, sigma: f64) -> f64 {
    (-(x - mu) * (x - mu) / (2.0 * sigma * sigma)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duck_shape() {
        let s = CarbonIntensitySignal::typical();
        let night = s.intensity(3.0 * 3600.0);
        let noon = s.intensity(12.5 * 3600.0);
        let evening = s.intensity(19.5 * 3600.0);
        assert!(noon < night, "solar dip: noon {noon} < night {night}");
        assert!(evening > night, "evening peak: {evening} > {night}");
    }

    #[test]
    fn periodic_across_days() {
        let s = CarbonIntensitySignal::typical();
        let a = s.intensity(10.0 * 3600.0);
        let b = s.intensity(10.0 * 3600.0 + 5.0 * DAY);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn threshold_between_mean_and_peak() {
        let s = CarbonIntensitySignal::typical();
        let mean = s.daily_mean();
        let th = s.dirty_threshold();
        assert!(th > mean);
        assert!(th < 600.0);
    }

    #[test]
    #[should_panic(expected = "solar dip")]
    fn dip_larger_than_base_panics() {
        let _ = CarbonIntensitySignal::duck_curve(100.0, 150.0, 0.0);
    }

    proptest! {
        /// Intensity is always positive and bounded by base + peak.
        #[test]
        fn intensity_bounded(t in 0.0f64..(30.0 * DAY)) {
            let s = CarbonIntensitySignal::typical();
            let v = s.intensity(t);
            prop_assert!(v >= 1.0);
            prop_assert!(v <= 420.0 + 130.0 + 1e-9);
        }
    }
}
