//! Carbon-emissions accounting over a power timeline.

use crate::carbon::CarbonIntensitySignal;

/// Integrates emissions from `(t, watts)` samples against a carbon signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonAccountant {
    signal: CarbonIntensitySignal,
}

impl CarbonAccountant {
    /// Creates an accountant for a grid signal.
    #[must_use]
    pub fn new(signal: CarbonIntensitySignal) -> Self {
        Self { signal }
    }

    /// Total emissions in kgCO₂ of a power timeline sampled at fixed
    /// `slot_secs` intervals starting at `t0_secs`.
    #[must_use]
    pub fn emissions_kg(&self, t0_secs: f64, slot_secs: f64, watts: &[f64]) -> f64 {
        watts
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let t = t0_secs + i as f64 * slot_secs;
                let kwh = w / 1000.0 * slot_secs / 3600.0;
                kwh * self.signal.intensity(t) / 1000.0 // g → kg
            })
            .sum()
    }

    /// Emissions avoided by a reduction timeline (watts shed per slot).
    /// Equivalent to [`emissions_kg`](Self::emissions_kg) of the shed
    /// power — reductions during dirty hours avoid more.
    #[must_use]
    pub fn avoided_kg(&self, t0_secs: f64, slot_secs: f64, shed_watts: &[f64]) -> f64 {
        self.emissions_kg(t0_secs, slot_secs, shed_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_power_on_flat_grid() {
        // A near-flat signal: tiny dip/peak.
        let s = CarbonIntensitySignal::duck_curve(100.0, 0.0, 0.0);
        let acc = CarbonAccountant::new(s);
        // 1 kW for 10 hours at 100 g/kWh = 1 kg.
        let watts = vec![1000.0; 10];
        let kg = acc.emissions_kg(0.0, 3600.0, &watts);
        assert!((kg - 1.0).abs() < 1e-9, "kg = {kg}");
    }

    #[test]
    fn dirty_hour_reductions_avoid_more() {
        let s = CarbonIntensitySignal::typical();
        let acc = CarbonAccountant::new(s);
        let shed = vec![10_000.0; 60]; // one hour of 10 kW shed, minute slots
        let at_noon = acc.avoided_kg(12.0 * 3600.0, 60.0, &shed);
        let at_evening = acc.avoided_kg(19.0 * 3600.0, 60.0, &shed);
        assert!(at_evening > at_noon);
    }

    #[test]
    fn empty_timeline_is_zero() {
        let acc = CarbonAccountant::new(CarbonIntensitySignal::typical());
        assert_eq!(acc.emissions_kg(0.0, 60.0, &[]), 0.0);
    }
}
