//! Grid-driven capacity policies for the simulator.

use mpr_core::Watts;
use mpr_power::CapacityPolicy;

use crate::carbon::CarbonIntensitySignal;
use crate::demand_response::DrSchedule;

/// Shrinks the base capacity by the active demand-response obligation.
#[derive(Debug, Clone, PartialEq)]
pub struct DrCapacity {
    base: Watts,
    schedule: DrSchedule,
}

impl DrCapacity {
    /// Creates the policy from a base capacity and a DR schedule.
    #[must_use]
    pub fn new(base: Watts, schedule: DrSchedule) -> Self {
        Self { base, schedule }
    }

    /// The DR schedule.
    #[must_use]
    pub fn schedule(&self) -> &DrSchedule {
        &self.schedule
    }
}

impl CapacityPolicy for DrCapacity {
    fn capacity_at(&self, t_secs: f64) -> Watts {
        match self.schedule.active_at(t_secs) {
            Some(e) => (self.base - e.reduction).max(Watts::ZERO),
            None => self.base,
        }
    }
}

/// Derates the capacity whenever the grid's carbon intensity exceeds a
/// threshold — "doing less work with dirty power".
#[derive(Debug, Clone, PartialEq)]
pub struct CarbonCap {
    base: Watts,
    signal: CarbonIntensitySignal,
    threshold: f64,
    derate_frac: f64,
}

impl CarbonCap {
    /// Creates the policy: when `signal` exceeds `threshold` gCO₂/kWh the
    /// capacity is reduced by `derate_frac` (e.g. `0.1` for 10 %).
    ///
    /// # Panics
    ///
    /// Panics if `derate_frac` is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        base: Watts,
        signal: CarbonIntensitySignal,
        threshold: f64,
        derate_frac: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&derate_frac),
            "derate must be in [0,1]"
        );
        Self {
            base,
            signal,
            threshold,
            derate_frac,
        }
    }

    /// Whether the grid is "dirty" at `t_secs`.
    #[must_use]
    pub fn is_dirty_at(&self, t_secs: f64) -> bool {
        self.signal.intensity(t_secs) > self.threshold
    }
}

impl CapacityPolicy for CarbonCap {
    fn capacity_at(&self, t_secs: f64) -> Watts {
        if self.is_dirty_at(t_secs) {
            self.base * (1.0 - self.derate_frac)
        } else {
            self.base
        }
    }
}

/// The minimum of several policies: every constraint must be satisfied.
pub struct CompositePolicy {
    policies: Vec<Box<dyn CapacityPolicy>>,
}

impl CompositePolicy {
    /// Combines policies; the effective capacity is their pointwise
    /// minimum.
    ///
    /// # Panics
    ///
    /// Panics on an empty policy list.
    #[must_use]
    pub fn new(policies: Vec<Box<dyn CapacityPolicy>>) -> Self {
        assert!(!policies.is_empty(), "composite needs at least one policy");
        Self { policies }
    }
}

impl CapacityPolicy for CompositePolicy {
    fn capacity_at(&self, t_secs: f64) -> Watts {
        self.policies
            .iter()
            .map(|p| p.capacity_at(t_secs))
            .fold(Watts::new(f64::INFINITY), Watts::min)
    }
}

impl std::fmt::Debug for CompositePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositePolicy")
            .field("policies", &self.policies.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand_response::DrEvent;
    use mpr_power::FixedCapacity;

    fn schedule() -> DrSchedule {
        DrSchedule::new(vec![DrEvent {
            start_secs: 1000.0,
            duration_secs: 500.0,
            reduction: Watts::new(300.0),
        }])
    }

    #[test]
    fn dr_capacity_dips_during_event() {
        let p = DrCapacity::new(Watts::new(1000.0), schedule());
        assert_eq!(p.capacity_at(0.0), Watts::new(1000.0));
        assert_eq!(p.capacity_at(1200.0), Watts::new(700.0));
        assert_eq!(p.capacity_at(1500.0), Watts::new(1000.0));
        assert_eq!(p.schedule().events().len(), 1);
    }

    #[test]
    fn dr_capacity_never_negative() {
        let s = DrSchedule::new(vec![DrEvent {
            start_secs: 0.0,
            duration_secs: 10.0,
            reduction: Watts::new(5000.0),
        }]);
        let p = DrCapacity::new(Watts::new(1000.0), s);
        assert_eq!(p.capacity_at(5.0), Watts::ZERO);
    }

    #[test]
    fn carbon_cap_derates_dirty_hours() {
        let signal = CarbonIntensitySignal::typical();
        let p = CarbonCap::new(Watts::new(1000.0), signal, signal.dirty_threshold(), 0.15);
        // Evening peak is dirty, midday solar window is clean.
        let evening = 19.5 * 3600.0;
        let noon = 12.5 * 3600.0;
        assert!(p.is_dirty_at(evening));
        assert!(!p.is_dirty_at(noon));
        assert_eq!(p.capacity_at(evening), Watts::new(850.0));
        assert_eq!(p.capacity_at(noon), Watts::new(1000.0));
    }

    #[test]
    fn composite_takes_the_minimum() {
        let c = CompositePolicy::new(vec![
            Box::new(FixedCapacity(Watts::new(900.0))),
            Box::new(DrCapacity::new(Watts::new(1000.0), schedule())),
        ]);
        assert_eq!(c.capacity_at(0.0), Watts::new(900.0));
        assert_eq!(c.capacity_at(1200.0), Watts::new(700.0));
        assert!(format!("{c:?}").contains("CompositePolicy"));
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_composite_panics() {
        let _ = CompositePolicy::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "derate")]
    fn bad_derate_panics() {
        let _ = CarbonCap::new(
            Watts::new(1.0),
            CarbonIntensitySignal::typical(),
            400.0,
            1.5,
        );
    }
}
