//! Analytic fits of the table-driven cost curves (Section IV-B).
//!
//! The paper smooths the measured costs with the logarithmic model
//! `cost = a·log(b·x) − a`. Because that literal form is linear in `ln x`,
//! the least-squares fit has a closed form. We additionally provide a convex
//! power-law fit `cost = k·x^p`, which better captures the super-linear
//! growth of extra execution (Fig. 7(b)) and keeps OPT/water-filling exact;
//! the cost-model ablation compares the two.

use mpr_core::{CostModel, LogFitCost, PowerLawCost};

/// Number of samples drawn from the source cost curve for fitting.
const FIT_SAMPLES: usize = 64;

/// Least-squares linear regression of `y` on `x`; returns `(slope,
/// intercept)`. Empty or degenerate inputs yield a flat line through the
/// mean.
fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
    }
    if sxx <= 1e-15 {
        return (0.0, my);
    }
    let slope = sxy / sxx;
    (slope, my - slope * mx)
}

/// Samples `(delta, cost)` pairs from a cost model over `(0, Δ]`, skipping
/// non-positive costs (which the log/power transforms cannot represent).
fn sample_costs<C: CostModel + ?Sized>(cost: &C) -> (Vec<f64>, Vec<f64>) {
    let delta_max = cost.delta_max();
    let mut xs = Vec::with_capacity(FIT_SAMPLES);
    let mut ys = Vec::with_capacity(FIT_SAMPLES);
    for i in 1..=FIT_SAMPLES {
        let d = delta_max * (i as f64) / (FIT_SAMPLES as f64);
        let c = cost.cost(d);
        if c > 1e-12 {
            xs.push(d);
            ys.push(c);
        }
    }
    (xs, ys)
}

/// Fits the paper's logarithmic model `cost = a·ln(b·x) − a` to a cost
/// curve by least squares in `ln x`.
///
/// Writing the model as `cost = a·ln x + c` with `c = a(ln b − 1)`, the
/// regression of sampled costs on `ln δ` yields `a` (slope) and
/// `b = exp(c/a + 1)`.
#[must_use]
pub fn fit_log<C: CostModel + ?Sized>(cost: &C) -> LogFitCost {
    let (xs, ys) = sample_costs(cost);
    if xs.is_empty() {
        return LogFitCost::new(0.0, 1.0, cost.delta_max());
    }
    let lnx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let (a, c) = linear_regression(&lnx, &ys);
    if a.abs() <= 1e-12 {
        return LogFitCost::new(0.0, 1.0, cost.delta_max());
    }
    let b = (c / a + 1.0).exp();
    LogFitCost::new(a, b, cost.delta_max())
}

/// Fits a convex power law `cost = k·x^p` by least squares in log-log
/// space. The exponent is floored at 1 so the result stays convex.
#[must_use]
pub fn fit_power<C: CostModel + ?Sized>(cost: &C) -> PowerLawCost {
    let (xs, ys) = sample_costs(cost);
    if xs.is_empty() {
        return PowerLawCost::new(0.0, 1.0, cost.delta_max());
    }
    let lnx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let lny: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let (p, lnk) = linear_regression(&lnx, &lny);
    PowerLawCost::new(lnk.exp(), p.max(1.0), cost.delta_max())
}

/// Root-mean-square error of a fitted model against the source curve,
/// useful for reporting fit quality in the experiment harness.
#[must_use]
pub fn fit_rmse<A: CostModel + ?Sized, B: CostModel + ?Sized>(source: &A, fitted: &B) -> f64 {
    let delta_max = source.delta_max();
    let mut se = 0.0;
    for i in 1..=FIT_SAMPLES {
        let d = delta_max * (i as f64) / (FIT_SAMPLES as f64);
        let e = source.cost(d) - fitted.cost(d);
        se += e * e;
    }
    (se / FIT_SAMPLES as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn log_fit_recovers_exact_log_curve() {
        let truth = LogFitCost::new(2.0, 9.0, 0.7);
        let fit = fit_log(&truth);
        let (a, b) = fit.params();
        // Clamping at zero perturbs the small-δ samples, so allow some slack.
        assert!((a - 2.0).abs() < 0.2, "a = {a}");
        assert!((b - 9.0).abs() < 2.0, "b = {b}");
    }

    #[test]
    fn power_fit_recovers_exact_power_curve() {
        let truth = PowerLawCost::new(3.0, 2.5, 0.7);
        let fit = fit_power(&truth);
        assert!((fit.exponent() - 2.5).abs() < 1e-6);
        assert!((fit.cost(0.5) - truth.cost(0.5)).abs() < 1e-6);
    }

    #[test]
    fn power_fit_of_profiles_is_superlinear() {
        for p in catalog::cpu_profiles() {
            let cost = p.cost_model(1.0);
            let fit = fit_power(&cost);
            assert!(
                fit.exponent() > 1.0,
                "{} exponent {} should be > 1 (convex extra execution)",
                p.name(),
                fit.exponent()
            );
        }
    }

    #[test]
    fn fits_preserve_sensitivity_ordering() {
        let sens = |n: &str| {
            let p = catalog::profile_by_name(n).unwrap();
            let fit = fit_power(&p.cost_model(1.0));
            fit.cost(0.3)
        };
        assert!(sens("SimpleMOC") > sens("RSBench"));
        assert!(sens("SWFFT") > sens("HPCCG"));
    }

    #[test]
    fn rmse_of_self_fit_is_small() {
        let p = catalog::profile_by_name("XSBench").unwrap();
        let cost = p.cost_model(1.0);
        let fit = fit_power(&cost);
        let rmse = fit_rmse(&cost, &fit);
        // Extra execution at Δ=0.7 is ~1.9; the fit should be within ~15 %.
        assert!(rmse < 0.3, "rmse = {rmse}");
    }

    #[test]
    fn degenerate_curves_do_not_panic() {
        use mpr_core::LinearCost;
        let zero = LinearCost::new(0.0, 0.5);
        let lf = fit_log(&zero);
        assert_eq!(lf.cost(0.3), 0.0);
        let pf = fit_power(&zero);
        assert_eq!(pf.cost(0.3), 0.0);
    }

    #[test]
    fn regression_on_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let (m, b) = linear_regression(&xs, &ys);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }
}
