//! Cost-model error injection (Section V-D, Fig. 13).
//!
//! HPC users bid from *estimates* of their performance impact, and the
//! paper studies two error regimes: zero-mean random estimation errors of up
//! to ±30 % (which wash out), and systematic *underestimation* (pessimistic
//! for the user, who then supplies reductions below true break-even).
//! [`NoisyCost`] wraps a ground-truth model with a multiplicative factor
//! sampled once at construction — the user's fixed (mis)belief about its
//! own cost.

use mpr_core::CostModel;
use rand::Rng;

/// A cost model as *perceived* by a user: the true cost scaled by a fixed
/// factor. `factor < 1` underestimates (risking negative net gain),
/// `factor > 1` overestimates (extra conservatism).
#[derive(Debug, Clone)]
pub struct NoisyCost<C> {
    inner: C,
    factor: f64,
}

impl<C: CostModel> NoisyCost<C> {
    /// Wraps `inner` with a fixed perception factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn new(inner: C, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "perception factor must be finite and non-negative, got {factor}"
        );
        Self { inner, factor }
    }

    /// Samples a zero-mean random error: factor uniform in
    /// `[1 − magnitude, 1 + magnitude]` (the paper's "random estimation
    /// errors of up to 30 %" uses `magnitude = 0.3`).
    pub fn random_error<R: Rng + ?Sized>(inner: C, magnitude: f64, rng: &mut R) -> Self {
        let m = magnitude.clamp(0.0, 1.0);
        let factor = rng.gen_range((1.0 - m)..=(1.0 + m));
        Self::new(inner, factor)
    }

    /// Systematic underestimation by `fraction` (e.g. `0.3` → the user
    /// believes costs are 30 % lower than they are).
    #[must_use]
    pub fn underestimate(inner: C, fraction: f64) -> Self {
        Self::new(inner, (1.0 - fraction).max(0.0))
    }

    /// The perception factor applied to the true cost.
    #[must_use]
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// The wrapped ground-truth model.
    #[must_use]
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: CostModel> CostModel for NoisyCost<C> {
    fn cost(&self, delta: f64) -> f64 {
        self.factor * self.inner.cost(delta)
    }
    fn delta_max(&self) -> f64 {
        self.inner.delta_max()
    }
    fn marginal(&self, delta: f64) -> f64 {
        self.factor * self.inner.marginal(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_core::QuadraticCost;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn scales_cost_by_factor() {
        let truth = QuadraticCost::new(2.0, 1.0);
        let noisy = NoisyCost::new(truth, 0.7);
        assert!((noisy.cost(0.5) - 0.7 * truth.cost(0.5)).abs() < 1e-12);
        assert!((noisy.marginal(0.5) - 0.7 * truth.marginal(0.5)).abs() < 1e-9);
        assert_eq!(noisy.delta_max(), 1.0);
        assert_eq!(noisy.factor(), 0.7);
        assert_eq!(noisy.inner().delta_max(), 1.0);
    }

    #[test]
    fn random_error_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            let n = NoisyCost::random_error(QuadraticCost::new(1.0, 1.0), 0.3, &mut rng);
            assert!(n.factor() >= 0.7 && n.factor() <= 1.3, "{}", n.factor());
        }
    }

    #[test]
    fn random_error_is_seeded_deterministic() {
        let a = NoisyCost::random_error(
            QuadraticCost::new(1.0, 1.0),
            0.3,
            &mut ChaCha8Rng::seed_from_u64(42),
        );
        let b = NoisyCost::random_error(
            QuadraticCost::new(1.0, 1.0),
            0.3,
            &mut ChaCha8Rng::seed_from_u64(42),
        );
        assert_eq!(a.factor(), b.factor());
    }

    #[test]
    fn underestimate_clamps_at_zero() {
        let n = NoisyCost::underestimate(QuadraticCost::new(1.0, 1.0), 1.5);
        assert_eq!(n.factor(), 0.0);
        let n = NoisyCost::underestimate(QuadraticCost::new(1.0, 1.0), 0.3);
        assert!((n.factor() - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "perception factor")]
    fn negative_factor_panics() {
        let _ = NoisyCost::new(QuadraticCost::new(1.0, 1.0), -0.5);
    }
}
