//! Bidding-reference curves (Section III-C, Fig. 4 and Fig. 7(d)).
//!
//! The reference converts a cost curve `C(δ)` into *cost per unit
//! reduction* `q_ref(δ) = C(δ)/δ`: for any reduction on the y-axis it gives
//! the price below which supplying that reduction loses money. A user's
//! cooperative bid hugs this curve from below.

use mpr_core::CostModel;

/// One point of a bidding reference: at unit price `price`, supplying
/// `reduction` is exactly break-even.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferencePoint {
    /// Cost per unit reduction (the break-even price).
    pub price: f64,
    /// The resource reduction at which that unit cost is incurred.
    pub reduction: f64,
}

/// Samples the bidding reference of a cost model at `n` reductions evenly
/// spread over `(0, Δ]`.
///
/// The returned points are ordered by increasing reduction; for convex
/// costs the price is increasing too (diminishing returns — the property
/// the paper's supply function is chosen to capture).
#[must_use]
pub fn bidding_reference<C: CostModel + ?Sized>(cost: &C, n: usize) -> Vec<ReferencePoint> {
    let delta_max = cost.delta_max();
    let n = n.max(1);
    (1..=n)
        .map(|i| {
            let reduction = delta_max * (i as f64) / (n as f64);
            ReferencePoint {
                price: cost.unit_cost(reduction),
                reduction,
            }
        })
        .collect()
}

/// The break-even reduction at a given price: the largest reduction whose
/// unit cost stays at or below `price` (the "upper limit on resource
/// reduction without a loss" of Section III-C).
#[must_use]
pub fn breakeven_reduction<C: CostModel + ?Sized>(cost: &C, price: f64, n: usize) -> f64 {
    bidding_reference(cost, n.max(16))
        .iter()
        .rev()
        .find(|p| p.price <= price)
        .map_or(0.0, |p| p.reduction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use mpr_core::QuadraticCost;

    #[test]
    fn reference_prices_increase_for_convex_costs() {
        let cost = QuadraticCost::new(2.0, 1.0);
        let pts = bidding_reference(&cost, 32);
        assert_eq!(pts.len(), 32);
        for w in pts.windows(2) {
            assert!(w[1].price >= w[0].price);
            assert!(w[1].reduction > w[0].reduction);
        }
        // For C = 2δ², unit cost = 2δ: at δ = 0.5 price = 1.0.
        let mid = pts
            .iter()
            .find(|p| (p.reduction - 0.5).abs() < 1e-9)
            .unwrap();
        assert!((mid.price - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sensitive_apps_have_higher_references() {
        let s = catalog::profile_by_name("SimpleMOC")
            .unwrap()
            .cost_model(1.0);
        let r = catalog::profile_by_name("RSBench").unwrap().cost_model(1.0);
        let ps = bidding_reference(&s, 16);
        let pr = bidding_reference(&r, 16);
        for (a, b) in ps.iter().zip(&pr) {
            assert!(
                a.price > b.price,
                "SimpleMOC must demand a higher price than RSBench at δ = {}",
                a.reduction
            );
        }
    }

    #[test]
    fn breakeven_monotone_in_price() {
        let cost = QuadraticCost::new(2.0, 1.0);
        let lo = breakeven_reduction(&cost, 0.5, 64);
        let hi = breakeven_reduction(&cost, 1.5, 64);
        assert!(hi > lo);
        // unit cost 2δ <= 0.5 → δ <= 0.25.
        assert!((lo - 0.25).abs() < 0.02, "lo = {lo}");
    }

    #[test]
    fn breakeven_zero_when_price_below_any_cost() {
        let p = catalog::profile_by_name("SimpleMOC").unwrap();
        let cost = p.cost_model(1.0);
        assert_eq!(breakeven_reduction(&cost, 1e-9, 64), 0.0);
    }
}
