//! # mpr-apps — application performance profiles and user cost models
//!
//! The paper's evaluation (Section IV-B) is driven by measured
//! power-vs-performance profiles of fourteen HPC applications: eight
//! CPU codes (CoMD, XSBench, miniFE, SWFFT, SimpleMOC, miniMD, HPCCG,
//! RSBench — power-capping data from Patel & Tiwari, HPDC'19) and six GPU
//! kernels (Jacobi, TeaLeaf and GEMM/BT on two GPU generations — from
//! Azimi et al. IGSC'18 and Krzywaniak & Czarnul PPAM'19).
//!
//! Since the original measurements are not redistributable, this crate
//! ships *digitized piecewise-linear profiles* shaped after the paper's
//! Fig. 7(a) and Fig. 15(a) (see `DESIGN.md`, "Substitutions"): each
//! [`AppProfile`] maps a per-core resource allocation to normalized
//! application performance, preserving the sensitivity ordering that drives
//! every market outcome in the paper.
//!
//! On top of the profiles this crate derives everything a user needs to
//! participate in MPR:
//!
//! * [`ProfileCost`] — the ground-truth cost model `C(δ) = α·ExtraExecution(δ)`
//!   (Eqn. 6, Fig. 3);
//! * [`fit`] — the paper's logarithmic fit `cost = a·log(b·x) − a` and a
//!   convex power-law alternative;
//! * [`mod@reference`] — bidding-reference curves (`cost per unit reduction`,
//!   Fig. 4);
//! * [`noise`] — cost-model error injection for the sensitivity study of
//!   Fig. 13.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod catalog;
pub mod fit;
pub mod interp;
pub mod noise;
pub mod profile;
pub mod reference;

pub use calibrate::{isotonic, profile_from_samples, CalibrationError};
pub use catalog::{
    cpu_profiles, cpu_profiles_smooth, gpu_profiles, profile_by_name, CPU_APP_NAMES, GPU_APP_NAMES,
};
pub use interp::MonotoneCubic;
pub use noise::NoisyCost;
pub use profile::{AppProfile, DeviceKind, ProfileCost, ProfileError};
