//! Monotone cubic (PCHIP / Fritsch–Carlson) interpolation.
//!
//! Application profiles are digitized as a handful of calibration points.
//! Linear interpolation (the default) has kinks at every point, which show
//! up as kinks in cost curves and bidding references. The PCHIP scheme
//! gives a C¹ curve that is still guaranteed monotone — it never
//! overshoots the data the way natural cubic splines do, which matters
//! because profile monotonicity is what the market's convergence arguments
//! lean on.

/// A monotone piecewise-cubic interpolant over `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct MonotoneCubic {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Fritsch–Carlson tangents at each knot.
    tangents: Vec<f64>,
}

impl MonotoneCubic {
    /// Fits the interpolant.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two points are supplied or the `x` values are
    /// not strictly increasing.
    #[must_use]
    pub fn new(points: &[(f64, f64)]) -> Self {
        assert!(points.len() >= 2, "need at least two points");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "x values must be strictly increasing");
        }
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let n = xs.len();

        // Secant slopes of each interval.
        let d: Vec<f64> = (0..n - 1)
            .map(|i| (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]))
            .collect();

        // Initial tangents: average of adjacent secants (one-sided at the
        // ends).
        let mut m = vec![0.0f64; n];
        m[0] = d[0];
        m[n - 1] = d[n - 2];
        for i in 1..n - 1 {
            m[i] = if d[i - 1] * d[i] <= 0.0 {
                // Local extremum in the data: flat tangent keeps monotone
                // segments monotone.
                0.0
            } else {
                0.5 * (d[i - 1] + d[i])
            };
        }

        // Fritsch–Carlson limiter: clamp tangents so no interval
        // overshoots.
        for i in 0..n - 1 {
            if d[i].abs() <= f64::EPSILON {
                m[i] = 0.0;
                m[i + 1] = 0.0;
                continue;
            }
            let alpha = m[i] / d[i];
            let beta = m[i + 1] / d[i];
            let s = alpha * alpha + beta * beta;
            if s > 9.0 {
                let tau = 3.0 / s.sqrt();
                m[i] = tau * alpha * d[i];
                m[i + 1] = tau * beta * d[i];
            }
        }
        Self {
            xs,
            ys,
            tangents: m,
        }
    }

    /// Evaluates the interpolant at `x`. Outside the knot range the curve
    /// extrapolates linearly with the boundary tangent.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0] + self.tangents[0] * (x - self.xs[0]);
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1] + self.tangents[n - 1] * (x - self.xs[n - 1]);
        }
        // Find the containing interval.
        let i = match self.xs.binary_search_by(|v| v.total_cmp(&x)) {
            Ok(i) => return self.ys[i],
            Err(i) => i - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let t = (x - self.xs[i]) / h;
        let (t2, t3) = (t * t, t * t * t);
        // Cubic Hermite basis.
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[i]
            + h10 * h * self.tangents[i]
            + h01 * self.ys[i + 1]
            + h11 * h * self.tangents[i + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn perf_points() -> Vec<(f64, f64)> {
        vec![
            (0.3, 0.35),
            (0.4, 0.45),
            (0.5, 0.55),
            (0.7, 0.75),
            (0.9, 0.93),
            (1.0, 1.0),
        ]
    }

    #[test]
    fn passes_through_knots() {
        let c = MonotoneCubic::new(&perf_points());
        for (x, y) in perf_points() {
            assert!((c.eval(x) - y).abs() < 1e-12, "at {x}");
        }
    }

    #[test]
    fn extrapolates_linearly() {
        let c = MonotoneCubic::new(&[(0.0, 0.0), (1.0, 1.0)]);
        assert!((c.eval(2.0) - 2.0).abs() < 1e-12);
        assert!((c.eval(-1.0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_data_stays_flat() {
        let c = MonotoneCubic::new(&[(0.0, 1.0), (0.5, 1.0), (1.0, 1.0)]);
        for i in 0..=20 {
            let x = f64::from(i) / 20.0;
            assert!((c.eval(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn local_extremum_does_not_overshoot() {
        // A bump: natural splines would overshoot above 1.0.
        let c = MonotoneCubic::new(&[(0.0, 0.0), (0.5, 1.0), (1.0, 0.0)]);
        for i in 0..=100 {
            let x = f64::from(i) / 100.0;
            let y = c.eval(x);
            assert!((-1e-9..=1.0 + 1e-9).contains(&y), "overshoot {y} at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_points_panic() {
        let _ = MonotoneCubic::new(&[(1.0, 0.0), (0.0, 1.0)]);
    }

    proptest! {
        /// Monotone data yields a monotone interpolant — the Fritsch–Carlson
        /// guarantee the market's assumptions require.
        #[test]
        fn monotone_data_monotone_curve(
            mut ys in proptest::collection::vec(0.0f64..1.0, 4..10),
            x1 in 0.0f64..1.0,
            dx in 0.0f64..0.5,
        ) {
            ys.sort_by(f64::total_cmp);
            let n = ys.len();
            let points: Vec<(f64, f64)> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as f64 / (n - 1) as f64, y))
                .collect();
            let c = MonotoneCubic::new(&points);
            let a = c.eval(x1);
            let b = c.eval((x1 + dx).min(1.0));
            prop_assert!(b + 1e-9 >= a, "must be non-decreasing: {a} then {b}");
        }
    }
}
