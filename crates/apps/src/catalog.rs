//! The fourteen benchmark application profiles of the paper's evaluation.
//!
//! The CPU profiles are shaped after Fig. 7(a) (power-capping measurements
//! converted to core allocations, Patel & Tiwari HPDC'19 data); the GPU
//! profiles after Fig. 15(a). Absolute values are digitized approximations —
//! what matters for reproducing the paper's results is the *sensitivity
//! ordering*: SimpleMOC, SWFFT, miniMD and XSBench react strongly to
//! resource reduction while RSBench, HPCCG, miniFE and CoMD barely notice;
//! on GPUs, Jacobi and TeaLeaf are fragile while GEMM and BT are tolerant.

use std::sync::Arc;

use crate::profile::{AppProfile, DeviceKind};

/// Per-core dynamic power of the paper's CPU power model (Section IV-A).
pub const CPU_DYNAMIC_POWER_W: f64 = 125.0;

/// Names of the eight CPU benchmark applications (Fig. 7).
pub const CPU_APP_NAMES: [&str; 8] = [
    "CoMD",
    "XSBench",
    "miniFE",
    "SWFFT",
    "SimpleMOC",
    "miniMD",
    "HPCCG",
    "RSBench",
];

/// Names of the six GPU benchmark applications (Fig. 15).
pub const GPU_APP_NAMES: [&str; 6] = [
    "Jacobi",
    "TeaLeaf",
    "GEMM-GTX1070",
    "GEMM-RTX2080",
    "BT-GTX1070",
    "BT-RTX2080",
];

fn cpu(name: &str, points: &[(f64, f64)]) -> Arc<AppProfile> {
    Arc::new(
        AppProfile::new(name, DeviceKind::Cpu, points.to_vec(), CPU_DYNAMIC_POWER_W)
            .expect("catalog CPU profile must be valid"),
    )
}

fn gpu(name: &str, points: &[(f64, f64)], unit_power_w: f64) -> Arc<AppProfile> {
    Arc::new(
        AppProfile::new(name, DeviceKind::Gpu, points.to_vec(), unit_power_w)
            .expect("catalog GPU profile must be valid"),
    )
}

/// The eight CPU application profiles of Fig. 7(a), most to least sensitive:
/// SimpleMOC, SWFFT, miniMD, XSBench, CoMD, miniFE, HPCCG, RSBench. All
/// tolerate up to `Δ = 0.7` per-core reduction (the paper's power-capping
/// range, e.g. XSBench's `Δ_m = 0.7`).
#[must_use]
pub fn cpu_profiles() -> Vec<Arc<AppProfile>> {
    vec![
        cpu(
            "CoMD",
            &[
                (0.3, 0.48),
                (0.4, 0.56),
                (0.5, 0.64),
                (0.6, 0.72),
                (0.7, 0.79),
                (0.8, 0.87),
                (0.9, 0.94),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "XSBench",
            &[
                (0.3, 0.35),
                (0.4, 0.45),
                (0.5, 0.55),
                (0.6, 0.65),
                (0.7, 0.75),
                (0.8, 0.85),
                (0.9, 0.93),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "miniFE",
            &[
                (0.3, 0.55),
                (0.4, 0.62),
                (0.5, 0.69),
                (0.6, 0.76),
                (0.7, 0.83),
                (0.8, 0.89),
                (0.9, 0.95),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "SWFFT",
            &[
                (0.3, 0.26),
                (0.4, 0.37),
                (0.5, 0.48),
                (0.6, 0.60),
                (0.7, 0.71),
                (0.8, 0.81),
                (0.9, 0.91),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "SimpleMOC",
            &[
                (0.3, 0.22),
                (0.4, 0.33),
                (0.5, 0.45),
                (0.6, 0.57),
                (0.7, 0.68),
                (0.8, 0.79),
                (0.9, 0.90),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "miniMD",
            &[
                (0.3, 0.30),
                (0.4, 0.41),
                (0.5, 0.52),
                (0.6, 0.63),
                (0.7, 0.73),
                (0.8, 0.83),
                (0.9, 0.92),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "HPCCG",
            &[
                (0.3, 0.62),
                (0.4, 0.68),
                (0.5, 0.74),
                (0.6, 0.80),
                (0.7, 0.85),
                (0.8, 0.90),
                (0.9, 0.95),
                (1.0, 1.0),
            ],
        ),
        cpu(
            "RSBench",
            &[
                (0.3, 0.70),
                (0.4, 0.75),
                (0.5, 0.80),
                (0.6, 0.85),
                (0.7, 0.89),
                (0.8, 0.93),
                (0.9, 0.97),
                (1.0, 1.0),
            ],
        ),
    ]
}

/// The six GPU application profiles of Fig. 15(a).
///
/// Each app's maximum power draw is normalized to "one core" (Section V-E):
/// Jacobi/TeaLeaf at 225 W on an NVIDIA P40, GEMM/BT at 200 W (GTX 1070)
/// and 215 W (RTX 2080). Jacobi and TeaLeaf only tolerate shallow capping
/// (Δ ≈ 0.12–0.15) before performance collapses — this narrow range is what
/// makes performance-oblivious EQL infeasible at 20 % oversubscription.
#[must_use]
pub fn gpu_profiles() -> Vec<Arc<AppProfile>> {
    vec![
        gpu(
            "Jacobi",
            &[(0.88, 0.62), (0.92, 0.75), (0.96, 0.88), (1.0, 1.0)],
            225.0,
        ),
        gpu(
            "TeaLeaf",
            &[(0.85, 0.65), (0.90, 0.77), (0.95, 0.89), (1.0, 1.0)],
            225.0,
        ),
        gpu(
            "GEMM-GTX1070",
            &[
                (0.5, 0.62),
                (0.6, 0.70),
                (0.7, 0.78),
                (0.8, 0.85),
                (0.9, 0.93),
                (1.0, 1.0),
            ],
            200.0,
        ),
        gpu(
            "GEMM-RTX2080",
            &[
                (0.5, 0.66),
                (0.625, 0.75),
                (0.75, 0.83),
                (0.875, 0.92),
                (1.0, 1.0),
            ],
            215.0,
        ),
        gpu(
            "BT-GTX1070",
            &[
                (0.4, 0.60),
                (0.55, 0.70),
                (0.7, 0.80),
                (0.85, 0.90),
                (1.0, 1.0),
            ],
            200.0,
        ),
        gpu(
            "BT-RTX2080",
            &[
                (0.4, 0.65),
                (0.55, 0.74),
                (0.7, 0.83),
                (0.85, 0.92),
                (1.0, 1.0),
            ],
            215.0,
        ),
    ]
}

/// The CPU profiles with C¹ monotone-cubic interpolation between the
/// digitized points (see
/// [`AppProfile::with_monotone_interpolation`]) — smooth cost curves and
/// bidding references, same calibration data.
#[must_use]
pub fn cpu_profiles_smooth() -> Vec<Arc<AppProfile>> {
    cpu_profiles()
        .into_iter()
        .map(|p| Arc::new(AppProfile::clone(&p).with_monotone_interpolation()))
        .collect()
}

/// Looks up a profile (CPU or GPU) by its exact name.
#[must_use]
pub fn profile_by_name(name: &str) -> Option<Arc<AppProfile>> {
    cpu_profiles()
        .into_iter()
        .chain(gpu_profiles())
        .find(|p| p.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_fourteen_apps() {
        assert_eq!(cpu_profiles().len(), 8);
        assert_eq!(gpu_profiles().len(), 6);
    }

    #[test]
    fn names_match_constants() {
        let cpu: Vec<_> = cpu_profiles().iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(cpu, CPU_APP_NAMES.to_vec());
        let gpu: Vec<_> = gpu_profiles().iter().map(|p| p.name().to_owned()).collect();
        assert_eq!(gpu, GPU_APP_NAMES.to_vec());
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile_by_name("XSBench").is_some());
        assert!(profile_by_name("Jacobi").is_some());
        assert!(profile_by_name("nonexistent").is_none());
    }

    #[test]
    fn xsbench_delta_is_paper_value() {
        let p = profile_by_name("XSBench").unwrap();
        assert!((p.delta_max() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cpu_sensitivity_ordering_matches_paper() {
        // SimpleMOC, SWFFT, miniMD, XSBench more sensitive than
        // CoMD, miniFE, HPCCG, RSBench (Section IV-B).
        let sens = |n: &str| profile_by_name(n).unwrap().sensitivity();
        for sensitive in ["SimpleMOC", "SWFFT", "miniMD", "XSBench"] {
            for tolerant in ["CoMD", "miniFE", "HPCCG", "RSBench"] {
                assert!(
                    sens(sensitive) > sens(tolerant),
                    "{sensitive} should be more sensitive than {tolerant}"
                );
            }
        }
        // And RSBench is the least sensitive of all CPU apps.
        let rs = sens("RSBench");
        for name in CPU_APP_NAMES {
            if name != "RSBench" {
                assert!(sens(name) > rs);
            }
        }
    }

    #[test]
    fn gpu_fragile_apps_have_narrow_range() {
        let jacobi = profile_by_name("Jacobi").unwrap();
        let gemm = profile_by_name("GEMM-GTX1070").unwrap();
        assert!(jacobi.delta_max() < 0.25);
        assert!(gemm.delta_max() >= 0.5);
        assert!(jacobi.sensitivity() > gemm.sensitivity());
    }

    #[test]
    fn smooth_catalog_matches_linear_at_knots() {
        for (lin, smooth) in cpu_profiles().iter().zip(cpu_profiles_smooth()) {
            assert_eq!(lin.name(), smooth.name());
            for &(alloc, perf) in lin.points() {
                assert!((smooth.performance(alloc) - perf).abs() < 1e-9);
            }
            // Same feasible range, hence same market Δ.
            assert!((lin.delta_max() - smooth.delta_max()).abs() < 1e-12);
        }
    }

    #[test]
    fn gpu_unit_power_normalization() {
        assert_eq!(
            profile_by_name("Jacobi").unwrap().unit_dynamic_power_w(),
            225.0
        );
        assert_eq!(
            profile_by_name("GEMM-GTX1070")
                .unwrap()
                .unit_dynamic_power_w(),
            200.0
        );
        for p in cpu_profiles() {
            assert_eq!(p.unit_dynamic_power_w(), CPU_DYNAMIC_POWER_W);
        }
    }
}
