//! Application performance profiles: piecewise-linear perf-vs-allocation
//! curves and the ground-truth cost model they imply.

use std::fmt;
use std::sync::Arc;

use mpr_core::CostModel;

/// Performance floor used when extrapolating past the profiled range: a job
/// pushed below its minimum operating point makes almost no progress and its
/// extra-execution cost explodes (how EQL "breaks" sensitive GPU apps in
/// Fig. 15).
const MIN_PERF: f64 = 1e-3;

/// Whether an application profile was measured on CPU or GPU hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// CPU codes, power-capped via RAPL/DVFS (Fig. 7).
    Cpu,
    /// GPU kernels, power-capped via `nvidia-smi` (Fig. 15).
    Gpu,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Cpu => write!(f, "CPU"),
            DeviceKind::Gpu => write!(f, "GPU"),
        }
    }
}

/// Errors raised when constructing an [`AppProfile`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// Fewer than two calibration points were supplied.
    TooFewPoints,
    /// Points are not strictly increasing in allocation.
    UnsortedAllocations,
    /// A performance value is outside `(0, 1]`.
    PerformanceOutOfRange(f64),
    /// The curve does not end at `(1.0, 1.0)` — profiles are normalized to
    /// full-allocation performance.
    NotNormalized,
    /// A performance value decreases as allocation increases.
    NonMonotone,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::TooFewPoints => write!(f, "profile needs at least two points"),
            ProfileError::UnsortedAllocations => {
                write!(f, "profile allocations must be strictly increasing")
            }
            ProfileError::PerformanceOutOfRange(p) => {
                write!(f, "performance {p} outside (0, 1]")
            }
            ProfileError::NotNormalized => {
                write!(f, "profile must end at allocation 1.0 with performance 1.0")
            }
            ProfileError::NonMonotone => {
                write!(f, "performance must not decrease with allocation")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// A measured (here: digitized) application profile — normalized
/// performance as a function of per-core resource allocation.
///
/// An allocation of `1.0` means cores run at full speed; `0.7` means the
/// cores were slowed (via DVFS / power capping) to an effective 70 %. The
/// smallest profiled allocation determines the application's maximum
/// feasible reduction `Δ = 1 − alloc_min` — its supply-function parameter.
///
/// ```
/// use mpr_apps::AppProfile;
///
/// let xs = mpr_apps::profile_by_name("XSBench").unwrap();
/// assert!((xs.delta_max() - 0.7).abs() < 1e-12); // paper: Δ = 0.7 for XSBench
/// assert_eq!(xs.performance(1.0), 1.0);
/// assert!(xs.performance(0.5) < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    name: String,
    kind: DeviceKind,
    /// `(allocation, performance)` points, strictly increasing in
    /// allocation, ending at `(1.0, 1.0)`.
    points: Vec<(f64, f64)>,
    /// Dynamic power in watts drawn by one unit of allocation of this
    /// application (125 W for the paper's CPU model; GPU apps are
    /// normalized so that "one core" is their maximum power draw).
    unit_dynamic_power_w: f64,
    /// Optional C¹ monotone-cubic fit through the points (see
    /// [`with_monotone_interpolation`](Self::with_monotone_interpolation)).
    smooth: Option<crate::interp::MonotoneCubic>,
}

impl AppProfile {
    /// Creates a profile from calibration points.
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] when the points are not a valid
    /// normalized, monotone performance curve.
    pub fn new(
        name: impl Into<String>,
        kind: DeviceKind,
        points: Vec<(f64, f64)>,
        unit_dynamic_power_w: f64,
    ) -> Result<Self, ProfileError> {
        if points.len() < 2 {
            return Err(ProfileError::TooFewPoints);
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(ProfileError::UnsortedAllocations);
            }
            if w[1].1 < w[0].1 {
                return Err(ProfileError::NonMonotone);
            }
        }
        for &(_, p) in &points {
            if !(p > 0.0 && p <= 1.0) {
                return Err(ProfileError::PerformanceOutOfRange(p));
            }
        }
        let last = points[points.len() - 1];
        if (last.0 - 1.0).abs() > 1e-9 || (last.1 - 1.0).abs() > 1e-9 {
            return Err(ProfileError::NotNormalized);
        }
        Ok(Self {
            name: name.into(),
            kind,
            points,
            unit_dynamic_power_w,
            smooth: None,
        })
    }

    /// Switches the profile to monotone-cubic (PCHIP) interpolation between
    /// its calibration points. The curve is C¹ — no kinks in derived cost
    /// curves or bidding references — and provably stays monotone
    /// (Fritsch–Carlson), so all market assumptions continue to hold. The
    /// catalog profiles default to linear interpolation to stay faithful to
    /// the digitization.
    #[must_use]
    pub fn with_monotone_interpolation(mut self) -> Self {
        self.smooth = Some(crate::interp::MonotoneCubic::new(&self.points));
        self
    }

    /// Application name (e.g. `"XSBench"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// CPU or GPU profile.
    #[must_use]
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The calibration points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Dynamic power (watts) per unit of allocation — the market's
    /// `watts_per_unit` conversion for jobs of this application.
    #[must_use]
    pub fn unit_dynamic_power_w(&self) -> f64 {
        self.unit_dynamic_power_w
    }

    /// The application's maximum feasible resource reduction per core,
    /// `Δ = 1 − alloc_min`.
    #[must_use]
    pub fn delta_max(&self) -> f64 {
        1.0 - self.points[0].0
    }

    /// Normalized performance at `allocation`, linearly interpolated.
    ///
    /// Below the profiled range the last segment's slope is extrapolated
    /// down to a floor of `1e-3` (the job barely progresses); above `1.0`
    /// performance is clamped to `1.0`.
    #[must_use]
    pub fn performance(&self, allocation: f64) -> f64 {
        let pts = &self.points;
        if allocation >= 1.0 {
            return 1.0;
        }
        if let Some(smooth) = &self.smooth {
            if allocation >= pts[0].0 {
                return smooth.eval(allocation).clamp(MIN_PERF, 1.0);
            }
            // Below the profiled range fall through to the linear
            // extrapolation, which models the performance collapse.
        }
        if allocation <= pts[0].0 {
            // Extrapolate with the first segment's slope.
            let (x0, y0) = pts[0];
            let (x1, y1) = pts[1];
            let slope = (y1 - y0) / (x1 - x0);
            return (y0 + slope * (allocation - x0)).max(MIN_PERF);
        }
        for w in pts.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if allocation <= x1 {
                let t = (allocation - x0) / (x1 - x0);
                return (y0 + t * (y1 - y0)).max(MIN_PERF);
            }
        }
        1.0
    }

    /// Extra execution needed to finish the same work under a per-core
    /// reduction of `reduction`, following Fig. 3(b):
    /// `ExtraExecution = (100 − Performance) / Performance` — expressed per
    /// unit of capped time, in the same core-time units as the reduction.
    #[must_use]
    pub fn extra_execution(&self, reduction: f64) -> f64 {
        let perf = self.performance(1.0 - reduction.max(0.0));
        (1.0 - perf) / perf
    }

    /// A measure of how sensitive this application is to resource
    /// reduction: its extra execution at half its feasible range. Used for
    /// ordering/reporting, not by the market itself.
    #[must_use]
    pub fn sensitivity(&self) -> f64 {
        self.extra_execution(0.5 * self.delta_max())
    }

    /// The ground-truth cost model for a single core of this application
    /// with user surcharge coefficient `alpha >= 1` (Eqn. 6).
    #[must_use]
    pub fn cost_model(self: &Arc<Self>, alpha: f64) -> ProfileCost {
        ProfileCost {
            profile: Arc::clone(self),
            alpha,
        }
    }
}

/// The ground-truth, table-driven cost model of an application:
/// `C(δ) = α · ExtraExecution(δ)` per core (Section III-C).
#[derive(Debug, Clone)]
pub struct ProfileCost {
    profile: Arc<AppProfile>,
    alpha: f64,
}

impl ProfileCost {
    /// The underlying application profile.
    #[must_use]
    pub fn profile(&self) -> &Arc<AppProfile> {
        &self.profile
    }

    /// The user's perceived-cost coefficient `α`.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl CostModel for ProfileCost {
    fn cost(&self, delta: f64) -> f64 {
        self.alpha * self.profile.extra_execution(delta)
    }

    fn delta_max(&self) -> f64 {
        self.profile.delta_max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use proptest::prelude::*;

    fn xsbench() -> Arc<AppProfile> {
        catalog::profile_by_name("XSBench").unwrap()
    }

    #[test]
    fn validation_rejects_bad_curves() {
        let mk = |pts: Vec<(f64, f64)>| AppProfile::new("t", DeviceKind::Cpu, pts, 125.0);
        assert_eq!(
            mk(vec![(1.0, 1.0)]).unwrap_err(),
            ProfileError::TooFewPoints
        );
        assert_eq!(
            mk(vec![(0.5, 0.5), (0.5, 1.0)]).unwrap_err(),
            ProfileError::UnsortedAllocations
        );
        assert_eq!(
            mk(vec![(0.5, 0.8), (0.7, 0.6), (1.0, 1.0)]).unwrap_err(),
            ProfileError::NonMonotone
        );
        assert_eq!(
            mk(vec![(0.5, 0.0), (1.0, 1.0)]).unwrap_err(),
            ProfileError::PerformanceOutOfRange(0.0)
        );
        assert_eq!(
            mk(vec![(0.5, 0.5), (0.9, 0.9)]).unwrap_err(),
            ProfileError::NotNormalized
        );
        assert!(mk(vec![(0.3, 0.35), (1.0, 1.0)]).is_ok());
    }

    #[test]
    fn interpolation_hits_calibration_points() {
        let p = xsbench();
        for &(alloc, perf) in p.points() {
            assert!(
                (p.performance(alloc) - perf).abs() < 1e-12,
                "at {alloc}: {} != {perf}",
                p.performance(alloc)
            );
        }
    }

    #[test]
    fn performance_clamps_above_one() {
        let p = xsbench();
        assert_eq!(p.performance(1.5), 1.0);
    }

    #[test]
    fn extrapolation_below_range_floors_at_min_perf() {
        let p = xsbench();
        let deep = p.performance(0.0);
        assert!(deep >= MIN_PERF);
        assert!(deep < p.performance(p.points()[0].0));
        // Extra execution explodes as we push past the feasible range.
        assert!(p.extra_execution(0.99) > p.extra_execution(p.delta_max()) * 2.0);
    }

    #[test]
    fn extra_execution_zero_at_no_reduction() {
        let p = xsbench();
        assert_eq!(p.extra_execution(0.0), 0.0);
        assert_eq!(p.extra_execution(-0.5), 0.0);
    }

    #[test]
    fn cost_model_scales_with_alpha() {
        let p = xsbench();
        let c1 = p.cost_model(1.0);
        let c2 = p.cost_model(2.0);
        assert!((c2.cost(0.3) - 2.0 * c1.cost(0.3)).abs() < 1e-12);
        assert_eq!(c1.delta_max(), p.delta_max());
        assert_eq!(c2.alpha(), 2.0);
        assert_eq!(c1.profile().name(), "XSBench");
    }

    #[test]
    fn monotone_interpolation_agrees_at_knots_and_stays_monotone() {
        let linear = xsbench();
        let smooth = AppProfile::clone(&linear).with_monotone_interpolation();
        for &(alloc, perf) in linear.points() {
            assert!(
                (smooth.performance(alloc) - perf).abs() < 1e-9,
                "knot at {alloc}"
            );
        }
        let mut prev = 0.0;
        for i in 0..=200 {
            let a = 0.3 + 0.7 * f64::from(i) / 200.0;
            let p = smooth.performance(a);
            assert!(p + 1e-9 >= prev, "monotone violated at {a}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        // Below the profiled range the collapse behaviour is preserved.
        assert!(smooth.performance(0.05) <= linear.performance(0.3));
    }

    #[test]
    fn device_kind_display() {
        assert_eq!(DeviceKind::Cpu.to_string(), "CPU");
        assert_eq!(DeviceKind::Gpu.to_string(), "GPU");
    }

    #[test]
    fn profile_error_display_nonempty() {
        for e in [
            ProfileError::TooFewPoints,
            ProfileError::UnsortedAllocations,
            ProfileError::PerformanceOutOfRange(2.0),
            ProfileError::NotNormalized,
            ProfileError::NonMonotone,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    proptest! {
        /// Performance is monotone in allocation for every catalog profile.
        #[test]
        fn performance_monotone(
            idx in 0usize..14,
            a1 in 0.0f64..1.0,
            da in 0.0f64..1.0,
        ) {
            let all: Vec<_> = catalog::cpu_profiles()
                .into_iter()
                .chain(catalog::gpu_profiles())
                .collect();
            let p = &all[idx % all.len()];
            let lo = p.performance(a1);
            let hi = p.performance((a1 + da).min(1.0));
            prop_assert!(hi + 1e-12 >= lo);
        }

        /// Extra execution (hence cost) is non-negative, zero at zero, and
        /// non-decreasing in the reduction.
        #[test]
        fn extra_execution_monotone(idx in 0usize..14, r in 0.0f64..0.9, dr in 0.0f64..0.1) {
            let all: Vec<_> = catalog::cpu_profiles()
                .into_iter()
                .chain(catalog::gpu_profiles())
                .collect();
            let p = &all[idx % all.len()];
            prop_assert!(p.extra_execution(r) >= 0.0);
            prop_assert!(p.extra_execution(r + dr) + 1e-12 >= p.extra_execution(r));
        }
    }
}
