//! Building an [`AppProfile`] from measured `(allocation, performance)`
//! samples.
//!
//! The paper leans on users estimating their performance impact and notes
//! the manager can help by "accommodating discounted job execution to
//! assist performance modeling" (Section III-F). This module is that
//! pipeline's analysis half: take noisy calibration-run measurements, bin
//! them per allocation level, enforce monotonicity with isotonic regression
//! (pool-adjacent-violators), normalize to full-allocation performance and
//! emit a valid profile.

use std::collections::BTreeMap;

use crate::profile::{AppProfile, DeviceKind, ProfileError};

/// Errors raised while calibrating a profile from samples.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CalibrationError {
    /// Fewer than two distinct allocation levels were measured.
    TooFewLevels,
    /// No sample at (or near) full allocation to normalize against.
    MissingFullAllocation,
    /// The resulting curve failed profile validation.
    Profile(ProfileError),
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::TooFewLevels => {
                write!(f, "need samples at two or more allocation levels")
            }
            CalibrationError::MissingFullAllocation => {
                write!(f, "need at least one sample at full allocation")
            }
            CalibrationError::Profile(e) => write!(f, "calibrated curve invalid: {e}"),
        }
    }
}

impl std::error::Error for CalibrationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CalibrationError::Profile(e) => Some(e),
            _ => None,
        }
    }
}

/// Isotonic regression by pool-adjacent-violators: the closest
/// non-decreasing sequence (least squares, weighted) to `ys`.
#[must_use]
pub fn isotonic(ys: &[f64], weights: &[f64]) -> Vec<f64> {
    assert_eq!(ys.len(), weights.len(), "one weight per value");
    // Blocks of (mean, weight, count).
    let mut blocks: Vec<(f64, f64, usize)> = Vec::with_capacity(ys.len());
    for (&y, &w) in ys.iter().zip(weights) {
        blocks.push((y, w.max(1e-12), 1));
        // Merge while the tail violates monotonicity.
        while blocks.len() >= 2 {
            let last = blocks[blocks.len() - 1];
            let prev = blocks[blocks.len() - 2];
            if prev.0 <= last.0 {
                break;
            }
            let w = prev.1 + last.1;
            let mean = (prev.0 * prev.1 + last.0 * last.1) / w;
            let count = prev.2 + last.2;
            blocks.truncate(blocks.len() - 2);
            blocks.push((mean, w, count));
        }
    }
    let mut out = Vec::with_capacity(ys.len());
    for (mean, _, count) in blocks {
        out.extend(std::iter::repeat_n(mean, count));
    }
    out
}

/// Calibrates a profile from raw measurement samples.
///
/// Each sample is `(allocation, performance)` in arbitrary consistent
/// performance units (throughput, inverse runtime, …). Samples are averaged
/// per allocation level (two levels within `1e-6` merge), made monotone by
/// isotonic regression, and normalized so full allocation maps to 1.0.
///
/// # Errors
///
/// Returns a [`CalibrationError`] when fewer than two levels were measured,
/// when no sample exists at allocation ≥ 0.999, or when the resulting curve
/// fails [`AppProfile`] validation.
pub fn profile_from_samples(
    name: impl Into<String>,
    kind: DeviceKind,
    samples: &[(f64, f64)],
    unit_dynamic_power_w: f64,
) -> Result<AppProfile, CalibrationError> {
    // Bin by allocation (quantized to 1e-6 to merge repeats).
    let mut bins: BTreeMap<i64, (f64, f64, usize)> = BTreeMap::new();
    for &(alloc, perf) in samples {
        if !(alloc.is_finite() && perf.is_finite()) || perf < 0.0 {
            continue;
        }
        let key = (alloc * 1e6).round() as i64;
        let e = bins.entry(key).or_insert((0.0, 0.0, 0));
        e.0 = alloc;
        e.1 += perf;
        e.2 += 1;
    }
    if bins.len() < 2 {
        return Err(CalibrationError::TooFewLevels);
    }
    let allocs: Vec<f64> = bins.values().map(|(a, _, _)| *a).collect();
    let means: Vec<f64> = bins.values().map(|(_, sum, n)| sum / *n as f64).collect();
    let weights: Vec<f64> = bins.values().map(|(_, _, n)| *n as f64).collect();
    if allocs.last().copied().unwrap_or(0.0) < 0.999 {
        return Err(CalibrationError::MissingFullAllocation);
    }

    // Monotone fit, then normalize to the full-allocation level.
    let fitted = isotonic(&means, &weights);
    let full = *fitted.last().expect("non-empty");
    if full <= 0.0 {
        return Err(CalibrationError::Profile(
            ProfileError::PerformanceOutOfRange(0.0),
        ));
    }
    let mut points: Vec<(f64, f64)> = allocs
        .iter()
        .zip(&fitted)
        .map(|(&a, &p)| (a.min(1.0), (p / full).clamp(1e-6, 1.0)))
        .collect();
    // Force the exact (1.0, 1.0) endpoint the profile contract requires.
    if let Some(last) = points.last_mut() {
        *last = (1.0, 1.0);
    }
    AppProfile::new(name, kind, points, unit_dynamic_power_w).map_err(CalibrationError::Profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pava_fixes_local_violations() {
        let ys = [1.0, 3.0, 2.0, 4.0];
        let w = [1.0; 4];
        let fit = isotonic(&ys, &w);
        assert_eq!(fit, vec![1.0, 2.5, 2.5, 4.0]);
        // Already-monotone input is untouched.
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(isotonic(&ys, &[1.0; 3]), ys.to_vec());
    }

    #[test]
    fn pava_respects_weights() {
        // Heavy first point pulls the pooled mean toward it.
        let fit = isotonic(&[2.0, 1.0], &[3.0, 1.0]);
        assert!((fit[0] - 1.75).abs() < 1e-12);
        assert_eq!(fit[0], fit[1]);
    }

    #[test]
    fn recovers_a_clean_profile() {
        let samples: Vec<(f64, f64)> = vec![
            (0.3, 35.0),
            (0.5, 55.0),
            (0.7, 75.0),
            (1.0, 100.0),
            (1.0, 100.0),
        ];
        let p = profile_from_samples("cal", DeviceKind::Cpu, &samples, 125.0).unwrap();
        assert!((p.performance(0.5) - 0.55).abs() < 1e-9);
        assert_eq!(p.performance(1.0), 1.0);
        assert!((p.delta_max() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn noisy_measurements_yield_a_monotone_profile() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let truth = |a: f64| 20.0 + 80.0 * a;
        let samples: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let a = 0.3 + 0.7 * f64::from(i % 8) / 7.0;
                (a, truth(a) * rng.gen_range(0.9..1.1))
            })
            .collect();
        let p = profile_from_samples("noisy", DeviceKind::Cpu, &samples, 125.0).unwrap();
        let mut prev = 0.0;
        for i in 0..=100 {
            let a = 0.3 + 0.7 * f64::from(i) / 100.0;
            let perf = p.performance(a);
            assert!(perf + 1e-9 >= prev, "monotone violated at {a}");
            prev = perf;
        }
        // Close to the ground truth at mid-range.
        assert!((p.performance(0.65) - truth(0.65) / 100.0).abs() < 0.05);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            profile_from_samples("x", DeviceKind::Cpu, &[(1.0, 100.0)], 125.0).unwrap_err(),
            CalibrationError::TooFewLevels
        );
        assert_eq!(
            profile_from_samples("x", DeviceKind::Cpu, &[(0.3, 30.0), (0.6, 60.0)], 125.0)
                .unwrap_err(),
            CalibrationError::MissingFullAllocation
        );
        // Non-finite and negative samples are ignored, not fatal.
        let p = profile_from_samples(
            "x",
            DeviceKind::Cpu,
            &[(0.5, 50.0), (1.0, 100.0), (f64::NAN, 1.0), (0.7, -5.0)],
            125.0,
        )
        .unwrap();
        assert_eq!(p.points().len(), 2);
    }

    #[test]
    fn calibrated_profile_feeds_the_market() {
        use mpr_core::bidding::StaticStrategy;
        use mpr_core::CostModel;
        let samples = vec![(0.3, 40.0), (0.6, 70.0), (1.0, 100.0)];
        let p = std::sync::Arc::new(
            profile_from_samples("cal", DeviceKind::Cpu, &samples, 125.0).unwrap(),
        );
        let cost = p.cost_model(1.0);
        assert!(cost.cost(0.3) > 0.0);
        let supply = StaticStrategy::Cooperative.supply_for(&cost).unwrap();
        assert!(supply.bid() > 0.0);
    }
}
