//! Counterexample shrinking by greedy delta-debugging.
//!
//! A violating scenario usually carries several fault layers, only one of
//! which matters. [`shrink`] minimizes it against a *reproduction
//! predicate* — "does this scenario still trip the same oracle?" — by
//! repeatedly trying size-reducing transformations, biggest first: drop a
//! whole fault layer, then zero individual components, then normalize the
//! config perturbations. A transformation is kept only when the predicate
//! still holds, so the result provably reproduces the original violation;
//! every kept step strictly decreases [`Scenario::complexity`], so the
//! loop terminates after at most `complexity²` predicate evaluations.
//!
//! The test-only `emergency_disabled`, `wal_fsync_never` and
//! `grid_unfenced` knobs are deliberately **not** shrink targets: they
//! are planted (never drawn), and removing them would turn a
//! seeded-violation counterexample back into a healthy run. The kill
//! point *is* a target — a durability violation that survives with the
//! kill removed is not about crashes at all — but one that needs the
//! crash keeps it, pinning the minimal repro to "this fsync policy loses
//! acknowledged slots on a kill". Likewise the grid-fault layer and the
//! tree it breaks are pinned while `grid_unfenced` is set: an unfenced
//! violation without a dead node to route power through is no violation
//! at all.

use mpr_sim::{CostNoise, NetPlan};

use crate::scenario::{Scenario, DEFAULT_OVERSUB_PCT};

/// One size-reducing transformation: returns `None` when the scenario
/// does not carry the component the step removes.
struct Step {
    name: &'static str,
    apply: fn(&Scenario) -> Option<Scenario>,
}

/// The candidate transformations, biggest first. Order matters for
/// minimality *quality* (not correctness): dropping a whole layer early
/// saves the per-component probes inside it.
const STEPS: &[Step] = &[
    Step {
        name: "drop fault_plan",
        apply: |s| {
            s.fault_plan?;
            Some(Scenario {
                fault_plan: None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "drop net_plan",
        apply: |s| {
            s.net_plan?;
            Some(Scenario {
                net_plan: None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "drop sensor faults",
        apply: |s| {
            s.sensor?;
            Some(Scenario {
                sensor: None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "drop disk_plan",
        apply: |s| {
            s.disk_plan?;
            Some(Scenario {
                disk_plan: None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "remove kill",
        apply: |s| {
            (s.kill_at_frac > 0.0).then(|| Scenario {
                kill_at_frac: 0.0,
                ..s.clone()
            })
        },
    },
    Step {
        name: "drop grid faults",
        apply: |s| {
            s.grid_fault?;
            if s.grid_unfenced {
                return None;
            }
            Some(Scenario {
                grid_fault: None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "collapse power tree",
        apply: |s| {
            s.topology?;
            if s.grid_unfenced {
                return None;
            }
            // Grid faults cannot outlive the tree they break.
            Some(Scenario {
                topology: None,
                grid_fault: None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "prune power tree to one branch",
        apply: |s| {
            let mut t = s.topology.filter(|t| t.total_racks() > 1)?;
            t.ups_count = 1;
            t.pdus_per_ups = 1;
            t.racks_per_pdu = 1;
            Some(Scenario {
                topology: Some(t),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero grid ups failures",
        apply: |s| {
            if s.grid_unfenced {
                return None;
            }
            let mut g = s.grid_fault.filter(|g| g.ups_failure_prob > 0.0)?;
            g.ups_failure_prob = 0.0;
            Some(Scenario {
                grid_fault: Some(g),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero grid ats transfers",
        apply: |s| {
            if s.grid_unfenced {
                return None;
            }
            let mut g = s.grid_fault.filter(|g| g.ats_derate_prob > 0.0)?;
            g.ats_derate_prob = 0.0;
            Some(Scenario {
                grid_fault: Some(g),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero grid pdu trips",
        apply: |s| {
            if s.grid_unfenced {
                return None;
            }
            let mut g = s.grid_fault.filter(|g| g.pdu_trip_prob > 0.0)?;
            g.pdu_trip_prob = 0.0;
            Some(Scenario {
                grid_fault: Some(g),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero grid deratings",
        apply: |s| {
            if s.grid_unfenced {
                return None;
            }
            let mut g = s.grid_fault.filter(|g| g.derate_prob > 0.0)?;
            g.derate_prob = 0.0;
            Some(Scenario {
                grid_fault: Some(g),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero unresponsive_frac",
        apply: |s| {
            let mut p = s.fault_plan.filter(|p| p.unresponsive_frac > 0.0)?;
            p.unresponsive_frac = 0.0;
            Some(Scenario {
                fault_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero crash_frac",
        apply: |s| {
            let mut p = s.fault_plan.filter(|p| p.crash_frac > 0.0)?;
            p.crash_frac = 0.0;
            Some(Scenario {
                fault_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero stale_frac",
        apply: |s| {
            let mut p = s.fault_plan.filter(|p| p.stale_frac > 0.0)?;
            p.stale_frac = 0.0;
            Some(Scenario {
                fault_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero byzantine_frac",
        apply: |s| {
            let mut p = s.fault_plan.filter(|p| p.byzantine_frac > 0.0)?;
            p.byzantine_frac = 0.0;
            Some(Scenario {
                fault_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero net drop_prob",
        apply: |s| {
            let mut p = s.net_plan.filter(|p| p.drop_prob > 0.0)?;
            p.drop_prob = 0.0;
            Some(Scenario {
                net_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero net duplicate_prob",
        apply: |s| {
            let mut p = s.net_plan.filter(|p| p.duplicate_prob > 0.0)?;
            p.duplicate_prob = 0.0;
            Some(Scenario {
                net_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero net partition_prob",
        apply: |s| {
            let mut p = s.net_plan.filter(|p| p.partition_prob > 0.0)?;
            p.partition_prob = 0.0;
            Some(Scenario {
                net_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "reset net delay",
        apply: |s| {
            let default = NetPlan::default();
            let mut p = s
                .net_plan
                .filter(|p| p.max_delay_ticks > default.max_delay_ticks)?;
            p.min_delay_ticks = default.min_delay_ticks;
            p.max_delay_ticks = default.max_delay_ticks;
            Some(Scenario {
                net_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero sensor noise",
        apply: |s| {
            let mut c = s.sensor.filter(|c| c.noise_sigma_frac > 0.0)?;
            c.noise_sigma_frac = 0.0;
            Some(Scenario {
                sensor: Some(c),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero sensor dropout",
        apply: |s| {
            let mut c = s.sensor.filter(|c| c.dropout_prob > 0.0)?;
            c.dropout_prob = 0.0;
            Some(Scenario {
                sensor: Some(c),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero sensor stuck",
        apply: |s| {
            let mut c = s.sensor.filter(|c| c.stuck_prob > 0.0)?;
            c.stuck_prob = 0.0;
            Some(Scenario {
                sensor: Some(c),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero sensor spikes",
        apply: |s| {
            let mut c = s.sensor.filter(|c| c.spike_prob > 0.0)?;
            c.spike_prob = 0.0;
            Some(Scenario {
                sensor: Some(c),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero sensor delay",
        apply: |s| {
            let mut c = s.sensor.filter(|c| c.delay_polls > 0)?;
            c.delay_polls = 0;
            Some(Scenario {
                sensor: Some(c),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero disk torn writes",
        apply: |s| {
            let mut p = s.disk_plan.filter(|p| p.torn_write_prob > 0.0)?;
            p.torn_write_prob = 0.0;
            Some(Scenario {
                disk_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero disk bit flips",
        apply: |s| {
            let mut p = s.disk_plan.filter(|p| p.bit_flip_prob > 0.0)?;
            p.bit_flip_prob = 0.0;
            Some(Scenario {
                disk_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero disk fsync failures",
        apply: |s| {
            let mut p = s.disk_plan.filter(|p| p.fsync_fail_prob > 0.0)?;
            p.fsync_fail_prob = 0.0;
            Some(Scenario {
                disk_plan: Some(p),
                ..s.clone()
            })
        },
    },
    Step {
        name: "remove cost noise",
        apply: |s| {
            if matches!(s.cost_noise, CostNoise::None) {
                return None;
            }
            Some(Scenario {
                cost_noise: CostNoise::None,
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero alpha_spread",
        apply: |s| {
            (s.alpha_spread > 0.0).then(|| Scenario {
                alpha_spread: 0.0,
                ..s.clone()
            })
        },
    },
    Step {
        name: "restore full participation",
        apply: |s| {
            (s.participation < 1.0).then(|| Scenario {
                participation: 1.0,
                ..s.clone()
            })
        },
    },
    Step {
        name: "zero phase_amplitude",
        apply: |s| {
            (s.phase_amplitude > 0.0).then(|| Scenario {
                phase_amplitude: 0.0,
                ..s.clone()
            })
        },
    },
    Step {
        name: "normalize oversubscription",
        apply: |s| {
            ((s.oversub_pct - DEFAULT_OVERSUB_PCT).abs() > 0.0).then(|| Scenario {
                oversub_pct: DEFAULT_OVERSUB_PCT,
                ..s.clone()
            })
        },
    },
];

/// Outcome of shrinking one violating scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkResult {
    /// The minimal scenario: still reproduces, no step applies any more.
    pub scenario: Scenario,
    /// Names of the accepted transformations, in order.
    pub steps_applied: Vec<&'static str>,
    /// Total predicate evaluations spent (accepted + rejected probes).
    pub probes: usize,
}

/// Minimizes `scenario` against `reproduces` by greedy delta-debugging.
///
/// `reproduces` must return `true` when the candidate still triggers the
/// *same* violation class as the original (the campaign passes a closure
/// that re-simulates and checks the original oracle's name). The input
/// scenario itself is assumed to reproduce; the returned scenario is
/// guaranteed to (it equals the input when nothing could be removed), is
/// never larger than the input, and every accepted step strictly reduced
/// [`Scenario::complexity`].
pub fn shrink<F>(scenario: &Scenario, mut reproduces: F) -> ShrinkResult
where
    F: FnMut(&Scenario) -> bool,
{
    let mut current = scenario.clone();
    let mut steps_applied = Vec::new();
    let mut probes = 0;
    loop {
        let mut progressed = false;
        for step in STEPS {
            let Some(candidate) = (step.apply)(&current) else {
                continue;
            };
            debug_assert!(candidate.complexity() < current.complexity());
            probes += 1;
            if reproduces(&candidate) {
                current = candidate;
                steps_applied.push(step.name);
                progressed = true;
                // Restart from the biggest steps: removing one component
                // often makes a whole-layer drop viable again.
                break;
            }
        }
        if !progressed {
            return ShrinkResult {
                scenario: current,
                steps_applied,
                probes,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_sim::{Algorithm, FaultPlan};

    fn busy_scenario() -> Scenario {
        let mut s = Scenario::generate(11, 3);
        s.algorithm = Algorithm::MprInt;
        s.fault_plan = Some(FaultPlan {
            unresponsive_frac: 0.2,
            crash_frac: 0.1,
            stale_frac: 0.1,
            byzantine_frac: 0.05,
            ..FaultPlan::default()
        });
        s.net_plan = Some(NetPlan::lossy(0.3));
        s.disk_plan = Some(mpr_sim::DiskPlan {
            torn_write_prob: 0.2,
            bit_flip_prob: 0.005,
            fsync_fail_prob: 0.1,
            capacity_bytes: None,
        });
        s.kill_at_frac = 0.5;
        s.topology = Some(crate::scenario::TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 2,
            racks_per_pdu: 3,
            inner_headroom: 1.1,
        });
        s.grid_fault = Some(mpr_power::GridFaultPlan {
            ups_failure_prob: 0.6,
            pdu_trip_prob: 0.3,
            ..mpr_power::GridFaultPlan::default()
        });
        s.cost_noise = CostNoise::Random { magnitude: 0.2 };
        s.participation = 0.6;
        s.oversub_pct = 25.0;
        s
    }

    #[test]
    fn always_reproducing_predicate_shrinks_to_empty() {
        let s = busy_scenario();
        let r = shrink(&s, |_| true);
        assert_eq!(r.scenario.complexity(), 0, "{:?}", r.scenario);
        assert!(!r.steps_applied.is_empty());
    }

    #[test]
    fn never_reproducing_predicate_keeps_the_input() {
        let s = busy_scenario();
        let r = shrink(&s, |_| false);
        assert_eq!(r.scenario, s);
        assert!(r.steps_applied.is_empty());
        assert!(r.probes > 0);
    }

    #[test]
    fn predicate_pinning_one_component_keeps_exactly_it() {
        let s = busy_scenario();
        // The "real" cause: the unresponsive fraction. Everything else is
        // noise the shrinker must strip.
        let r = shrink(&s, |c| {
            c.fault_plan.is_some_and(|p| p.unresponsive_frac > 0.0)
        });
        let p = r.scenario.fault_plan.expect("kept the fault plan");
        assert!(p.unresponsive_frac > 0.0);
        assert_eq!(p.crash_frac, 0.0);
        assert_eq!(p.stale_frac, 0.0);
        assert_eq!(p.byzantine_frac, 0.0);
        assert!(r.scenario.net_plan.is_none());
        assert!(r.scenario.sensor.is_none());
        assert!(matches!(r.scenario.cost_noise, CostNoise::None));
        // presence + the pinned fraction
        assert_eq!(r.scenario.complexity(), 2);
    }

    #[test]
    fn emergency_knob_survives_shrinking() {
        let mut s = busy_scenario();
        s.emergency_disabled = true;
        let r = shrink(&s, |_| true);
        assert!(r.scenario.emergency_disabled);
        assert_eq!(r.scenario.complexity(), 0);
    }

    #[test]
    fn wal_fsync_knob_survives_shrinking() {
        let mut s = busy_scenario();
        s.wal_fsync_never = true;
        let r = shrink(&s, |_| true);
        assert!(r.scenario.wal_fsync_never);
        assert_eq!(r.scenario.complexity(), 0);
        assert!(r.scenario.disk_plan.is_none());
        assert_eq!(r.scenario.kill_at_frac, 0.0);
    }

    #[test]
    fn predicate_needing_the_crash_keeps_kill_and_disk() {
        let s = busy_scenario();
        // A durability-style predicate: only reproduces when the run is
        // both killed and journaling over torn writes.
        let r = shrink(&s, |c| {
            c.kill_at_frac > 0.0 && c.disk_plan.is_some_and(|p| p.torn_write_prob > 0.0)
        });
        assert!(r.scenario.kill_at_frac > 0.0);
        let p = r.scenario.disk_plan.expect("kept the disk plan");
        assert!(p.torn_write_prob > 0.0);
        assert_eq!(p.bit_flip_prob, 0.0);
        assert_eq!(p.fsync_fail_prob, 0.0);
        assert!(r.scenario.fault_plan.is_none());
        assert!(r.scenario.net_plan.is_none());
        // presence + torn + kill
        assert_eq!(r.scenario.complexity(), 3);
    }

    #[test]
    fn predicate_needing_the_tree_keeps_a_minimal_branch() {
        let s = busy_scenario();
        // A federated-style predicate: only reproduces while overloads
        // still clear over a power tree. Everything else is noise, and the
        // tree itself collapses to a single UPS/PDU/rack branch.
        let r = shrink(&s, |c| c.topology.is_some());
        let t = r.scenario.topology.expect("kept the tree");
        assert_eq!(t.total_racks(), 1, "pruned to one branch");
        assert!(r.scenario.fault_plan.is_none());
        assert!(r.scenario.net_plan.is_none());
        assert!(r.scenario.disk_plan.is_none());
        assert_eq!(r.scenario.kill_at_frac, 0.0);
        // presence only: the fan-out component was pruned away
        assert_eq!(r.scenario.complexity(), 1);
        // Without the predicate the tree collapses entirely.
        let r = shrink(&s, |_| true);
        assert!(r.scenario.topology.is_none());
        assert_eq!(r.scenario.complexity(), 0);
    }

    #[test]
    fn predicate_needing_grid_faults_keeps_the_plan_and_its_tree() {
        let s = busy_scenario();
        // A grid-fencing-style predicate: only reproduces while UPS
        // failures still strike the tree.
        let r = shrink(&s, |c| {
            c.grid_fault.is_some_and(|g| g.ups_failure_prob > 0.0)
        });
        let g = r.scenario.grid_fault.expect("kept the plan");
        assert!(g.ups_failure_prob > 0.0);
        assert_eq!(g.pdu_trip_prob, 0.0, "the other fault class is noise");
        assert!(
            r.scenario.topology.is_some(),
            "grid faults keep the tree they break"
        );
        // tree presence + plan presence + the pinned UPS class
        assert_eq!(r.scenario.complexity(), 3);
        // Without the predicate the plan and the tree both collapse.
        let r = shrink(&s, |_| true);
        assert!(r.scenario.grid_fault.is_none());
        assert!(r.scenario.topology.is_none());
        assert_eq!(r.scenario.complexity(), 0);
    }

    #[test]
    fn grid_unfenced_knob_pins_the_plan_and_tree() {
        let mut s = busy_scenario();
        s.grid_unfenced = true;
        let r = shrink(&s, |_| true);
        assert!(r.scenario.grid_unfenced);
        assert!(
            r.scenario.grid_fault.is_some(),
            "planted unfenced violations need their faults"
        );
        assert!(r.scenario.topology.is_some());
        // Everything outside the pinned grid layer still shrinks away:
        // tree (pruned to one branch) + plan presence + two fault classes.
        assert_eq!(r.scenario.complexity(), 4);
        assert!(r.scenario.fault_plan.is_none());
        assert!(r.scenario.disk_plan.is_none());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Whatever grid-fault scenario the generator draws, its shrunk
            /// counterexample still reproduces the predicate that convicted
            /// it, never grows, keeps the tree the faults strike, shrinks
            /// away every fault class but the convicting one, and does all
            /// of it deterministically.
            #[test]
            fn shrunk_grid_counterexamples_still_reproduce(
                seed in 0u64..=u64::MAX,
                idx in 0u64..4096,
            ) {
                let scenario = Scenario::generate(seed, idx);
                prop_assume!(scenario.grid_fault.is_some());
                let reproduces =
                    |c: &Scenario| c.grid_fault.is_some_and(|g| g.ups_failure_prob > 0.0);
                prop_assume!(reproduces(&scenario));
                let a = shrink(&scenario, reproduces);
                let b = shrink(&scenario, reproduces);
                prop_assert_eq!(&a, &b, "shrinking must be deterministic");
                prop_assert!(
                    reproduces(&a.scenario),
                    "the minimal scenario must still reproduce"
                );
                prop_assert!(a.scenario.complexity() <= scenario.complexity());
                prop_assert!(
                    a.scenario.topology.is_some(),
                    "grid faults keep the tree they break"
                );
                let g = a.scenario.grid_fault.unwrap();
                let live_classes =
                    [g.ats_derate_prob, g.pdu_trip_prob, g.derate_prob]
                        .iter()
                        .filter(|p| **p > 0.0)
                        .count();
                prop_assert_eq!(
                    live_classes, 0,
                    "every fault class but the convicting one shrinks away"
                );
            }
        }
    }

    #[test]
    fn shrinking_is_monotone_under_any_predicate() {
        // Even a flaky predicate can only ever accept smaller scenarios.
        let s = busy_scenario();
        let mut flip = false;
        let r = shrink(&s, |_| {
            flip = !flip;
            flip
        });
        assert!(r.scenario.complexity() <= s.complexity());
    }
}
