//! Campaign orchestration: parallel fan-out, oracle checking, shrinking
//! and repro artifacts.
//!
//! [`run`] simulates `runs` scenarios drawn from `(seed, 0..runs)`,
//! sequentially *within* each run and in parallel *across* runs (rayon).
//! Results are collected in run-index order and all post-processing
//! (shrinking, artifact emission, serialization) is sequential, so a
//! campaign's [`CampaignReport`] — including its CSV and JSON renderings —
//! is bit-identical for a given seed regardless of `RAYON_NUM_THREADS`.
//!
//! Every run is wrapped in `catch_unwind` as a backstop: a panicking
//! simulation is itself a safety violation (oracle `no-panic`) rather
//! than a crashed campaign.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use mpr_sim::Simulation;
use mpr_workload::{ClusterSpec, Trace, TraceGenerator};
use rayon::prelude::*;

use crate::json::{self, ObjWriter, Value};
use crate::oracle::{self, Violation};
use crate::scenario::Scenario;
use crate::shrink;
use crate::SPACE_VERSION;

/// Name of the synthesized oracle for runs that panic.
pub const NO_PANIC_ORACLE: &str = "no-panic";

/// Campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Number of scenarios to draw and simulate.
    pub runs: usize,
    /// Campaign seed: run *k* simulates [`Scenario::generate`]`(seed, k)`.
    pub seed: u64,
    /// Trace span per run, days (the gaia cluster trace).
    pub days: f64,
    /// **Test-only.** Plant `emergency_disabled` into every scenario to
    /// prove the oracles catch a real safety failure end-to-end.
    pub emergency_disabled: bool,
    /// **Test-only.** Plant the unsound `wal_fsync_never` journaling
    /// policy (plus a mid-run kill where the scenario drew none) into
    /// every scenario, to prove the `durability-commit` oracle catches an
    /// acknowledgement-loss bug end-to-end.
    pub wal_fsync_never: bool,
    /// **Test-only.** Plant an always-on UPS failure with fencing
    /// disabled (plus a power tree where the scenario drew none) into
    /// every scenario, to prove the `grid-fencing` oracle catches power
    /// routed through dead infrastructure end-to-end.
    pub tree_fault_ups: bool,
    /// Delta-debug each failure to a minimal reproducing scenario.
    pub shrink: bool,
    /// Where to write repro artifacts (one JSON file per failing run);
    /// `None` keeps artifacts in memory only.
    pub artifact_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            runs: 100,
            seed: 0x4d50_5221,
            days: 1.0,
            emergency_disabled: false,
            wal_fsync_never: false,
            tree_fault_ups: false,
            shrink: true,
            artifact_dir: None,
        }
    }
}

/// Per-run outcome, kept scalar so thousand-run campaigns stay small.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Run index (the scenario is `Scenario::generate(seed, index)`).
    pub index: u64,
    /// The scenario simulated.
    pub scenario: Scenario,
    /// Violations found by the oracle registry (empty = clean run).
    pub violations: Vec<Violation>,
    /// `true` when the simulation panicked (`violations` then carries the
    /// synthesized `no-panic` entry).
    pub panicked: bool,
    /// Simulated slots.
    pub total_slots: usize,
    /// Emergencies declared.
    pub overload_events: usize,
    /// Slots over capacity.
    pub overload_slots: usize,
}

/// One failing run, minimized and packaged for reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Failure {
    /// Failing run index.
    pub index: u64,
    /// Name of the first oracle that fired (the shrink target).
    pub oracle: String,
    /// The firing oracle's evidence.
    pub message: String,
    /// The scenario as generated.
    pub original: Scenario,
    /// The minimal scenario that still reproduces (equals `original`
    /// when shrinking is disabled or nothing could be removed).
    pub shrunk: Scenario,
    /// Shrink transformations accepted, in order.
    pub shrink_steps: Vec<&'static str>,
    /// Re-simulations the shrinker spent.
    pub probes: usize,
    /// Artifact location, when `artifact_dir` was set.
    pub artifact_path: Option<PathBuf>,
    /// Exact command reproducing the violation from the artifact.
    pub repro_command: Option<String>,
}

/// Aggregate campaign outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Generator-space version the campaign drew from.
    pub space_version: u32,
    /// Campaign seed.
    pub seed: u64,
    /// Trace span per run, days.
    pub days: f64,
    /// Every run, in index order.
    pub records: Vec<RunRecord>,
    /// Every failing run, in index order, shrunk when enabled.
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    /// Total violations across all runs.
    #[must_use]
    pub fn violation_count(&self) -> usize {
        self.records.iter().map(|r| r.violations.len()).sum()
    }

    /// `true` when every oracle held on every run.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Per-run CSV (`index,algorithm,...,oracles`), for offline triage.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "index,algorithm,oversub_pct,complexity,total_slots,overload_events,\
             overload_slots,violations,oracles\n",
        );
        for r in &self.records {
            let oracles: Vec<&str> = r.violations.iter().map(|v| v.oracle.as_str()).collect();
            out.push_str(&format!(
                "{},{},{:.3},{},{},{},{},{},{}\n",
                r.index,
                r.scenario.algorithm,
                r.scenario.oversub_pct,
                r.scenario.complexity(),
                r.total_slots,
                r.overload_events,
                r.overload_slots,
                r.violations.len(),
                oracles.join(";"),
            ));
        }
        out
    }

    /// Machine-readable campaign summary (failures carry full scenarios).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.num("space_version", f64::from(self.space_version))
            .u64("seed", self.seed)
            .num("days", self.days)
            .num("runs", self.records.len() as f64)
            .num("violations", self.violation_count() as f64)
            .bool("passed", self.passed());
        let failures: Vec<String> = self
            .failures
            .iter()
            .map(|f| {
                let mut fw = ObjWriter::new();
                fw.num("index", f.index as f64)
                    .str("oracle", &f.oracle)
                    .str("message", &f.message)
                    .raw("original", f.original.to_json(2))
                    .raw("shrunk", f.shrunk.to_json(2))
                    .raw("shrink_steps", str_array(&f.shrink_steps))
                    .num("probes", f.probes as f64);
                fw.render(1)
            })
            .collect();
        w.raw("failures", format!("[{}]", failures.join(", ")));
        w.render(0)
    }

    /// Human-readable campaign summary.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "chaos campaign: {} runs, seed {:#x}, generator space v{}, {} day(s) per run\n",
            self.records.len(),
            self.seed,
            self.space_version,
            self.days,
        );
        let with_faults = self
            .records
            .iter()
            .filter(|r| r.scenario.fault_plan.is_some())
            .count();
        let with_net = self
            .records
            .iter()
            .filter(|r| r.scenario.net_plan.is_some())
            .count();
        let with_sensor = self
            .records
            .iter()
            .filter(|r| r.scenario.sensor.is_some())
            .count();
        let with_disk = self
            .records
            .iter()
            .filter(|r| r.scenario.disk_plan.is_some())
            .count();
        let with_kill = self
            .records
            .iter()
            .filter(|r| r.scenario.kill_at_frac > 0.0)
            .count();
        let with_grid = self
            .records
            .iter()
            .filter(|r| r.scenario.grid_fault.is_some())
            .count();
        let emergencies: usize = self.records.iter().map(|r| r.overload_events).sum();
        out.push_str(&format!(
            "  fault plans: {with_faults}  net plans: {with_net}  sensor faults: {with_sensor}  \
             disk faults: {with_disk}  kills: {with_kill}  grid faults: {with_grid}  \
             emergencies simulated: {emergencies}\n",
        ));
        if self.passed() {
            out.push_str(&format!(
                "PASS: every safety invariant held across {} runs\n",
                self.records.len()
            ));
            return out;
        }
        out.push_str(&format!(
            "FAIL: {} violation(s) in {} run(s)\n",
            self.violation_count(),
            self.failures.len()
        ));
        for f in &self.failures {
            out.push_str(&format!(
                "  run {}: [{}] {}\n    original: {}\n    shrunk:   {} (complexity {} -> {}, {} steps, {} probes)\n",
                f.index,
                f.oracle,
                f.message,
                f.original.describe(),
                f.shrunk.describe(),
                f.original.complexity(),
                f.shrunk.complexity(),
                f.shrink_steps.len(),
                f.probes,
            ));
            if let Some(cmd) = &f.repro_command {
                out.push_str(&format!("    reproduce: {cmd}\n"));
            }
        }
        out
    }
}

fn str_array(items: &[&str]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json::escape(s)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

/// Simulates one scenario, catching panics. Durable scenarios (a disk
/// plan, a kill, or the planted fsync knob) run through the
/// crash/recover harness; the kill fraction is resolved to a slot here,
/// against the trace span — the one quantity the scenario cannot know.
fn simulate(trace: &Trace, scenario: &Scenario) -> Result<mpr_sim::SimReport, String> {
    let mut cfg = scenario.sim_config();
    if let Some(plan) = cfg.durability.as_mut() {
        if scenario.kill_at_frac > 0.0 {
            let slots = (trace.span_secs() / cfg.slot_secs).max(1.0);
            plan.kill_at_slot = Some(((slots * scenario.kill_at_frac) as u64).max(1));
        }
    }
    let durable = cfg.durability.is_some();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if durable {
            mpr_sim::run_durable(trace, cfg)
                .map(|run| run.report)
                .map_err(|e| format!("ledger unrecoverable: {e}"))
        } else {
            Ok(Simulation::new(trace, cfg).run())
        }
    }));
    match outcome {
        Ok(result) => result,
        Err(payload) => Err(payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic payload of unknown type".to_owned())),
    }
}

fn run_one(trace: &Trace, cc: &CampaignConfig, index: u64) -> RunRecord {
    let mut scenario = Scenario::generate(cc.seed, index);
    if cc.emergency_disabled {
        scenario.emergency_disabled = true;
    }
    if cc.wal_fsync_never {
        scenario.wal_fsync_never = true;
        // The unsound policy only loses data when something actually
        // crashes: make sure every planted run gets killed mid-flight.
        // lint: allow(nan-safety) 0.0 is the exact "no kill drawn" sentinel, never computed
        if scenario.kill_at_frac == 0.0 {
            scenario.kill_at_frac = 0.5;
        }
    }
    if cc.tree_fault_ups {
        // The unfenced knob only bites when a dead node exists to route
        // power through: give every planted run a tree and a UPS that is
        // dark from the first slot and never repaired.
        scenario.grid_unfenced = true;
        if scenario.topology.is_none() {
            scenario.topology = Some(crate::scenario::TopologyDraw {
                ups_count: 2,
                pdus_per_ups: 1,
                racks_per_pdu: 2,
                inner_headroom: 1.3,
            });
        }
        scenario.grid_fault = Some(mpr_power::GridFaultPlan::always_on_ups_failure());
    }
    match simulate(trace, &scenario) {
        Ok(report) => RunRecord {
            index,
            violations: oracle::check_all(&scenario, &report),
            panicked: false,
            total_slots: report.total_slots,
            overload_events: report.overload_events,
            overload_slots: report.overload_slots,
            scenario,
        },
        Err(panic_msg) => RunRecord {
            index,
            violations: vec![Violation {
                oracle: NO_PANIC_ORACLE.to_owned(),
                message: format!("simulation panicked: {panic_msg}"),
            }],
            panicked: true,
            total_slots: 0,
            overload_events: 0,
            overload_slots: 0,
            scenario,
        },
    }
}

/// `true` when `candidate` still trips the oracle named `oracle`.
fn reproduces(trace: &Trace, candidate: &Scenario, oracle_name: &str) -> bool {
    match simulate(trace, candidate) {
        Ok(report) => oracle::check_all(candidate, &report)
            .iter()
            .any(|v| v.oracle == oracle_name),
        Err(_) => oracle_name == NO_PANIC_ORACLE,
    }
}

/// Runs a full campaign: generate, fan out, check, shrink, package.
///
/// # Errors
///
/// Only artifact-file I/O can fail; the campaign itself is infallible
/// (panicking runs become `no-panic` violations).
pub fn run(cc: &CampaignConfig) -> std::io::Result<CampaignReport> {
    let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(cc.days)).generate();

    let records: Vec<RunRecord> = (0..cc.runs as u64)
        .into_par_iter()
        .map(|i| run_one(&trace, cc, i))
        .collect();

    if let Some(dir) = &cc.artifact_dir {
        std::fs::create_dir_all(dir)?;
    }

    let mut failures = Vec::new();
    for r in records.iter().filter(|r| !r.violations.is_empty()) {
        // Shrink against the first violation's oracle; the rest are listed
        // in the record but usually collapse to the same root cause.
        let Some(primary) = r.violations.first() else {
            continue;
        };
        let shrunk = if cc.shrink {
            shrink::shrink(&r.scenario, |cand| {
                reproduces(&trace, cand, &primary.oracle)
            })
        } else {
            shrink::ShrinkResult {
                scenario: r.scenario.clone(),
                steps_applied: Vec::new(),
                probes: 0,
            }
        };
        let mut failure = Failure {
            index: r.index,
            oracle: primary.oracle.clone(),
            message: primary.message.clone(),
            original: r.scenario.clone(),
            shrunk: shrunk.scenario,
            shrink_steps: shrunk.steps_applied,
            probes: shrunk.probes,
            artifact_path: None,
            repro_command: None,
        };
        if let Some(dir) = &cc.artifact_dir {
            let path = dir.join(format!("chaos-repro-{}.json", r.index));
            let cmd = format!(
                "cargo run -p mpr-cli --release -- chaos --replay {}",
                path.display()
            );
            let text = artifact_json(cc, &failure, &cmd);
            let mut file = std::fs::File::create(&path)?;
            file.write_all(text.as_bytes())?;
            failure.artifact_path = Some(path);
            failure.repro_command = Some(cmd);
        }
        failures.push(failure);
    }

    Ok(CampaignReport {
        space_version: SPACE_VERSION,
        seed: cc.seed,
        days: cc.days,
        records,
        failures,
    })
}

/// Renders one failure as a self-contained repro artifact.
#[must_use]
fn artifact_json(cc: &CampaignConfig, f: &Failure, repro_command: &str) -> String {
    let mut w = ObjWriter::new();
    w.num("space_version", f64::from(SPACE_VERSION))
        .u64("campaign_seed", cc.seed)
        .num("run_index", f.index as f64)
        .num("days", cc.days)
        .str("oracle", &f.oracle)
        .str("message", &f.message)
        .raw("shrink_steps", str_array(&f.shrink_steps))
        .raw("scenario", f.shrunk.to_json(1))
        .str("repro_command", repro_command);
    let mut text = w.render(0);
    text.push('\n');
    text
}

/// A parsed repro artifact, ready to re-run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPlan {
    /// The (shrunk) scenario to re-simulate.
    pub scenario: Scenario,
    /// Trace span, days.
    pub days: f64,
    /// The oracle expected to fire.
    pub oracle: String,
    /// The original violation message, for context.
    pub message: String,
}

/// Outcome of replaying an artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayOutcome {
    /// `true` when the expected oracle fired again.
    pub reproduced: bool,
    /// All violations the replay produced.
    pub violations: Vec<Violation>,
}

/// Parses a repro artifact produced by [`run`].
///
/// # Errors
///
/// Returns a [`json::ParseError`] for malformed artifacts, missing
/// fields, or a generator-space version mismatch (an artifact from
/// another space version describes a different scenario distribution and
/// must not be silently replayed).
pub fn parse_artifact(text: &str) -> Result<ReplayPlan, json::ParseError> {
    let v = json::parse(text)?;
    let obj = v.as_obj().ok_or_else(|| json::ParseError {
        at: 0,
        message: "artifact is not an object".to_owned(),
    })?;
    let space = json::field_num(obj, "space_version")?;
    if (space - f64::from(SPACE_VERSION)).abs() > 0.0 {
        return Err(json::ParseError {
            at: 0,
            message: format!(
                "artifact was produced by generator space v{space} but this \
                 binary implements v{SPACE_VERSION}"
            ),
        });
    }
    let scenario = Scenario::from_json_value(json::field(obj, "scenario")?)?;
    let oracle_name = json::field(obj, "oracle")?.as_str().map(str::to_owned);
    let message = match obj.get("message") {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    Ok(ReplayPlan {
        scenario,
        days: json::field_num(obj, "days")?,
        oracle: oracle_name.ok_or_else(|| json::ParseError {
            at: 0,
            message: "field `oracle` is not a string".to_owned(),
        })?,
        message,
    })
}

/// Re-simulates a parsed artifact and re-checks the oracle registry.
#[must_use]
pub fn replay(plan: &ReplayPlan) -> ReplayOutcome {
    let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(plan.days)).generate();
    let violations = match simulate(&trace, &plan.scenario) {
        Ok(report) => oracle::check_all(&plan.scenario, &report),
        Err(panic_msg) => vec![Violation {
            oracle: NO_PANIC_ORACLE.to_owned(),
            message: format!("simulation panicked: {panic_msg}"),
        }],
    };
    ReplayOutcome {
        reproduced: violations.iter().any(|v| v.oracle == plan.oracle),
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(runs: usize, seed: u64) -> CampaignConfig {
        CampaignConfig {
            runs,
            seed,
            days: 0.25,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn healthy_campaign_passes() {
        let report = run(&quick(8, 42)).expect("no artifact io");
        assert_eq!(report.records.len(), 8);
        assert!(report.passed(), "{}", report.summary());
        assert!(report.summary().contains("PASS"));
        // Index order is the collection order.
        let indices: Vec<u64> = report.records.iter().map(|r| r.index).collect();
        assert_eq!(indices, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn seeded_violation_is_caught_and_shrunk() {
        let cc = CampaignConfig {
            emergency_disabled: true,
            ..quick(4, 7)
        };
        let report = run(&cc).expect("no artifact io");
        assert!(!report.passed(), "disabled FSM must violate power-cap");
        for f in &report.failures {
            assert_eq!(f.oracle, "power-cap");
            assert!(f.shrunk.emergency_disabled, "knob must survive shrinking");
            assert!(f.shrunk.complexity() <= f.original.complexity());
        }
        assert!(report.summary().contains("FAIL"));
    }

    #[test]
    fn planted_fsync_never_is_caught_and_shrunk() {
        let cc = CampaignConfig {
            wal_fsync_never: true,
            ..quick(6, 21)
        };
        let report = run(&cc).expect("no artifact io");
        assert!(
            !report.passed(),
            "the unsound fsync policy must lose acknowledged slots:\n{}",
            report.summary()
        );
        let f = report
            .failures
            .iter()
            .find(|f| f.oracle == "durability-commit")
            .expect("durability-commit must be the firing oracle");
        assert!(f.shrunk.wal_fsync_never, "knob must survive shrinking");
        assert!(
            f.shrunk.kill_at_frac > 0.0,
            "the kill must survive shrinking: without a crash nothing is lost"
        );
        // The minimal counterexample reproduces independently.
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(cc.days)).generate();
        assert!(
            reproduces(&trace, &f.shrunk, "durability-commit"),
            "shrunk scenario no longer trips durability-commit: {}",
            f.shrunk.describe()
        );
        // A sound campaign at the same seed is clean: the violation is
        // attributable to the planted policy, not the disk faults.
        let sound = run(&quick(6, 21)).expect("no artifact io");
        assert!(sound.passed(), "{}", sound.summary());
    }

    #[test]
    fn planted_ups_failure_is_caught_and_shrunk() {
        let cc = CampaignConfig {
            tree_fault_ups: true,
            ..quick(4, 33)
        };
        let report = run(&cc).expect("no artifact io");
        assert!(
            !report.passed(),
            "unfenced clearing over a dark UPS must route power through it:\n{}",
            report.summary()
        );
        let f = report
            .failures
            .iter()
            .find(|f| f.oracle == "grid-fencing")
            .expect("grid-fencing must be the firing oracle");
        assert!(f.shrunk.grid_unfenced, "knob must survive shrinking");
        assert!(
            f.shrunk.grid_fault.is_some() && f.shrunk.topology.is_some(),
            "the fault plan and its tree must survive shrinking: {}",
            f.shrunk.describe()
        );
        // The minimal counterexample reproduces independently.
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(cc.days)).generate();
        assert!(
            reproduces(&trace, &f.shrunk, "grid-fencing"),
            "shrunk scenario no longer trips grid-fencing: {}",
            f.shrunk.describe()
        );
        // A sound campaign at the same seed is clean: the violation is
        // attributable to the planted knob, not grid faults per se.
        let sound = run(&quick(4, 33)).expect("no artifact io");
        assert!(sound.passed(), "{}", sound.summary());
    }

    #[test]
    fn campaign_is_deterministic_for_a_seed() {
        let a = run(&quick(6, 123)).expect("io");
        let b = run(&quick(6, 123)).expect("io");
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn grid_campaign_is_bit_identical_across_thread_counts() {
        // A campaign whose draws include at least one grid-faulted federated
        // scenario must produce byte-identical CSV whether rayon fans the
        // runs out over one worker or several — the acceptance bar for
        // infrastructure-fault determinism.
        let cc = quick(8, 21);
        let saved = std::env::var("RAYON_NUM_THREADS").ok();
        std::env::set_var("RAYON_NUM_THREADS", "1");
        let a = run(&cc).expect("io");
        match &saved {
            Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
            None => std::env::remove_var("RAYON_NUM_THREADS"),
        }
        let b = run(&cc).expect("io");
        assert!(
            a.records.iter().any(|r| r.scenario.grid_fault.is_some()),
            "seed 21 must draw at least one grid-faulted scenario"
        );
        assert_eq!(a, b);
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn artifacts_round_trip_and_replay() {
        let dir = std::env::temp_dir().join("mpr-chaos-test-artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let cc = CampaignConfig {
            emergency_disabled: true,
            artifact_dir: Some(dir.clone()),
            ..quick(2, 9)
        };
        let report = run(&cc).expect("artifact io");
        assert!(!report.failures.is_empty());
        let f = &report.failures[0];
        let path = f.artifact_path.as_ref().expect("artifact written");
        let text = std::fs::read_to_string(path).expect("artifact readable");
        let plan = parse_artifact(&text).expect("artifact parses");
        assert_eq!(plan.oracle, f.oracle);
        assert_eq!(plan.scenario, f.shrunk);
        let outcome = replay(&plan);
        assert!(outcome.reproduced, "replay must reproduce: {outcome:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_space_version_is_rejected() {
        let text = r#"{"space_version": 999, "campaign_seed": "1", "run_index": 0,
                       "days": 1, "oracle": "power-cap", "message": "",
                       "shrink_steps": [], "scenario": {}, "repro_command": ""}"#;
        let err = parse_artifact(text).expect_err("must reject");
        assert!(err.message.contains("generator space"), "{err:?}");
    }

    #[test]
    fn csv_has_one_row_per_run() {
        let report = run(&quick(5, 2)).expect("io");
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 6); // header + 5 runs
        assert!(csv.starts_with("index,algorithm,"));
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(3))]
        /// Whatever the generator draws, every shrunk counterexample must
        /// (a) independently re-reproduce the same oracle violation and
        /// (b) be no more complex than the scenario it came from.
        #[test]
        fn shrunk_counterexamples_reproduce_and_never_grow(raw in 0.0f64..1e6) {
            let cc = CampaignConfig {
                emergency_disabled: true,
                ..quick(2, raw as u64)
            };
            let report = run(&cc).expect("no artifact io");
            // With the FSM disabled, every drawn scenario leaves daytime
            // overloads unattended — the property must never be vacuous.
            assert!(!report.failures.is_empty(), "seed {raw} drew no failures");
            let trace =
                TraceGenerator::new(ClusterSpec::gaia().with_span_days(cc.days)).generate();
            for f in &report.failures {
                assert!(
                    f.shrunk.complexity() <= f.original.complexity(),
                    "shrinking grew the scenario: {} -> {}",
                    f.original.complexity(),
                    f.shrunk.complexity()
                );
                assert!(
                    reproduces(&trace, &f.shrunk, &f.oracle),
                    "shrunk scenario no longer trips [{}]: {}",
                    f.oracle,
                    f.shrunk.describe()
                );
            }
        }
    }
}
