//! # mpr-chaos — the fuzzing-campaign harness
//!
//! The paper's central safety claim is that market-based oversubscription
//! never leaves the power cap unenforced, even under adversarial demand.
//! Hand-written fault scenarios exercise single points of that claim; this
//! crate exercises the *composition space*: every campaign run draws a
//! random [`Scenario`] — an algorithm, an oversubscription level, a
//! [`FaultPlan`](mpr_sim::FaultPlan) × [`NetPlan`](mpr_sim::NetPlan) ×
//! sensor-fault × [`DiskPlan`](mpr_sim::DiskPlan)-under-the-ledger mix,
//! an optional mid-run kill/recover point, an optional power-tree shape
//! ([`TopologyDraw`]) that routes overloads through the hierarchical
//! federated market with nested inner-level overloads, an optional
//! infrastructure fault plan
//! ([`GridFaultPlan`](mpr_power::GridFaultPlan), space v4) that fails
//! UPSes, trips PDU breakers and derates feeds over the drawn tree, and
//! config perturbations —
//! from a seeded ChaCha8 generator space, simulates it, and checks a
//! registry of safety-invariant [`oracles`](oracle) on the resulting
//! [`SimReport`](mpr_sim::SimReport).
//!
//! The pipeline (see `DESIGN.md` §13):
//!
//! 1. **Generate** — [`Scenario::generate`] maps `(campaign seed, run
//!    index)` to a scenario via an independent ChaCha8 stream per index,
//!    so any run can be regenerated without replaying the campaign.
//! 2. **Fan out** — [`campaign::run`] simulates runs in parallel with
//!    rayon: sequential *within* a run, parallel *across* runs, and
//!    bit-identical for a given seed regardless of the worker count.
//! 3. **Check** — every report passes through [`oracle::registry`]:
//!    power-cap enforcement, degradation-ladder monotonicity, accounting
//!    conservation, finite non-negative prices,
//!    quarantine-implies-stragglers, federated residual conservation
//!    over drawn power trees, the grid trio (no power through dead
//!    nodes, derated capacities respected, post-repair clearing
//!    bit-identical to the healthy baseline), the durability trio
//!    (acknowledged-slot retention, exactly-once ledger payments,
//!    replay convergence — see `DESIGN.md` §14), and no-panic (each run
//!    is wrapped in `catch_unwind` as a backstop — `mpr-lint`'s L3
//!    panic-freedom rule covers `mpr-sim` so the backstop should never
//!    fire).
//! 4. **Shrink** — a violating scenario is delta-debugged
//!    ([`shrink::shrink`]) to a minimal plan that still reproduces the
//!    same oracle's violation, and emitted as a self-contained JSON repro
//!    artifact plus the exact `mpr chaos --replay` command line.
//!
//! The generator space is versioned ([`SPACE_VERSION`]); the version is
//! folded into every scenario's checkpoint fingerprint via
//! [`SimConfig::with_scenario_space`](mpr_sim::SimConfig), so checkpoints
//! written by one campaign generation can never be resumed under another.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod json;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use campaign::{run, CampaignConfig, CampaignReport, Failure, RunRecord};
pub use oracle::{registry, Oracle, Violation};
pub use scenario::{Scenario, TopologyDraw};

/// Version of the scenario generator space. Bump whenever
/// [`Scenario::generate`]'s draw sequence or ranges change: the version is
/// folded into scenario checkpoint fingerprints, so a resumed campaign
/// rejects checkpoints from a mismatched generator instead of silently
/// regenerating different scenarios under the same seed.
pub const SPACE_VERSION: u32 = 4;

/// Stream separator folded into the campaign seed before scenario draws,
/// so scenario RNG streams can never collide with the simulator's own
/// seed-derived streams ("chao" ++ bad-seed).
pub(crate) const SCENARIO_SEED_XOR: u64 = 0x6368_616f_0bad_5eed;
