//! The safety-invariant oracle registry.
//!
//! Every campaign run's [`SimReport`] passes through every oracle; a
//! violation message pinpoints the slot/field that broke the invariant.
//! Oracles are deliberately *behavioral* — they read only the public
//! report, never engine internals — so the same registry can judge any
//! future evaluation substrate (DES core, federated markets) that
//! produces a `SimReport`.
//!
//! The registry (names are stable, used in artifacts and CSV):
//!
//! * `power-cap` — the reactive loop never leaves an overload unattended:
//!   every sufficiently long run of over-capacity slots overlaps an
//!   emergency response (a Declare/Escalate event or an in-force
//!   emergency). Bounded-window tolerance absorbs sensor-blind gaps.
//! * `ladder` — degradation-ladder monotonicity: fallback counters are
//!   consistent with the deepest-level watermark, and no degradation is
//!   reported outside MPR-INT-with-faults, where the ladder exists.
//! * `accounting` — conservation: per-profile reductions/costs sum to the
//!   totals, every accounted quantity is finite and non-negative, rewards
//!   only flow in market algorithms, and counters respect their bounds.
//! * `prices` — every clearing price is finite and non-negative, and
//!   non-market algorithms never post a price.
//! * `quarantine` — transport quarantines imply observed deadline misses:
//!   an agent can only be quarantined after straggling.
//! * `federated` — residual conservation over the power tree: federated
//!   stats appear exactly when the scenario draws a topology, every
//!   level's cleared and residual watts are finite, non-negative and
//!   bounded by the level's cumulative target, per-level market counts
//!   sum to the total, and the sweep's final residual never exceeds the
//!   deficit it was asked to clear (clearing only ever *reduces* load,
//!   so residuals are monotone under the sweep).
//! * `grid-fencing` — no power is ever cleared through a dead node: the
//!   engine audits every federated clearing against the instant's
//!   [`TopologyState`](mpr_power::TopologyState) and reports the watts
//!   routed through fenced subtrees, which must be exactly zero. This is
//!   the oracle that catches the planted `--grid-fencing-disabled` bug.
//! * `grid-derate` — no node is ever loaded past its derated capacity
//!   beyond its reported residual during a fault window: deratings are
//!   real constraints, not advisory.
//! * `grid-repair` — repair restores the world: once the plan's last
//!   scheduled repair has passed, the topology state must be bit-identical
//!   to healthy, the pruned tree builder must reproduce the spec tree
//!   exactly, and a canonical clearing over both must agree bit-for-bit.
//! * `durability-commit` — a crash never loses a slot the manager already
//!   acknowledged as durable: `recovered_commit_slot >=
//!   acked_slot_before_crash`. Waived under injected bit flips, which can
//!   silently corrupt records that *were* honestly synced. This is the
//!   oracle that catches the intentionally unsound `--wal-fsync never`
//!   planted bug.
//! * `durability-payments` — the ledger's journaled payments sum
//!   bit-for-bit to the report's reward: replaying the journal never
//!   double-pays and never drops a payment.
//! * `durability-replay` — re-driving recovered slots reproduces the
//!   journal event-for-event (the engine is deterministic, so any
//!   divergence is a recovery bug).
//! * `no-panic` — synthesized by the campaign runner when a simulation
//!   panics (the run is wrapped in `catch_unwind` as a backstop).
//!
//! The durability trio is vacuously clean for non-durable runs
//! ([`SimReport::durability`] is `None`) and skips safe-mode escalations,
//! where the report comes from the EQL fallback rather than the ledger.

use mpr_core::ChainLevel;
use mpr_sim::{Algorithm, EmergencyEventKind, FaultPlan, NetPlan, SimReport};

use crate::scenario::Scenario;

/// A broken invariant: which oracle fired and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable oracle name (see the module docs).
    pub oracle: String,
    /// Human-readable evidence.
    pub message: String,
}

impl Violation {
    fn new(oracle: &str, message: impl Into<String>) -> Self {
        Self {
            oracle: oracle.to_owned(),
            message: message.into(),
        }
    }
}

/// One registered safety invariant.
pub struct Oracle {
    /// Stable name, used in artifacts, CSV and shrink targets.
    pub name: &'static str,
    /// One-line description of the invariant.
    pub description: &'static str,
    check: fn(&Scenario, &SimReport) -> Vec<Violation>,
}

impl Oracle {
    /// Checks the invariant against one run.
    #[must_use]
    pub fn check(&self, scenario: &Scenario, report: &SimReport) -> Vec<Violation> {
        (self.check)(scenario, report)
    }
}

impl std::fmt::Debug for Oracle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle").field("name", &self.name).finish()
    }
}

/// Base tolerance: consecutive over-capacity slots the cap oracle accepts
/// without any emergency response on a *clean* sensor feed. A working FSM
/// declares the same slot it sees the overload; a disabled or wedged FSM
/// leaves entire overload episodes (hours of slots) unattended.
pub const UNATTENDED_OVERLOAD_SLOTS: usize = 10;

/// The cap-oracle bound for one scenario: the base tolerance widened by
/// how long the scenario's sensor faults can plausibly blind the
/// estimator.
///
/// * **Dropout** with probability `d` produces runs of missed polls whose
///   longest expected streak over `n` slots is `ln n / ln(1/d)`
///   (geometric-maximum asymptotics); doubled to cover the distribution's
///   tail, since a false alarm here would flag a *working* control loop.
/// * **Stuck** sensors freeze the reading for `stuck_polls`; consecutive
///   episodes can chain, so the allowance is doubled too.
/// * **Delay** shifts every reading by `delay_polls`.
#[must_use]
pub fn unattended_bound(scenario: &Scenario, total_slots: usize) -> usize {
    let mut bound = UNATTENDED_OVERLOAD_SLOTS;
    if let Some(s) = scenario.sensor {
        if s.dropout_prob > 0.0 {
            let d = s.dropout_prob.clamp(0.0, 0.95);
            let n = total_slots.max(2) as f64;
            let longest_expected = n.ln() / (1.0 / d).ln();
            bound += (2.0 * longest_expected).ceil() as usize;
        }
        if s.stuck_prob > 0.0 {
            bound += 2 * s.stuck_polls as usize;
        }
        if s.noise_sigma_frac > 0.0 {
            // Measurement noise can keep the robust estimator's upper
            // bound just under the declare threshold for a slot or two.
            bound += 2;
        }
        bound += s.delay_polls;
    }
    if let Some(n) = scenario.net_plan {
        if n.is_active() {
            // Dropped or delayed announce/reply rounds postpone the moment
            // a declared emergency's reduction actually lands: allow the
            // worst transport delay plus a couple of retry rounds.
            bound += n.max_delay_ticks as usize + 2;
        }
    }
    bound
}

/// The full oracle registry, in reporting order.
#[must_use]
pub fn registry() -> &'static [Oracle] {
    &[
        Oracle {
            name: "power-cap",
            description: "overload is never left unattended beyond the emergency bound",
            check: check_power_cap,
        },
        Oracle {
            name: "ladder",
            description: "degradation-ladder counters are monotone-consistent",
            check: check_ladder,
        },
        Oracle {
            name: "accounting",
            description: "reduction/cost/reward accounting is conserved and finite",
            check: check_accounting,
        },
        Oracle {
            name: "prices",
            description: "clearing prices are finite and non-negative",
            check: check_prices,
        },
        Oracle {
            name: "quarantine",
            description: "transport quarantines imply observed deadline misses",
            check: check_quarantine,
        },
        Oracle {
            name: "federated",
            description: "federated residuals are conserved and bounded by their targets",
            check: check_federated,
        },
        Oracle {
            name: "grid-fencing",
            description: "no power is cleared through a dead node",
            check: check_grid_fencing,
        },
        Oracle {
            name: "grid-derate",
            description: "no node exceeds its derated capacity beyond its residual",
            check: check_grid_derate,
        },
        Oracle {
            name: "grid-repair",
            description: "post-repair clearing is bit-identical to the healthy baseline",
            check: check_grid_repair,
        },
        Oracle {
            name: "durability-commit",
            description: "a crash never loses an acknowledged-durable slot",
            check: check_durability_commit,
        },
        Oracle {
            name: "durability-payments",
            description: "ledger payments are exactly-once and sum to the reward",
            check: check_durability_payments,
        },
        Oracle {
            name: "durability-replay",
            description: "recovery replay reproduces the journal event-for-event",
            check: check_durability_replay,
        },
    ]
}

/// Runs every registered oracle against one run.
#[must_use]
pub fn check_all(scenario: &Scenario, report: &SimReport) -> Vec<Violation> {
    registry()
        .iter()
        .flat_map(|o| o.check(scenario, report))
        .collect()
}

// ---------------------------------------------------------------------------
// power-cap

fn check_power_cap(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(tl) = r.timeline.as_ref() else {
        return vec![Violation::new(
            "power-cap",
            "report carries no timeline; the cap oracle cannot judge the run",
        )];
    };
    let slot_secs = tl.slot_secs.max(1e-9);
    // Slots with an explicit emergency response this slot.
    let mut response_slot = vec![false; tl.power_w.len()];
    // Slots inside an in-force emergency (Declare .. Lift).
    let mut in_force = vec![false; tl.power_w.len()];
    let mut force_since: Option<usize> = None;
    for ev in &r.events {
        let s = (ev.t_secs / slot_secs).round() as usize;
        if s >= response_slot.len() {
            continue;
        }
        match ev.kind {
            EmergencyEventKind::Declare | EmergencyEventKind::Escalate => {
                if let Some(slot) = response_slot.get_mut(s) {
                    *slot = true;
                }
                force_since.get_or_insert(s);
            }
            EmergencyEventKind::Lift => {
                if let Some(start) = force_since.take() {
                    for f in in_force.iter_mut().take(s + 1).skip(start) {
                        *f = true;
                    }
                }
            }
        }
    }
    if let Some(start) = force_since {
        for f in in_force.iter_mut().skip(start) {
            *f = true;
        }
    }

    let mut run_start: Option<usize> = None;
    let mut worst: Option<(usize, usize)> = None; // (start, len)
    let n = tl.power_w.len();
    for i in 0..=n {
        let overloaded = tl
            .power_w
            .get(i)
            .zip(tl.capacity_w.get(i))
            .is_some_and(|(&p, &c)| p > c * (1.0 + 1e-9));
        // An overloaded slot is "attended" when the controller responded
        // this slot or the run overlaps an in-force emergency.
        let attended = response_slot.get(i).copied().unwrap_or(false)
            || in_force.get(i).copied().unwrap_or(false);
        if overloaded && !attended {
            run_start.get_or_insert(i);
        } else if let Some(start) = run_start.take() {
            let len = i - start;
            if worst.is_none_or(|(_, w)| len > w) {
                worst = Some((start, len));
            }
        }
    }
    let bound = unattended_bound(scenario, n);
    match worst {
        Some((start, len)) if len > bound => {
            vec![Violation::new(
                "power-cap",
                format!(
                    "{len} consecutive over-capacity slots from slot {start} \
                     with no emergency response (bound: {bound})"
                ),
            )]
        }
        _ => Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// ladder

fn check_ladder(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let mut out = Vec::new();
    let d = &r.degradation;
    // Counter/watermark consistency: the watermark is the deepest level any
    // clearing reached, so levels below it must have zero uses and the
    // watermark level at least one (for the fallback levels, which count).
    match d.deepest_chain_level {
        None | Some(ChainLevel::Interactive) => {
            if d.static_fallbacks > 0 || d.eql_cappings > 0 {
                out.push(Violation::new(
                    "ladder",
                    format!(
                        "watermark {:?} but static_fallbacks={} eql_cappings={}",
                        d.deepest_chain_level, d.static_fallbacks, d.eql_cappings
                    ),
                ));
            }
        }
        Some(ChainLevel::StaticFallback) => {
            if d.static_fallbacks == 0 {
                out.push(Violation::new(
                    "ladder",
                    "watermark StaticFallback with zero static fallbacks",
                ));
            }
            if d.eql_cappings > 0 {
                out.push(Violation::new(
                    "ladder",
                    format!(
                        "watermark StaticFallback but eql_cappings={} (ladder went deeper than its watermark)",
                        d.eql_cappings
                    ),
                ));
            }
        }
        Some(ChainLevel::EqlCapping) => {
            if d.eql_cappings == 0 {
                out.push(Violation::new(
                    "ladder",
                    "watermark EqlCapping with zero EQL cappings",
                ));
            }
        }
    }
    // The ladder only exists for MPR-INT under an active fault or net
    // plan; any fallback outside it is a phantom degradation.
    let ladder_exists = scenario.algorithm == Algorithm::MprInt
        && (scenario.fault_plan.filter(FaultPlan::is_active).is_some()
            || scenario.net_plan.filter(NetPlan::is_active).is_some());
    if !ladder_exists
        && (d.static_fallbacks > 0
            || d.eql_cappings > 0
            || d.rounds_retried > 0
            || d.participants_quarantined > 0
            || d.diverged_clearings > 0)
    {
        out.push(Violation::new(
            "ladder",
            format!(
                "degradation ({} fallbacks, {} cappings, {} retries, {} quarantined, {} diverged) \
                 reported by {} without an active fault/net plan",
                d.static_fallbacks,
                d.eql_cappings,
                d.rounds_retried,
                d.participants_quarantined,
                d.diverged_clearings,
                r.algorithm
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// accounting

fn sums_match(total: f64, parts: f64) -> bool {
    (total - parts).abs() <= 1e-6 * total.abs().max(1.0)
}

fn check_accounting(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut finite_nonneg = |name: &str, v: f64| {
        if !v.is_finite() || v < 0.0 {
            out.push(Violation::new(
                "accounting",
                format!("{name} = {v} (must be finite and non-negative)"),
            ));
        }
    };
    finite_nonneg("reduction_core_hours", r.reduction_core_hours);
    finite_nonneg("cost_core_hours", r.cost_core_hours);
    finite_nonneg("reward_core_hours", r.reward_core_hours);
    finite_nonneg("avg_runtime_increase_pct", r.avg_runtime_increase_pct);
    finite_nonneg(
        "residual_overload_watts",
        r.degradation.residual_overload_watts,
    );
    finite_nonneg("capacity_watts", r.capacity_watts);
    finite_nonneg("peak_watts", r.peak_watts);

    let red_sum: f64 = r.per_profile.values().map(|s| s.reduction_core_hours).sum();
    if !sums_match(r.reduction_core_hours, red_sum) {
        out.push(Violation::new(
            "accounting",
            format!(
                "per-profile reductions sum to {red_sum} but the total is {}",
                r.reduction_core_hours
            ),
        ));
    }
    let cost_sum: f64 = r.per_profile.values().map(|s| s.cost_core_hours).sum();
    if !sums_match(r.cost_core_hours, cost_sum) {
        out.push(Violation::new(
            "accounting",
            format!(
                "per-profile costs sum to {cost_sum} but the total is {}",
                r.cost_core_hours
            ),
        ));
    }
    if !scenario.algorithm.is_market() && r.reward_core_hours.abs() > 0.0 {
        out.push(Violation::new(
            "accounting",
            format!(
                "{} is not a market but paid {} core-hours of rewards",
                r.algorithm, r.reward_core_hours
            ),
        ));
    }
    if r.jobs_completed > r.jobs_total {
        out.push(Violation::new(
            "accounting",
            format!(
                "jobs_completed {} exceeds jobs_total {}",
                r.jobs_completed, r.jobs_total
            ),
        ));
    }
    if r.jobs_affected > r.jobs_total {
        out.push(Violation::new(
            "accounting",
            format!(
                "jobs_affected {} exceeds jobs_total {}",
                r.jobs_affected, r.jobs_total
            ),
        ));
    }
    if r.overload_slots > r.total_slots {
        out.push(Violation::new(
            "accounting",
            format!(
                "overload_slots {} exceeds total_slots {}",
                r.overload_slots, r.total_slots
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// prices

fn check_prices(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, ev) in r.events.iter().enumerate() {
        if !ev.price.is_finite() || ev.price < 0.0 {
            out.push(Violation::new(
                "prices",
                format!("event {i} at t={}s posts price {}", ev.t_secs, ev.price),
            ));
        }
        if !ev.target_watts.is_finite() || ev.target_watts < 0.0 {
            out.push(Violation::new(
                "prices",
                format!(
                    "event {i} at t={}s targets {} watts",
                    ev.t_secs, ev.target_watts
                ),
            ));
        }
    }
    if let Some(tl) = r.timeline.as_ref() {
        for (i, &p) in tl.price.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                out.push(Violation::new(
                    "prices",
                    format!("timeline slot {i} posts price {p}"),
                ));
                break; // one sample is evidence enough
            }
        }
    }
    if !scenario.algorithm.is_market() {
        if let Some(bad) = r.events.iter().find(|ev| ev.price.abs() > 0.0) {
            out.push(Violation::new(
                "prices",
                format!(
                    "{} is not a market but posted price {} at t={}s",
                    r.algorithm, bad.price, bad.t_secs
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// quarantine

fn check_quarantine(_scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(t) = r.transport.as_ref() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if t.deadline_quarantines > 0 && t.straggler_rounds == 0 {
        out.push(Violation::new(
            "quarantine",
            format!(
                "{} agents quarantined for deadline misses but no straggler round was observed",
                t.deadline_quarantines
            ),
        ));
    }
    if t.clearings == 0 && (t.rounds > 0 || t.announces > 0 || t.replies_accepted > 0) {
        out.push(Violation::new(
            "quarantine",
            format!(
                "transport reports activity ({} rounds, {} announces) with zero clearings",
                t.rounds, t.announces
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// federated

fn check_federated(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let mut out = Vec::new();
    let Some(f) = r.federated.as_ref() else {
        if scenario.topology.is_some() {
            out.push(Violation::new(
                "federated",
                "scenario draws a power tree but the report carries no federated stats",
            ));
        }
        return out;
    };
    if scenario.topology.is_none() {
        out.push(Violation::new(
            "federated",
            "federated stats reported without a drawn power tree",
        ));
    }
    if !f.residual_watts.is_finite() || f.residual_watts < 0.0 {
        out.push(Violation::new(
            "federated",
            format!(
                "total residual {} W is not finite non-negative",
                f.residual_watts
            ),
        ));
    }
    if f.infeasible_events > f.events {
        out.push(Violation::new(
            "federated",
            format!(
                "{} infeasible events exceed the {} events cleared",
                f.infeasible_events, f.events
            ),
        ));
    }
    if f.events > 0 && f.markets < f.events {
        // Every overload event starts with an overloaded root, whose
        // first (pristine) round always runs at least one subtree market.
        out.push(Violation::new(
            "federated",
            format!(
                "{} events cleared but only {} markets ran",
                f.events, f.markets
            ),
        ));
    }
    let mut level_markets = 0usize;
    let mut total_target = 0.0f64;
    for (name, lv) in &f.levels {
        level_markets += lv.markets;
        total_target += lv.target_watts;
        if lv.markets == 0 {
            out.push(Violation::new(
                "federated",
                format!("level `{name}` is reported but ran no market"),
            ));
        }
        for (what, w) in [
            ("target", lv.target_watts),
            ("cleared", lv.cleared_watts),
            ("residual", lv.residual_watts),
        ] {
            if !w.is_finite() || w < 0.0 {
                out.push(Violation::new(
                    "federated",
                    format!("level `{name}` {what} {w} W is not finite non-negative"),
                ));
            }
        }
        // A subtree market never clears (or leaves) more than it was
        // asked: both are event-wise bounded by the node's deficit, and
        // the bounds survive summation over events.
        let tol = 1e-6 + lv.target_watts.abs() * 1e-9;
        if lv.cleared_watts > lv.target_watts + tol {
            out.push(Violation::new(
                "federated",
                format!(
                    "level `{name}` cleared {} W above its cumulative target {} W",
                    lv.cleared_watts, lv.target_watts
                ),
            ));
        }
        if lv.residual_watts > lv.target_watts + tol {
            out.push(Violation::new(
                "federated",
                format!(
                    "level `{name}` residual {} W exceeds its cumulative target {} W",
                    lv.residual_watts, lv.target_watts
                ),
            ));
        }
    }
    if level_markets != f.markets {
        out.push(Violation::new(
            "federated",
            format!(
                "per-level markets sum to {level_markets} but the totals report {}",
                f.markets
            ),
        ));
    }
    // Monotonicity of the sweep: clearing only reduces load, so the
    // residual left at the tree can never exceed the summed deficit the
    // markets were asked to clear.
    let tol = 1e-6 + total_target.abs() * 1e-9;
    if f.residual_watts > total_target + tol {
        out.push(Violation::new(
            "federated",
            format!(
                "final residual {} W exceeds the {} W of deficit asked across all markets",
                f.residual_watts, total_target
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// grid faults

fn check_grid_fencing(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(f) = r.federated.as_ref() else {
        return Vec::new();
    };
    let mut out = Vec::new();
    // Exactly zero, not "within tolerance": any watt through a fenced
    // subtree means the market routed power into dead infrastructure.
    // Bit-level test: +0.0 is the only accepted accumulator state, so a
    // NaN (or a sign-flipped zero) is itself a fencing violation.
    if f.dead_cleared_watts.to_bits() != 0 {
        out.push(Violation::new(
            "grid-fencing",
            format!(
                "{} W cleared through dead nodes across {} faulted slot(s) \
                 (fencing must keep every cleared watt on live infrastructure)",
                f.dead_cleared_watts, f.grid_fault_slots
            ),
        ));
    }
    if scenario.grid_fault.is_none()
        && (f.grid_fault_slots > 0
            || f.fenced_nodes > 0
            || f.derated_nodes > 0
            || f.reassigned_jobs > 0
            || f.quarantined_jobs > 0)
    {
        out.push(Violation::new(
            "grid-fencing",
            format!(
                "grid-fault accounting ({} faulted slots, {} fenced, {} derated, \
                 {} reassigned, {} quarantined) without a drawn fault plan",
                f.grid_fault_slots,
                f.fenced_nodes,
                f.derated_nodes,
                f.reassigned_jobs,
                f.quarantined_jobs
            ),
        ));
    }
    out
}

fn check_grid_derate(_scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(f) = r.federated.as_ref() else {
        return Vec::new();
    };
    if !f.derate_excess_watts.is_finite() {
        return vec![Violation::new(
            "grid-derate",
            format!("derate excess {} W is not finite", f.derate_excess_watts),
        )];
    }
    // The engine already nets out each node's reported residual, so the
    // worst excess must be numerical dust relative to the system scale.
    let tol = 1e-6 + 1e-9 * r.capacity_watts.abs();
    if f.derate_excess_watts > tol {
        return vec![Violation::new(
            "grid-derate",
            format!(
                "a node's post-clear load exceeds its derated capacity by {} W \
                 beyond its reported residual (bound: {tol} W)",
                f.derate_excess_watts
            ),
        )];
    }
    Vec::new()
}

fn check_grid_repair(scenario: &Scenario, _r: &SimReport) -> Vec<Violation> {
    let (Some(plan), Some(draw)) = (scenario.grid_fault, scenario.topology) else {
        return Vec::new();
    };
    let spec = draw.to_spec();
    let last = plan.last_repair_secs(&spec);
    if !last.is_finite() {
        // A planted never-repairing plan has no post-repair world to judge.
        return Vec::new();
    }
    let repaired = plan.state_at(&spec, last);
    if !repaired.is_healthy() {
        return vec![Violation::new(
            "grid-repair",
            format!(
                "state at t={last}s (the last scheduled repair) still carries \
                 {} dead and {} derated node(s)",
                repaired.dead_count(),
                repaired.derated_count()
            ),
        )];
    }
    let (Ok((mut tree_a, map)), Ok(mut tree_b)) = (
        repaired.to_hierarchy_scaled(1.0),
        spec.to_hierarchy_scaled(1.0),
    ) else {
        return vec![Violation::new(
            "grid-repair",
            "post-repair topology fails to realize as a power hierarchy",
        )];
    };
    let identity = map.len() == tree_b.len()
        && map.iter().enumerate().all(|(i, m)| *m == Some(i))
        && tree_a.len() == tree_b.len()
        && (0..tree_a.len()).all(|i| {
            tree_a.capacity_of(i).get().to_bits() == tree_b.capacity_of(i).get().to_bits()
        });
    if !identity {
        return vec![Violation::new(
            "grid-repair",
            "post-repair pruned tree is not bit-identical to the healthy spec tree",
        )];
    }
    // Canonical clearing: overload every rack of both trees identically
    // and clear with the canonical mechanism; the outcomes must agree
    // bit-for-bit — the federated pipeline has fully forgotten the fault.
    let racks = spec.rack_ids();
    let instance: mpr_core::MarketInstance = (0..racks.len() * 2)
        .map(|id| {
            mpr_core::ParticipantSpec::new(id as u64, 2.0, mpr_core::Watts::new(125.0))
                .with_bid(0.2)
        })
        .collect();
    let assignment: Vec<usize> = racks.iter().copied().cycle().take(instance.len()).collect();
    for &rack in &racks {
        let load = mpr_core::Watts::new(tree_b.capacity_of(rack).get() * 2.0);
        if tree_a.set_load(rack, load).is_err() || tree_b.set_load(rack, load).is_err() {
            return vec![Violation::new(
                "grid-repair",
                "canonical load does not attach to the post-repair tree",
            )];
        }
    }
    let clear = |h: &mpr_power::PowerHierarchy| {
        mpr_power::HierarchicalMarket::new(h, assignment.clone())
            .ok()
            .and_then(|m| {
                m.clear(&instance, mpr_core::MclrMechanism::best_effort)
                    .ok()
            })
    };
    match (clear(&tree_a), clear(&tree_b)) {
        (Some(a), Some(b)) => {
            if a.clearing != b.clearing
                || a.residual.get().to_bits() != b.residual.get().to_bits()
                || a.markets != b.markets
            {
                vec![Violation::new(
                    "grid-repair",
                    "canonical post-repair clearing differs from the healthy baseline",
                )]
            } else {
                Vec::new()
            }
        }
        _ => vec![Violation::new(
            "grid-repair",
            "canonical post-repair clearing failed to run",
        )],
    }
}

// ---------------------------------------------------------------------------
// durability

fn check_durability_commit(scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(d) = &r.durability else {
        return Vec::new();
    };
    if d.safe_mode {
        return Vec::new();
    }
    // Bit flips corrupt records *after* framing: the CRC catches them on
    // recovery and the scan truncates at the flip, so slots that were
    // honestly synced can still be lost. That is media corruption, not an
    // acknowledgement bug — waived.
    if scenario.disk_plan.is_some_and(|p| p.bit_flip_prob > 0.0) {
        return Vec::new();
    }
    if d.acked_slot_before_crash > d.recovered_commit_slot {
        return vec![Violation::new(
            "durability-commit",
            format!(
                "crash lost acknowledged slots: acked {:?} before the kill but \
                 only {:?} survived recovery (unsound fsync policy?)",
                d.acked_slot_before_crash, d.recovered_commit_slot
            ),
        )];
    }
    Vec::new()
}

fn check_durability_payments(_scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(d) = &r.durability else {
        return Vec::new();
    };
    if d.safe_mode {
        return Vec::new();
    }
    if d.ledger_reward_core_hours.to_bits() != r.reward_core_hours.to_bits() {
        return vec![Violation::new(
            "durability-payments",
            format!(
                "ledger payments sum to {} core-hours but the report rewards {} \
                 (double-paid or dropped payment through recovery)",
                d.ledger_reward_core_hours, r.reward_core_hours
            ),
        )];
    }
    Vec::new()
}

fn check_durability_replay(_scenario: &Scenario, r: &SimReport) -> Vec<Violation> {
    let Some(d) = &r.durability else {
        return Vec::new();
    };
    if d.safe_mode {
        return Vec::new();
    }
    if d.replay_divergence > 0 {
        return vec![Violation::new(
            "durability-replay",
            format!(
                "{} replayed slot(s) diverged from the journal (recovery must \
                 reproduce journaled events exactly)",
                d.replay_divergence
            ),
        )];
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpr_sim::{SimConfig, Simulation};
    use mpr_workload::{ClusterSpec, TraceGenerator};

    fn scenario_for(cfg: &SimConfig) -> Scenario {
        Scenario {
            algorithm: cfg.algorithm,
            oversub_pct: cfg.oversubscription_pct,
            sim_seed: cfg.seed,
            participation: cfg.participation,
            alpha_spread: cfg.alpha_spread,
            cost_noise: cfg.cost_noise,
            phase_amplitude: cfg.phase_amplitude,
            fault_plan: cfg.fault_plan,
            net_plan: cfg.net_plan,
            sensor: cfg.telemetry.map(|t| t.sensor),
            disk_plan: cfg.durability.as_ref().and_then(|d| d.disk),
            kill_at_frac: 0.0,
            topology: None,
            grid_fault: cfg.grid_fault,
            wal_fsync_never: false,
            emergency_disabled: cfg.emergency_disabled,
            grid_unfenced: cfg.grid_fencing_disabled,
        }
    }

    #[test]
    fn healthy_run_passes_every_oracle() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(2.0)).generate();
        let cfg = SimConfig::new(Algorithm::MprStat, 20.0).with_timeline();
        let scenario = scenario_for(&cfg);
        let report = Simulation::new(&trace, cfg).run();
        assert!(
            report.overload_events > 0,
            "need overload to exercise the loop"
        );
        let violations = check_all(&scenario, &report);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn disabled_fsm_trips_the_cap_oracle() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(2.0)).generate();
        let cfg = SimConfig::new(Algorithm::MprStat, 20.0)
            .with_timeline()
            .with_emergency_disabled();
        let scenario = scenario_for(&cfg);
        let report = Simulation::new(&trace, cfg).run();
        let violations = check_all(&scenario, &report);
        assert!(
            violations.iter().any(|v| v.oracle == "power-cap"),
            "disabled FSM must trip power-cap, got {violations:?}"
        );
    }

    #[test]
    fn missing_timeline_is_itself_a_cap_violation() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(1.0)).generate();
        let cfg = SimConfig::new(Algorithm::Eql, 15.0); // no timeline
        let scenario = scenario_for(&cfg);
        let report = Simulation::new(&trace, cfg).run();
        let violations = check_all(&scenario, &report);
        assert!(violations.iter().any(|v| v.oracle == "power-cap"));
    }

    #[test]
    fn bound_widens_with_sensor_faults() {
        let mut s = Scenario::generate(1, 0);
        s.sensor = None;
        s.net_plan = None;
        assert_eq!(unattended_bound(&s, 1440), UNATTENDED_OVERLOAD_SLOTS);
        s.sensor = Some(mpr_power::telemetry::SensorFaultConfig {
            dropout_prob: 0.5,
            stuck_prob: 0.01,
            stuck_polls: 6,
            delay_polls: 2,
            ..Default::default()
        });
        let b = unattended_bound(&s, 1440);
        // base + 2*ceil(ln 1440 / ln 2) + 2*6 + 2
        assert!(b > UNATTENDED_OVERLOAD_SLOTS + 20, "{b}");
        // The bound stays far below a daytime overload episode, so a
        // disabled FSM (whole episodes unattended) is still separable.
        assert!(b < 60, "{b}");
        // Measurement noise and transport faults each add their own slack.
        s.sensor = Some(mpr_power::telemetry::SensorFaultConfig {
            noise_sigma_frac: 0.05,
            ..Default::default()
        });
        s.net_plan = None;
        assert_eq!(unattended_bound(&s, 1440), UNATTENDED_OVERLOAD_SLOTS + 2);
        s.net_plan = Some(mpr_sim::NetPlan::lossy(0.3));
        let with_net = unattended_bound(&s, 1440);
        assert!(with_net > UNATTENDED_OVERLOAD_SLOTS + 2, "{with_net}");
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<&str> = registry().iter().map(|o| o.name).collect();
        assert_eq!(
            names,
            [
                "power-cap",
                "ladder",
                "accounting",
                "prices",
                "quarantine",
                "federated",
                "grid-fencing",
                "grid-derate",
                "grid-repair",
                "durability-commit",
                "durability-payments",
                "durability-replay"
            ]
        );
    }

    #[test]
    fn federated_run_passes_and_mismatches_trip_the_oracle() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(2.0)).generate();
        let mut scenario = scenario_for(&SimConfig::new(Algorithm::MprStat, 20.0).with_timeline());
        // Squeezed inner headroom: UPS/PDU/rack levels overload alongside
        // the root, exercising nested subtree markets.
        scenario.topology = Some(crate::scenario::TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 1,
            racks_per_pdu: 2,
            inner_headroom: 1.1,
        });
        let report = Simulation::new(&trace, scenario.sim_config()).run();
        let fed = report.federated.as_ref().expect("federated stats");
        assert!(fed.events > 0, "need overloads to exercise the sweep");
        let violations = check_all(&scenario, &report);
        assert!(violations.is_empty(), "{violations:?}");

        // A report with federated stats but no drawn tree is inconsistent,
        // as is the converse.
        let mut flat = scenario.clone();
        flat.topology = None;
        assert!(check_federated(&flat, &report)
            .iter()
            .any(|v| v.message.contains("without a drawn power tree")));
        let flat_report = Simulation::new(&trace, flat.sim_config()).run();
        assert!(check_federated(&scenario, &flat_report)
            .iter()
            .any(|v| v.message.contains("no federated stats")));

        // Corrupted accounting trips the conservation checks.
        let mut bad = report.clone();
        if let Some(f) = bad.federated.as_mut() {
            let lv = f.levels.values_mut().next().expect("levels");
            lv.cleared_watts = lv.target_watts + 1.0;
        }
        assert!(check_federated(&scenario, &bad)
            .iter()
            .any(|v| v.message.contains("above its cumulative target")));
        let mut bad = report.clone();
        if let Some(f) = bad.federated.as_mut() {
            let total: f64 = f.levels.values().map(|l| l.target_watts).sum();
            f.residual_watts = total + 10.0;
        }
        assert!(check_federated(&scenario, &bad)
            .iter()
            .any(|v| v.message.contains("deficit asked across all markets")));
        let mut bad = report;
        if let Some(f) = bad.federated.as_mut() {
            f.markets += 1;
        }
        assert!(check_federated(&scenario, &bad)
            .iter()
            .any(|v| v.message.contains("per-level markets sum")));
    }

    #[test]
    fn grid_faulted_run_passes_and_unfenced_run_trips_the_fencing_oracle() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(2.0)).generate();
        let mut scenario = scenario_for(&SimConfig::new(Algorithm::MprStat, 20.0).with_timeline());
        scenario.topology = Some(crate::scenario::TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 1,
            racks_per_pdu: 2,
            inner_headroom: 1.3,
        });
        // A UPS guaranteed dark through the first fault window, repaired
        // well inside the two-day trace.
        scenario.grid_fault = Some(mpr_power::GridFaultPlan {
            ups_failure_prob: 1.0,
            window_secs: 0.0,
            repair_secs: 20_000.0,
            ..mpr_power::GridFaultPlan::default()
        });
        let report = Simulation::new(&trace, scenario.sim_config()).run();
        let fed = report.federated.as_ref().expect("federated stats");
        assert!(
            fed.grid_fault_slots > 0 && fed.fenced_nodes > 0,
            "the fault window must overlap overload events: {fed:?}"
        );
        let violations = check_all(&scenario, &report);
        assert!(violations.is_empty(), "{violations:?}");

        // The same scenario with fencing disabled keeps jobs on their
        // dead racks: the engine's audit must report the routed watts and
        // the oracle must fire.
        let mut unfenced = scenario.clone();
        unfenced.grid_unfenced = true;
        let report = Simulation::new(&trace, unfenced.sim_config()).run();
        let fed = report.federated.as_ref().expect("federated stats");
        assert!(
            fed.dead_cleared_watts > 0.0,
            "unfenced clearing must route power through the dead UPS: {fed:?}"
        );
        let violations = check_all(&unfenced, &report);
        assert!(
            violations.iter().any(|v| v.oracle == "grid-fencing"),
            "{violations:?}"
        );
    }

    #[test]
    fn grid_oracles_trip_on_corrupted_reports_and_broken_repairs() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(1.0)).generate();
        let mut scenario = scenario_for(&SimConfig::new(Algorithm::MprStat, 20.0).with_timeline());
        scenario.topology = Some(crate::scenario::TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 1,
            racks_per_pdu: 1,
            inner_headroom: 1.5,
        });
        scenario.grid_fault = Some(mpr_power::GridFaultPlan::ups_outage(0.9));
        let report = Simulation::new(&trace, scenario.sim_config()).run();

        // A corrupted derate excess trips grid-derate.
        let mut bad = report.clone();
        if let Some(f) = bad.federated.as_mut() {
            f.derate_excess_watts = 50.0;
        }
        assert!(check_grid_derate(&scenario, &bad)
            .iter()
            .any(|v| v.message.contains("derated capacity")));

        // Grid accounting without a drawn plan is inconsistent.
        let mut no_plan = scenario.clone();
        no_plan.grid_fault = None;
        let mut bad = report.clone();
        if let Some(f) = bad.federated.as_mut() {
            f.fenced_nodes = 3;
        }
        assert!(check_grid_fencing(&no_plan, &bad)
            .iter()
            .any(|v| v.message.contains("without a drawn fault plan")));

        // A plan whose faults never repair has no post-repair world to
        // judge: grid-repair is vacuously clean.
        let mut planted = scenario.clone();
        planted.grid_fault = Some(mpr_power::GridFaultPlan::always_on_ups_failure());
        assert!(check_grid_repair(&planted, &report).is_empty());

        // A repairing plan judges clean against the real library.
        assert!(check_grid_repair(&scenario, &report).is_empty());
    }

    #[test]
    fn durable_crash_recovery_passes_every_oracle() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(2.0)).generate();
        let cfg = SimConfig::new(Algorithm::MprStat, 20.0)
            .with_timeline()
            .with_seed(3)
            .with_durability(mpr_sim::DurabilityPlan::kill_at(120));
        let scenario = scenario_for(&cfg);
        let run = mpr_sim::run_durable(&trace, cfg).expect("durable run");
        assert!(run.report.durability.is_some());
        let violations = check_all(&scenario, &run.report);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn fsync_never_crash_trips_the_commit_oracle() {
        let trace = TraceGenerator::new(ClusterSpec::gaia().with_span_days(2.0)).generate();
        // The acknowledgement loss is seed-dependent (a crash may land on
        // a checkpoint boundary); at least one seed must expose it.
        let mut tripped = None;
        for seed in [3u64, 5, 11, 13] {
            let cfg = SimConfig::new(Algorithm::MprStat, 20.0)
                .with_timeline()
                .with_seed(seed)
                .with_durability(mpr_sim::DurabilityPlan {
                    fsync: mpr_sim::FsyncPolicy::Never,
                    ..mpr_sim::DurabilityPlan::kill_at(150)
                });
            let mut scenario = scenario_for(&cfg);
            scenario.wal_fsync_never = true;
            scenario.kill_at_frac = 0.5;
            let run = mpr_sim::run_durable(&trace, cfg).expect("durable run");
            let violations = check_all(&scenario, &run.report);
            if violations.iter().any(|v| v.oracle == "durability-commit") {
                // The same loss must be waived under injected bit flips,
                // which legitimately truncate acknowledged slots.
                scenario.disk_plan = Some(mpr_sim::DiskPlan {
                    bit_flip_prob: 0.01,
                    ..mpr_sim::DiskPlan::default()
                });
                let waived = check_all(&scenario, &run.report);
                assert!(
                    !waived.iter().any(|v| v.oracle == "durability-commit"),
                    "{waived:?}"
                );
                tripped = Some(seed);
                break;
            }
        }
        assert!(
            tripped.is_some(),
            "fsync=never + kill must lose acknowledged slots for some seed"
        );
    }
}
