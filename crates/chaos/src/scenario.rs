//! The scenario generator space.
//!
//! A [`Scenario`] is one point in the campaign's composition space: an
//! algorithm, an oversubscription level, a per-run simulation seed, config
//! perturbations (participation, α-spread, cost noise, power phases) and
//! up to four fault layers — agent faults ([`FaultPlan`]), message-layer
//! faults ([`NetPlan`]), sensor faults
//! ([`SensorFaultConfig`](mpr_power::telemetry::SensorFaultConfig)) and
//! storage faults under the durable market ledger ([`DiskPlan`]). A drawn
//! disk layer usually also schedules a mid-run manager kill
//! ([`Scenario::kill_at_frac`]), exercising the checkpoint + ledger-replay
//! recovery path end-to-end. A drawn power-tree shape
//! ([`Scenario::topology`]) routes every overload event through the
//! hierarchical federated market, with inner-level headroom squeezed so
//! UPS/PDU/rack subtrees overload in nested patterns.
//!
//! [`Scenario::generate`] maps `(campaign seed, run index)` to a scenario
//! through an independent ChaCha8 stream per index, so run *k* of campaign
//! seed *s* is always the same scenario — regeneratable without replaying
//! runs 0..k, and safe to draw from any rayon worker in any order.
//!
//! Scenarios serialize to the flat JSON object embedded in repro
//! artifacts; [`Scenario::from_json_value`] inverts the encoding exactly
//! (floats round-trip by shortest representation, seeds as strings).

use std::collections::BTreeMap;

use mpr_core::Watts;
use mpr_power::telemetry::SensorFaultConfig;
use mpr_power::{GridFaultPlan, LevelKind, NodeSpec, TopologySpec};
use mpr_sim::{
    Algorithm, CostNoise, DiskPlan, DurabilityPlan, FaultPlan, FsyncPolicy, NetPlan, SimConfig,
    TelemetryConfig,
};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::json::{self, ObjWriter, Value};
use crate::{SCENARIO_SEED_XOR, SPACE_VERSION};

/// The shrinker's oversubscription resting point: the paper's baseline
/// level, to which [`shrink`](crate::shrink) tries to normalize
/// [`Scenario::oversub_pct`].
pub const DEFAULT_OVERSUB_PCT: f64 = 15.0;

/// A drawn power-tree shape for federated clearing.
///
/// The scenario realizes it as a [`TopologySpec`] whose inner nodes carry
/// `inner_headroom ×` their fair share of the root budget. The simulator
/// rescales the whole tree so the root capacity matches the run's
/// oversubscribed capacity, so headroom near 1.0 squeezes UPS/PDU/rack
/// levels into *nested* overloads (every level clears its own subtree
/// market), while generous headroom leaves the root as the only binding
/// constraint — the flat-equivalent degenerate case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyDraw {
    /// UPS nodes under the root ATS.
    pub ups_count: usize,
    /// PDU nodes under each UPS.
    pub pdus_per_ups: usize,
    /// Rack nodes under each PDU.
    pub racks_per_pdu: usize,
    /// Inner-node capacity as a multiple of its fair share of the root.
    pub inner_headroom: f64,
}

impl TopologyDraw {
    /// Total rack (leaf) count of the drawn tree.
    #[must_use]
    pub fn total_racks(&self) -> usize {
        self.ups_count * self.pdus_per_ups * self.racks_per_pdu
    }

    /// Materializes the draw as a topology spec with nominal root
    /// capacity 1.0 (the simulator rescales it to the run's capacity).
    #[must_use]
    pub fn to_spec(&self) -> TopologySpec {
        let mut nodes = vec![NodeSpec {
            name: "ats".to_owned(),
            kind: LevelKind::Ats,
            capacity: Watts::new(1.0),
            parent: None,
        }];
        let ups_fair = 1.0 / self.ups_count as f64;
        let pdu_fair = ups_fair / self.pdus_per_ups as f64;
        let rack_fair = pdu_fair / self.racks_per_pdu as f64;
        for u in 0..self.ups_count {
            let ups_id = nodes.len();
            nodes.push(NodeSpec {
                name: format!("ups-{u}"),
                kind: LevelKind::Ups,
                capacity: Watts::new(ups_fair * self.inner_headroom),
                parent: Some(0),
            });
            for p in 0..self.pdus_per_ups {
                let pdu_id = nodes.len();
                nodes.push(NodeSpec {
                    name: format!("pdu-{u}-{p}"),
                    kind: LevelKind::Pdu,
                    capacity: Watts::new(pdu_fair * self.inner_headroom),
                    parent: Some(ups_id),
                });
                for r in 0..self.racks_per_pdu {
                    nodes.push(NodeSpec {
                        name: format!("rack-{u}-{p}-{r}"),
                        kind: LevelKind::Rack,
                        capacity: Watts::new(rack_fair * self.inner_headroom),
                        parent: Some(pdu_id),
                    });
                }
            }
        }
        TopologySpec {
            name: format!(
                "chaos-{}x{}x{}",
                self.ups_count, self.pdus_per_ups, self.racks_per_pdu
            ),
            nodes,
        }
    }
}

/// One generated point of the campaign's composition space.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Overload-handling algorithm under test.
    pub algorithm: Algorithm,
    /// Oversubscription level, percent.
    pub oversub_pct: f64,
    /// Per-run simulation seed (profile assignment, fault draws, sensors).
    pub sim_seed: u64,
    /// Market participation fraction.
    pub participation: f64,
    /// α heterogeneity spread.
    pub alpha_spread: f64,
    /// Cost-estimate noise injected into bids.
    pub cost_noise: CostNoise,
    /// Per-job power-phase amplitude (0 disables phases).
    pub phase_amplitude: f64,
    /// Agent-fault mix, when drawn.
    pub fault_plan: Option<FaultPlan>,
    /// Message-layer fault mix, when drawn.
    pub net_plan: Option<NetPlan>,
    /// Sensor-fault mix, when drawn.
    pub sensor: Option<SensorFaultConfig>,
    /// Storage-fault mix injected under the durable market ledger, when
    /// drawn. Presence routes the run through the crash/recover harness
    /// ([`run_durable`](mpr_sim::run_durable)) even without a kill.
    pub disk_plan: Option<DiskPlan>,
    /// Mid-run manager kill point as a fraction of the trace span
    /// (`0.0` = run uninterrupted). The campaign resolves it to a slot
    /// against the trace it generates; usually drawn alongside a disk
    /// plan so recovery replays over a faulty ledger.
    pub kill_at_frac: f64,
    /// Power-tree shape for federated clearing, when drawn. Presence
    /// routes every overload event through the hierarchical market over
    /// the realized [`TopologySpec`] instead of one flat market.
    pub topology: Option<TopologyDraw>,
    /// Infrastructure fault plan over the drawn power tree (UPS failures,
    /// ATS transfers, PDU breaker trips, gradual deratings), when drawn.
    /// Only ever present alongside [`topology`](Self::topology): grid
    /// faults are meaningless without a tree to break.
    pub grid_fault: Option<GridFaultPlan>,
    /// **Test-only.** Journal with the intentionally unsound
    /// [`FsyncPolicy::Never`], which acknowledges slots before they are
    /// durable. Never drawn by [`generate`](Self::generate); planted by
    /// the campaign's seeded-violation mode to prove the
    /// `durability-commit` oracle catches real acknowledgement-loss bugs.
    pub wal_fsync_never: bool,
    /// **Test-only.** Realize the scenario with the emergency FSM disabled
    /// (see [`SimConfig::emergency_disabled`]). Never drawn by
    /// [`generate`](Self::generate); planted by the campaign's
    /// seeded-violation mode to prove the oracles catch a real safety
    /// failure.
    pub emergency_disabled: bool,
    /// **Test-only.** Realize the scenario with dead-subtree fencing
    /// disabled (see [`SimConfig::grid_fencing_disabled`]): grid faults
    /// still derate capacity but jobs stay on their dead racks. Never
    /// drawn by [`generate`](Self::generate); planted by the campaign's
    /// seeded-violation mode to prove the `grid-fencing` oracle catches
    /// power routed through a dead node.
    pub grid_unfenced: bool,
}

impl Scenario {
    /// Generates the scenario for `(campaign_seed, index)`. Deterministic
    /// and order-independent: each index draws from its own ChaCha8 stream.
    #[must_use]
    pub fn generate(campaign_seed: u64, index: u64) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(campaign_seed ^ SCENARIO_SEED_XOR);
        rng.set_stream(index);

        // MPR-INT is over-weighted: it is the only algorithm with per-event
        // agent interaction, so the fault layers only bite there.
        let algorithm = match rng.gen_range(0..6u32) {
            0 => Algorithm::Opt,
            1 => Algorithm::Eql,
            2 => Algorithm::MprStat,
            _ => Algorithm::MprInt,
        };
        let oversub_pct = rng.gen_range(5.0..=30.0f64);
        let sim_seed: u64 = rng.gen();
        let participation = if rng.gen_bool(0.3) {
            rng.gen_range(0.2..1.0f64)
        } else {
            1.0
        };
        let alpha_spread = if rng.gen_bool(0.25) {
            rng.gen_range(0.1..1.0f64)
        } else {
            0.0
        };
        let cost_noise = match rng.gen_range(0..4u32) {
            0 => CostNoise::Random {
                magnitude: rng.gen_range(0.05..0.3f64),
            },
            1 => CostNoise::Underestimate {
                fraction: rng.gen_range(0.05..0.5f64),
            },
            _ => CostNoise::None,
        };
        let phase_amplitude = if rng.gen_bool(0.25) {
            rng.gen_range(0.05..0.3f64)
        } else {
            0.0
        };

        fn frac(rng: &mut ChaCha8Rng, p: f64, hi: f64) -> f64 {
            if rng.gen_bool(p) {
                rng.gen_range(0.05..hi)
            } else {
                0.0
            }
        }
        let fault_plan = rng.gen_bool(0.5).then(|| FaultPlan {
            unresponsive_frac: frac(&mut rng, 0.5, 0.4),
            crash_frac: frac(&mut rng, 0.4, 0.4),
            stale_frac: frac(&mut rng, 0.3, 0.4),
            byzantine_frac: frac(&mut rng, 0.3, 0.4),
            byzantine_factor: rng.gen_range(1.5..6.0f64),
            max_retries: rng.gen_range(1..=3usize),
            watchdog_window: rng.gen_range(4..=12usize),
            divergence_min_change: 0.05,
        });
        let net_plan = rng.gen_bool(0.5).then(|| {
            let min_delay = rng.gen_range(1..=2u64);
            NetPlan {
                drop_prob: if rng.gen_bool(0.6) {
                    rng.gen_range(0.05..0.4f64)
                } else {
                    0.0
                },
                duplicate_prob: if rng.gen_bool(0.3) {
                    rng.gen_range(0.05..0.3f64)
                } else {
                    0.0
                },
                min_delay_ticks: min_delay,
                max_delay_ticks: rng.gen_range(min_delay..=6),
                partition_prob: if rng.gen_bool(0.3) {
                    rng.gen_range(0.02..0.2f64)
                } else {
                    0.0
                },
                partition_ticks: rng.gen_range(4..=32u64),
                deadline_ticks: rng.gen_range(4..=16u64),
                max_attempts: rng.gen_range(1..=4usize),
                quarantine_after_misses: rng.gen_range(1..=5usize),
            }
        });
        let sensor = rng.gen_bool(0.4).then(|| SensorFaultConfig {
            noise_sigma_frac: if rng.gen_bool(0.6) {
                rng.gen_range(0.005..0.08f64)
            } else {
                0.0
            },
            dropout_prob: if rng.gen_bool(0.5) {
                rng.gen_range(0.05..0.5f64)
            } else {
                0.0
            },
            stuck_prob: if rng.gen_bool(0.3) {
                rng.gen_range(0.002..0.02f64)
            } else {
                0.0
            },
            stuck_polls: rng.gen_range(2..=8u32),
            delay_polls: rng.gen_range(0..=2usize),
            spike_prob: if rng.gen_bool(0.3) {
                rng.gen_range(0.005..0.05f64)
            } else {
                0.0
            },
            spike_magnitude_frac: rng.gen_range(0.2..1.0f64),
        });
        // Storage faults live under the market ledger; bit flips are rarer
        // than torn writes (they model silent media corruption rather than
        // a crashed write path) and legitimately truncate acknowledged
        // slots, so the commit oracle waives them.
        let disk_plan = rng.gen_bool(0.4).then(|| DiskPlan {
            torn_write_prob: if rng.gen_bool(0.6) {
                rng.gen_range(0.05..0.4f64)
            } else {
                0.0
            },
            bit_flip_prob: if rng.gen_bool(0.25) {
                rng.gen_range(0.001..0.01f64)
            } else {
                0.0
            },
            fsync_fail_prob: if rng.gen_bool(0.4) {
                rng.gen_range(0.02..0.2f64)
            } else {
                0.0
            },
            capacity_bytes: None,
        });
        // Most disk scenarios also kill the manager mid-run so recovery
        // actually replays the faulty ledger; the rest journal through the
        // faults uninterrupted.
        let kill_at_frac = if disk_plan.is_some() && rng.gen_bool(0.75) {
            rng.gen_range(0.1..0.9f64)
        } else {
            0.0
        };
        // A drawn tree routes overloads through the federated market.
        // Headroom is biased toward the squeezed end so inner levels
        // overload too — the nested-overload scenarios the flat model
        // never exercises — but reaches high enough that the degenerate
        // root-only case stays in the space.
        let topology = rng.gen_bool(0.3).then(|| TopologyDraw {
            ups_count: rng.gen_range(1..=3usize),
            pdus_per_ups: rng.gen_range(1..=2usize),
            racks_per_pdu: rng.gen_range(1..=3usize),
            inner_headroom: rng.gen_range(1.0..2.5f64),
        });
        // Infrastructure faults over the drawn tree (space v4): UPS
        // failures, ATS transfers onto derated feeds, PDU breaker trips
        // and gradual deratings, each repaired on its own schedule. Only
        // drawn when a tree exists, and discarded when every fault class
        // rolled zero (an inactive plan adds nothing to the space).
        let grid_fault = topology
            .is_some()
            .then(|| {
                rng.gen_bool(0.35).then(|| GridFaultPlan {
                    seed: rng.gen(),
                    ups_failure_prob: frac(&mut rng, 0.4, 0.8),
                    ats_derate_prob: frac(&mut rng, 0.4, 0.8),
                    ats_derate_frac: rng.gen_range(0.3..0.9f64),
                    pdu_trip_prob: frac(&mut rng, 0.4, 0.8),
                    derate_prob: frac(&mut rng, 0.4, 0.8),
                    derate_floor: rng.gen_range(0.5..0.95f64),
                    onset_secs: 0.0,
                    window_secs: rng.gen_range(1800.0..14400.0f64),
                    repair_secs: rng.gen_range(900.0..7200.0f64),
                })
            })
            .flatten()
            .filter(GridFaultPlan::is_active);

        Scenario {
            algorithm,
            oversub_pct,
            sim_seed,
            participation,
            alpha_spread,
            cost_noise,
            phase_amplitude,
            fault_plan,
            net_plan,
            sensor,
            disk_plan,
            kill_at_frac,
            topology,
            grid_fault,
            wal_fsync_never: false,
            emergency_disabled: false,
            grid_unfenced: false,
        }
    }

    /// `true` when the scenario must run through the durable-ledger
    /// crash/recover harness rather than the plain simulation loop.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.disk_plan.is_some() || self.kill_at_frac > 0.0 || self.wal_fsync_never
    }

    /// Realizes the scenario as a simulator configuration. The timeline is
    /// always recorded (the cap oracle scans it) and the configuration is
    /// tagged with [`SPACE_VERSION`] so checkpoints written during a
    /// campaign can only be resumed under the same generator space.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::new(self.algorithm, self.oversub_pct)
            .with_seed(self.sim_seed)
            .with_participation(self.participation)
            .with_alpha_spread(self.alpha_spread)
            .with_cost_noise(self.cost_noise)
            .with_timeline()
            .with_scenario_space(SPACE_VERSION);
        if self.phase_amplitude > 0.0 {
            cfg = cfg.with_phases(self.phase_amplitude);
        }
        if let Some(p) = self.fault_plan {
            cfg = cfg.with_faults(p);
        }
        if let Some(p) = self.net_plan {
            cfg = cfg.with_net(p);
        }
        if let Some(s) = self.sensor {
            cfg = cfg.with_telemetry(TelemetryConfig::with_faults(s));
        }
        if let Some(t) = self.topology {
            cfg = cfg.with_topology(t.to_spec());
        }
        if let Some(g) = self.grid_fault {
            cfg = cfg.with_grid_faults(g);
        }
        if self.is_durable() {
            // `kill_at_slot` stays unresolved here: the fraction is
            // relative to the trace span, which only the campaign knows
            // (see `campaign::simulate`).
            cfg = cfg.with_durability(DurabilityPlan {
                fsync: if self.wal_fsync_never {
                    FsyncPolicy::Never
                } else {
                    FsyncPolicy::Always
                },
                disk: self.disk_plan,
                ..DurabilityPlan::default()
            });
        }
        if self.emergency_disabled {
            cfg = cfg.with_emergency_disabled();
        }
        if self.grid_unfenced {
            cfg = cfg.with_grid_fencing_disabled();
        }
        cfg
    }

    /// Size metric for the shrinker: the number of non-default components
    /// the scenario carries. Every shrink step removes at least one, so
    /// shrinking strictly decreases this and terminates.
    #[must_use]
    pub fn complexity(&self) -> usize {
        let mut n = 0;
        if let Some(p) = self.fault_plan {
            n += 1; // presence itself
            n += usize::from(p.unresponsive_frac > 0.0);
            n += usize::from(p.crash_frac > 0.0);
            n += usize::from(p.stale_frac > 0.0);
            n += usize::from(p.byzantine_frac > 0.0);
        }
        if let Some(p) = self.net_plan {
            n += 1;
            n += usize::from(p.drop_prob > 0.0);
            n += usize::from(p.duplicate_prob > 0.0);
            n += usize::from(p.partition_prob > 0.0);
            n += usize::from(p.max_delay_ticks > NetPlan::default().max_delay_ticks);
        }
        if let Some(s) = self.sensor {
            n += 1;
            n += usize::from(s.noise_sigma_frac > 0.0);
            n += usize::from(s.dropout_prob > 0.0);
            n += usize::from(s.stuck_prob > 0.0);
            n += usize::from(s.spike_prob > 0.0);
            n += usize::from(s.delay_polls > 0);
        }
        if let Some(p) = self.disk_plan {
            n += 1;
            n += usize::from(p.torn_write_prob > 0.0);
            n += usize::from(p.bit_flip_prob > 0.0);
            n += usize::from(p.fsync_fail_prob > 0.0);
        }
        if let Some(t) = self.topology {
            n += 1; // presence itself
            n += usize::from(t.total_racks() > 1);
        }
        if let Some(g) = self.grid_fault {
            n += 1; // presence itself
            n += usize::from(g.ups_failure_prob > 0.0);
            n += usize::from(g.ats_derate_prob > 0.0);
            n += usize::from(g.pdu_trip_prob > 0.0);
            n += usize::from(g.derate_prob > 0.0);
        }
        n += usize::from(self.kill_at_frac > 0.0);
        n += usize::from(!matches!(self.cost_noise, CostNoise::None));
        n += usize::from(self.alpha_spread > 0.0);
        n += usize::from(self.participation < 1.0);
        n += usize::from(self.phase_amplitude > 0.0);
        n += usize::from((self.oversub_pct - DEFAULT_OVERSUB_PCT).abs() > 0.0);
        n
    }

    /// One-line human description of the scenario's active components.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut parts = vec![format!("{} @ {:.1}%", self.algorithm, self.oversub_pct)];
        if let Some(p) = self.fault_plan.filter(FaultPlan::is_active) {
            parts.push(format!(
                "faults(unresp={:.2},crash={:.2},stale={:.2},byz={:.2})",
                p.unresponsive_frac, p.crash_frac, p.stale_frac, p.byzantine_frac
            ));
        }
        if let Some(p) = self.net_plan.filter(NetPlan::is_active) {
            parts.push(format!(
                "net(drop={:.2},dup={:.2},part={:.2},delay={}..{})",
                p.drop_prob,
                p.duplicate_prob,
                p.partition_prob,
                p.min_delay_ticks,
                p.max_delay_ticks
            ));
        }
        if let Some(s) = self.sensor {
            parts.push(format!(
                "sensor(noise={:.3},drop={:.2},stuck={:.3},spike={:.3})",
                s.noise_sigma_frac, s.dropout_prob, s.stuck_prob, s.spike_prob
            ));
        }
        if let Some(p) = self.disk_plan {
            parts.push(format!(
                "disk(torn={:.2},flip={:.3},fsync-fail={:.2})",
                p.torn_write_prob, p.bit_flip_prob, p.fsync_fail_prob
            ));
        }
        if self.kill_at_frac > 0.0 {
            parts.push(format!("kill@{:.2}", self.kill_at_frac));
        }
        if let Some(t) = self.topology {
            parts.push(format!(
                "tree({}x{}x{},headroom={:.2})",
                t.ups_count, t.pdus_per_ups, t.racks_per_pdu, t.inner_headroom
            ));
        }
        if let Some(g) = self.grid_fault.filter(GridFaultPlan::is_active) {
            parts.push(format!(
                "grid(ups={:.2},ats={:.2},pdu={:.2},derate={:.2},repair={:.0}s)",
                g.ups_failure_prob,
                g.ats_derate_prob,
                g.pdu_trip_prob,
                g.derate_prob,
                g.repair_secs
            ));
        }
        match self.cost_noise {
            CostNoise::None => {}
            CostNoise::Random { magnitude } => parts.push(format!("noise(random,{magnitude:.2})")),
            CostNoise::Underestimate { fraction } => {
                parts.push(format!("noise(under,{fraction:.2})"));
            }
        }
        if self.participation < 1.0 {
            parts.push(format!("participation={:.2}", self.participation));
        }
        if self.alpha_spread > 0.0 {
            parts.push(format!("alpha-spread={:.2}", self.alpha_spread));
        }
        if self.phase_amplitude > 0.0 {
            parts.push(format!("phases={:.2}", self.phase_amplitude));
        }
        if self.wal_fsync_never {
            parts.push("WAL-FSYNC-NEVER".to_owned());
        }
        if self.emergency_disabled {
            parts.push("EMERGENCY-FSM-DISABLED".to_owned());
        }
        if self.grid_unfenced {
            parts.push("GRID-FENCING-DISABLED".to_owned());
        }
        parts.join(" ")
    }

    // -----------------------------------------------------------------------
    // JSON encoding.

    /// Renders the scenario as a JSON object at the given indent level.
    #[must_use]
    pub fn to_json(&self, indent: usize) -> String {
        let mut w = ObjWriter::new();
        w.str("algorithm", &self.algorithm.to_string())
            .num("oversub_pct", self.oversub_pct)
            .u64("sim_seed", self.sim_seed)
            .num("participation", self.participation)
            .num("alpha_spread", self.alpha_spread);
        match self.cost_noise {
            CostNoise::None => w.str("cost_noise", "none").num("cost_noise_value", 0.0),
            CostNoise::Random { magnitude } => w
                .str("cost_noise", "random")
                .num("cost_noise_value", magnitude),
            CostNoise::Underestimate { fraction } => w
                .str("cost_noise", "underestimate")
                .num("cost_noise_value", fraction),
        };
        w.num("phase_amplitude", self.phase_amplitude)
            .num("kill_at_frac", self.kill_at_frac)
            .bool("wal_fsync_never", self.wal_fsync_never)
            .bool("emergency_disabled", self.emergency_disabled)
            .bool("grid_unfenced", self.grid_unfenced);
        match self.fault_plan {
            Some(p) => {
                let mut f = ObjWriter::new();
                f.num("unresponsive_frac", p.unresponsive_frac)
                    .num("crash_frac", p.crash_frac)
                    .num("stale_frac", p.stale_frac)
                    .num("byzantine_frac", p.byzantine_frac)
                    .num("byzantine_factor", p.byzantine_factor)
                    .num("max_retries", p.max_retries as f64)
                    .num("watchdog_window", p.watchdog_window as f64)
                    .num("divergence_min_change", p.divergence_min_change);
                w.raw("fault_plan", f.render(indent + 1));
            }
            None => {
                w.raw("fault_plan", "null");
            }
        }
        match self.net_plan {
            Some(p) => {
                let mut f = ObjWriter::new();
                f.num("drop_prob", p.drop_prob)
                    .num("duplicate_prob", p.duplicate_prob)
                    .num("min_delay_ticks", p.min_delay_ticks as f64)
                    .num("max_delay_ticks", p.max_delay_ticks as f64)
                    .num("partition_prob", p.partition_prob)
                    .num("partition_ticks", p.partition_ticks as f64)
                    .num("deadline_ticks", p.deadline_ticks as f64)
                    .num("max_attempts", p.max_attempts as f64)
                    .num("quarantine_after_misses", p.quarantine_after_misses as f64);
                w.raw("net_plan", f.render(indent + 1));
            }
            None => {
                w.raw("net_plan", "null");
            }
        }
        match self.sensor {
            Some(s) => {
                let mut f = ObjWriter::new();
                f.num("noise_sigma_frac", s.noise_sigma_frac)
                    .num("dropout_prob", s.dropout_prob)
                    .num("stuck_prob", s.stuck_prob)
                    .num("stuck_polls", f64::from(s.stuck_polls))
                    .num("delay_polls", s.delay_polls as f64)
                    .num("spike_prob", s.spike_prob)
                    .num("spike_magnitude_frac", s.spike_magnitude_frac);
                w.raw("sensor", f.render(indent + 1));
            }
            None => {
                w.raw("sensor", "null");
            }
        }
        match self.disk_plan {
            Some(p) => {
                let mut f = ObjWriter::new();
                f.num("torn_write_prob", p.torn_write_prob)
                    .num("bit_flip_prob", p.bit_flip_prob)
                    .num("fsync_fail_prob", p.fsync_fail_prob);
                match p.capacity_bytes {
                    Some(cap) => f.num("capacity_bytes", cap as f64),
                    None => f.raw("capacity_bytes", "null"),
                };
                w.raw("disk_plan", f.render(indent + 1));
            }
            None => {
                w.raw("disk_plan", "null");
            }
        }
        match self.topology {
            Some(t) => {
                let mut f = ObjWriter::new();
                f.num("ups_count", t.ups_count as f64)
                    .num("pdus_per_ups", t.pdus_per_ups as f64)
                    .num("racks_per_pdu", t.racks_per_pdu as f64)
                    .num("inner_headroom", t.inner_headroom);
                w.raw("topology", f.render(indent + 1));
            }
            None => {
                w.raw("topology", "null");
            }
        }
        match self.grid_fault {
            Some(g) => {
                let mut f = ObjWriter::new();
                f.u64("seed", g.seed)
                    .num("ups_failure_prob", g.ups_failure_prob)
                    .num("ats_derate_prob", g.ats_derate_prob)
                    .num("ats_derate_frac", g.ats_derate_frac)
                    .num("pdu_trip_prob", g.pdu_trip_prob)
                    .num("derate_prob", g.derate_prob)
                    .num("derate_floor", g.derate_floor)
                    .num("onset_secs", g.onset_secs)
                    .num("window_secs", g.window_secs)
                    .num("repair_secs", g.repair_secs);
                w.raw("grid_fault", f.render(indent + 1));
            }
            None => {
                w.raw("grid_fault", "null");
            }
        }
        w.render(indent)
    }

    /// Decodes a scenario from a parsed JSON object (the inverse of
    /// [`to_json`](Self::to_json)).
    ///
    /// # Errors
    ///
    /// Returns a [`json::ParseError`] naming the missing or mistyped field.
    pub fn from_json_value(v: &Value) -> Result<Scenario, json::ParseError> {
        let obj = v.as_obj().ok_or_else(|| json::ParseError {
            at: 0,
            message: "scenario is not an object".to_owned(),
        })?;
        let algorithm = match json::field(obj, "algorithm")?.as_str() {
            Some("OPT") => Algorithm::Opt,
            Some("EQL") => Algorithm::Eql,
            Some("MPR-STAT") => Algorithm::MprStat,
            Some("MPR-INT") => Algorithm::MprInt,
            Some("VCG") => Algorithm::Vcg,
            _ => {
                return Err(json::ParseError {
                    at: 0,
                    message: "unknown algorithm".to_owned(),
                })
            }
        };
        let cost_noise_value = json::field_num(obj, "cost_noise_value")?;
        let cost_noise = match json::field(obj, "cost_noise")?.as_str() {
            Some("none") => CostNoise::None,
            Some("random") => CostNoise::Random {
                magnitude: cost_noise_value,
            },
            Some("underestimate") => CostNoise::Underestimate {
                fraction: cost_noise_value,
            },
            _ => {
                return Err(json::ParseError {
                    at: 0,
                    message: "unknown cost_noise kind".to_owned(),
                })
            }
        };
        let fault_plan = match json::field(obj, "fault_plan")? {
            Value::Null => None,
            v => {
                let f = obj_of(v, "fault_plan")?;
                Some(FaultPlan {
                    unresponsive_frac: json::field_num(f, "unresponsive_frac")?,
                    crash_frac: json::field_num(f, "crash_frac")?,
                    stale_frac: json::field_num(f, "stale_frac")?,
                    byzantine_frac: json::field_num(f, "byzantine_frac")?,
                    byzantine_factor: json::field_num(f, "byzantine_factor")?,
                    max_retries: usize_field(f, "max_retries")?,
                    watchdog_window: usize_field(f, "watchdog_window")?,
                    divergence_min_change: json::field_num(f, "divergence_min_change")?,
                })
            }
        };
        let net_plan = match json::field(obj, "net_plan")? {
            Value::Null => None,
            v => {
                let f = obj_of(v, "net_plan")?;
                Some(NetPlan {
                    drop_prob: json::field_num(f, "drop_prob")?,
                    duplicate_prob: json::field_num(f, "duplicate_prob")?,
                    min_delay_ticks: u64_field(f, "min_delay_ticks")?,
                    max_delay_ticks: u64_field(f, "max_delay_ticks")?,
                    partition_prob: json::field_num(f, "partition_prob")?,
                    partition_ticks: u64_field(f, "partition_ticks")?,
                    deadline_ticks: u64_field(f, "deadline_ticks")?,
                    max_attempts: usize_field(f, "max_attempts")?,
                    quarantine_after_misses: usize_field(f, "quarantine_after_misses")?,
                })
            }
        };
        let sensor = match json::field(obj, "sensor")? {
            Value::Null => None,
            v => {
                let f = obj_of(v, "sensor")?;
                Some(SensorFaultConfig {
                    noise_sigma_frac: json::field_num(f, "noise_sigma_frac")?,
                    dropout_prob: json::field_num(f, "dropout_prob")?,
                    stuck_prob: json::field_num(f, "stuck_prob")?,
                    stuck_polls: u32_field(f, "stuck_polls")?,
                    delay_polls: usize_field(f, "delay_polls")?,
                    spike_prob: json::field_num(f, "spike_prob")?,
                    spike_magnitude_frac: json::field_num(f, "spike_magnitude_frac")?,
                })
            }
        };
        let disk_plan = match json::field(obj, "disk_plan")? {
            Value::Null => None,
            v => {
                let f = obj_of(v, "disk_plan")?;
                Some(DiskPlan {
                    torn_write_prob: json::field_num(f, "torn_write_prob")?,
                    bit_flip_prob: json::field_num(f, "bit_flip_prob")?,
                    fsync_fail_prob: json::field_num(f, "fsync_fail_prob")?,
                    capacity_bytes: match json::field(f, "capacity_bytes")? {
                        Value::Null => None,
                        _ => Some(u64_field(f, "capacity_bytes")?),
                    },
                })
            }
        };
        let topology = match json::field(obj, "topology")? {
            Value::Null => None,
            v => {
                let f = obj_of(v, "topology")?;
                let draw = TopologyDraw {
                    ups_count: usize_field(f, "ups_count")?,
                    pdus_per_ups: usize_field(f, "pdus_per_ups")?,
                    racks_per_pdu: usize_field(f, "racks_per_pdu")?,
                    inner_headroom: json::field_num(f, "inner_headroom")?,
                };
                if draw.total_racks() == 0 {
                    return Err(json::ParseError {
                        at: 0,
                        message: "topology fan-out must be positive at every level".to_owned(),
                    });
                }
                Some(draw)
            }
        };
        let grid_fault = match json::field(obj, "grid_fault")? {
            Value::Null => None,
            v => {
                let f = obj_of(v, "grid_fault")?;
                let plan = GridFaultPlan {
                    seed: json::field_u64(f, "seed")?,
                    ups_failure_prob: json::field_num(f, "ups_failure_prob")?,
                    ats_derate_prob: json::field_num(f, "ats_derate_prob")?,
                    ats_derate_frac: json::field_num(f, "ats_derate_frac")?,
                    pdu_trip_prob: json::field_num(f, "pdu_trip_prob")?,
                    derate_prob: json::field_num(f, "derate_prob")?,
                    derate_floor: json::field_num(f, "derate_floor")?,
                    onset_secs: json::field_num(f, "onset_secs")?,
                    window_secs: json::field_num(f, "window_secs")?,
                    repair_secs: json::field_num(f, "repair_secs")?,
                };
                if topology.is_none() {
                    return Err(json::ParseError {
                        at: 0,
                        message: "grid_fault requires a topology".to_owned(),
                    });
                }
                Some(plan)
            }
        };
        Ok(Scenario {
            algorithm,
            oversub_pct: json::field_num(obj, "oversub_pct")?,
            sim_seed: json::field_u64(obj, "sim_seed")?,
            participation: json::field_num(obj, "participation")?,
            alpha_spread: json::field_num(obj, "alpha_spread")?,
            cost_noise,
            phase_amplitude: json::field_num(obj, "phase_amplitude")?,
            fault_plan,
            net_plan,
            sensor,
            disk_plan,
            kill_at_frac: json::field_num(obj, "kill_at_frac")?,
            topology,
            grid_fault,
            wal_fsync_never: json::field_bool(obj, "wal_fsync_never")?,
            emergency_disabled: json::field_bool(obj, "emergency_disabled")?,
            grid_unfenced: json::field_bool(obj, "grid_unfenced")?,
        })
    }
}

fn obj_of<'a>(v: &'a Value, name: &str) -> Result<&'a BTreeMap<String, Value>, json::ParseError> {
    v.as_obj().ok_or_else(|| json::ParseError {
        at: 0,
        message: format!("field `{name}` is not an object"),
    })
}

fn usize_field(obj: &BTreeMap<String, Value>, key: &str) -> Result<usize, json::ParseError> {
    let n = json::field_num(obj, key)?;
    if n < 0.0 || n.fract().abs() > 0.0 {
        return Err(json::ParseError {
            at: 0,
            message: format!("field `{key}` is not a non-negative integer"),
        });
    }
    Ok(n as usize)
}

fn u64_field(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, json::ParseError> {
    usize_field(obj, key).map(|v| v as u64)
}

fn u32_field(obj: &BTreeMap<String, Value>, key: &str) -> Result<u32, json::ParseError> {
    let v = usize_field(obj, key)?;
    u32::try_from(v).map_err(|_| json::ParseError {
        at: 0,
        message: format!("field `{key}` overflows u32"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_index() {
        for i in [0u64, 1, 7, 999] {
            assert_eq!(Scenario::generate(42, i), Scenario::generate(42, i));
        }
        // Different indices and different seeds draw different scenarios.
        assert_ne!(Scenario::generate(42, 0), Scenario::generate(42, 1));
        assert_ne!(Scenario::generate(42, 0), Scenario::generate(43, 0));
    }

    #[test]
    fn generation_is_order_independent() {
        // Drawing index 5 never depends on having drawn 0..5 first.
        let direct = Scenario::generate(7, 5);
        for i in 0..5 {
            let _ = Scenario::generate(7, i);
        }
        assert_eq!(Scenario::generate(7, 5), direct);
    }

    #[test]
    fn space_covers_all_fault_layers() {
        let scenarios: Vec<Scenario> = (0..200).map(|i| Scenario::generate(1, i)).collect();
        assert!(scenarios.iter().any(|s| s.fault_plan.is_some()));
        assert!(scenarios.iter().any(|s| s.net_plan.is_some()));
        assert!(scenarios.iter().any(|s| s.sensor.is_some()));
        assert!(scenarios
            .iter()
            .any(|s| s.fault_plan.is_some() && s.net_plan.is_some() && s.sensor.is_some()));
        assert!(scenarios.iter().any(|s| s.algorithm == Algorithm::MprInt));
        assert!(scenarios.iter().any(|s| s.algorithm != Algorithm::MprInt));
        // The disk layer is drawn, usually with a kill, sometimes without.
        assert!(scenarios.iter().any(|s| s.disk_plan.is_some()));
        assert!(scenarios
            .iter()
            .any(|s| s.disk_plan.is_some() && s.kill_at_frac > 0.0));
        assert!(scenarios
            .iter()
            .any(|s| s.disk_plan.is_some() && s.kill_at_frac == 0.0));
        // A kill never appears without the disk layer that motivates it.
        assert!(scenarios
            .iter()
            .all(|s| s.kill_at_frac == 0.0 || s.disk_plan.is_some()));
        // Power trees are drawn — both squeezed multi-rack shapes and the
        // flat (no-tree) majority — and compose with the fault layers.
        assert!(scenarios.iter().any(|s| s.topology.is_some()));
        assert!(scenarios.iter().any(|s| s.topology.is_none()));
        assert!(scenarios
            .iter()
            .any(|s| s.topology.is_some_and(|t| t.total_racks() > 1)));
        assert!(scenarios
            .iter()
            .any(|s| s.topology.is_some() && s.fault_plan.is_some()));
        assert!(scenarios.iter().all(|s| s
            .topology
            .is_none_or(|t| t.total_racks() >= 1 && (1.0..2.5).contains(&t.inner_headroom))));
        // Grid faults are drawn (space v4), always riding on a tree and
        // always with at least one active fault class; trees without grid
        // faults remain the majority.
        assert!(scenarios.iter().any(|s| s.grid_fault.is_some()));
        assert!(scenarios
            .iter()
            .any(|s| s.topology.is_some() && s.grid_fault.is_none()));
        assert!(scenarios
            .iter()
            .all(|s| s.grid_fault.is_none() || s.topology.is_some()));
        assert!(scenarios
            .iter()
            .all(|s| s.grid_fault.is_none_or(|g| g.is_active())));
        // Grid faults compose with the other fault layers.
        assert!(scenarios.iter().any(|s| s.grid_fault.is_some()
            && (s.fault_plan.is_some() || s.net_plan.is_some() || s.sensor.is_some())));
        // The generator never plants the test-only knobs.
        assert!(scenarios.iter().all(|s| !s.emergency_disabled));
        assert!(scenarios.iter().all(|s| !s.wal_fsync_never));
        assert!(scenarios.iter().all(|s| !s.grid_unfenced));
    }

    #[test]
    fn json_round_trip_is_exact() {
        for i in 0..50 {
            let mut s = Scenario::generate(99, i);
            if i % 2 == 0 {
                s.emergency_disabled = true;
            }
            if i % 3 == 0 {
                s.wal_fsync_never = true;
            }
            if i % 7 == 0 {
                s.disk_plan = Some(DiskPlan {
                    capacity_bytes: Some(1 << 20),
                    ..DiskPlan::default()
                });
            }
            if i % 5 == 0 {
                s.topology = Some(TopologyDraw {
                    ups_count: 2,
                    pdus_per_ups: 1,
                    racks_per_pdu: 3,
                    inner_headroom: 1.0 + i as f64 / 49.0,
                });
                s.grid_fault = Some(GridFaultPlan {
                    seed: 0xdead_beef + i,
                    ups_failure_prob: 0.5,
                    ..GridFaultPlan::default()
                });
                s.grid_unfenced = i % 10 == 0;
            }
            let text = s.to_json(0);
            let back =
                Scenario::from_json_value(&json::parse(&text).expect("parses")).expect("decodes");
            assert_eq!(back, s, "round-trip mismatch at index {i}\n{text}");
        }
    }

    #[test]
    fn sim_config_realization() {
        let mut s = Scenario::generate(3, 11);
        s.emergency_disabled = true;
        let cfg = s.sim_config();
        assert_eq!(cfg.algorithm, s.algorithm);
        assert!(cfg.record_timeline, "cap oracle needs the timeline");
        assert_eq!(cfg.scenario_space, Some(SPACE_VERSION));
        assert!(cfg.emergency_disabled);
        assert_eq!(cfg.seed, s.sim_seed);
        assert_eq!(cfg.fault_plan, s.fault_plan);
        assert_eq!(cfg.net_plan, s.net_plan);
        assert_eq!(cfg.durability.is_some(), s.is_durable());
        assert_eq!(cfg.is_federated(), s.topology.is_some());
        s.topology = Some(TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 2,
            racks_per_pdu: 2,
            inner_headroom: 1.1,
        });
        let cfg = s.sim_config();
        assert!(cfg.is_federated());
        assert_eq!(cfg.topology.as_ref().map(|t| t.nodes.len()), Some(15));
    }

    #[test]
    fn topology_draw_realizes_a_valid_nested_tree() {
        let draw = TopologyDraw {
            ups_count: 3,
            pdus_per_ups: 2,
            racks_per_pdu: 2,
            inner_headroom: 1.2,
        };
        assert_eq!(draw.total_racks(), 12);
        let spec = draw.to_spec();
        // 1 ATS + 3 UPS + 6 PDU + 12 racks, in id order with valid parents.
        assert_eq!(spec.nodes.len(), 22);
        let h = spec.to_hierarchy().expect("draws satisfy nesting rules");
        assert_eq!(h.len(), spec.nodes.len());
        assert_eq!(spec.rack_ids().len(), 12);
        // The spec round-trips through the on-disk codec like any other.
        let reparsed = TopologySpec::parse(&spec.to_json()).expect("reparses");
        assert_eq!(spec, reparsed);
        // Inner capacity is headroom × fair share of the unit root.
        let ups_cap = spec.nodes[1].capacity.get();
        assert!((ups_cap - 1.2 / 3.0).abs() < 1e-12, "{ups_cap}");
        // Squeezing headroom changes the tree identity (and so the
        // checkpoint fingerprint the simulator folds in).
        let squeezed = TopologyDraw {
            inner_headroom: 1.0,
            ..draw
        };
        assert_ne!(spec.fingerprint(), squeezed.to_spec().fingerprint());
    }

    #[test]
    fn durable_scenarios_realize_a_durability_plan() {
        let mut s = Scenario::generate(3, 11);
        s.disk_plan = Some(DiskPlan {
            torn_write_prob: 0.2,
            ..DiskPlan::default()
        });
        s.kill_at_frac = 0.5;
        let plan = s.sim_config().durability.expect("durability plan");
        assert_eq!(plan.disk, s.disk_plan);
        assert_eq!(plan.fsync, FsyncPolicy::Always);
        // The slot is resolved by the campaign against the trace span.
        assert_eq!(plan.kill_at_slot, None);
        s.wal_fsync_never = true;
        let plan = s.sim_config().durability.expect("durability plan");
        assert_eq!(plan.fsync, FsyncPolicy::Never);
        // The planted knob alone is enough to route through the ledger.
        s.disk_plan = None;
        s.kill_at_frac = 0.0;
        assert!(s.is_durable());
        s.wal_fsync_never = false;
        assert!(!s.is_durable());
        assert_eq!(s.sim_config().durability, None);
    }

    #[test]
    fn complexity_counts_components() {
        let mut s = Scenario::generate(5, 0);
        s.fault_plan = None;
        s.net_plan = None;
        s.sensor = None;
        s.disk_plan = None;
        s.kill_at_frac = 0.0;
        s.topology = None;
        s.cost_noise = CostNoise::None;
        s.alpha_spread = 0.0;
        s.participation = 1.0;
        s.phase_amplitude = 0.0;
        s.oversub_pct = 15.0;
        assert_eq!(s.complexity(), 0);
        s.fault_plan = Some(FaultPlan::unresponsive_and_crash(0.3, 0.1));
        assert_eq!(s.complexity(), 3, "presence + two nonzero fracs");
        s.oversub_pct = 20.0;
        assert_eq!(s.complexity(), 4);
        s.disk_plan = Some(DiskPlan {
            torn_write_prob: 0.2,
            fsync_fail_prob: 0.1,
            ..DiskPlan::default()
        });
        assert_eq!(s.complexity(), 7, "presence + two nonzero fault probs");
        s.kill_at_frac = 0.5;
        assert_eq!(s.complexity(), 8);
        s.topology = Some(TopologyDraw {
            ups_count: 1,
            pdus_per_ups: 1,
            racks_per_pdu: 1,
            inner_headroom: 1.5,
        });
        assert_eq!(s.complexity(), 9, "single-branch tree counts presence");
        s.topology = Some(TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 1,
            racks_per_pdu: 2,
            inner_headroom: 1.5,
        });
        assert_eq!(s.complexity(), 10, "fan-out adds one more component");
        s.grid_fault = Some(GridFaultPlan {
            ups_failure_prob: 0.6,
            pdu_trip_prob: 0.2,
            ..GridFaultPlan::default()
        });
        assert_eq!(
            s.complexity(),
            13,
            "grid presence + two active fault classes"
        );
    }

    #[test]
    fn describe_mentions_active_layers() {
        let mut s = Scenario::generate(1, 0);
        s.fault_plan = Some(FaultPlan::unresponsive_and_crash(0.3, 0.1));
        s.disk_plan = Some(DiskPlan {
            torn_write_prob: 0.2,
            ..DiskPlan::default()
        });
        s.kill_at_frac = 0.5;
        s.topology = Some(TopologyDraw {
            ups_count: 2,
            pdus_per_ups: 1,
            racks_per_pdu: 3,
            inner_headroom: 1.25,
        });
        s.wal_fsync_never = true;
        s.emergency_disabled = true;
        s.grid_fault = Some(GridFaultPlan {
            ups_failure_prob: 0.75,
            repair_secs: 1800.0,
            ..GridFaultPlan::default()
        });
        s.grid_unfenced = true;
        let d = s.describe();
        assert!(d.contains("faults("), "{d}");
        assert!(d.contains("disk(torn=0.20"), "{d}");
        assert!(d.contains("kill@0.50"), "{d}");
        assert!(d.contains("tree(2x1x3,headroom=1.25)"), "{d}");
        assert!(d.contains("grid(ups=0.75"), "{d}");
        assert!(d.contains("repair=1800s"), "{d}");
        assert!(d.contains("WAL-FSYNC-NEVER"), "{d}");
        assert!(d.contains("EMERGENCY-FSM-DISABLED"), "{d}");
        assert!(d.contains("GRID-FENCING-DISABLED"), "{d}");
    }
}
