//! A minimal JSON codec for repro artifacts.
//!
//! The container is offline, so (like `mpr-lint`'s report writer) artifacts
//! are encoded by hand against a fixed schema and decoded with a small
//! recursive-descent parser covering the JSON subset the schema uses:
//! objects, strings, numbers, booleans and `null`. Numbers are written with
//! Rust's shortest round-trip formatting (`{:?}`), so every `f64` in an
//! artifact replays bit-identically; `u64` seeds are written as strings to
//! dodge the 2^53 precision cliff of JSON numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (the subset artifacts use).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, parsed as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was expected or found.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (object, string, number, bool or null).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(v)
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError {
        at,
        message: message.to_owned(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while let Some(&c) = b.get(*pos) {
        if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
        None => Err(err(*pos, "unexpected end of input")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, ParseError> {
    if b.get(*pos..)
        .is_some_and(|rest| rest.starts_with(lit.as_bytes()))
    {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    b.get(start..*pos)
        .and_then(|digits| std::str::from_utf8(digits).ok())
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| err(start, "invalid number"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    // Opening quote.
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through verbatim.
                let ch_len = utf8_len(c);
                let slice = b
                    .get(*pos..*pos + ch_len)
                    .ok_or_else(|| err(*pos, "truncated UTF-8"))?;
                let s =
                    std::str::from_utf8(slice).map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                out.push_str(s);
                *pos += ch_len;
            }
            None => return Err(err(*pos, "unterminated string")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xf0..=0xf7 => 4,
        0xe0..=0xef => 3,
        0xc0..=0xdf => 2,
        _ => 1,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    // Opening bracket.
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    // Opening brace.
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

// ---------------------------------------------------------------------------
// Writer.

/// Escapes a string for inclusion in JSON output.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so it parses back to the same bits: Rust's shortest
/// round-trip representation, with non-finite values (absent from JSON)
/// written as sentinel strings the parser never produces for numbers.
#[must_use]
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        format!("\"{v:?}\"")
    }
}

/// An incremental writer for one object literal.
#[derive(Debug, Default)]
pub struct ObjWriter {
    fields: Vec<(String, String)>,
}

impl ObjWriter {
    /// An empty object writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a raw (pre-encoded) field.
    pub fn raw(&mut self, key: &str, encoded: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_owned(), encoded.into()));
        self
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, v: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", escape(v)))
    }

    /// Adds a number field.
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        self.raw(key, num(v))
    }

    /// Adds a `u64` field, encoded as a string to stay lossless.
    pub fn u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.raw(key, format!("\"{v}\""))
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, v: bool) -> &mut Self {
        self.raw(key, if v { "true" } else { "false" })
    }

    /// Renders the object with the given indent level (2 spaces per level).
    #[must_use]
    pub fn render(&self, indent: usize) -> String {
        if self.fields.is_empty() {
            return "{}".to_owned();
        }
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{pad}\"{}\": {v}", escape(k)))
            .collect();
        format!("{{\n{}\n{close}}}", body.join(",\n"))
    }
}

/// Fetches `key` from an object, with a uniform error.
///
/// # Errors
///
/// Returns an error naming the missing key.
pub fn field<'a>(obj: &'a BTreeMap<String, Value>, key: &str) -> Result<&'a Value, ParseError> {
    obj.get(key).ok_or_else(|| ParseError {
        at: 0,
        message: format!("missing field `{key}`"),
    })
}

/// Fetches a `u64` encoded as a decimal string (see [`ObjWriter::u64`]).
///
/// # Errors
///
/// Returns an error when the field is missing or not a decimal string.
pub fn field_u64(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, ParseError> {
    field(obj, key)?
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ParseError {
            at: 0,
            message: format!("field `{key}` is not a u64 string"),
        })
}

/// Fetches an `f64` number field.
///
/// # Errors
///
/// Returns an error when the field is missing or not a number.
pub fn field_num(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, ParseError> {
    field(obj, key)?.as_num().ok_or_else(|| ParseError {
        at: 0,
        message: format!("field `{key}` is not a number"),
    })
}

/// Fetches a boolean field.
///
/// # Errors
///
/// Returns an error when the field is missing or not a boolean.
pub fn field_bool(obj: &BTreeMap<String, Value>, key: &str) -> Result<bool, ParseError> {
    field(obj, key)?.as_bool().ok_or_else(|| ParseError {
        at: 0,
        message: format!("field `{key}` is not a boolean"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_round_trip() {
        let mut w = ObjWriter::new();
        w.str("name", "power-cap")
            .num("oversub", 17.25)
            .u64("seed", u64::MAX)
            .bool("active", true)
            .raw("plan", "null");
        let text = w.render(0);
        let v = parse(&text).expect("parses");
        let obj = v.as_obj().expect("object");
        assert_eq!(field(obj, "name").unwrap().as_str(), Some("power-cap"));
        assert_eq!(field_num(obj, "oversub").unwrap(), 17.25);
        assert_eq!(field_u64(obj, "seed").unwrap(), u64::MAX);
        assert!(field_bool(obj, "active").unwrap());
        assert_eq!(field(obj, "plan").unwrap(), &Value::Null);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7] {
            let text = num(v);
            let parsed = parse(&text).expect("parses").as_num().expect("number");
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nwith \"quotes\" and \\slash\\ and tabs\t — unicode ✓";
        let text = format!("\"{}\"", escape(s));
        assert_eq!(parse(&text).expect("parses").as_str(), Some(s));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["{", "{\"a\": }", "{\"a\": 1,}", "tru", "\"open", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn arrays_parse() {
        let v = parse("[1, \"two\", [true], {}]").expect("parses");
        let items = v.as_arr().expect("array");
        assert_eq!(items.len(), 4);
        assert_eq!(items[0].as_num(), Some(1.0));
        assert_eq!(items[1].as_str(), Some("two"));
        assert_eq!(items[2].as_arr().map(<[Value]>::len), Some(1));
        assert!(parse("[1,").is_err());
        assert_eq!(
            parse("[]").expect("empty").as_arr().map(<[Value]>::len),
            Some(0)
        );
    }

    #[test]
    fn nested_objects_parse() {
        let v = parse("{\"outer\": {\"inner\": 3}, \"b\": false}").expect("parses");
        let outer = v.as_obj().unwrap();
        let inner = field(outer, "outer").unwrap().as_obj().unwrap();
        assert_eq!(field_num(inner, "inner").unwrap(), 3.0);
    }
}
